"""Scenario assembly: wiring city, crowd, mobility and attacker into a
runnable simulation.

A scenario is defined by a venue profile plus workload knobs; the
builder returns a configured :class:`~repro.sim.simulation.Simulation`
with the attacker installed and a group spawner attached to the arrival
process.  Group members share one mobility object — they literally walk
(or sit) together, which is what gives freshly-hit SSIDs predictive
power over companions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.city.model import City
from repro.city.venues import Venue
from repro.devices.access_point import LegitAp
from repro.devices.phone import Phone
from repro.devices.profiles import DEFAULT_SCAN_PROFILE, ScanProfile
from repro.dot11.mac import random_ap_mac, random_client_mac
from repro.dot11.medium import Medium
from repro.dot11.timing import DEFAULT_SCAN_TIMING, ScanTiming
from repro.faults.outages import OutageSchedule
from repro.faults.plan import FaultPlan
from repro.mobility.arrivals import ArrivalProcess
from repro.mobility.base import PathMobility
from repro.mobility.corridor import corridor_walk
from repro.mobility.static import static_dwell
from repro.mobility.waypoints import waypoint_wander
from repro.population.groups import GroupModel
from repro.population.pnl import PnlModel, VenueContext
from repro.population.synthesis import PersonFactory
from repro.sim.simulation import Simulation
from repro.wigle.database import WigleDatabase

PHONE_TX_RANGE_M = 45.0
"""Clients transmit *less* far than the 100 mW attacker (phone Wi-Fi
power is 15-30 mW): every client the attacker can hear, it can answer,
matching the prototype's effective asymmetry."""


@dataclass
class ScenarioConfig:
    """Everything that defines one runnable scenario."""

    venue_name: str
    mobility: str
    people_per_min: float
    duration: float
    seed: int = 0
    fidelity: str = "frame"
    group_probs: Sequence[float] = (0.62, 0.24, 0.10, 0.04)
    dwell_mean: float = 900.0
    scan_profile: ScanProfile = DEFAULT_SCAN_PROFILE
    timing: ScanTiming = DEFAULT_SCAN_TIMING
    pnl_model: Optional[PnlModel] = None
    group_model: Optional[GroupModel] = None
    hybrid_static_share: float = 0.35
    """For ``hybrid`` mobility: share of groups that settle (browsers)
    vs pass through."""

    quick_share: float = 0.45
    """For ``static`` mobility: share of grab-and-go visitors whose short
    dwell only allows a few scans — the clients the advanced attacker's
    ranking wins and the flat database loses."""

    quick_dwell_mean: float = 260.0

    walk_speed_mean: float = 1.3
    """Mean walking speed (m/s) for corridor crossers."""

    neighbour_count: int = 40
    """Nearby open SSIDs fed to PNL synthesis as the local context."""

    camped_share: float = 0.75
    """P(a person holding the venue's own open Wi-Fi is already camped
    on the real AP and therefore sends no probes) — the Section V-B
    observation that motivates the de-auth extension."""

    include_camped: bool = False
    """When True, camped clients are spawned as silent phones associated
    to a real venue AP (and a :class:`LegitAp` is installed), so a
    de-auth emitter can knock them loose.  When False they are simply
    absent, which is equivalent for every attacker that lacks de-auth."""

    trace: Optional[bool] = None
    """Row-level tracing: True/False force it; None defers to the
    ``REPRO_TRACE`` environment variable (default off)."""

    loss_rate: float = 0.0
    """Uniform frame-loss probability of the medium (1.0 = blackout)."""

    faults: Optional[FaultPlan] = None
    """Deterministic fault plan (None injects nothing — byte-identical
    to a build from before fault injection existed)."""

    medium_index: Optional[bool] = None
    """Spatial-index override for the medium's broadcast delivery:
    True/False force it; None defers to ``REPRO_MEDIUM_INDEX`` (default
    on).  Either setting yields bit-identical runs — the index is a pure
    accelerator (see :mod:`repro.dot11.medium`)."""

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive, got %r" % self.duration)
        if self.people_per_min < 0:
            raise ValueError(
                "people_per_min must be non-negative, got %r" % self.people_per_min
            )
        if not 0.0 <= self.camped_share <= 1.0:
            raise ValueError(
                "camped_share must be a probability, got %r" % self.camped_share
            )


class ScenarioBuild:
    """The assembled, ready-to-run pieces of one scenario."""

    def __init__(
        self,
        sim: Simulation,
        medium: Medium,
        venue: Venue,
        factory: PersonFactory,
        arrivals: ArrivalProcess,
        config: ScenarioConfig,
    ):
        self.sim = sim
        self.medium = medium
        self.venue = venue
        self.factory = factory
        self.arrivals = arrivals
        self.config = config
        self.phones: List[Phone] = []
        self.venue_ap: Optional[LegitAp] = None
        self.attacker: object = None


def _make_group_mobility(
    kind: str,
    venue: Venue,
    now: float,
    rng: np.random.Generator,
    config: ScenarioConfig,
) -> PathMobility:
    if kind == "static":
        if rng.random() < config.quick_share:
            return static_dwell(
                venue.region, now, config.quick_dwell_mean, rng, dwell_min=90.0
            )
        return static_dwell(venue.region, now, config.dwell_mean, rng)
    if kind == "corridor":
        return corridor_walk(
            venue.region, now, rng, speed_mean=config.walk_speed_mean
        )
    if kind == "hybrid":
        if rng.random() < config.hybrid_static_share:
            # Browsers: a few legs with long pauses scaled by the
            # venue's dwell profile.
            return waypoint_wander(
                venue.region, now, rng,
                legs_mean=3.0, pause_mean=max(30.0, config.dwell_mean * 0.3),
            )
        # Passers-through cross the concourse like a corridor.
        return corridor_walk(
            venue.region, now, rng, extension=20.0,
            speed_mean=config.walk_speed_mean,
        )
    raise ValueError("unknown mobility kind %r" % kind)


def build_scenario(
    city: City,
    wigle: WigleDatabase,
    config: ScenarioConfig,
    attacker_factory: Callable[[Simulation, Medium, Venue], object],
) -> ScenarioBuild:
    """Assemble one scenario; the caller runs ``build.sim.run(duration)``."""
    venue = city.venue(config.venue_name)
    sim = Simulation(seed=config.seed, trace=config.trace)
    plan = config.faults
    medium = Medium(
        sim,
        fidelity=config.fidelity,
        loss_rate=config.loss_rate,
        burst_loss=plan.channel if plan is not None else None,
        index=config.medium_index,
    )

    near = wigle.nearest_free_ssids(venue.region.center, config.neighbour_count + 10)
    neighbours = [s for s in near if s not in venue.wifi_ssids]
    context = VenueContext(venue, neighbours[: config.neighbour_count])
    factory = PersonFactory(
        city,
        context,
        sim.rngs.stream("population"),
        pnl_model=config.pnl_model,
        group_model=config.group_model,
    )

    attacker = attacker_factory(sim, medium, venue)
    if plan is not None and plan.outages is not None:
        install = getattr(attacker, "install_outages", None)
        if install is not None:
            install(
                OutageSchedule.generate(
                    plan.outages,
                    config.duration,
                    sim.rngs.stream("faults.outage"),
                )
            )
    sim.add_entity(attacker)

    mobility_rng = sim.rngs.stream("mobility")
    mac_rng = sim.rngs.stream("macs")
    camped_rng = sim.rngs.stream("camped")
    build = ScenarioBuild(sim, medium, venue, factory, None, config)

    venue_ap = None
    if config.include_camped and venue.wifi_ssids and venue.free_wifi:
        venue_ap = LegitAp(
            mac=random_ap_mac(sim.rngs.stream("venue_ap_mac")),
            position=venue.region.center,
            medium=medium,
            ssid=venue.wifi_ssids[0],
        )
        sim.add_entity(venue_ap)
    build.venue_ap = venue_ap

    open_venue_ssids = tuple(venue.wifi_ssids) if venue.free_wifi else ()

    def _is_camped(person) -> bool:
        if not open_venue_ssids:
            return False
        holds = any(
            s in person.pnl and person.pnl[s].auto_joinable
            for s in open_venue_ssids
        )
        return holds and camped_rng.random() < config.camped_share

    def spawn(size: int, now: float) -> None:
        people = factory.make_group(size)
        mobility = _make_group_mobility(
            config.mobility, venue, now, mobility_rng, config
        )
        for person in people:
            camped = _is_camped(person)
            if camped and venue_ap is None:
                continue  # silently camped on the real AP: never probes
            phone = Phone(
                mac=random_client_mac(mac_rng),
                person=person,
                mobility=mobility,
                medium=medium,
                scan_profile=config.scan_profile,
                timing=config.timing,
                tx_range=PHONE_TX_RANGE_M,
                camped_bssid=venue_ap.mac if camped else None,
            )
            build.phones.append(phone)
            sim.add_entity(phone)

    groups_per_min = config.people_per_min / max(
        1e-9, _mean_group_size(config.group_probs)
    )
    arrivals = ArrivalProcess(
        groups_per_min,
        spawn,
        group_size_probs=config.group_probs,
        stop_at=config.duration,
    )
    sim.add_entity(arrivals)
    build.arrivals = arrivals
    build.attacker = attacker
    return build


def _mean_group_size(probs: Sequence[float]) -> float:
    total = sum(probs)
    return sum((i + 1) * p for i, p in enumerate(probs)) / total
