"""One-command reproduction report.

``generate_report`` re-runs the paper's experiments, renders every table
and figure, checks each headline number against the registered paper
targets (:mod:`repro.analysis.validation`) and emits a single markdown
document — the quickest way to audit the reproduction end to end.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.validation import check_all, targets
from repro.experiments import figures, tables
from repro.experiments.calibration import all_profiles


def generate_report(
    duration: float = 1800.0,
    fig5_slots: Optional[Sequence[int]] = (0, 4, 10),
    fig5_slot_duration: float = 3600.0,
    seed: int = 7,
) -> str:
    """Build the full markdown report.

    ``fig5_slots=None`` runs all 12 hourly slots per venue (the paper's
    full grid, a few minutes of wall clock); the default subset covers a
    morning rush, a midday slot and an evening rush per venue.
    """
    sections: List[str] = ["# City-Hunter reproduction report", ""]
    measured: Dict[str, float] = {}

    # --- tables ------------------------------------------------------------
    t1 = tables.table1(seed=seed, duration=duration)
    karma, mana = t1.summaries()
    measured["karma.h"] = karma.hit_rate
    measured["karma.h_b"] = karma.broadcast_hit_rate
    measured["mana.h"] = mana.hit_rate
    measured["mana.h_b"] = mana.broadcast_hit_rate
    sections += ["## Tables", "```", t1.render(), "```"]

    t2 = tables.table2(seed=seed, duration=duration)
    measured["basic.canteen.h_b"] = t2.summaries()[1].broadcast_hit_rate
    measured["table2.wigle_share"] = tables.wigle_share_of_broadcast_hits(
        t2.runs[1]
    )
    sections += ["```", t2.render(), "```"]

    t3 = tables.table3(seed=seed, duration=duration)
    measured["basic.passage.h_b"] = t3.summaries()[0].broadcast_hit_rate
    sections += ["```", t3.render(), "```"]

    t4 = tables.table4()
    sections += ["```", t4.render(), "```"]

    # --- figures ------------------------------------------------------------
    sections += ["## Figures"]
    f1 = figures.fig1(seed=seed, duration=duration)
    sections += ["```", f1.render(), "```"]

    f2 = figures.fig2(seed=seed, duration=duration)
    measured["fig2b.single_burst_share"] = f2.passage_sent_histogram.fraction(40)
    sections += ["```", f2.render(), "```"]

    f4 = figures.fig4()
    sections += ["```", f4.render(), "```"]

    slots = list(fig5_slots) if fig5_slots is not None else None
    for key in all_profiles():
        f5 = figures.fig5_venue(
            key, seed=seed, slots=slots, slot_duration=fig5_slot_duration
        )
        measured[f"adv.{key}.h_b"] = f5.average_h_b()
        sections += ["```", f5.render(), "", f5.render_breakdown(), "```"]

    # --- verdicts ------------------------------------------------------------
    verdicts = check_all(measured)
    ok = sum(1 for line in verdicts if line.startswith("[OK"))
    sections += [
        "## Paper-target verdicts",
        "",
        f"{ok}/{len(verdicts)} targets inside their accepted bands"
        f" ({len(targets())} registered).",
        "",
        "```",
        *verdicts,
        "```",
    ]
    return "\n".join(sections) + "\n"
