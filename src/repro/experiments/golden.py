"""The canonical golden-equivalence batch.

A small, fixed set of runs — two attackers, two venue profiles, one
fault-injected run — whose merged metrics digest is committed as a
repository fixture (``tests/data/golden_metrics.digest``).  The golden
tests assert the digest is reproduced

* at any ``REPRO_WORKERS`` value (merge is spec-order, not
  scheduling-order);
* with the medium's spatial index on *and* off (the index is a pure
  accelerator);

so any change that moves simulation behaviour — intentional or not —
shows up as a reviewable per-section diff, not a silent drift.
A second batch (:func:`golden_shard_specs`, fixture
``tests/data/golden_shards.digest``) pins the district-sharded city
engine the same way: its digest must be reproduced at any
``REPRO_SHARDS`` count.  Regenerate the fixtures with
``python tests/regen_golden.py`` after an intentional change.

Durations are short (5 simulated minutes) to keep the batch affordable
in CI while still crossing every hot path: probe/response bursts, hits,
adaptation, Gilbert–Elliott channel faults.
"""

from __future__ import annotations

import dataclasses
import os
from typing import List, Optional

from repro.experiments.parallel import (
    RunResult,
    RunSpec,
    metrics_doc,
    resolve_workers,
    run_specs,
)
from repro.faults.plan import FaultPlan, GilbertElliottParams
from repro.faults.shards import ShardFaultParams
from repro.sim.shards.checkpoint import CKPT_EVERY_ENV
from repro.sim.shards.engine import (
    SHARD_MODE_ENV,
    SHARDS_ENV,
    resolve_shards,
)
from repro.sim.shards.scenario import ShardScenario

GOLDEN_DURATION_S = 300.0
GOLDEN_SHARD_DURATION_S = 240.0

#: The chaos variant of the shard batch: crash the seed-hashed target
#: shard at this epoch, checkpoint every this many epochs.  Both sit
#: well inside the 240 s / 2 s = 120-epoch golden runs, so the recovery
#: replays real workload and the digest must still match the fixture.
GOLDEN_CHAOS_CRASH_EPOCH = 20
GOLDEN_CHAOS_CKPT_EVERY = 8


def golden_chaos_plan() -> FaultPlan:
    """The deterministic shard-crash plan the chaos CI job injects."""
    return FaultPlan(
        seed=13,
        shard_faults=ShardFaultParams(crash_epoch=GOLDEN_CHAOS_CRASH_EPOCH),
    )


def golden_specs() -> List[RunSpec]:
    """The fixed batch; any edit here requires regenerating the fixture."""
    return [
        RunSpec(
            attacker="cityhunter",
            venue="canteen",
            seed=101,
            duration=GOLDEN_DURATION_S,
            tag="golden-cityhunter-canteen",
        ),
        RunSpec(
            attacker="karma",
            venue="passage",
            seed=202,
            duration=GOLDEN_DURATION_S,
            tag="golden-karma-passage",
        ),
        RunSpec(
            attacker="cityhunter",
            venue="passage",
            seed=303,
            duration=GOLDEN_DURATION_S,
            tag="golden-cityhunter-faults",
            faults=FaultPlan(channel=GilbertElliottParams()),
        ),
    ]


def run_golden(workers: Optional[int] = None) -> dict:
    """Run the golden batch and return its metrics artefact document."""
    results: List[RunResult] = run_specs(
        golden_specs(), workers=workers, timings_name="golden_timings",
        metrics_name="golden_metrics",
    )
    return metrics_doc(results, workers=resolve_workers(workers))


def golden_shard_specs() -> List[RunSpec]:
    """The sharded-city golden batch (fixture:
    ``tests/data/golden_shards.digest``).

    Three scenarios sized so 1/2/4 shards all own real work (six
    district columns, walkers crossing shard seams throughout) while
    staying CI-cheap.  The shard count is deliberately *not* in the
    specs — it comes from ``REPRO_SHARDS`` — so one fixture digest pins
    every shard count and both executor widths.
    """
    return [
        RunSpec(
            attacker="cityhunter",
            seed=111,
            tag="golden-shards-a",
            shard_scenario=ShardScenario(
                stations=240,
                sensors=24,
                duration=GOLDEN_SHARD_DURATION_S,
                seed=111,
                size_m=720.0,
            ),
        ),
        RunSpec(
            attacker="cityhunter",
            seed=222,
            tag="golden-shards-b",
            shard_scenario=ShardScenario(
                stations=180,
                sensors=16,
                duration=GOLDEN_SHARD_DURATION_S,
                seed=222,
                size_m=720.0,
                epoch_s=3.0,
                open_share=0.4,
            ),
        ),
        RunSpec(
            attacker="cityhunter",
            seed=333,
            tag="golden-shards-c",
            shard_scenario=ShardScenario(
                stations=300,
                sensors=32,
                duration=GOLDEN_SHARD_DURATION_S,
                seed=333,
                size_m=960.0,
                burst_size=8,
            ),
        ),
    ]


def run_golden_shards(
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    chaos: bool = False,
) -> dict:
    """Run the sharded golden batch at ``shards`` and return its metrics
    artefact document.

    ``shards`` is applied by (temporarily) setting ``REPRO_SHARDS`` —
    the same path a user takes — so the artefact exercises exactly the
    env plumbing the CI shard-smoke job drives.

    ``chaos=True`` is the fault-tolerance gate: every spec gets
    :func:`golden_chaos_plan` (one shard crashes mid-run), the batch is
    forced into process mode with ``REPRO_SHARD_CKPT_EVERY`` set, and
    the digest must *still* equal the committed fixture — recovery is
    only correct when it is invisible in ``shardsim.*`` space.
    """
    shards = resolve_shards(shards)
    scoped = {SHARDS_ENV: str(shards)}
    if chaos:
        scoped[SHARD_MODE_ENV] = "process"
        scoped[CKPT_EVERY_ENV] = str(GOLDEN_CHAOS_CKPT_EVERY)
    specs = golden_shard_specs()
    if chaos:
        plan = golden_chaos_plan()
        specs = [dataclasses.replace(spec, faults=plan) for spec in specs]
    previous = {key: os.environ.get(key) for key in scoped}
    os.environ.update(scoped)
    try:
        results: List[RunResult] = run_specs(
            specs,
            workers=workers,
            timings_name="golden_shards_timings",
            metrics_name="golden_shards_metrics",
        )
    finally:
        for key, value in previous.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
    return metrics_doc(results, workers=resolve_workers(workers))
