"""The canonical golden-equivalence batch.

A small, fixed set of runs — two attackers, two venue profiles, one
fault-injected run — whose merged metrics digest is committed as a
repository fixture (``tests/data/golden_metrics.digest``).  The golden
tests assert the digest is reproduced

* at any ``REPRO_WORKERS`` value (merge is spec-order, not
  scheduling-order);
* with the medium's spatial index on *and* off (the index is a pure
  accelerator);

so any change that moves simulation behaviour — intentional or not —
shows up as a reviewable per-section diff, not a silent drift.
A second batch (:func:`golden_shard_specs`, fixture
``tests/data/golden_shards.digest``) pins the district-sharded city
engine the same way: its digest must be reproduced at any
``REPRO_SHARDS`` count.  Regenerate the fixtures with
``python tests/regen_golden.py`` after an intentional change.

Durations are short (5 simulated minutes) to keep the batch affordable
in CI while still crossing every hot path: probe/response bursts, hits,
adaptation, Gilbert–Elliott channel faults.
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.experiments.parallel import (
    RunResult,
    RunSpec,
    metrics_doc,
    resolve_workers,
    run_specs,
)
from repro.faults.plan import FaultPlan, GilbertElliottParams
from repro.sim.shards.engine import SHARDS_ENV, resolve_shards
from repro.sim.shards.scenario import ShardScenario

GOLDEN_DURATION_S = 300.0
GOLDEN_SHARD_DURATION_S = 240.0


def golden_specs() -> List[RunSpec]:
    """The fixed batch; any edit here requires regenerating the fixture."""
    return [
        RunSpec(
            attacker="cityhunter",
            venue="canteen",
            seed=101,
            duration=GOLDEN_DURATION_S,
            tag="golden-cityhunter-canteen",
        ),
        RunSpec(
            attacker="karma",
            venue="passage",
            seed=202,
            duration=GOLDEN_DURATION_S,
            tag="golden-karma-passage",
        ),
        RunSpec(
            attacker="cityhunter",
            venue="passage",
            seed=303,
            duration=GOLDEN_DURATION_S,
            tag="golden-cityhunter-faults",
            faults=FaultPlan(channel=GilbertElliottParams()),
        ),
    ]


def run_golden(workers: Optional[int] = None) -> dict:
    """Run the golden batch and return its metrics artefact document."""
    results: List[RunResult] = run_specs(
        golden_specs(), workers=workers, timings_name="golden_timings",
        metrics_name="golden_metrics",
    )
    return metrics_doc(results, workers=resolve_workers(workers))


def golden_shard_specs() -> List[RunSpec]:
    """The sharded-city golden batch (fixture:
    ``tests/data/golden_shards.digest``).

    Three scenarios sized so 1/2/4 shards all own real work (six
    district columns, walkers crossing shard seams throughout) while
    staying CI-cheap.  The shard count is deliberately *not* in the
    specs — it comes from ``REPRO_SHARDS`` — so one fixture digest pins
    every shard count and both executor widths.
    """
    return [
        RunSpec(
            attacker="cityhunter",
            seed=111,
            tag="golden-shards-a",
            shard_scenario=ShardScenario(
                stations=240,
                sensors=24,
                duration=GOLDEN_SHARD_DURATION_S,
                seed=111,
                size_m=720.0,
            ),
        ),
        RunSpec(
            attacker="cityhunter",
            seed=222,
            tag="golden-shards-b",
            shard_scenario=ShardScenario(
                stations=180,
                sensors=16,
                duration=GOLDEN_SHARD_DURATION_S,
                seed=222,
                size_m=720.0,
                epoch_s=3.0,
                open_share=0.4,
            ),
        ),
        RunSpec(
            attacker="cityhunter",
            seed=333,
            tag="golden-shards-c",
            shard_scenario=ShardScenario(
                stations=300,
                sensors=32,
                duration=GOLDEN_SHARD_DURATION_S,
                seed=333,
                size_m=960.0,
                burst_size=8,
            ),
        ),
    ]


def run_golden_shards(
    workers: Optional[int] = None, shards: Optional[int] = None
) -> dict:
    """Run the sharded golden batch at ``shards`` and return its metrics
    artefact document.

    ``shards`` is applied by (temporarily) setting ``REPRO_SHARDS`` —
    the same path a user takes — so the artefact exercises exactly the
    env plumbing the CI shard-smoke job drives.
    """
    shards = resolve_shards(shards)
    previous = os.environ.get(SHARDS_ENV)
    os.environ[SHARDS_ENV] = str(shards)
    try:
        results: List[RunResult] = run_specs(
            golden_shard_specs(),
            workers=workers,
            timings_name="golden_shards_timings",
            metrics_name="golden_shards_metrics",
        )
    finally:
        if previous is None:
            os.environ.pop(SHARDS_ENV, None)
        else:
            os.environ[SHARDS_ENV] = previous
    return metrics_doc(results, workers=resolve_workers(workers))
