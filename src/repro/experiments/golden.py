"""The canonical golden-equivalence batch.

A small, fixed set of runs — two attackers, two venue profiles, one
fault-injected run — whose merged metrics digest is committed as a
repository fixture (``tests/data/golden_metrics.digest``).  The golden
tests assert the digest is reproduced

* at any ``REPRO_WORKERS`` value (merge is spec-order, not
  scheduling-order);
* with the medium's spatial index on *and* off (the index is a pure
  accelerator);

so any change that moves simulation behaviour — intentional or not —
shows up as a reviewable per-section diff, not a silent drift.
Regenerate the fixture with ``python tests/regen_golden.py`` after an
intentional change.

Durations are short (5 simulated minutes) to keep the batch affordable
in CI while still crossing every hot path: probe/response bursts, hits,
adaptation, Gilbert–Elliott channel faults.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.parallel import (
    RunResult,
    RunSpec,
    metrics_doc,
    resolve_workers,
    run_specs,
)
from repro.faults.plan import FaultPlan, GilbertElliottParams

GOLDEN_DURATION_S = 300.0


def golden_specs() -> List[RunSpec]:
    """The fixed batch; any edit here requires regenerating the fixture."""
    return [
        RunSpec(
            attacker="cityhunter",
            venue="canteen",
            seed=101,
            duration=GOLDEN_DURATION_S,
            tag="golden-cityhunter-canteen",
        ),
        RunSpec(
            attacker="karma",
            venue="passage",
            seed=202,
            duration=GOLDEN_DURATION_S,
            tag="golden-karma-passage",
        ),
        RunSpec(
            attacker="cityhunter",
            venue="passage",
            seed=303,
            duration=GOLDEN_DURATION_S,
            tag="golden-cityhunter-faults",
            faults=FaultPlan(channel=GilbertElliottParams()),
        ),
    ]


def run_golden(workers: Optional[int] = None) -> dict:
    """Run the golden batch and return its metrics artefact document."""
    results: List[RunResult] = run_specs(
        golden_specs(), workers=workers, timings_name="golden_timings",
        metrics_name="golden_metrics",
    )
    return metrics_doc(results, workers=resolve_workers(workers))
