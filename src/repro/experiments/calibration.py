"""Calibrated per-venue workload profiles.

Client volumes are set to the paper's observations: ~620-690 clients per
30-minute canteen test, ~1350 per 30-minute passage test, and the Fig. 5
hourly series with rush-hour peaks (passage/station), mealtime peaks
(canteen) and a midday/evening hump (shopping centre).

Rates are *people per minute*; the arrival process converts to groups
using the slot's group-size distribution.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.city.model import City, build_city
from repro.mobility.arrivals import HourlyRates

GROUP_PROBS_BASE: Tuple[float, ...] = (0.62, 0.24, 0.10, 0.04)
"""P(group size = 1..4) off-peak."""

GROUP_PROBS_RUSH: Tuple[float, ...] = (0.48, 0.30, 0.15, 0.07)
"""P(group size = 1..4) during rush hours — the paper observes more
people walking in groups then."""


def mean_group_size(probs: Sequence[float]) -> float:
    """Expected group size for a size-probability vector."""
    total = sum(probs)
    return sum((i + 1) * p for i, p in enumerate(probs)) / total


@dataclass(frozen=True)
class VenueProfile:
    """Workload description of one attack venue."""

    venue_name: str
    mobility: str
    """``static`` | ``corridor`` | ``hybrid``."""

    people_per_min_30min_test: float
    """Arrival rate used by the Section III 30-minute experiments."""

    hourly_people_per_min: HourlyRates
    """Fig. 5 rate per 8am-8pm slot."""

    rush_slots: Tuple[int, ...] = ()
    """Slot indices treated as rush hours (group mix shifts)."""

    dwell_mean: float = 900.0
    """Mean dwell for static visitors (seconds)."""

    hybrid_static_share: float = 0.35
    """For hybrid venues: share of groups that settle rather than pass
    through (station waiting areas hold more sitters than a mall)."""

    quick_share: float = 0.45
    """For static venues: share of grab-and-go short-dwellers."""


_PROFILES = {
    "canteen": VenueProfile(
        venue_name="University Canteen",
        mobility="static",
        people_per_min_30min_test=21.5,
        # Mealtime peaks: breakfast 8-9, lunch 12-2, dinner 6-8.
        hourly_people_per_min=HourlyRates(
            (15.0, 6.0, 5.0, 9.0, 22.0, 20.0, 8.0, 5.0, 5.0, 7.0, 18.0, 14.0)
        ),
        rush_slots=(0, 4, 5, 10, 11),
        dwell_mean=900.0,
        quick_share=0.52,
    ),
    "passage": VenueProfile(
        venue_name="Central Subway Passage",
        mobility="corridor",
        people_per_min_30min_test=52.0,
        # Commuter rush at 8-9am and 6-7pm.
        hourly_people_per_min=HourlyRates(
            (50.0, 33.0, 20.0, 18.0, 21.0, 19.0, 16.0, 18.0, 20.0, 28.0, 47.0, 35.0)
        ),
        rush_slots=(0, 10),
    ),
    "shopping_center": VenueProfile(
        venue_name="Harbour Shopping Center",
        mobility="hybrid",
        people_per_min_30min_test=25.0,
        # Builds through midday, peaks in the evening.
        hourly_people_per_min=HourlyRates(
            (8.0, 10.0, 13.0, 17.0, 21.0, 22.0, 20.0, 19.0, 21.0, 24.0, 26.0, 22.0)
        ),
        rush_slots=(9, 10),
        dwell_mean=300.0,
        hybrid_static_share=0.08,
    ),
    "railway_station": VenueProfile(
        venue_name="City Railway Station",
        mobility="hybrid",
        people_per_min_30min_test=35.0,
        # Commuter peaks mirroring the passage, on a bigger base.
        hourly_people_per_min=HourlyRates(
            (38.0, 26.0, 20.0, 18.0, 22.0, 20.0, 18.0, 19.0, 22.0, 28.0, 36.0, 28.0)
        ),
        rush_slots=(0, 10),
        dwell_mean=420.0,
        hybrid_static_share=0.45,
    ),
}


def venue_profile(key: str) -> VenueProfile:
    """Profile by short key: canteen / passage / shopping_center /
    railway_station."""
    try:
        return _PROFILES[key]
    except KeyError:
        raise KeyError(
            "unknown venue key %r (have: %s)" % (key, ", ".join(sorted(_PROFILES)))
        ) from None


def all_profiles() -> dict:
    """All four venue profiles keyed by short name."""
    return dict(_PROFILES)


@functools.lru_cache(maxsize=4)
def default_city(seed: int = 42) -> City:
    """The shared city instance used by tests/benches (cached — city
    generation is ~1 s and the city is immutable in practice)."""
    return build_city(rng=np.random.default_rng(seed))
