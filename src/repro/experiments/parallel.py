"""Parallel experiment execution with deterministic seeding.

Every paper artefact is a batch of *independent* deployments — Fig. 5/6
alone is 48 hourly runs — so the executor here fans a list of picklable
:class:`RunSpec` descriptions out over a ``ProcessPoolExecutor`` and
returns ordered :class:`RunSummary` results.  Three properties make the
fan-out exact rather than merely fast:

* **Specs, not closures.**  A spec names its attacker (resolved through
  the :mod:`~repro.experiments.attackers` registry inside the worker)
  and carries only picklable configuration, so the same spec runs
  identically in-process or in a worker.
* **Per-worker caches.**  ``default_city`` / ``shared_wigle`` are
  process-local ``lru_cache``\\ s; each worker builds (or inherits via
  fork) its own immutable city and WiGLE registry.  No mutable state is
  shared between runs, so execution order cannot matter.
* **Derived seeds.**  Batches that need replicate seeds derive them via
  ``derive_seed(master_seed, "run:i")`` (:func:`derive_run_seeds`),
  which is platform-stable SHA-256 fan-out — parallel and serial
  execution produce bit-identical results.

Worker count comes from the ``REPRO_WORKERS`` environment variable
(default ``os.cpu_count()``); ``REPRO_WORKERS=1`` is an exact serial
fallback that never touches the process pool.  Each executor invocation
also writes a ``benchmarks/out/timings.json`` artefact (per-run wall
time, worker count, speedup vs the serial estimate) unless
``REPRO_TIMINGS=0``, and a ``metrics.json`` artefact (each worker's
:class:`~repro.obs.registry.MetricsRegistry` snapshot plus their merge)
unless ``REPRO_METRICS=0``.  Both land in the directory resolved by
:func:`repro.obs.artifacts.artifact_dir` (``REPRO_ARTIFACT_DIR``, or
the legacy ``REPRO_TIMINGS_DIR``, or ``benchmarks/out``).

Merged metrics are *worker-count invariant*: workers return snapshots in
spec order and the parent folds them in that order, so every section
except wall-clock ``timers`` is bit-identical between ``REPRO_WORKERS=1``
and any pooled width.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.analysis.breakdown import (
    BufferBreakdown,
    SourceBreakdown,
    breakdown_hits,
)
from repro.analysis.metrics import SessionSummary, summarize
from repro.core.config import CityHunterConfig
from repro.experiments.attackers import ATTACKER_NAMES, make_attacker
from repro.experiments.calibration import default_city, venue_profile
from repro.experiments.runner import run_experiment, shared_wigle
from repro.experiments.scenarios import ScenarioConfig, build_scenario
from repro.obs.artifacts import (
    LEGACY_TIMINGS_DIR_ENV,
    artifact_path,
    ensure_artifact_dir,
)
from repro.obs.registry import METRICS_SCHEMA, merge_snapshots
from repro.population.groups import GroupModel
from repro.population.pnl import PnlModel
from repro.util.rng import derive_seed

WORKERS_ENV = "REPRO_WORKERS"
TIMINGS_ENV = "REPRO_TIMINGS"
METRICS_ENV = "REPRO_METRICS"
TIMINGS_DIR_ENV = LEGACY_TIMINGS_DIR_ENV  # re-export for compatibility


@dataclass(frozen=True)
class RunSpec:
    """One independent deployment, described in picklable terms.

    Two routes exist.  The *profile* route (``venue`` set) mirrors
    :func:`~repro.experiments.runner.run_experiment` over a calibrated
    venue profile; the *scenario* route (``scenario`` set) runs an
    explicit :class:`ScenarioConfig`, which is what the sweep grid uses.
    Exactly one of the two must be provided.
    """

    attacker: str
    venue: Optional[str] = None
    seed: int = 0
    duration: float = 1800.0
    people_per_min: Optional[float] = None
    fidelity: str = "frame"
    rush: bool = False
    group_probs: Optional[Tuple[float, ...]] = None
    pnl_model: Optional[PnlModel] = None
    group_model: Optional[GroupModel] = None
    attacker_config: Optional[CityHunterConfig] = None
    use_heat: bool = True
    scenario: Optional[ScenarioConfig] = None
    run_extra: float = 30.0
    """Simulated seconds past ``duration`` so in-flight handshakes
    finish (matches the serial runner)."""

    city_seed: int = 42
    tag: str = ""
    """Free-form label echoed into results and the timings artefact."""

    def __post_init__(self) -> None:
        if self.attacker not in ATTACKER_NAMES:
            raise ValueError(
                "unknown attacker %r (have: %s)"
                % (self.attacker, ", ".join(ATTACKER_NAMES))
            )
        if (self.venue is None) == (self.scenario is None):
            raise ValueError("exactly one of venue/scenario must be set")


@dataclass(frozen=True)
class RunSummary:
    """The picklable outcome of one run.

    Workers cannot ship the full :class:`ExperimentResult` home (the
    session graph references the live simulation), so the breakdown
    analyses are computed worker-side and only plain dataclasses cross
    the process boundary.
    """

    spec: RunSpec
    summary: SessionSummary
    source: SourceBreakdown
    buffers: BufferBreakdown
    people_spawned: int
    duration: float
    wall_time: float
    metrics: Optional[dict] = None
    """This run's :meth:`MetricsRegistry.to_dict` snapshot (None only
    for summaries built before the observability layer existed)."""

    events: Tuple[dict, ...] = field(default=())
    """The run's retained structured events (capped ring buffer)."""

    @property
    def h(self) -> float:
        """Overall hit rate."""
        return self.summary.hit_rate

    @property
    def h_b(self) -> float:
        """Broadcast hit rate."""
        return self.summary.broadcast_hit_rate


def derive_run_seeds(master_seed: int, count: int) -> List[int]:
    """Per-run seeds fanned out from one master seed.

    Uses the same SHA-256 derivation as the in-simulation stream
    registry (``derive_seed(master, "run:i")``), so the seeds are
    distinct, stable across platforms and Python versions, and
    independent of worker count or execution order.
    """
    return [derive_seed(master_seed, f"run:{i}") for i in range(count)]


def replicates(
    spec: RunSpec, count: int, master_seed: Optional[int] = None
) -> List[RunSpec]:
    """``count`` copies of ``spec`` with derived, distinct seeds.

    Cheap replicated runs are what put error bars on h_b; the master
    seed defaults to the spec's own seed.
    """
    master = spec.seed if master_seed is None else master_seed
    out = []
    for i, child_seed in enumerate(derive_run_seeds(master, count)):
        tag = spec.tag or spec.attacker
        if spec.scenario is not None:
            child = replace(
                spec,
                scenario=replace(spec.scenario, seed=child_seed),
                seed=child_seed,
                tag=f"{tag}:rep{i}",
            )
        else:
            child = replace(spec, seed=child_seed, tag=f"{tag}:rep{i}")
        out.append(child)
    return out


def resolve_workers(workers: Optional[int] = None) -> int:
    """Worker count: explicit argument, else ``REPRO_WORKERS``, else
    ``os.cpu_count()``."""
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if env:
            try:
                workers = int(env)
            except ValueError:
                raise ValueError(
                    "%s must be an integer, got %r" % (WORKERS_ENV, env)
                ) from None
        else:
            workers = os.cpu_count() or 1
    if workers < 1:
        raise ValueError("worker count must be >= 1, got %r" % workers)
    return workers


def execute_spec(spec: RunSpec) -> RunSummary:
    """Run one spec in the current process and summarise it.

    This is the worker entry point, but it is equally the serial path:
    ``run_specs`` with one worker calls it inline, which is what makes
    the ``REPRO_WORKERS=1`` fallback *exact* rather than approximate.
    """
    city = default_city(spec.city_seed)
    wigle = shared_wigle(spec.city_seed)
    factory = make_attacker(
        spec.attacker, city, wigle, config=spec.attacker_config,
        use_heat=spec.use_heat,
    )
    start = time.perf_counter()
    if spec.scenario is not None:
        build = build_scenario(city, wigle, spec.scenario, factory)
        build.sim.run(spec.scenario.duration + spec.run_extra)
        sim = build.sim
        session = build.attacker.session
        summary = summarize(session)
        people = build.arrivals.people_spawned
        duration = spec.scenario.duration
    else:
        result = run_experiment(
            city,
            wigle,
            factory,
            venue_profile(spec.venue),
            spec.duration,
            people_per_min=spec.people_per_min,
            seed=spec.seed,
            fidelity=spec.fidelity,
            rush=spec.rush,
            group_probs=spec.group_probs,
            pnl_model=spec.pnl_model,
            group_model=spec.group_model,
        )
        sim = result.attacker.sim
        session = result.session
        summary = result.summary
        people = result.people_spawned
        duration = result.duration
    wall = time.perf_counter() - start
    sim.metrics.inc("run.count")
    sim.metrics.inc("run.people_spawned", people)
    sim.metrics.inc("run.sim_duration_s", duration)
    sim.metrics.timer_add("run.wall", wall)
    source, buffers = breakdown_hits(session)
    return RunSummary(
        spec=spec,
        summary=summary,
        source=source,
        buffers=buffers,
        people_spawned=people,
        duration=duration,
        wall_time=wall,
        metrics=sim.metrics.to_dict(),
        events=tuple(sim.events),
    )


def run_specs(
    specs: Sequence[RunSpec],
    workers: Optional[int] = None,
    timings_name: str = "timings",
    metrics_name: str = "metrics",
) -> List[RunSummary]:
    """Execute every spec and return results in spec order.

    ``workers`` falls back to ``REPRO_WORKERS`` / ``os.cpu_count()``;
    one worker (or one spec) runs inline with no pool.  Results are
    bit-identical across worker counts because each run derives all of
    its randomness from its own spec and touches only immutable shared
    state.  Timings and metrics artefacts are written after every
    invocation (``REPRO_TIMINGS=0`` / ``REPRO_METRICS=0`` disable).
    """
    specs = list(specs)
    requested = resolve_workers(workers)
    used = max(1, min(requested, len(specs)))
    start = time.perf_counter()
    if used == 1:
        results = [execute_spec(spec) for spec in specs]
    else:
        _prewarm(specs)
        with ProcessPoolExecutor(max_workers=used) as pool:
            results = list(pool.map(execute_spec, specs))
    total_wall = time.perf_counter() - start
    write_timings(results, workers=used, total_wall=total_wall,
                  name=timings_name)
    write_metrics(results, workers=used, name=metrics_name)
    return results


def _prewarm(specs: Sequence[RunSpec]) -> None:
    """Build each distinct city/registry once in the parent.

    Under the default ``fork`` start method workers then inherit the
    built caches instead of re-generating the city per process; under
    ``spawn`` this is merely a cheap no-op for the children.
    """
    for city_seed in sorted({spec.city_seed for spec in specs}):
        shared_wigle(city_seed)


def timings_path(name: str = "timings") -> pathlib.Path:
    """Where the timings artefact goes (see
    :func:`repro.obs.artifacts.artifact_dir` for the resolution rule)."""
    return artifact_path(name)


def metrics_path(name: str = "metrics") -> pathlib.Path:
    """Where the metrics artefact goes (same directory as timings)."""
    return artifact_path(name)


def merged_metrics(results: Sequence[RunSummary]) -> dict:
    """Fold every run's registry snapshot, in result order.

    Result order is spec order regardless of worker count, so the merge
    (float counter sums included) is worker-count invariant.
    """
    return merge_snapshots(r.metrics for r in results if r.metrics is not None)


def write_metrics(
    results: Sequence[RunSummary],
    workers: int,
    name: str = "metrics",
) -> Optional[pathlib.Path]:
    """Persist the batch metrics artefact; returns its path.

    The document carries the merged registry plus one entry per run
    (tag, seed, snapshot, retained events) so per-run timelines — the
    PB/FB series in particular — survive next to the aggregate.  Set
    ``REPRO_METRICS=0`` to disable.
    """
    if os.environ.get(METRICS_ENV, "1").strip() in ("0", "false", "off"):
        return None
    doc = {
        "schema": METRICS_SCHEMA,
        "workers": workers,
        "run_count": len(results),
        "merged": merged_metrics(results),
        "runs": [
            {
                "tag": r.spec.tag,
                "attacker": r.spec.attacker,
                "venue": (
                    r.spec.venue
                    if r.spec.venue is not None
                    else r.spec.scenario.venue_name
                ),
                "seed": r.spec.seed,
                "metrics": r.metrics if r.metrics is not None else {},
                "events": list(r.events),
            }
            for r in results
        ],
    }
    ensure_artifact_dir()
    path = metrics_path(name)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def write_timings(
    results: Sequence[RunSummary],
    workers: int,
    total_wall: float,
    name: str = "timings",
) -> Optional[pathlib.Path]:
    """Persist the batch timing artefact; returns its path.

    The serial estimate is the sum of per-run wall times, so the
    recorded speedup is against running the same batch with one worker
    in the same session.  Set ``REPRO_TIMINGS=0`` to disable.
    """
    if os.environ.get(TIMINGS_ENV, "1").strip() in ("0", "false", "off"):
        return None
    serial_estimate = sum(r.wall_time for r in results)
    doc = {
        "workers": workers,
        "run_count": len(results),
        "total_wall_time_s": round(total_wall, 4),
        "serial_estimate_s": round(serial_estimate, 4),
        "speedup_vs_serial_estimate": (
            round(serial_estimate / total_wall, 3) if total_wall > 0 else None
        ),
        "runs": [
            {
                "tag": r.spec.tag,
                "attacker": r.spec.attacker,
                "venue": (
                    r.spec.venue
                    if r.spec.venue is not None
                    else r.spec.scenario.venue_name
                ),
                "seed": r.spec.seed,
                "sim_duration_s": r.duration,
                "wall_time_s": round(r.wall_time, 4),
            }
            for r in results
        ],
    }
    path = timings_path(name)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return path
