"""Parallel experiment execution with deterministic seeding and
fault-tolerant, resumable batches.

Every paper artefact is a batch of *independent* deployments — Fig. 5/6
alone is 48 hourly runs — so the executor here fans a list of picklable
:class:`RunSpec` descriptions out over a ``ProcessPoolExecutor`` and
returns ordered results.  Three properties make the fan-out exact
rather than merely fast:

* **Specs, not closures.**  A spec names its attacker (resolved through
  the :mod:`~repro.experiments.attackers` registry inside the worker)
  and carries only picklable configuration, so the same spec runs
  identically in-process or in a worker.
* **Per-worker caches.**  ``default_city`` / ``shared_wigle`` are
  process-local ``lru_cache``\\ s; each worker builds (or inherits via
  fork) its own immutable city and WiGLE registry.  No mutable state is
  shared between runs, so execution order cannot matter.
* **Derived seeds.**  Batches that need replicate seeds derive them via
  ``derive_seed(master_seed, "run:i")`` (:func:`derive_run_seeds`),
  which is platform-stable SHA-256 fan-out — parallel and serial
  execution produce bit-identical results.

Resilience (the properties a 48-run batch on real hardware needs):

* **Worker death is retried, not fatal.**  A crashed worker
  (``BrokenProcessPool`` — OOM kill, segfault, injected chaos) rebuilds
  the pool and resubmits the unfinished specs with capped exponential
  backoff (``REPRO_RETRIES`` / ``REPRO_RETRY_BACKOFF_S``).  The retry
  reuses the *same* spec and therefore the same derived seed, so a
  retried run is bit-identical to one that never crashed.
* **Failures become placeholders.**  A spec that keeps failing (or
  raises, or exceeds the per-spec ``REPRO_SPEC_TIMEOUT_S``) yields a
  :class:`FailedRun` in its slot instead of aborting the batch; every
  surviving run is still returned, bit-identical to a fault-free
  execution of those specs.
* **Completed runs are checkpointed.**  With checkpointing enabled
  (``REPRO_CHECKPOINT`` or ``checkpoint_name=``), every finished run is
  appended to a JSONL artefact keyed by :func:`spec_digest`; a
  re-invocation of :func:`run_specs` restores those runs without
  re-executing them and only runs what is missing.

Worker count comes from the ``REPRO_WORKERS`` environment variable
(default ``os.cpu_count()``); ``REPRO_WORKERS=1`` is an exact serial
fallback that never touches the process pool.  Each executor invocation
also writes a ``benchmarks/out/timings.json`` artefact (per-run wall
time, worker count, speedup vs the serial estimate) unless
``REPRO_TIMINGS=0``, and a ``metrics.json`` artefact (each worker's
:class:`~repro.obs.registry.MetricsRegistry` snapshot plus their merge)
unless ``REPRO_METRICS=0``.  Both land in the directory resolved by
:func:`repro.obs.artifacts.artifact_dir` (``REPRO_ARTIFACT_DIR``, or
the legacy ``REPRO_TIMINGS_DIR``, or ``benchmarks/out``).

Merged metrics are *worker-count invariant*: workers return snapshots in
spec order and the parent folds them in that order, so every section
except wall-clock ``timers`` is bit-identical between ``REPRO_WORKERS=1``
and any pooled width.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.breakdown import (
    BufferBreakdown,
    SourceBreakdown,
    breakdown_hits,
)
from repro.analysis.metrics import SessionSummary, summarize
from repro.core.config import CityHunterConfig
from repro.dot11.medium import resolve_medium_index
from repro.experiments.attackers import ATTACKER_NAMES, make_attacker
from repro.experiments.calibration import default_city, venue_profile
from repro.experiments.runner import (
    run_experiment,
    session_progress,
    shared_wigle,
)
from repro.experiments.scenarios import ScenarioConfig, build_scenario
from repro.faults.chaos import InjectedWorkerCrash, mark_pool_worker, maybe_crash
from repro.faults.plan import FaultPlan
from repro.obs.artifacts import (
    LEGACY_TIMINGS_DIR_ENV,
    artifact_path,
    ensure_artifact_dir,
)
from repro.obs.profiler import merge_profiles
from repro.obs.registry import (
    METRICS_SCHEMA,
    MetricsRegistry,
    merge_snapshots,
)
from repro.obs.telemetry import maybe_heartbeat, set_current_spec
from repro.population.groups import GroupModel
from repro.population.pnl import PnlModel
from repro.sim.shards.engine import run_sharded
from repro.sim.shards.scenario import ShardScenario
from repro.util.rng import derive_seed

WORKERS_ENV = "REPRO_WORKERS"
TIMINGS_ENV = "REPRO_TIMINGS"
METRICS_ENV = "REPRO_METRICS"
TIMINGS_DIR_ENV = LEGACY_TIMINGS_DIR_ENV  # re-export for compatibility

RETRIES_ENV = "REPRO_RETRIES"
BACKOFF_ENV = "REPRO_RETRY_BACKOFF_S"
TIMEOUT_ENV = "REPRO_SPEC_TIMEOUT_S"
CHECKPOINT_ENV = "REPRO_CHECKPOINT"

DEFAULT_RETRIES = 2
"""Extra attempts a spec gets after its worker dies (attempts = 1 + N)."""

DEFAULT_BACKOFF_S = 0.5
"""Base of the exponential backoff between pool rebuilds."""

BACKOFF_CAP_S = 30.0
"""Ceiling on any single backoff sleep."""

CHECKPOINT_SCHEMA = "repro.checkpoint/v1"

_FALSEY = ("", "0", "false", "off", "no")
_TRUTHY = ("1", "true", "on", "yes")


@dataclass(frozen=True)
class RunSpec:
    """One independent deployment, described in picklable terms.

    Two routes exist.  The *profile* route (``venue`` set) mirrors
    :func:`~repro.experiments.runner.run_experiment` over a calibrated
    venue profile; the *scenario* route (``scenario`` set) runs an
    explicit :class:`ScenarioConfig`, which is what the sweep grid uses.
    Exactly one of the two must be provided.
    """

    attacker: str
    venue: Optional[str] = None
    seed: int = 0
    duration: float = 1800.0
    people_per_min: Optional[float] = None
    fidelity: str = "frame"
    rush: bool = False
    group_probs: Optional[Tuple[float, ...]] = None
    pnl_model: Optional[PnlModel] = None
    group_model: Optional[GroupModel] = None
    attacker_config: Optional[CityHunterConfig] = None
    use_heat: bool = True
    scenario: Optional[ScenarioConfig] = None
    run_extra: float = 30.0
    """Simulated seconds past ``duration`` so in-flight handshakes
    finish (matches the serial runner)."""

    city_seed: int = 42
    tag: str = ""
    """Free-form label echoed into results and the timings artefact."""

    faults: Optional[FaultPlan] = None
    """Deterministic fault plan for this run (None injects nothing)."""

    shard_scenario: Optional[ShardScenario] = None
    """Third route: a district-sharded city run
    (:mod:`repro.sim.shards`).  The shard count stays an execution
    parameter (``REPRO_SHARDS``), not a spec field, so one spec digest
    covers every shard count — which is what lets the golden suite pin
    shard-count invariance."""

    def __post_init__(self) -> None:
        if self.attacker not in ATTACKER_NAMES:
            raise ValueError(
                "unknown attacker %r (have: %s)"
                % (self.attacker, ", ".join(ATTACKER_NAMES))
            )
        routes = sum(
            route is not None
            for route in (self.venue, self.scenario, self.shard_scenario)
        )
        if routes != 1:
            raise ValueError(
                "exactly one of venue/scenario must be set"
                " (or shard_scenario for sharded city runs)"
            )


@dataclass(frozen=True)
class RunSummary:
    """The picklable outcome of one run.

    Workers cannot ship the full :class:`ExperimentResult` home (the
    session graph references the live simulation), so the breakdown
    analyses are computed worker-side and only plain dataclasses cross
    the process boundary.
    """

    spec: RunSpec
    summary: SessionSummary
    source: SourceBreakdown
    buffers: BufferBreakdown
    people_spawned: int
    duration: float
    wall_time: float
    metrics: Optional[dict] = None
    """This run's :meth:`MetricsRegistry.to_dict` snapshot (None only
    for summaries built before the observability layer existed)."""

    events: Tuple[dict, ...] = field(default=())
    """The run's retained structured events (capped ring buffer)."""

    cache_wall_time: float = 0.0
    """Wall seconds this process spent building (or fetching) the
    city/WiGLE caches before the run — kept out of ``wall_time`` so a
    cold-cache worker does not report an inflated run wall."""

    profile: Optional[dict] = None
    """Per-handler profiler snapshot (``repro.profile/v1``) when
    ``REPRO_PROFILE`` was on for the run, else None."""

    @property
    def failed(self) -> bool:
        """False: this slot holds a completed run (cf. FailedRun)."""
        return False

    @property
    def h(self) -> float:
        """Overall hit rate."""
        return self.summary.hit_rate

    @property
    def h_b(self) -> float:
        """Broadcast hit rate."""
        return self.summary.broadcast_hit_rate


@dataclass(frozen=True)
class FailedRun:
    """Placeholder filling the result slot of a spec that never finished.

    Carrying the spec, the failure kind (``worker-crash`` / ``timeout``
    / ``exception``) and the attempt count means a batch survives
    partial failure: callers filter on ``failed`` and still get every
    surviving :class:`RunSummary` bit-identical to a fault-free batch.
    """

    spec: RunSpec
    error: str
    kind: str
    attempts: int

    @property
    def failed(self) -> bool:
        """True: this slot's spec produced no RunSummary."""
        return True


RunResult = Union[RunSummary, FailedRun]


def derive_run_seeds(master_seed: int, count: int) -> List[int]:
    """Per-run seeds fanned out from one master seed.

    Uses the same SHA-256 derivation as the in-simulation stream
    registry (``derive_seed(master, "run:i")``), so the seeds are
    distinct, stable across platforms and Python versions, and
    independent of worker count or execution order.
    """
    return [derive_seed(master_seed, f"run:{i}") for i in range(count)]


def replicates(
    spec: RunSpec, count: int, master_seed: Optional[int] = None
) -> List[RunSpec]:
    """``count`` copies of ``spec`` with derived, distinct seeds.

    Cheap replicated runs are what put error bars on h_b; the master
    seed defaults to the spec's own seed.
    """
    master = spec.seed if master_seed is None else master_seed
    out = []
    for i, child_seed in enumerate(derive_run_seeds(master, count)):
        tag = spec.tag or spec.attacker
        if spec.scenario is not None:
            child = replace(
                spec,
                scenario=replace(spec.scenario, seed=child_seed),
                seed=child_seed,
                tag=f"{tag}:rep{i}",
            )
        else:
            child = replace(spec, seed=child_seed, tag=f"{tag}:rep{i}")
        out.append(child)
    return out


def resolve_workers(workers: Optional[int] = None) -> int:
    """Worker count: explicit argument, else ``REPRO_WORKERS``, else
    ``os.cpu_count()``."""
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if env:
            try:
                workers = int(env)
            except ValueError:
                raise ValueError(
                    "%s must be an integer, got %r" % (WORKERS_ENV, env)
                ) from None
        else:
            workers = os.cpu_count() or 1
    if workers < 1:
        raise ValueError("worker count must be >= 1, got %r" % workers)
    return workers


def _resolve_int_env(env: str, default: int, minimum: int) -> int:
    value = os.environ.get(env, "").strip()
    if not value:
        return default
    try:
        parsed = int(value)
    except ValueError:
        raise ValueError("%s must be an integer, got %r" % (env, value)) from None
    if parsed < minimum:
        raise ValueError("%s must be >= %d, got %r" % (env, minimum, parsed))
    return parsed


def _resolve_float_env(env: str, default: float) -> float:
    value = os.environ.get(env, "").strip()
    if not value:
        return default
    try:
        parsed = float(value)
    except ValueError:
        raise ValueError("%s must be a number, got %r" % (env, value)) from None
    if parsed < 0:
        raise ValueError("%s must be >= 0, got %r" % (env, parsed))
    return parsed


def resolve_retries(retries: Optional[int] = None) -> int:
    """Retry budget per spec on worker death (``REPRO_RETRIES``)."""
    if retries is not None:
        if retries < 0:
            raise ValueError("retries must be >= 0, got %r" % retries)
        return retries
    return _resolve_int_env(RETRIES_ENV, DEFAULT_RETRIES, 0)


def resolve_backoff(backoff: Optional[float] = None) -> float:
    """Backoff base seconds between retries (``REPRO_RETRY_BACKOFF_S``)."""
    if backoff is not None:
        if backoff < 0:
            raise ValueError("backoff must be >= 0, got %r" % backoff)
        return backoff
    return _resolve_float_env(BACKOFF_ENV, DEFAULT_BACKOFF_S)


def resolve_spec_timeout(timeout: Optional[float] = None) -> Optional[float]:
    """Per-spec wall timeout (``REPRO_SPEC_TIMEOUT_S``; 0/unset = off).

    Only enforced on pooled execution: the serial path cannot preempt a
    run in its own process.
    """
    if timeout is None:
        timeout = _resolve_float_env(TIMEOUT_ENV, 0.0)
    if timeout < 0:
        raise ValueError("spec timeout must be >= 0, got %r" % timeout)
    return timeout if timeout > 0 else None


def resolve_checkpoint_name(name: Optional[str] = None) -> Optional[str]:
    """Checkpoint artefact name: argument, else ``REPRO_CHECKPOINT``.

    The environment variable accepts ``0/false/off`` (disabled, the
    default), ``1/true/on`` (enabled under the default ``checkpoint``
    name) or any other string, which is used as the artefact name
    itself.
    """
    if name is not None:
        return name or None
    env = os.environ.get(CHECKPOINT_ENV, "").strip()
    if env.lower() in _FALSEY:
        return None
    if env.lower() in _TRUTHY:
        return "checkpoint"
    return env


def _backoff_sleep(round_index: int, base: float) -> None:
    if base > 0:
        time.sleep(min(BACKOFF_CAP_S, base * (2.0 ** round_index)))


# -- spec digests and checkpointing ---------------------------------------


def spec_digest(spec: RunSpec) -> str:
    """Stable content digest of one spec.

    Every field of a spec (and of its nested configs) is a frozen
    dataclass of plain values, so ``repr`` is a canonical, platform
    stable serialisation; SHA-256 over it keys the checkpoint.  Any
    change to any field — seed, venue, fault plan, attacker config —
    changes the digest and forces a re-run.
    """
    return hashlib.sha256(repr(spec).encode("utf-8")).hexdigest()


def _summary_to_doc(result: RunSummary) -> dict:
    """JSON-serialisable form of a RunSummary, minus its spec.

    The spec is represented by the checkpoint key (its digest), so
    restoration reattaches the caller's own spec object and the
    round-trip is exact: every summary field survives JSON untouched
    (ints stay ints, floats round-trip by repr).
    """
    return {
        "summary": dataclasses.asdict(result.summary),
        "source": dataclasses.asdict(result.source),
        "buffers": dataclasses.asdict(result.buffers),
        "people_spawned": result.people_spawned,
        "duration": result.duration,
        "wall_time": result.wall_time,
        "cache_wall_time": result.cache_wall_time,
        "metrics": result.metrics,
        "events": list(result.events),
        "profile": result.profile,
    }


def _summary_from_doc(spec: RunSpec, doc: dict) -> RunSummary:
    """Inverse of :meth:`_summary_to_doc` for a known spec."""
    return RunSummary(
        spec=spec,
        summary=SessionSummary(**doc["summary"]),
        source=SourceBreakdown(**doc["source"]),
        buffers=BufferBreakdown(**doc["buffers"]),
        people_spawned=doc["people_spawned"],
        duration=doc["duration"],
        wall_time=doc["wall_time"],
        metrics=doc.get("metrics"),
        events=tuple(doc.get("events", ())),
        cache_wall_time=doc.get("cache_wall_time", 0.0),
        profile=doc.get("profile"),
    )


class RunCheckpoint:
    """Incremental JSONL checkpoint of completed runs, keyed by digest.

    One line per completed run, appended the moment the run finishes —
    so a batch killed mid-flight (power, OOM, ctrl-C) resumes from its
    last completed spec.  Loading tolerates a truncated final line
    (the signature of dying mid-append) by skipping it.
    """

    def __init__(self, path: pathlib.Path):
        self.path = pathlib.Path(path)
        self._done: Dict[str, dict] = {}
        self.restored = 0
        """Runs served from this checkpoint by the current invocation."""

        if self.path.exists():
            for line in self.path.read_text().splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # truncated mid-append; the spec just re-runs
                if record.get("schema") != CHECKPOINT_SCHEMA:
                    continue
                self._done[record["digest"]] = record["result"]

    @classmethod
    def open(cls, name: str) -> "RunCheckpoint":
        """The checkpoint artefact ``<name>.jsonl`` in the artifact dir."""
        return cls(artifact_path(name, suffix=".jsonl"))

    def __len__(self) -> int:
        return len(self._done)

    def get(self, digest: str, spec: RunSpec) -> Optional[RunSummary]:
        """Restore the completed run for ``digest`` (None if absent)."""
        doc = self._done.get(digest)
        if doc is None:
            return None
        self.restored += 1
        return _summary_from_doc(spec, doc)

    def record(self, digest: str, result: RunSummary) -> None:
        """Append one completed run (idempotent per digest)."""
        if digest in self._done:
            return
        doc = _summary_to_doc(result)
        self._done[digest] = doc
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(
            {
                "schema": CHECKPOINT_SCHEMA,
                "digest": digest,
                "tag": result.spec.tag,
                "result": doc,
            },
            sort_keys=True,
        )
        with self.path.open("a") as f:
            f.write(line + "\n")


# -- single-run execution --------------------------------------------------


def _execute_shard_spec(spec: RunSpec) -> RunSummary:
    """The sharded-city route: no venue city, no frame-level medium —
    the spec's :class:`~repro.sim.shards.scenario.ShardScenario` runs
    through :func:`~repro.sim.shards.engine.run_sharded` at whatever
    shard count / mode ``REPRO_SHARDS`` / ``REPRO_SHARD_MODE`` resolve
    to, and folds back into the same RunSummary shape."""
    scenario = spec.shard_scenario
    set_current_spec(
        spec.tag or "%s/%s:%d" % (spec.attacker, _spec_venue(spec), spec.seed)
    )
    start = time.perf_counter()
    result = run_sharded(scenario, collect_states=False, faults=spec.faults)
    wall = time.perf_counter() - start
    set_current_spec(None)
    registry = MetricsRegistry.from_dict(result.metrics)
    registry.inc("run.count")
    registry.inc("run.people_spawned", scenario.stations)
    registry.inc("run.sim_duration_s", scenario.duration)
    registry.timer_add("run.wall", wall)
    return RunSummary(
        spec=spec,
        summary=result.session_summary(),
        source=result.source_breakdown(),
        buffers=result.buffer_breakdown(),
        people_spawned=scenario.stations,
        duration=scenario.duration,
        wall_time=wall,
        metrics=registry.to_dict(),
        events=(),
    )


def execute_spec(spec: RunSpec) -> RunSummary:
    """Run one spec in the current process and summarise it.

    This is the worker entry point, but it is equally the serial path:
    ``run_specs`` with one worker calls it inline, which is what makes
    the ``REPRO_WORKERS=1`` fallback *exact* rather than approximate.
    """
    if spec.shard_scenario is not None:
        return _execute_shard_spec(spec)
    cache_start = time.perf_counter()
    city = default_city(spec.city_seed)
    wigle = shared_wigle(spec.city_seed)
    cache_wall = time.perf_counter() - cache_start
    factory = make_attacker(
        spec.attacker, city, wigle, config=spec.attacker_config,
        use_heat=spec.use_heat, faults=spec.faults,
    )
    set_current_spec(
        spec.tag or "%s/%s:%d" % (spec.attacker, _spec_venue(spec), spec.seed)
    )
    start = time.perf_counter()
    if spec.scenario is not None:
        scenario = spec.scenario
        if spec.faults is not None and scenario.faults is None:
            scenario = replace(scenario, faults=spec.faults)
        build = build_scenario(city, wigle, scenario, factory)
        with maybe_heartbeat(
            None, scenario.duration, session_progress(build)
        ):
            build.sim.run(scenario.duration + spec.run_extra)
        sim = build.sim
        session = build.attacker.session
        summary = summarize(session)
        people = build.arrivals.people_spawned
        duration = scenario.duration
    else:
        result = run_experiment(
            city,
            wigle,
            factory,
            venue_profile(spec.venue),
            spec.duration,
            people_per_min=spec.people_per_min,
            seed=spec.seed,
            fidelity=spec.fidelity,
            rush=spec.rush,
            group_probs=spec.group_probs,
            pnl_model=spec.pnl_model,
            group_model=spec.group_model,
            faults=spec.faults,
        )
        sim = result.attacker.sim
        session = result.session
        summary = result.summary
        people = result.people_spawned
        duration = result.duration
    wall = time.perf_counter() - start
    set_current_spec(None)
    sim.metrics.inc("run.count")
    sim.metrics.inc("run.people_spawned", people)
    sim.metrics.inc("run.sim_duration_s", duration)
    sim.metrics.timer_add("run.wall", wall)
    sim.metrics.timer_add("run.cache_build", cache_wall)
    source, buffers = breakdown_hits(session)
    return RunSummary(
        spec=spec,
        summary=summary,
        source=source,
        buffers=buffers,
        people_spawned=people,
        duration=duration,
        wall_time=wall,
        metrics=sim.metrics.to_dict(),
        events=tuple(sim.events),
        cache_wall_time=cache_wall,
        profile=(
            sim.profiler.to_dict() if sim.profiler is not None else None
        ),
    )


def _pool_entry(task: Tuple[RunSpec, int]) -> RunSummary:
    """Worker-side wrapper: chaos hook first, then the real run."""
    spec, attempt = task
    maybe_crash(spec.faults, attempt)
    return execute_spec(spec)


# -- batch execution -------------------------------------------------------


def run_specs(
    specs: Sequence[RunSpec],
    workers: Optional[int] = None,
    timings_name: str = "timings",
    metrics_name: str = "metrics",
    checkpoint_name: Optional[str] = None,
    retries: Optional[int] = None,
    spec_timeout: Optional[float] = None,
    retry_backoff: Optional[float] = None,
) -> List[RunResult]:
    """Execute every spec and return results in spec order.

    ``workers`` falls back to ``REPRO_WORKERS`` / ``os.cpu_count()``;
    one worker (or one spec) runs inline with no pool.  Results are
    bit-identical across worker counts because each run derives all of
    its randomness from its own spec and touches only immutable shared
    state.  Timings and metrics artefacts are written after every
    non-empty invocation (``REPRO_TIMINGS=0`` / ``REPRO_METRICS=0``
    disable).

    Worker death retries the unfinished specs (same spec, same derived
    seed — bit-identical on success) up to ``retries`` extra attempts
    with capped exponential backoff; a spec that stays dead, raises, or
    exceeds ``spec_timeout`` yields a :class:`FailedRun` placeholder in
    its slot instead of aborting the batch.  With a checkpoint enabled
    (``checkpoint_name`` / ``REPRO_CHECKPOINT``), completed runs are
    restored on re-invocation instead of re-executed.
    """
    specs = list(specs)
    if not specs:
        return []  # nothing ran: leave no empty timings/metrics artefacts
    requested = resolve_workers(workers)
    retries = resolve_retries(retries)
    backoff = resolve_backoff(retry_backoff)
    timeout = resolve_spec_timeout(spec_timeout)
    ckpt_name = resolve_checkpoint_name(checkpoint_name)

    results: List[Optional[RunResult]] = [None] * len(specs)
    checkpoint: Optional[RunCheckpoint] = None
    if ckpt_name:
        checkpoint = RunCheckpoint.open(ckpt_name)
        for i, spec in enumerate(specs):
            results[i] = checkpoint.get(spec_digest(spec), spec)

    todo = [i for i, r in enumerate(results) if r is None]
    used = max(1, min(requested, len(todo))) if todo else 1

    cache_start = time.perf_counter()
    if todo:
        _prewarm([specs[i] for i in todo])
    cache_wall = time.perf_counter() - cache_start

    def _complete(index: int, result: RunResult) -> None:
        results[index] = result
        if checkpoint is not None and isinstance(result, RunSummary):
            checkpoint.record(spec_digest(result.spec), result)

    start = time.perf_counter()
    if todo:
        if used == 1:
            _run_serial(specs, todo, retries, backoff, _complete)
        else:
            _run_pooled(
                specs, todo, used, retries, backoff, timeout, _complete
            )
    total_wall = time.perf_counter() - start

    final: List[RunResult] = [r for r in results if r is not None]
    assert len(final) == len(specs)
    batch_timings = timings_doc(
        final, workers=used, total_wall=total_wall, cache_build=cache_wall
    )
    write_timings(final, workers=used, total_wall=total_wall,
                  name=timings_name, doc=batch_timings)
    write_metrics(
        final, workers=used, name=metrics_name, timings=batch_timings
    )
    write_batch_profile(final)
    return final


def _run_serial(
    specs: Sequence[RunSpec],
    todo: Sequence[int],
    retries: int,
    backoff: float,
    complete,
) -> None:
    """Inline execution with the same retry/placeholder contract.

    Injected worker crashes surface as :class:`InjectedWorkerCrash`
    here (hard-exiting would take the caller down too); any other
    exception is deterministic for a fixed spec, so it becomes a
    :class:`FailedRun` immediately rather than being retried.
    """
    for i in todo:
        spec = specs[i]
        attempt = 0
        while True:
            try:
                maybe_crash(spec.faults, attempt)
                complete(i, execute_spec(spec))
                break
            except InjectedWorkerCrash as exc:
                attempt += 1
                if attempt > retries:
                    complete(
                        i,
                        FailedRun(spec, str(exc), "worker-crash", attempt),
                    )
                    break
                _backoff_sleep(attempt - 1, backoff)
            except Exception as exc:  # noqa: BLE001 - placeholder contract
                complete(
                    i,
                    FailedRun(
                        spec,
                        "%s: %s" % (type(exc).__name__, exc),
                        "exception",
                        attempt + 1,
                    ),
                )
                break


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Hard-stop a pool whose worker blew its per-spec timeout.

    ``ProcessPoolExecutor`` has no supported way to abandon a running
    task, so the one honest option is to terminate the worker processes
    (the executor then reports the pool broken and the unfinished,
    innocent specs are resubmitted to a fresh pool).
    """
    processes = getattr(pool, "_processes", None) or {}
    for proc in list(processes.values()):
        proc.terminate()


def _run_pooled(
    specs: Sequence[RunSpec],
    todo: Sequence[int],
    used: int,
    retries: int,
    backoff: float,
    timeout: Optional[float],
    complete,
) -> None:
    """Pooled execution with retry-on-worker-death and timeouts.

    Results are collected in submission order, so ``complete`` fires in
    spec order for metrics-merge determinism.  The happy path is one
    full-width pool round; ``BrokenProcessPool`` fails *every* pending
    future (the executor cannot say whose worker died), so a broken
    round charges no one — the unfinished specs are re-run in
    *isolation rounds* (one spec per fresh pool, after capped
    exponential backoff) where a crash is unambiguously attributable
    and only the actual culprit burns its retry budget.  A spec that
    exceeds the per-spec ``timeout`` becomes a FailedRun immediately
    and its pool is terminated, which guarantees forward progress.
    """
    pending = list(todo)
    attempts = {i: 0 for i in todo}
    isolate = False
    round_index = 0
    while pending:
        batch, pending = pending, []
        if not isolate:
            broke = _pool_round(
                specs, batch, used, attempts, retries, timeout,
                complete, pending, charge=False,
            )
            if broke:
                isolate = True
                _backoff_sleep(round_index, backoff)
                round_index += 1
        else:
            for i in batch:
                broke = _pool_round(
                    specs, [i], 1, attempts, retries, timeout,
                    complete, pending, charge=True,
                )
                if broke:
                    _backoff_sleep(round_index, backoff)
                    round_index += 1


def _pool_round(
    specs: Sequence[RunSpec],
    batch: Sequence[int],
    width: int,
    attempts: Dict[int, int],
    retries: int,
    timeout: Optional[float],
    complete,
    requeue: List[int],
    charge: bool,
) -> bool:
    """One pool lifetime over ``batch``; True when the pool broke.

    ``charge`` marks whether a ``BrokenProcessPool`` is attributable to
    the spec observing it (single-spec isolation rounds) or ambient
    (full-width rounds, where the culprit's death fails every pending
    future); unattributable breaks requeue the spec without burning its
    retry budget.
    """
    pool = ProcessPoolExecutor(
        max_workers=min(width, len(batch)), initializer=mark_pool_worker
    )
    broke = False
    timed_out = False
    try:
        futures = {
            i: pool.submit(_pool_entry, (specs[i], attempts[i]))
            for i in batch
        }
        for i in batch:
            spec = specs[i]
            try:
                summary = futures[i].result(timeout=timeout)
            except FuturesTimeoutError:
                complete(
                    i,
                    FailedRun(
                        spec,
                        "exceeded per-spec timeout of %.1fs" % timeout,
                        "timeout",
                        attempts[i] + 1,
                    ),
                )
                timed_out = True
                _terminate_pool(pool)
            except BrokenProcessPool:
                broke = True
                if timed_out or not charge:
                    requeue.append(i)  # victim of someone else's death
                    continue
                attempts[i] += 1
                if attempts[i] > retries:
                    complete(
                        i,
                        FailedRun(
                            spec,
                            "worker died (BrokenProcessPool) on every "
                            "attempt",
                            "worker-crash",
                            attempts[i],
                        ),
                    )
                else:
                    requeue.append(i)
            except Exception as exc:  # noqa: BLE001 - placeholder contract
                complete(
                    i,
                    FailedRun(
                        spec,
                        "%s: %s" % (type(exc).__name__, exc),
                        "exception",
                        attempts[i] + 1,
                    ),
                )
            else:
                complete(i, summary)
    finally:
        # After a termination the workers are already gone; after a
        # clean round every future is done — never block on exit.
        pool.shutdown(wait=not (broke or timed_out), cancel_futures=True)
    return broke or timed_out


def _prewarm(specs: Sequence[RunSpec]) -> None:
    """Build each distinct city/registry once in the parent.

    Under the default ``fork`` start method workers then inherit the
    built caches instead of re-generating the city per process; under
    ``spawn`` this is merely a cheap no-op for the children.  Timed by
    the caller and reported as ``cache_build_s`` so batch wall time
    measures the runs, not the cache construction.
    """
    for city_seed in sorted(
        {spec.city_seed for spec in specs if spec.shard_scenario is None}
    ):
        shared_wigle(city_seed)


def timings_path(name: str = "timings") -> pathlib.Path:
    """Where the timings artefact goes (see
    :func:`repro.obs.artifacts.artifact_dir` for the resolution rule)."""
    return artifact_path(name)


def metrics_path(name: str = "metrics") -> pathlib.Path:
    """Where the metrics artefact goes (same directory as timings)."""
    return artifact_path(name)


def merged_metrics(results: Sequence[RunResult]) -> dict:
    """Fold every completed run's registry snapshot, in result order.

    Result order is spec order regardless of worker count, so the merge
    (float counter sums included) is worker-count invariant.  FailedRun
    placeholders contribute nothing.
    """
    return merge_snapshots(
        r.metrics
        for r in results
        if isinstance(r, RunSummary) and r.metrics is not None
    )


def _spec_venue(spec: RunSpec) -> Optional[str]:
    if spec.shard_scenario is not None:
        return "shard-city:%dx%d" % (
            spec.shard_scenario.stations,
            spec.shard_scenario.sensors,
        )
    return (
        spec.venue if spec.venue is not None else spec.scenario.venue_name
    )


def metrics_doc(
    results: Sequence[RunResult],
    workers: int,
    timings: Optional[dict] = None,
) -> dict:
    """Assemble the batch metrics artefact as a plain dict.

    The document carries the merged registry plus one entry per run
    (tag, seed, snapshot, retained events) so per-run timelines — the
    PB/FB series in particular — survive next to the aggregate.  Failed
    runs keep their slot with an empty snapshot and an ``error`` field.
    When ``timings`` is given (the :func:`timings_doc` of the same
    batch) it is embedded under a ``timings`` key, so one artefact
    carries the full run record; ``timings.json`` is still written
    separately for backward compatibility.  Everything except
    ``workers``, the ``timers`` sections and ``timings`` is a pure
    function of the specs — the property the golden-master tests pin
    (see :mod:`repro.obs.golden`).
    """
    runs = []
    for r in results:
        entry = {
            "tag": r.spec.tag,
            "attacker": r.spec.attacker,
            "venue": _spec_venue(r.spec),
            "seed": r.spec.seed,
        }
        if isinstance(r, RunSummary):
            entry["metrics"] = r.metrics if r.metrics is not None else {}
            entry["events"] = list(r.events)
        else:
            entry["metrics"] = MetricsRegistry().to_dict()
            entry["events"] = []
            entry["failed"] = True
            entry["error"] = r.error
            entry["failure_kind"] = r.kind
            entry["attempts"] = r.attempts
        runs.append(entry)
    doc = {
        "schema": METRICS_SCHEMA,
        "workers": workers,
        "run_count": len(results),
        "merged": merged_metrics(results),
        "runs": runs,
    }
    if timings is not None:
        doc["timings"] = timings
    return doc


def write_metrics(
    results: Sequence[RunResult],
    workers: int,
    name: str = "metrics",
    timings: Optional[dict] = None,
) -> Optional[pathlib.Path]:
    """Persist :func:`metrics_doc` as an artefact; returns its path.

    Set ``REPRO_METRICS=0`` to disable.
    """
    if os.environ.get(METRICS_ENV, "1").strip() in ("0", "false", "off"):
        return None
    doc = metrics_doc(results, workers, timings=timings)
    ensure_artifact_dir()
    path = metrics_path(name)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    # Scrape-able twin of the JSON artefact: same merged counters and
    # gauges in Prometheus text exposition format, for node_exporter's
    # textfile collector or a CI health check (``repro obs prom``
    # regenerates it from the JSON on demand).
    from repro.obs.prom import write_prom

    write_prom(doc, path.with_suffix(".prom"))
    return path


def timings_doc(
    results: Sequence[RunResult],
    workers: int,
    total_wall: float,
    cache_build: float = 0.0,
) -> dict:
    """Assemble the batch timing document as a plain dict.

    The serial estimate is the sum of per-run wall times, so the
    recorded speedup is against running the same batch with one worker
    in the same session.  Cache construction (city/WiGLE prewarm) is
    reported separately as ``cache_build_s`` rather than skewing the
    batch wall.
    """
    completed = [r for r in results if isinstance(r, RunSummary)]
    serial_estimate = sum(r.wall_time for r in completed)
    runs = []
    for r in results:
        entry = {
            "tag": r.spec.tag,
            "attacker": r.spec.attacker,
            "venue": _spec_venue(r.spec),
            "seed": r.spec.seed,
        }
        if isinstance(r, RunSummary):
            entry["sim_duration_s"] = r.duration
            entry["wall_time_s"] = round(r.wall_time, 4)
        else:
            entry["failed"] = True
            entry["error"] = r.error
            entry["failure_kind"] = r.kind
            entry["attempts"] = r.attempts
        runs.append(entry)
    return {
        "workers": workers,
        "medium_index": resolve_medium_index(),
        "run_count": len(results),
        "failed_count": len(results) - len(completed),
        "cache_build_s": round(cache_build, 4),
        "total_wall_time_s": round(total_wall, 4),
        "serial_estimate_s": round(serial_estimate, 4),
        "speedup_vs_serial_estimate": (
            round(serial_estimate / total_wall, 3) if total_wall > 0 else None
        ),
        "runs": runs,
    }


def write_timings(
    results: Sequence[RunResult],
    workers: int,
    total_wall: float,
    name: str = "timings",
    cache_build: float = 0.0,
    doc: Optional[dict] = None,
) -> Optional[pathlib.Path]:
    """Persist the batch timing artefact; returns its path.

    ``doc`` short-circuits re-assembly when the caller already built the
    document (to embed it into ``metrics.json``).  Set
    ``REPRO_TIMINGS=0`` to disable.
    """
    if os.environ.get(TIMINGS_ENV, "1").strip() in ("0", "false", "off"):
        return None
    if doc is None:
        doc = timings_doc(
            results, workers, total_wall, cache_build=cache_build
        )
    path = timings_path(name)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return path


def write_batch_profile(
    results: Sequence[RunResult],
    name: str = "profile",
) -> Optional[pathlib.Path]:
    """Persist the merged per-handler profile of a batch, when any run
    carried one (``REPRO_PROFILE``); returns its path or None."""
    docs = [
        r.profile
        for r in results
        if isinstance(r, RunSummary) and r.profile is not None
    ]
    if not docs:
        return None
    ensure_artifact_dir()
    path = artifact_path(name)
    path.write_text(
        json.dumps(merge_profiles(docs), indent=2, sort_keys=True) + "\n"
    )
    return path
