"""Regeneration of the paper's figures (as printable series).

Absolute numbers come from the synthetic substrate; what must match the
paper is the *shape*: flat MANA efficiency despite database growth
(Fig. 1), dwell-dependent SSID try-counts (Fig. 2), hot-area heat map
(Fig. 4), venue- and time-dependent hit rates with rush-hour peaks
(Fig. 5), and WiGLE/popularity-dominated hit provenance (Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.breakdown import BufferBreakdown, SourceBreakdown
from repro.analysis.metrics import SessionSummary
from repro.analysis.timeseries import (
    WindowStat,
    cumulative_broadcast_connections,
    db_size_at_steps,
    windowed_broadcast_hit_rate,
)
from repro.experiments.attackers import make_cityhunter_basic, make_mana
from repro.experiments.calibration import all_profiles, default_city, venue_profile
from repro.experiments.parallel import RunSpec, RunSummary, run_specs
from repro.experiments.runner import run_experiment, shared_wigle
from repro.util.histogram import Histogram
from repro.util.tables import render_ratio, render_table
from repro.util.units import MINUTE

DEFAULT_SEED = 7


# --------------------------------------------------------------------------
# Fig. 1 — MANA database growth vs real-time efficiency
# --------------------------------------------------------------------------


@dataclass
class Fig1Result:
    """Series behind Fig. 1(a) and 1(b)."""

    db_size: List[Tuple[float, int]]
    cumulative_connected: List[Tuple[float, int]]
    windows: List[WindowStat]

    def render(self) -> str:
        """Minute-by-minute text rendering of both panels."""
        rows = []
        for (t, size), (_, conn) in zip(self.db_size, self.cumulative_connected):
            rows.append([f"{t / MINUTE:.0f} min", size, conn])
        panel_a = render_table(
            ["time", "DB size", "broadcast clients connected"],
            rows,
            title="Fig 1(a): MANA database size vs clients connected",
        )
        rows_b = [
            [f"{w.start / MINUTE:.0f}-{w.end / MINUTE:.0f} min",
             w.broadcast_clients, w.connected, f"{100 * w.rate:.1f}%"]
            for w in self.windows
        ]
        panel_b = render_table(
            ["window", "broadcast clients", "connected", "h_b^r"],
            rows_b,
            title="Fig 1(b): real-time broadcast hit rate h_b^r (2-min windows)",
        )
        return panel_a + "\n\n" + panel_b


def fig1(seed: int = DEFAULT_SEED, duration: float = 1800.0) -> Fig1Result:
    """MANA in the canteen, 30 minutes, 2-minute windows."""
    city = default_city()
    wigle = shared_wigle()
    result = run_experiment(
        city, wigle, make_mana(), venue_profile("canteen"), duration, seed=seed
    )
    return Fig1Result(
        db_size=db_size_at_steps(result.session, duration, 2 * MINUTE),
        cumulative_connected=cumulative_broadcast_connections(
            result.session, duration, 2 * MINUTE
        ),
        windows=windowed_broadcast_hit_rate(result.session, duration, 2 * MINUTE),
    )


# --------------------------------------------------------------------------
# Fig. 2 — SSIDs sent per client
# --------------------------------------------------------------------------


@dataclass
class Fig2Result:
    """Per-client SSID counts behind Fig. 2(a) and 2(b)."""

    canteen_hit_positions: List[int]
    passage_sent_histogram: Histogram

    def render(self) -> str:
        pos = self.canteen_hit_positions
        mean = sum(pos) / len(pos) if pos else 0.0
        lines = [
            "Fig 2(a): SSIDs sent to each connected canteen client",
            f"  clients connected: {len(pos)}",
            f"  min={min(pos) if pos else 0} mean={mean:.0f} "
            f"max={max(pos) if pos else 0}",
            "",
            "Fig 2(b): histogram of SSIDs tested per broadcast client "
            "(subway passage)",
            self.passage_sent_histogram.render(),
        ]
        return "\n".join(lines)


def fig2(seed: int = DEFAULT_SEED, duration: float = 1800.0) -> Fig2Result:
    """Preliminary City-Hunter: canteen hit positions, passage histogram."""
    city = default_city()
    wigle = shared_wigle()
    canteen = run_experiment(
        city,
        wigle,
        make_cityhunter_basic(wigle),
        venue_profile("canteen"),
        duration,
        seed=seed,
    )
    passage = run_experiment(
        city,
        wigle,
        make_cityhunter_basic(wigle),
        venue_profile("passage"),
        duration,
        seed=seed,
    )
    positions = [
        rec.hit_position
        for rec in canteen.session.broadcast_clients()
        if rec.connected and rec.hit_position
    ]
    hist = Histogram(width=40)
    hist.extend(
        rec.ssids_sent
        for rec in passage.session.broadcast_clients()
        if rec.ssids_sent > 0
    )
    return Fig2Result(positions, hist)


# --------------------------------------------------------------------------
# Fig. 4 — heat map
# --------------------------------------------------------------------------


@dataclass
class Fig4Result:
    """The rendered heat map plus named hot areas with local contrast.

    The paper's Fig. 4 point is that crowded venues glow *against their
    surroundings* (the airport is the red spot of Lantau Island), so
    each venue is reported with the ratio of its heat to the background
    2 km away.
    """

    ascii_map: str
    hottest_venues: List[Tuple[str, int, float]]

    def render(self) -> str:
        lines = ["Fig 4: photo heat map of the synthetic city", self.ascii_map, ""]
        lines.append("hot venue areas (cell heat, contrast vs 2 km away):")
        for name, heat, contrast in self.hottest_venues:
            c = "inf" if contrast == float("inf") else f"{contrast:.0f}x"
            lines.append(f"  {name}: {heat} ({c})")
        return "\n".join(lines)


def fig4() -> Fig4Result:
    """Render the heat map and measure each hot venue's local contrast."""
    city = default_city()
    peaks: List[Tuple[str, int, float]] = []
    for venue in city.venues:
        if venue.crowd_level < 20:
            continue
        center = venue.region.center
        heat = city.heatmap.heat_at(center)
        background = max(
            1,
            city.heatmap.heat_at(center.translated(2000.0, 0.0)),
        )
        peaks.append((venue.name, heat, heat / background))
    peaks.sort(key=lambda kv: -kv[1])
    return Fig4Result(city.heatmap.render(), peaks)


# --------------------------------------------------------------------------
# Fig. 5 / Fig. 6 — hourly deployments in the four venues
# --------------------------------------------------------------------------


@dataclass
class SlotResult:
    """One 1-hour test at one venue."""

    slot: int
    label: str
    rate_people_per_min: float
    rush: bool
    summary: SessionSummary
    source: SourceBreakdown
    buffers: BufferBreakdown

    @property
    def h(self) -> float:
        return self.summary.hit_rate

    @property
    def h_b(self) -> float:
        return self.summary.broadcast_hit_rate


@dataclass
class Fig5Result:
    """All 12 hourly tests of one venue."""

    venue_key: str
    slots: List[SlotResult]

    def average_h_b(self) -> float:
        """Venue-average broadcast hit rate across the slots."""
        if not self.slots:
            return 0.0
        return sum(s.h_b for s in self.slots) / len(self.slots)

    def render(self) -> str:
        rows = []
        for s in self.slots:
            sm = s.summary
            rows.append(
                [
                    s.label + (" *" if s.rush else ""),
                    sm.total_clients,
                    f"{sm.connected_broadcast}/{sm.broadcast_clients}",
                    f"{sm.connected_direct}/{sm.direct_clients}",
                    f"{100 * s.h:.1f}%",
                    f"{100 * s.h_b:.1f}%",
                ]
            )
        table = render_table(
            ["slot", "clients", "bcast conn", "direct conn", "h", "h_b"],
            rows,
            title=f"Fig 5: City-Hunter at the {self.venue_key} (hourly tests,"
            " * = rush slot)",
        )
        return table + f"\n  average h_b = {100 * self.average_h_b():.1f}%"

    def render_breakdown(self) -> str:
        """Fig. 6 view over the same runs."""
        rows = []
        for s in self.slots:
            rows.append(
                [
                    s.label,
                    render_ratio(s.source.from_wigle, s.source.from_direct),
                    render_ratio(s.buffers.from_popularity, s.buffers.from_freshness),
                ]
            )
        return render_table(
            ["slot", "WiGLE/direct", "PB/FB"],
            rows,
            title=f"Fig 6: hit-SSID breakdown at the {self.venue_key}",
        )


def _venue_slot_specs(
    venue_key: str,
    seed: int,
    fidelity: str,
    slot_duration: float,
    slots: Optional[Sequence[int]],
) -> List[RunSpec]:
    """The hourly-slot run specs for one venue, in slot order."""
    profile = venue_profile(venue_key)
    slot_ids = list(slots) if slots is not None else list(range(12))
    return [
        RunSpec(
            attacker="cityhunter",
            venue=venue_key,
            seed=seed + 1000 * slot,
            duration=slot_duration,
            people_per_min=profile.hourly_people_per_min.rate_for_slot(slot),
            fidelity=fidelity,
            rush=slot in profile.rush_slots,
            tag=f"fig5:{venue_key}:{slot}",
        )
        for slot in slot_ids
    ]


def _venue_result(
    venue_key: str,
    slot_ids: Sequence[int],
    outcomes: Sequence[RunSummary],
) -> Fig5Result:
    labels = venue_profile(venue_key).hourly_people_per_min.slot_labels
    out: List[SlotResult] = []
    for slot, outcome in zip(slot_ids, outcomes):
        out.append(
            SlotResult(
                slot=slot,
                label=labels[slot],
                rate_people_per_min=outcome.spec.people_per_min,
                rush=outcome.spec.rush,
                summary=outcome.summary,
                source=outcome.source,
                buffers=outcome.buffers,
            )
        )
    return Fig5Result(venue_key, out)


def fig5_venue(
    venue_key: str,
    seed: int = DEFAULT_SEED,
    fidelity: str = "burst",
    slot_duration: float = 3600.0,
    slots: Optional[Sequence[int]] = None,
    workers: Optional[int] = None,
) -> Fig5Result:
    """Run the 12 hourly tests (8am-8pm) for one venue.

    The attacker database is re-initialised for every slot, as in the
    paper.  ``slots`` restricts to a subset for quick runs.  Slots are
    independent deployments, so they fan out over the parallel executor
    (``workers``/``REPRO_WORKERS``); results are identical at any
    worker count.
    """
    slot_ids = list(slots) if slots is not None else list(range(12))
    specs = _venue_slot_specs(venue_key, seed, fidelity, slot_duration, slots)
    outcomes = run_specs(specs, workers=workers)
    return _venue_result(venue_key, slot_ids, outcomes)


def fig5_all(
    seed: int = DEFAULT_SEED,
    fidelity: str = "burst",
    slot_duration: float = 3600.0,
    slots: Optional[Sequence[int]] = None,
    workers: Optional[int] = None,
) -> Dict[str, Fig5Result]:
    """Fig. 5 for all four venues, keyed by venue key.

    All venue/slot combinations (48 runs for the full grid) are
    submitted as one batch so the executor can keep every worker busy
    across venue boundaries.
    """
    slot_ids = list(slots) if slots is not None else list(range(12))
    keys = list(all_profiles())
    specs: List[RunSpec] = []
    for key in keys:
        specs.extend(
            _venue_slot_specs(key, seed, fidelity, slot_duration, slots)
        )
    outcomes = run_specs(specs, workers=workers)
    results: Dict[str, Fig5Result] = {}
    per_venue = len(slot_ids)
    for i, key in enumerate(keys):
        chunk = outcomes[i * per_venue:(i + 1) * per_venue]
        results[key] = _venue_result(key, slot_ids, chunk)
    return results
