"""Regeneration of the paper's tables.

Each function runs the corresponding deployment on the synthetic city
and returns a :class:`TableResult` whose ``render()`` prints the same
rows the paper reports.  Seeds are fixed so the benchmark output is
stable run-to-run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.analysis.breakdown import breakdown_hits
from repro.analysis.metrics import SessionSummary
from repro.experiments.attackers import (
    make_cityhunter,
    make_cityhunter_basic,
    make_karma,
    make_mana,
)
from repro.experiments.calibration import default_city, venue_profile
from repro.experiments.runner import ExperimentResult, run_experiment, shared_wigle
from repro.util.tables import render_table
from repro.wigle.queries import top_ssids_by_count, top_ssids_by_heat

TABLE_HEADERS = [
    "Attack",
    "Total probes",
    "Direct/Broadcast",
    "Clients connected",
    "h",
    "h_b",
]

DEFAULT_SEED = 7
DEFAULT_DURATION = 1800.0


@dataclass
class TableResult:
    """One regenerated table plus the runs behind it."""

    title: str
    headers: Sequence[str]
    rows: List[list]
    runs: List[ExperimentResult] = field(default_factory=list)

    def render(self) -> str:
        """ASCII rendering in the paper's layout."""
        return render_table(self.headers, self.rows, title=self.title)

    def summaries(self) -> List[SessionSummary]:
        """The per-run summaries, in row order."""
        return [r.summary for r in self.runs]


def table1(seed: int = DEFAULT_SEED, duration: float = DEFAULT_DURATION) -> TableResult:
    """Table I: KARMA vs MANA in the canteen (30-minute deployments)."""
    city = default_city()
    wigle = shared_wigle()
    profile = venue_profile("canteen")
    rows = []
    runs = []
    for label, factory in [("KARMA", make_karma()), ("MANA", make_mana())]:
        result = run_experiment(city, wigle, factory, profile, duration, seed=seed)
        rows.append(result.summary.as_table_row(label))
        runs.append(result)
    return TableResult(
        "Table I: Comparing the results of KARMA and MANA", TABLE_HEADERS, rows, runs
    )


def table2(seed: int = DEFAULT_SEED, duration: float = DEFAULT_DURATION) -> TableResult:
    """Table II: MANA vs preliminary City-Hunter in the canteen.

    Also reports the share of broadcast hits sourced from WiGLE, which
    the paper quotes as ~74 %.
    """
    city = default_city()
    wigle = shared_wigle()
    profile = venue_profile("canteen")
    rows = []
    runs = []
    for label, factory in [
        ("MANA", make_mana()),
        ("City-Hunter", make_cityhunter_basic(wigle)),
    ]:
        result = run_experiment(city, wigle, factory, profile, duration, seed=seed)
        rows.append(result.summary.as_table_row(label))
        runs.append(result)
    table = TableResult(
        "Table II: MANA vs City-Hunter with the two improvements",
        TABLE_HEADERS,
        rows,
        runs,
    )
    return table


def wigle_share_of_broadcast_hits(result: ExperimentResult) -> float:
    """Fraction of broadcast hits whose SSID came from WiGLE."""
    source, _buffers = breakdown_hits(result.session)
    total = source.from_wigle + source.from_direct + source.from_other
    if total == 0:
        return 0.0
    return source.from_wigle / total


def table3(seed: int = DEFAULT_SEED, duration: float = DEFAULT_DURATION) -> TableResult:
    """Table III: preliminary City-Hunter in the subway passage."""
    city = default_city()
    wigle = shared_wigle()
    profile = venue_profile("passage")
    result = run_experiment(
        city, wigle, make_cityhunter_basic(wigle), profile, duration, seed=seed
    )
    headers = ["Scenario"] + TABLE_HEADERS[1:]
    rows = [result.summary.as_table_row("Subway Passage")]
    return TableResult(
        "Table III: Performance of City-Hunter in the subway passage",
        headers,
        rows,
        [result],
    )


def table4(count: int = 5) -> TableResult:
    """Table IV: top SSIDs by AP count vs by heat value."""
    city = default_city()
    wigle = shared_wigle()
    by_count = [s for s, _ in top_ssids_by_count(wigle, count)]
    by_heat = [s for s, _ in top_ssids_by_heat(wigle, city.heatmap, count)]
    rows = [
        [rank + 1, by_count[rank], by_heat[rank]] for rank in range(count)
    ]
    return TableResult(
        "Table IV: top %d SSIDs selected using different criteria" % count,
        ["Rank", "Max APs", "Max heat values"],
        rows,
    )
