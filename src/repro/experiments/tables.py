"""Regeneration of the paper's tables.

Each function runs the corresponding deployment on the synthetic city
and returns a :class:`TableResult` whose ``render()`` prints the same
rows the paper reports.  Seeds are fixed so the benchmark output is
stable run-to-run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from repro.analysis.breakdown import breakdown_hits
from repro.analysis.metrics import SessionSummary
from repro.experiments.calibration import default_city
from repro.experiments.parallel import RunSpec, RunSummary, run_specs
from repro.experiments.runner import ExperimentResult, shared_wigle
from repro.util.tables import render_table
from repro.wigle.queries import top_ssids_by_count, top_ssids_by_heat

TABLE_HEADERS = [
    "Attack",
    "Total probes",
    "Direct/Broadcast",
    "Clients connected",
    "h",
    "h_b",
]

DEFAULT_SEED = 7
DEFAULT_DURATION = 1800.0


@dataclass
class TableResult:
    """One regenerated table plus the runs behind it."""

    title: str
    headers: Sequence[str]
    rows: List[list]
    runs: List[Union[ExperimentResult, RunSummary]] = field(default_factory=list)

    def render(self) -> str:
        """ASCII rendering in the paper's layout."""
        return render_table(self.headers, self.rows, title=self.title)

    def summaries(self) -> List[SessionSummary]:
        """The per-run summaries, in row order."""
        return [r.summary for r in self.runs]


def _attacker_rows(
    labelled_attackers: Sequence[Sequence[str]],
    venue: str,
    seed: int,
    duration: float,
    workers: Optional[int] = None,
) -> List[RunSummary]:
    """Run one deployment per (label, attacker-name) pair, in parallel."""
    specs = [
        RunSpec(attacker=name, venue=venue, seed=seed, duration=duration,
                tag=label)
        for label, name in labelled_attackers
    ]
    return run_specs(specs, workers=workers)


def table1(
    seed: int = DEFAULT_SEED,
    duration: float = DEFAULT_DURATION,
    workers: Optional[int] = None,
) -> TableResult:
    """Table I: KARMA vs MANA in the canteen (30-minute deployments)."""
    runs = _attacker_rows(
        [("KARMA", "karma"), ("MANA", "mana")], "canteen", seed, duration,
        workers,
    )
    rows = [run.summary.as_table_row(run.spec.tag) for run in runs]
    return TableResult(
        "Table I: Comparing the results of KARMA and MANA", TABLE_HEADERS, rows, runs
    )


def table2(
    seed: int = DEFAULT_SEED,
    duration: float = DEFAULT_DURATION,
    workers: Optional[int] = None,
) -> TableResult:
    """Table II: MANA vs preliminary City-Hunter in the canteen.

    Also reports the share of broadcast hits sourced from WiGLE, which
    the paper quotes as ~74 %.
    """
    runs = _attacker_rows(
        [("MANA", "mana"), ("City-Hunter", "cityhunter-basic")],
        "canteen", seed, duration, workers,
    )
    rows = [run.summary.as_table_row(run.spec.tag) for run in runs]
    return TableResult(
        "Table II: MANA vs City-Hunter with the two improvements",
        TABLE_HEADERS,
        rows,
        runs,
    )


def wigle_share_of_broadcast_hits(
    result: Union[ExperimentResult, RunSummary],
) -> float:
    """Fraction of broadcast hits whose SSID came from WiGLE.

    Accepts either a full in-process :class:`ExperimentResult` or a
    :class:`RunSummary` from the parallel executor (whose breakdown was
    computed worker-side).
    """
    source = getattr(result, "source", None)
    if source is None:
        source, _buffers = breakdown_hits(result.session)
    total = source.from_wigle + source.from_direct + source.from_other
    if total == 0:
        return 0.0
    return source.from_wigle / total


def table3(
    seed: int = DEFAULT_SEED,
    duration: float = DEFAULT_DURATION,
    workers: Optional[int] = None,
) -> TableResult:
    """Table III: preliminary City-Hunter in the subway passage."""
    runs = _attacker_rows(
        [("Subway Passage", "cityhunter-basic")], "passage", seed, duration,
        workers,
    )
    headers = ["Scenario"] + TABLE_HEADERS[1:]
    rows = [runs[0].summary.as_table_row("Subway Passage")]
    return TableResult(
        "Table III: Performance of City-Hunter in the subway passage",
        headers,
        rows,
        runs,
    )


def table4(count: int = 5) -> TableResult:
    """Table IV: top SSIDs by AP count vs by heat value."""
    city = default_city()
    wigle = shared_wigle()
    by_count = [s for s, _ in top_ssids_by_count(wigle, count)]
    by_heat = [s for s, _ in top_ssids_by_heat(wigle, city.heatmap, count)]
    rows = [
        [rank + 1, by_count[rank], by_heat[rank]] for rank in range(count)
    ]
    return TableResult(
        "Table IV: top %d SSIDs selected using different criteria" % count,
        ["Rank", "Max APs", "Max heat values"],
        rows,
    )
