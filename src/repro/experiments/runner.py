"""The experiment runner: scenario in, finished session out."""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.metrics import SessionSummary, summarize
from repro.analysis.session import AttackSession
from repro.city.model import City
from repro.experiments.calibration import (
    GROUP_PROBS_BASE,
    GROUP_PROBS_RUSH,
    VenueProfile,
    default_city,
)
from repro.experiments.scenarios import ScenarioConfig, build_scenario
from repro.faults.plan import FaultPlan
from repro.obs.telemetry import maybe_heartbeat
from repro.population.groups import GroupModel
from repro.population.pnl import PnlModel
from repro.wigle.database import WigleDatabase


def session_progress(build):
    """Zero-argument progress probe for the heartbeat thread.

    Returns ``(sim_time, hits_so_far)``.  Reads only — ``sim.now`` is a
    float and the clients dict is snapshotted via ``list``; a rare torn
    read smears one heartbeat and nothing else.
    """

    def probe():
        session = build.attacker.session
        hits = sum(1 for c in list(session.clients.values()) if c.connected)
        return build.sim.now, hits

    return probe


@dataclass
class ExperimentResult:
    """Everything one run produced."""

    session: AttackSession
    summary: SessionSummary
    attacker: object
    duration: float
    people_spawned: int

    @property
    def h(self) -> float:
        """Overall hit rate."""
        return self.summary.hit_rate

    @property
    def h_b(self) -> float:
        """Broadcast hit rate."""
        return self.summary.broadcast_hit_rate


@functools.lru_cache(maxsize=4)
def shared_wigle(city_seed: int = 42) -> WigleDatabase:
    """WiGLE registry over the shared default city.

    Cached *per process*: parallel workers each build (or fork) their
    own instance, so no registry object is ever shared across process
    boundaries.  Within a process the cached instance is shared across
    runs, which is safe because :class:`WigleDatabase` is immutable —
    attackers that adapt SSID weights online do so in their own
    per-attacker :class:`~repro.core.ssid_database.WeightedSsidDatabase`
    and can never write back into this registry.
    """
    return WigleDatabase.from_access_points(default_city(city_seed).aps)


def run_experiment(
    city: City,
    wigle: WigleDatabase,
    attacker_factory,
    profile: VenueProfile,
    duration: float,
    people_per_min: Optional[float] = None,
    seed: int = 0,
    fidelity: str = "frame",
    rush: bool = False,
    group_probs: Optional[Sequence[float]] = None,
    pnl_model: Optional[PnlModel] = None,
    group_model: Optional[GroupModel] = None,
    faults: Optional[FaultPlan] = None,
) -> ExperimentResult:
    """Run one attack deployment and summarise it."""
    if group_probs is None:
        group_probs = GROUP_PROBS_RUSH if rush else GROUP_PROBS_BASE
    config = ScenarioConfig(
        venue_name=profile.venue_name,
        mobility=profile.mobility,
        people_per_min=(
            people_per_min
            if people_per_min is not None
            else profile.people_per_min_30min_test
        ),
        duration=duration,
        seed=seed,
        fidelity=fidelity,
        group_probs=tuple(group_probs),
        dwell_mean=profile.dwell_mean,
        hybrid_static_share=profile.hybrid_static_share,
        quick_share=profile.quick_share,
        pnl_model=pnl_model,
        group_model=group_model,
        faults=faults,
    )
    build = build_scenario(city, wigle, config, attacker_factory)
    # Let in-flight visits and handshakes complete a little past the end.
    with maybe_heartbeat(None, duration, session_progress(build)):
        build.sim.run(duration + 30.0)
    session = build.attacker.session
    return ExperimentResult(
        session=session,
        summary=summarize(session),
        attacker=build.attacker,
        duration=duration,
        people_spawned=build.arrivals.people_spawned,
    )
