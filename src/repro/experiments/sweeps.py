"""Parameter sweeps over attack deployments.

A declarative grid runner used by the sensitivity benchmarks and handy
for downstream experimentation: vary one or two scenario knobs, run the
deployment per cell, and collect summaries into a renderable grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.metrics import SessionSummary, summarize
from repro.experiments.scenarios import ScenarioConfig, build_scenario
from repro.util.tables import render_table


@dataclass
class SweepCell:
    """One grid cell result."""

    params: Dict[str, object]
    summary: SessionSummary

    @property
    def h_b(self) -> float:
        return self.summary.broadcast_hit_rate


@dataclass
class SweepResult:
    """All cells of one sweep, in run order."""

    varied: List[str]
    cells: List[SweepCell] = field(default_factory=list)

    def render(self, title: str = "") -> str:
        rows = []
        for cell in self.cells:
            rows.append(
                [str(cell.params[name]) for name in self.varied]
                + [
                    cell.summary.total_clients,
                    f"{100 * cell.summary.hit_rate:.1f}%",
                    f"{100 * cell.h_b:.1f}%",
                ]
            )
        return render_table(
            self.varied + ["clients", "h", "h_b"], rows, title=title
        )

    def series(self, param: str) -> List[tuple]:
        """(param value, h_b) pairs for plotting."""
        return [(cell.params[param], cell.h_b) for cell in self.cells]


def sweep(
    city,
    wigle,
    attacker_factory: Callable,
    base_config: ScenarioConfig,
    grid: Dict[str, Sequence],
    run_extra: float = 30.0,
) -> SweepResult:
    """Run ``attacker_factory`` once per grid cell.

    ``grid`` maps :class:`ScenarioConfig` field names to value lists;
    the cartesian product is executed in a deterministic order (first
    key varies slowest).  Each cell gets a fresh scenario built from
    ``base_config`` with the cell's values substituted.
    """
    import dataclasses
    import itertools

    names = list(grid)
    for name in names:
        if not hasattr(base_config, name):
            raise ValueError(f"ScenarioConfig has no field {name!r}")
    result = SweepResult(varied=names)
    for values in itertools.product(*(grid[n] for n in names)):
        config = dataclasses.replace(base_config, **dict(zip(names, values)))
        build = build_scenario(city, wigle, config, attacker_factory)
        build.sim.run(config.duration + run_extra)
        result.cells.append(
            SweepCell(
                params=dict(zip(names, values)),
                summary=summarize(build.attacker.session),
            )
        )
    return result
