"""Parameter sweeps over attack deployments.

A declarative grid runner used by the sensitivity benchmarks and handy
for downstream experimentation: vary one or two scenario knobs, run the
deployment per cell, and collect summaries into a renderable grid.

Cells are independent deployments, so when the attacker is given as a
registry *name* (e.g. ``"cityhunter"``) the grid fans out over the
parallel executor (:mod:`repro.experiments.parallel`).  Passing a
factory callable instead keeps the legacy in-process serial path, which
accepts arbitrary closures and arbitrary city/WiGLE objects.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.analysis.metrics import SessionSummary, summarize
from repro.experiments.parallel import RunSpec, run_specs
from repro.experiments.scenarios import ScenarioConfig, build_scenario
from repro.util.tables import render_table


@dataclass
class SweepCell:
    """One grid cell result."""

    params: Dict[str, object]
    summary: SessionSummary

    @property
    def h_b(self) -> float:
        return self.summary.broadcast_hit_rate


@dataclass
class SweepResult:
    """All cells of one sweep, in run order."""

    varied: List[str]
    cells: List[SweepCell] = field(default_factory=list)

    def render(self, title: str = "") -> str:
        rows = []
        for cell in self.cells:
            rows.append(
                [str(cell.params[name]) for name in self.varied]
                + [
                    cell.summary.total_clients,
                    f"{100 * cell.summary.hit_rate:.1f}%",
                    f"{100 * cell.h_b:.1f}%",
                ]
            )
        return render_table(
            self.varied + ["clients", "h", "h_b"], rows, title=title
        )

    def series(self, param: str) -> List[tuple]:
        """(param value, h_b) pairs for plotting."""
        return [(cell.params[param], cell.h_b) for cell in self.cells]


def _grid_configs(
    base_config: ScenarioConfig, grid: Dict[str, Sequence]
) -> List[Dict[str, object]]:
    """The cell parameter dicts, first key varying slowest."""
    names = list(grid)
    for name in names:
        if not hasattr(base_config, name):
            raise ValueError(f"ScenarioConfig has no field {name!r}")
    return [
        dict(zip(names, values))
        for values in itertools.product(*(grid[n] for n in names))
    ]


def sweep(
    city,
    wigle,
    attacker: Union[str, Callable],
    base_config: ScenarioConfig,
    grid: Dict[str, Sequence],
    run_extra: float = 30.0,
    workers: Optional[int] = None,
    city_seed: int = 42,
) -> SweepResult:
    """Run the attacker once per grid cell.

    ``grid`` maps :class:`ScenarioConfig` field names to value lists;
    the cartesian product is executed in a deterministic order (first
    key varies slowest).  Each cell gets a fresh scenario built from
    ``base_config`` with the cell's values substituted.

    When ``attacker`` is a registry name, cells run through the parallel
    executor against the shared city/registry for ``city_seed`` (the
    ``city``/``wigle`` arguments must be that shared pair, or ``None``).
    When it is a factory callable, cells run serially in-process against
    exactly the objects passed in.
    """
    cells_params = _grid_configs(base_config, grid)
    result = SweepResult(varied=list(grid))
    if isinstance(attacker, str):
        specs = []
        for params in cells_params:
            config = dataclasses.replace(base_config, **params)
            specs.append(
                RunSpec(
                    attacker=attacker,
                    scenario=config,
                    seed=config.seed,
                    duration=config.duration,
                    run_extra=run_extra,
                    city_seed=city_seed,
                    tag="sweep:" + ",".join(f"{k}={v}" for k, v in params.items()),
                )
            )
        outcomes = run_specs(specs, workers=workers)
        for params, outcome in zip(cells_params, outcomes):
            result.cells.append(SweepCell(params=params, summary=outcome.summary))
        return result
    for params in cells_params:
        config = dataclasses.replace(base_config, **params)
        build = build_scenario(city, wigle, config, attacker)
        build.sim.run(config.duration + run_extra)
        result.cells.append(
            SweepCell(
                params=params,
                summary=summarize(build.attacker.session),
            )
        )
    return result
