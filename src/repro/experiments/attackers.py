"""Attacker factories for the experiment runner.

Each returns a callable matching ``attacker_factory(sim, medium, venue)``
so scenarios stay agnostic of attacker construction details.

Factories are also addressable *by name* via :func:`make_attacker` — the
parallel executor ships :class:`~repro.experiments.parallel.RunSpec`
objects to worker processes, and a registry name (plus picklable
options) is what survives the trip where a closure cannot.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.attacks.cityhunter_basic import CityHunterBasic
from repro.attacks.karma import KarmaAttacker
from repro.attacks.mana import ManaAttacker
from repro.city.heatmap import HeatMap
from repro.core.config import CityHunterConfig
from repro.core.hunter import CityHunter
from repro.dot11.mac import random_ap_mac
from repro.faults.plan import FaultPlan
from repro.wigle.database import WigleDatabase

AttackerFactory = Callable


def _attacker_mac(sim):
    return random_ap_mac(sim.rngs.stream("attacker_mac"))


def make_karma() -> AttackerFactory:
    """A KARMA attacker at the venue centre."""

    def factory(sim, medium, venue):
        return KarmaAttacker(_attacker_mac(sim), venue.region.center, medium)

    return factory


def make_mana() -> AttackerFactory:
    """A MANA attacker at the venue centre."""

    def factory(sim, medium, venue):
        return ManaAttacker(_attacker_mac(sim), venue.region.center, medium)

    return factory


def make_cityhunter_basic(wigle: WigleDatabase) -> AttackerFactory:
    """The Section III preliminary design (untried lists + WiGLE)."""

    def factory(sim, medium, venue):
        return CityHunterBasic(
            _attacker_mac(sim), venue.region.center, medium, wigle=wigle
        )

    return factory


def make_cityhunter(
    wigle: WigleDatabase,
    heatmap: Optional[HeatMap],
    config: Optional[CityHunterConfig] = None,
    use_heat: bool = True,
    faults: Optional[FaultPlan] = None,
) -> AttackerFactory:
    """The advanced Section IV attacker.

    ``faults`` only contributes its WiGLE-corruption half here (salted
    by the plan seed); channel and outage faults are applied by the
    scenario builder, which owns the medium and the simulation.
    """

    def factory(sim, medium, venue):
        return CityHunter(
            _attacker_mac(sim),
            venue.region.center,
            medium,
            wigle=wigle,
            heatmap=heatmap,
            config=config,
            use_heat=use_heat,
            wigle_faults=faults.wigle if faults is not None else None,
            wigle_fault_seed=faults.seed if faults is not None else 0,
        )

    return factory


ATTACKER_NAMES = ("karma", "mana", "cityhunter-basic", "cityhunter")
"""Registry names accepted by :func:`make_attacker` (and the CLI)."""


def make_attacker(
    name: str,
    city,
    wigle: WigleDatabase,
    config: Optional[CityHunterConfig] = None,
    use_heat: bool = True,
    faults: Optional[FaultPlan] = None,
) -> AttackerFactory:
    """Build a factory from a registry name.

    ``config``, ``use_heat`` and ``faults`` only apply to the advanced
    attacker; they are ignored (not rejected) for the baselines so one
    call site can drive every attacker uniformly.
    """
    if name == "karma":
        return make_karma()
    if name == "mana":
        return make_mana()
    if name == "cityhunter-basic":
        return make_cityhunter_basic(wigle)
    if name == "cityhunter":
        return make_cityhunter(
            wigle,
            city.heatmap,
            config=config,
            use_heat=use_heat,
            faults=faults,
        )
    raise ValueError(
        "unknown attacker %r (have: %s)" % (name, ", ".join(ATTACKER_NAMES))
    )
