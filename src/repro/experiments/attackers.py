"""Attacker factories for the experiment runner.

Each returns a callable matching ``attacker_factory(sim, medium, venue)``
so scenarios stay agnostic of attacker construction details.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.attacks.cityhunter_basic import CityHunterBasic
from repro.attacks.karma import KarmaAttacker
from repro.attacks.mana import ManaAttacker
from repro.city.heatmap import HeatMap
from repro.core.config import CityHunterConfig
from repro.core.hunter import CityHunter
from repro.dot11.mac import random_ap_mac
from repro.wigle.database import WigleDatabase

AttackerFactory = Callable


def _attacker_mac(sim):
    return random_ap_mac(sim.rngs.stream("attacker_mac"))


def make_karma() -> AttackerFactory:
    """A KARMA attacker at the venue centre."""

    def factory(sim, medium, venue):
        return KarmaAttacker(_attacker_mac(sim), venue.region.center, medium)

    return factory


def make_mana() -> AttackerFactory:
    """A MANA attacker at the venue centre."""

    def factory(sim, medium, venue):
        return ManaAttacker(_attacker_mac(sim), venue.region.center, medium)

    return factory


def make_cityhunter_basic(wigle: WigleDatabase) -> AttackerFactory:
    """The Section III preliminary design (untried lists + WiGLE)."""

    def factory(sim, medium, venue):
        return CityHunterBasic(
            _attacker_mac(sim), venue.region.center, medium, wigle=wigle
        )

    return factory


def make_cityhunter(
    wigle: WigleDatabase,
    heatmap: Optional[HeatMap],
    config: Optional[CityHunterConfig] = None,
    use_heat: bool = True,
) -> AttackerFactory:
    """The advanced Section IV attacker."""

    def factory(sim, medium, venue):
        return CityHunter(
            _attacker_mac(sim),
            venue.region.center,
            medium,
            wigle=wigle,
            heatmap=heatmap,
            config=config,
            use_heat=use_heat,
        )

    return factory
