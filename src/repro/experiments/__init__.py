"""Experiment harness: scenarios, runner, and table/figure generators.

Each public function regenerates one table or figure of the paper on
the synthetic substrate; the benchmarks under ``benchmarks/`` are thin
wrappers around these.
"""

from repro.experiments.calibration import VenueProfile, venue_profile, default_city
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.experiments.attackers import (
    make_karma,
    make_mana,
    make_cityhunter_basic,
    make_cityhunter,
)

__all__ = [
    "VenueProfile",
    "venue_profile",
    "default_city",
    "ExperimentResult",
    "run_experiment",
    "make_karma",
    "make_mana",
    "make_cityhunter_basic",
    "make_cityhunter",
]
