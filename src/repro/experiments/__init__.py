"""Experiment harness: scenarios, runner, and table/figure generators.

Each public function regenerates one table or figure of the paper on
the synthetic substrate; the benchmarks under ``benchmarks/`` are thin
wrappers around these.  Batches of independent deployments fan out over
:mod:`repro.experiments.parallel` (``REPRO_WORKERS`` controls the
worker count; 1 is an exact serial fallback).
"""

from repro.experiments.attackers import (
    ATTACKER_NAMES,
    make_attacker,
    make_cityhunter,
    make_cityhunter_basic,
    make_karma,
    make_mana,
)
from repro.experiments.calibration import VenueProfile, default_city, venue_profile
from repro.experiments.parallel import (
    RunSpec,
    RunSummary,
    derive_run_seeds,
    replicates,
    resolve_workers,
    run_specs,
)
from repro.experiments.runner import ExperimentResult, run_experiment

__all__ = [
    "ATTACKER_NAMES",
    "VenueProfile",
    "venue_profile",
    "default_city",
    "ExperimentResult",
    "run_experiment",
    "RunSpec",
    "RunSummary",
    "derive_run_seeds",
    "replicates",
    "resolve_workers",
    "run_specs",
    "make_attacker",
    "make_karma",
    "make_mana",
    "make_cityhunter_basic",
    "make_cityhunter",
]
