"""The smartphone entity.

Implements the client side of 802.11 active scanning and open-system
association against the shared medium.  The 40-response ceiling is not
hard-coded here: in ``frame`` fidelity it emerges from arrival times vs.
the MinChannelTime window; in ``burst`` fidelity the same arithmetic is
applied analytically via :class:`~repro.dot11.timing.ScanTiming`.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.devices.profiles import DEFAULT_SCAN_PROFILE, ScanProfile
from repro.dot11.frames import (
    AssocRequest,
    AssocResponse,
    AuthRequest,
    AuthResponse,
    Beacon,
    Deauth,
    Frame,
    ProbeRequest,
    ProbeResponse,
)
from repro.dot11.mac import MacAddress
from repro.dot11.medium import Medium
from repro.dot11.timing import DEFAULT_SCAN_TIMING, ScanTiming
from repro.geo.point import Point
from repro.mobility.base import MobilityModel
from repro.population.person import PersonSpec
from repro.sim.simulation import Simulation
from repro.util.units import PROBE_REQUEST_AIRTIME_S

_EPS = 1e-6


def pick_join_target(
    responses: List[ProbeResponse], pnl
) -> Optional[ProbeResponse]:
    """The join policy: first response (arrival order) whose SSID is an
    open, auto-joinable PNL entry; None when nothing qualifies.

    Module-level because the policy is shared — :class:`Phone` applies
    it to a scan window's probe responses, and the shard engine's
    batched walkers (:mod:`repro.sim.shards`) apply the same first-
    matching-entry rule to sorted offer records, so both population
    models make identical join decisions.
    """
    for resp in responses:
        profile = pnl.get(resp.ssid)
        if profile is None:
            continue
        if profile.auto_joinable and resp.security.is_open:
            return resp
    return None


class Phone:
    """One smartphone visiting the scene."""

    IDLE = "idle"
    SCANNING = "scanning"
    ASSOCIATING = "associating"
    CONNECTED = "connected"
    DEPARTED = "departed"

    def __init__(
        self,
        mac: MacAddress,
        person: PersonSpec,
        mobility: MobilityModel,
        medium: Medium,
        scan_profile: ScanProfile = DEFAULT_SCAN_PROFILE,
        timing: ScanTiming = DEFAULT_SCAN_TIMING,
        tx_range: float = 60.0,
        camped_bssid: Optional[MacAddress] = None,
    ):
        self.mac = mac
        self.person = person
        self.mobility = mobility
        self.medium = medium
        self.scan_profile = scan_profile
        self.timing = timing
        self.tx_range = tx_range
        self.state = Phone.IDLE
        self.connected_bssid: Optional[MacAddress] = camped_bssid
        self.connected_ssid: Optional[str] = None
        if camped_bssid is not None:
            self.state = Phone.CONNECTED
        self.scans_performed = 0
        self.responses_accepted = 0
        self._responses: List[ProbeResponse] = []
        self._window_soft_close: Optional[float] = None
        self._window_hard_close = -1.0
        self._assoc_target: Optional[MacAddress] = None
        self._scan_event = None
        self._interval = 0.0
        self._lineage = None

    # -- Station protocol ---------------------------------------------------

    def position_at(self, time: float) -> Point:
        """Current location (delegates to mobility)."""
        return self.mobility.position_at(time)

    @property
    def max_speed_mps(self) -> Optional[float]:
        """Speed bound (m/s) for the medium's spatial index, when the
        mobility model can supply one; None keeps the phone on the
        always-scanned exact path."""
        bound = getattr(self.mobility, "max_speed", None)
        return bound() if callable(bound) else None

    # -- lifecycle ------------------------------------------------------------

    def start(self, sim: Simulation) -> None:
        """Entity hook: attach to the medium and schedule the lifecycle."""
        self.sim = sim
        self._lineage = sim.lineage if sim.lineage.enabled else None
        self._rng: np.random.Generator = sim.rngs.stream("phones")
        self.medium.attach(self, self.tx_range)
        self._interval = self.scan_profile.draw_interval(self._rng)
        lifetime = max(_EPS, self.mobility.t_exit - sim.now)
        sim.at(lifetime, self._depart)
        if self.state is not Phone.CONNECTED:
            first = float(
                self._rng.uniform(0.0, self.scan_profile.first_scan_max_delay)
            )
            self._scan_event = sim.at(min(first, lifetime * 0.9), self._do_scan)

    def _depart(self) -> None:
        self.state = Phone.DEPARTED
        if self._scan_event is not None:
            self._scan_event.cancel()
        self.medium.detach(self.mac)

    def _schedule_next_scan(self) -> None:
        if self.state is Phone.DEPARTED:
            return
        gap = self.scan_profile.jittered(self._interval, self._rng)
        self._scan_event = self.sim.at(gap, self._do_scan)

    # -- scanning -------------------------------------------------------------

    def _do_scan(self) -> None:
        if self.state in (Phone.CONNECTED, Phone.DEPARTED, Phone.ASSOCIATING):
            return
        self.state = Phone.SCANNING
        self.scans_performed += 1
        now = self.sim.now
        self._responses = []
        self._window_soft_close = None
        channels = self.scan_profile.scan_channels
        dwell = 2.0 * self.timing.min_channel_time
        self._window_hard_close = now + len(channels) * dwell
        for idx, channel in enumerate(channels):
            offset = idx * dwell
            self.sim.at(offset, self._probe_channel, channel)
        self.sim.at(len(channels) * dwell + 10 * _EPS, self._finish_scan)

    def _probe_channel(self, channel: int) -> None:
        if self.state is not Phone.SCANNING:
            return
        if self.person.unsafe:
            for ssid in self.person.direct_probe_ssids:
                self.medium.transmit(
                    self,
                    ProbeRequest(self.mac, ssid, channel=channel),
                    PROBE_REQUEST_AIRTIME_S,
                )
        self.medium.transmit(
            self, ProbeRequest(self.mac, channel=channel), PROBE_REQUEST_AIRTIME_S
        )

    def _accept_response(self, frame: ProbeResponse, time: float) -> None:
        if self.state is not Phone.SCANNING:
            return
        if time > self._window_hard_close + _EPS:
            return
        if self._window_soft_close is None:
            self._window_soft_close = time + self.timing.min_channel_time
        elif time >= self._window_soft_close - _EPS:
            return
        self._responses.append(frame)
        self.responses_accepted += 1

    def receive_burst(
        self, responses: List[ProbeResponse], time: float, spacing: float
    ) -> None:
        """Burst-fidelity delivery: apply the window arithmetic directly."""
        if self.state is not Phone.SCANNING:
            return
        room = self.timing.max_responses_per_scan - len(self._responses)
        if room <= 0:
            return
        taken = responses[:room]
        self._responses.extend(taken)
        self.responses_accepted += len(taken)

    def _finish_scan(self) -> None:
        if self.state is not Phone.SCANNING:
            return
        chosen = self._pick_join_target()
        self._responses = []
        if chosen is None:
            self._schedule_next_scan()
            return
        self._begin_association(chosen)

    def _pick_join_target(self) -> Optional[ProbeResponse]:
        """First response (arrival order) matching an open PNL entry."""
        return pick_join_target(self._responses, self.person.pnl)

    # -- association ------------------------------------------------------------

    def _begin_association(self, response: ProbeResponse) -> None:
        self.state = Phone.ASSOCIATING
        self._assoc_target = response.src
        self._assoc_ssid = response.ssid
        lineage = self._lineage
        if lineage is None:
            self.medium.transmit(self, AuthRequest(self.mac, response.src))
        else:
            # _finish_scan runs as its own event, so the delivery context
            # is long gone; re-anchor the handshake to the probe response
            # the phone actually chose.
            with lineage.push(lineage.frame_ctx(response)):
                self.medium.transmit(self, AuthRequest(self.mac, response.src))
        self.sim.at(self.scan_profile.assoc_timeout, self._assoc_timeout)

    def _assoc_timeout(self) -> None:
        if self.state is Phone.ASSOCIATING:
            # Handshake lost (walked out of range?) — fall back to scanning.
            self.state = Phone.IDLE
            self._assoc_target = None
            self._schedule_next_scan()

    # -- frame handling ------------------------------------------------------------

    def receive(self, frame: Frame, time: float) -> None:
        """Handle one delivered frame."""
        if self.state is Phone.DEPARTED:
            return
        if isinstance(frame, ProbeResponse):
            self._accept_response(frame, time)
        elif isinstance(frame, AuthResponse):
            if self.state is Phone.ASSOCIATING and frame.src == self._assoc_target:
                if frame.success:
                    self.medium.transmit(
                        self, AssocRequest(self.mac, frame.src, self._assoc_ssid)
                    )
        elif isinstance(frame, AssocResponse):
            if self.state is Phone.ASSOCIATING and frame.src == self._assoc_target:
                if frame.success:
                    self.state = Phone.CONNECTED
                    self.connected_bssid = frame.src
                    self.connected_ssid = frame.ssid
                    if self._lineage is not None:
                        self._lineage.event(
                            time,
                            "connected",
                            self.mac,
                            bssid=frame.src,
                            ssid=frame.ssid,
                        )
        elif isinstance(frame, Beacon):
            self._handle_beacon(frame)
        elif isinstance(frame, Deauth):
            self._handle_deauth(frame)

    def _handle_beacon(self, frame: Beacon) -> None:
        """Passive discovery: join a beaconing open PNL network.

        Only from the idle state — mid-scan the probe-response path owns
        the decision, and connected phones stay put.
        """
        if self.state is not Phone.IDLE:
            return
        profile = self.person.pnl.get(frame.ssid)
        if profile is None or not profile.auto_joinable:
            return
        if not frame.security.is_open:
            return
        if self._scan_event is not None:
            self._scan_event.cancel()
        self._begin_association(
            ProbeResponse(frame.src, self.mac, frame.ssid, frame.security)
        )

    def _handle_deauth(self, frame: Deauth) -> None:
        if self.state is not Phone.CONNECTED:
            return
        if frame.src != self.connected_bssid:
            return  # spoof must name our AP's BSSID to be believed
        self.state = Phone.IDLE
        self.connected_bssid = None
        self.connected_ssid = None
        self.sim.metrics.inc("phone.deauth_rescans")
        # Immediate rescan: deauth triggers a fresh scan cycle.
        self._scan_event = self.sim.at(
            float(self._rng.uniform(0.2, 2.0)), self._do_scan
        )
