"""Smartphone Wi-Fi behaviour.

A :class:`Phone` is a radio station driven by its person's PNL: it
periodically active-scans (broadcast probe, plus direct probes on unsafe
devices), collects probe responses within the 802.11 listening window,
auto-joins the first response matching an open PNL entry, and completes
the open-system authentication + association handshake.  Once associated
it stops probing — unless de-authenticated, which restarts the cycle.
"""

from repro.devices.phone import Phone
from repro.devices.profiles import ScanProfile

__all__ = ["Phone", "ScanProfile"]
