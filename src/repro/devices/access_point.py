"""A legitimate venue access point.

Used by the de-authentication extension scenario (paper Section V-B):
clients camped on the venue's real AP send no probes, so the attacker
cannot reach them until a spoofed deauth storm forces a re-scan.  The
AP answers probes with its own SSID and accepts (re-)associations, so a
freed client that still prefers the legitimate network can return to it
— which is exactly the race the de-auth attack has to win.
"""

from __future__ import annotations

from repro.dot11.capabilities import Security
from repro.dot11.frames import (
    AssocRequest,
    AssocResponse,
    AuthRequest,
    AuthResponse,
    Beacon,
    Frame,
    ProbeRequest,
    ProbeResponse,
)
from repro.dot11.mac import MacAddress
from repro.dot11.medium import Medium
from repro.geo.point import Point
from repro.sim.simulation import Simulation


class LegitAp:
    """An honest open AP serving one SSID."""

    max_speed_mps = 0.0  # fixed installation: spatial-index eligible

    def __init__(
        self,
        mac: MacAddress,
        position: Point,
        medium: Medium,
        ssid: str,
        tx_range: float = 50.0,
        response_delay: float = 0.5e-3,
        beacon_interval: float = 0.0,
        channel: int = 6,
    ):
        self.mac = mac
        self.position = position
        self.medium = medium
        self.ssid = ssid
        self.tx_range = tx_range
        self.response_delay = response_delay
        self.beacon_interval = beacon_interval
        self.channel = channel
        self.associations = 0
        self.beacons_sent = 0

    def position_at(self, time: float) -> Point:
        """Fixed installation point."""
        return self.position

    def start(self, sim: Simulation) -> None:
        """Entity hook: attach to the medium and start beaconing."""
        self.sim = sim
        self.medium.attach(self, self.tx_range)
        if self.beacon_interval > 0:
            sim.at(self.beacon_interval, self._beacon)

    def _beacon(self) -> None:
        self.beacons_sent += 1
        self.medium.transmit(
            self, Beacon(self.mac, self.ssid, Security.OPEN)
        )
        self.sim.at(self.beacon_interval, self._beacon)

    def receive(self, frame: Frame, time: float) -> None:
        """Answer probes for our SSID and serve the handshake."""
        if isinstance(frame, ProbeRequest):
            if frame.channel != self.channel:
                return
            if frame.ssid is None or frame.ssid == self.ssid:
                # Real APs answer a beat slower than the attacker's
                # pre-built response cannon.
                self.medium.transmit(
                    self,
                    ProbeResponse(self.mac, frame.src, self.ssid, Security.OPEN),
                    self.response_delay,
                )
        elif isinstance(frame, AuthRequest):
            self.medium.transmit(self, AuthResponse(self.mac, frame.src, True))
        elif isinstance(frame, AssocRequest):
            if frame.ssid == self.ssid:
                self.associations += 1
                self.medium.transmit(
                    self, AssocResponse(self.mac, frame.src, self.ssid, True)
                )
