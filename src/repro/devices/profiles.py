"""Scan-behaviour profiles.

Idle, unassociated phones rescan periodically; the interval varies by OS,
screen state and vendor.  We draw one steady interval per phone from a
uniform band — wide enough that passage walkers get 1-2 scans in radio
range while canteen diners get many, which is exactly the contrast the
paper's Fig. 2 documents.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ScanProfile:
    """Per-phone scan timing behaviour."""

    interval_low: float = 30.0
    interval_high: float = 120.0
    """Bounds of the per-phone steady rescan interval (seconds)."""

    first_scan_max_delay: float = 25.0
    """The first scan after entering the scene happens within this many
    seconds (phones arrive mid-cycle, not synchronised)."""

    jitter_frac: float = 0.15
    """Per-scan multiplicative jitter around the steady interval."""

    assoc_timeout: float = 1.0
    """Seconds to wait for handshake completion before rescanning."""

    scan_channels: tuple = (6,)
    """Channels visited per scan cycle, in order.  The experiments pin
    phones to the attacker's channel (the attack is single-channel and
    other channels contribute nothing but simulated airtime); pass
    e.g. ``(1, 6, 11)`` to model a realistic hop sequence."""

    def __post_init__(self) -> None:
        if not 0 < self.interval_low <= self.interval_high:
            raise ValueError("need 0 < interval_low <= interval_high")
        if not 0 <= self.jitter_frac < 1:
            raise ValueError("jitter_frac must be in [0, 1)")

    def draw_interval(self, rng: np.random.Generator) -> float:
        """The phone's steady rescan interval."""
        return float(rng.uniform(self.interval_low, self.interval_high))

    def jittered(self, interval: float, rng: np.random.Generator) -> float:
        """One concrete gap: the steady interval with jitter applied."""
        lo = 1.0 - self.jitter_frac
        hi = 1.0 + self.jitter_frac
        return interval * float(rng.uniform(lo, hi))


DEFAULT_SCAN_PROFILE = ScanProfile()
"""Shared default used by every scenario unless overridden."""
