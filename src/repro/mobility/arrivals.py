"""Arrival processes.

Groups of people arrive by a time-inhomogeneous Poisson process (thinning
over a piecewise or continuous rate function).  Each arrival invokes a
spawner callback with the group size — the experiment runner wires that
callback to person synthesis, mobility and phone creation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.sim.simulation import Simulation


@dataclass(frozen=True)
class HourlyRates:
    """Arrival rates (groups per minute) by hour of day, 8am-8pm.

    ``rates[0]`` covers 8-9am, ``rates[11]`` covers 7-8pm — the paper's
    test slots.  Used by the Fig. 5 experiments to pick each run's rate.
    """

    rates: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.rates) != 12:
            raise ValueError("need exactly 12 hourly rates (8am-8pm)")
        if any(r < 0 for r in self.rates):
            raise ValueError("rates must be non-negative")

    def rate_for_slot(self, slot: int) -> float:
        """Groups/minute for test slot ``slot`` (0 = 8-9am)."""
        return self.rates[slot]

    @property
    def slot_labels(self) -> Sequence[str]:
        """Human labels for the 12 slots."""
        def fmt(h: int) -> str:
            if h == 12:
                return "12pm"
            return f"{h}am" if h < 12 else f"{h - 12}pm"
        return [f"{fmt(8 + i)}-{fmt(9 + i)}" for i in range(12)]


class ArrivalProcess:
    """Poisson group arrivals driving a spawner callback.

    ``rate_per_min`` may be a float (homogeneous) or a callable of
    simulation time returning groups/minute (thinning is applied with
    ``max_rate_per_min`` as the envelope).
    """

    def __init__(
        self,
        rate_per_min,
        spawn: Callable[[int, float], None],
        group_size_probs: Sequence[float] = (0.62, 0.24, 0.10, 0.04),
        max_rate_per_min: float = 0.0,
        stop_at: float = float("inf"),
    ):
        self._rate = rate_per_min if callable(rate_per_min) else None
        self._const_rate = None if callable(rate_per_min) else float(rate_per_min)
        if self._const_rate is not None and self._const_rate < 0:
            raise ValueError("rate must be non-negative")
        probs = np.asarray(group_size_probs, dtype=float)
        if probs.ndim != 1 or probs.size == 0 or (probs < 0).any():
            raise ValueError("group_size_probs must be non-negative")
        self._group_probs = probs / probs.sum()
        self.spawn = spawn
        self.stop_at = stop_at
        if self._rate is not None and max_rate_per_min <= 0:
            raise ValueError("callable rates require max_rate_per_min")
        self._max_rate = (
            max_rate_per_min if self._rate is not None else (self._const_rate or 0.0)
        )
        self.groups_spawned = 0
        self.people_spawned = 0

    def start(self, sim: Simulation) -> None:
        """Entity hook: begin scheduling arrivals."""
        self.sim = sim
        self._rng = sim.rngs.stream("arrivals")
        if self._max_rate > 0:
            self._schedule_next()

    def _schedule_next(self) -> None:
        # Exponential gap at the envelope rate (per second).
        gap = float(self._rng.exponential(60.0 / self._max_rate))
        self.sim.at(gap, self._arrive)

    def _rate_now(self) -> float:
        if self._rate is not None:
            return float(self._rate(self.sim.now))
        return self._const_rate or 0.0

    def _arrive(self) -> None:
        if self.sim.now >= self.stop_at:
            return
        accept = True
        if self._rate is not None:
            accept = self._rng.random() < self._rate_now() / self._max_rate
        if accept:
            size = 1 + int(
                self._rng.choice(len(self._group_probs), p=self._group_probs)
            )
            self.groups_spawned += 1
            self.people_spawned += size
            self.spawn(size, self.sim.now)
        self._schedule_next()
