"""Batched corridor kinematics for struct-of-arrays walkers.

:class:`~repro.mobility.base.PathMobility` answers *where is this one
person at time t* through per-object knot interpolation; the sharded
city (:mod:`repro.sim.shards`) needs the same answer for thousands of
walkers per call.  Shard walkers are straight-line corridor crossers
(the subway-passage pattern scaled city-wide), so their position has a
closed form — entry point plus velocity times clamped elapsed time —
and the whole population can be evaluated as arrays.

Only *elementwise* float arithmetic is used (no reductions), so the
numpy backend, the pure-python backend, and any partition of the
population into shards all produce bit-identical coordinates.
"""

from __future__ import annotations

from typing import Tuple


def corridor_endpoints(
    horizontal: bool, forward: bool, cross: float, size: float
) -> Tuple[float, float, float, float]:
    """Entry point and unit direction of one corridor crossing.

    Returns ``(x0, y0, ux, uy)``: the walker enters on one edge of the
    ``[0, size)`` square at offset ``cross`` on the perpendicular axis
    and walks straight across.  Multiply the unit direction by the
    walker's speed for its velocity.
    """
    if horizontal:
        return (0.0, cross, 1.0, 0.0) if forward else (size, cross, -1.0, 0.0)
    return (cross, 0.0, 0.0, 1.0) if forward else (cross, size, 0.0, -1.0)


def clamped_elapsed(t: float, t_enter: float, t_exit: float) -> float:
    """Seconds of motion accumulated by time ``t`` (scalar form).

    Before entry the walker waits at its entry point, after exit it is
    parked at its exit point — the same end-point clamping
    :meth:`~repro.mobility.base.PathMobility.position_at` applies.
    """
    if t <= t_enter:
        return 0.0
    if t >= t_exit:
        return t_exit - t_enter
    return t - t_enter


def position_scalar(
    t: float,
    t_enter: float,
    t_exit: float,
    x0: float,
    y0: float,
    vx: float,
    vy: float,
) -> Tuple[float, float]:
    """Closed-form position of one walker at time ``t``."""
    dt = clamped_elapsed(t, t_enter, t_exit)
    return (x0 + vx * dt, y0 + vy * dt)


def positions_vec(t: float, t_enter, t_exit, x0, y0, vx, vy):
    """Vectorised :func:`position_scalar` over numpy arrays.

    ``np.clip(t, t_enter, t_exit) - t_enter`` computes the identical
    clamped elapsed time elementwise, so the two forms agree bitwise.
    """
    import numpy as np

    dt = np.clip(t, t_enter, t_exit) - t_enter
    return x0 + vx * dt, y0 + vy * dt
