"""Static dwellers: canteen diners, people waiting on a platform."""

from __future__ import annotations

import numpy as np

from repro.geo.region import Rect
from repro.mobility.base import PathMobility


def static_dwell(
    region: Rect,
    t_enter: float,
    dwell_mean: float,
    rng: np.random.Generator,
    dwell_min: float = 120.0,
) -> PathMobility:
    """Sit at one random spot in ``region`` for an exponential dwell.

    The dwell is ``dwell_min`` plus an exponential with the remaining
    mean, matching how nobody leaves a canteen ten seconds after sitting
    down but long lunches have a heavy tail.
    """
    if dwell_mean <= dwell_min:
        raise ValueError(
            "dwell_mean %r must exceed dwell_min %r" % (dwell_mean, dwell_min)
        )
    spot = region.sample(rng)
    dwell = dwell_min + float(rng.exponential(dwell_mean - dwell_min))
    return PathMobility([(t_enter, spot), (t_enter + dwell, spot)])
