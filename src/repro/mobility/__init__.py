"""Crowd mobility: how people move through the attack venue.

Three patterns cover the paper's venues: static dwellers (canteen
diners), constant-velocity corridor walkers (subway passage), and
waypoint wanderers (shopping centre / railway station, where the paper
describes a *hybrid* crowd — some sitting, some passing through).
Arrivals follow a time-inhomogeneous Poisson process with per-venue
hour-of-day rate profiles (rush hours, mealtimes).
"""

from repro.mobility.arrivals import ArrivalProcess, HourlyRates
from repro.mobility.base import PathMobility, MobilityModel
from repro.mobility.batch import corridor_endpoints, position_scalar, positions_vec
from repro.mobility.corridor import corridor_walk
from repro.mobility.static import static_dwell
from repro.mobility.waypoints import waypoint_wander

__all__ = [
    "ArrivalProcess",
    "HourlyRates",
    "PathMobility",
    "MobilityModel",
    "corridor_endpoints",
    "corridor_walk",
    "position_scalar",
    "positions_vec",
    "static_dwell",
    "waypoint_wander",
]
