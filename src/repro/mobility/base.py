"""Mobility primitives.

A mobility model answers one question — *where is this person at time
t?* — plus the lifetime of their visit.  :class:`PathMobility` covers
every pattern in the reproduction as piecewise-linear motion over time
knots; the venue-specific constructors in the sibling modules just build
different knot sequences.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Protocol, Sequence, Tuple

from repro.geo.point import Point


class MobilityModel(Protocol):
    """What the radio medium and lifecycle code need from mobility."""

    t_enter: float
    t_exit: float

    def position_at(self, time: float) -> Point:
        """Location at ``time`` (clamped to the visit's lifetime)."""
        ...


class PathMobility:
    """Piecewise-linear motion through (time, point) knots.

    Knots must be strictly increasing in time; position before the first
    knot is the first point, after the last knot the last point.
    """

    __slots__ = ("_times", "_points", "_max_speed")

    def __init__(self, knots: Sequence[Tuple[float, Point]]):
        if not knots:
            raise ValueError("mobility needs at least one knot")
        times = [t for t, _ in knots]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("knot times must be strictly increasing")
        self._times: List[float] = times
        self._points: List[Point] = [p for _, p in knots]
        self._max_speed: float = -1.0  # computed lazily

    def max_speed(self) -> float:
        """Fastest segment speed (m/s) over the whole path.

        Positions clamp to the end points outside the knot range, so
        this bounds displacement over *any* interval — the guarantee the
        medium's spatial index needs to inflate its query radius safely.
        """
        if self._max_speed < 0.0:
            top = 0.0
            times, points = self._times, self._points
            for i in range(1, len(times)):
                speed = points[i - 1].distance_to(points[i]) / (
                    times[i] - times[i - 1]
                )
                if speed > top:
                    top = speed
            self._max_speed = top
        return self._max_speed

    @property
    def t_enter(self) -> float:
        """When the person appears in the scene."""
        return self._times[0]

    @property
    def t_exit(self) -> float:
        """When the person leaves the scene."""
        return self._times[-1]

    def position_at(self, time: float) -> Point:
        """Interpolated location at ``time``."""
        times, points = self._times, self._points
        if time <= times[0]:
            return points[0]
        if time >= times[-1]:
            return points[-1]
        i = bisect_right(times, time)
        t0, t1 = times[i - 1], times[i]
        frac = (time - t0) / (t1 - t0)
        return points[i - 1].towards(points[i], frac)
