"""Corridor walkers: commuters crossing a subway passage.

Each walker enters at one end of the corridor, walks its length at a
personal speed (lognormal around ~1.3 m/s), and leaves at the other end.
Direction alternates randomly; the lateral position within the corridor
width is random per walker.
"""

from __future__ import annotations

import numpy as np

from repro.geo.point import Point
from repro.geo.region import Rect
from repro.mobility.base import PathMobility


def corridor_walk(
    corridor: Rect,
    t_enter: float,
    rng: np.random.Generator,
    speed_mean: float = 1.3,
    speed_sigma: float = 0.25,
    extension: float = 40.0,
) -> PathMobility:
    """One straight walk through ``corridor`` along its long axis.

    ``extension`` prolongs the path beyond both corridor ends so walkers
    fade out of radio range naturally instead of vanishing at the exit.
    """
    speed = float(
        rng.lognormal(np.log(speed_mean), speed_sigma)
    )
    speed = max(0.5, min(speed, 3.0))
    along_x = corridor.width >= corridor.height
    if along_x:
        lateral = float(rng.uniform(corridor.y0, corridor.y1))
        start = Point(corridor.x0 - extension, lateral)
        end = Point(corridor.x1 + extension, lateral)
    else:
        lateral = float(rng.uniform(corridor.x0, corridor.x1))
        start = Point(lateral, corridor.y0 - extension)
        end = Point(lateral, corridor.y1 + extension)
    if rng.random() < 0.5:
        start, end = end, start
    duration = start.distance_to(end) / speed
    return PathMobility([(t_enter, start), (t_enter + duration, end)])
