"""Waypoint wanderers: shoppers and travellers in malls and stations.

A wanderer performs a few legs of random-waypoint motion inside the
venue with a pause at each waypoint — the paper's "hybrid" pattern in
which some people are near-static (long pauses) and others keep moving.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.geo.point import Point
from repro.geo.region import Rect
from repro.mobility.base import PathMobility


def waypoint_wander(
    region: Rect,
    t_enter: float,
    rng: np.random.Generator,
    legs_mean: float = 3.0,
    pause_mean: float = 90.0,
    speed_mean: float = 1.0,
) -> PathMobility:
    """Random-waypoint motion with pauses, ending with departure.

    Total visit time emerges from the drawn legs/pauses; typical visits
    span a few minutes (quick pass-through) to tens of minutes (browsing).
    """
    legs = 1 + int(rng.poisson(max(0.0, legs_mean - 1)))
    knots: List[Tuple[float, Point]] = []
    t = t_enter
    pos = region.sample(rng)
    knots.append((t, pos))
    for _ in range(legs):
        pause = float(rng.exponential(pause_mean))
        if pause > 1.0:
            t += pause
            knots.append((t, pos))
        target = region.sample(rng)
        speed = max(0.4, float(rng.normal(speed_mean, 0.2)))
        walk = pos.distance_to(target) / speed
        t += max(walk, 1.0)
        pos = target
        knots.append((t, pos))
    return PathMobility(knots)
