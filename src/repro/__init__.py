"""Reproduction of "City-Hunter: Hunting Smartphones in Urban Areas"
(ICDCS 2017) on a synthetic 802.11 / urban-crowd simulator.

Layer map (bottom-up):

* :mod:`repro.util`, :mod:`repro.sim`, :mod:`repro.geo` — utilities,
  discrete-event engine, planar geometry;
* :mod:`repro.dot11` — the 802.11 substrate (frames, timing, medium);
* :mod:`repro.city`, :mod:`repro.wigle` — the synthetic city and its
  wardriving registry / photo heat map;
* :mod:`repro.population`, :mod:`repro.devices`, :mod:`repro.mobility`
  — people, their phones, and how they move;
* :mod:`repro.attacks` — KARMA, MANA, preliminary City-Hunter, deauth;
* :mod:`repro.core` — the paper's contribution: the adaptive
  City-Hunter attacker;
* :mod:`repro.analysis`, :mod:`repro.experiments` — metrics and the
  table/figure regeneration harness.

The most common entry points are re-exported here.
"""

from repro.analysis import AttackSession, SessionSummary, summarize
from repro.attacks import CityHunterBasic, KarmaAttacker, ManaAttacker
from repro.city import City, CityConfig, build_city
from repro.core import CityHunter, CityHunterConfig
from repro.defenses import CanaryProbeDetector, MultiSsidDetector
from repro.experiments import (
    default_city,
    make_cityhunter,
    make_cityhunter_basic,
    make_karma,
    make_mana,
    run_experiment,
    venue_profile,
)
from repro.sim import Simulation
from repro.wigle import WigleDatabase

__version__ = "1.0.0"

__all__ = [
    "AttackSession",
    "SessionSummary",
    "summarize",
    "CityHunterBasic",
    "KarmaAttacker",
    "ManaAttacker",
    "City",
    "CityConfig",
    "build_city",
    "CityHunter",
    "CityHunterConfig",
    "CanaryProbeDetector",
    "MultiSsidDetector",
    "default_city",
    "make_cityhunter",
    "make_cityhunter_basic",
    "make_karma",
    "make_mana",
    "run_experiment",
    "venue_profile",
    "Simulation",
    "WigleDatabase",
    "__version__",
]
