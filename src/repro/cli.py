"""Command-line interface.

``python -m repro <command>`` drives the reproduction without writing
any code:

* ``run``      — one attack deployment; prints the Table-style summary
  and optionally exports per-client CSV / summary JSON;
* ``table``    — regenerate Table I, II, III or IV;
* ``fig``      — regenerate Fig. 1, 2, 4 or 5/6 (optionally one venue);
* ``report``   — regenerate everything and check every paper target;
* ``city``     — print synthetic-city statistics and the heat map;
* ``shards``   — district-sharded city runs (``shards run``) and the
  shard-count-invariance golden batch (``shards golden --check`` is
  what CI's shard-smoke job drives; see EXPERIMENTS.md);
* ``serve``    — the attacker-as-a-service layer: serve a synthetic
  probe stream (``serve run``), replay a UJI-shaped JSONL trace to a
  canonical decision digest (``serve replay``), or sweep the serving
  throughput grid (``serve bench``); see the README "Serving" section;
* ``obs``      — inspect a ``metrics.json`` artefact (summarize /
  export events as JSONL / top-N SSIDs by hits), reconstruct a client's
  hunt story from a lineage trace, render the hot-handler profile,
  watch live worker heartbeats (``obs watch``) or the whole fleet —
  including running serving processes — with per-shard epoch stats and
  run health (``obs top``), export per-epoch barrier spans
  (``obs shard-trace``) or per-probe serving-stage spans
  (``obs serve-trace``) as Perfetto-viewable traces, evaluate the
  serving SLO budgets (``obs slo``), regenerate the Prometheus text
  exposition (``obs prom``), or gate a benchmark against its committed
  baseline (see OBSERVABILITY.md).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional

from repro.analysis.export import clients_to_csv, session_to_json
from repro.experiments.attackers import ATTACKER_NAMES, make_attacker
from repro.experiments.calibration import all_profiles, default_city, venue_profile
from repro.experiments.runner import run_experiment, shared_wigle
from repro.util.tables import render_table

ATTACKERS = ATTACKER_NAMES


def _positive_duration(value: str) -> float:
    try:
        duration = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{value!r} is not a number") from None
    if duration <= 0:
        raise argparse.ArgumentTypeError("duration must be positive seconds")
    return duration


# argparse prints the type callable's __name__ in error messages.
_positive_duration.__name__ = "duration"


def _load_fault_plan(path: Optional[str]):
    if not path:
        return None
    import json

    from repro.faults.plan import FaultPlan

    with open(path) as f:
        doc = json.load(f)
    return FaultPlan.from_dict(doc)


def _cmd_run(args: argparse.Namespace) -> int:
    import os

    city = default_city(args.city_seed)
    wigle = shared_wigle(args.city_seed)
    profile = venue_profile(args.venue)
    faults = _load_fault_plan(args.fault_plan)
    saved_lineage = os.environ.get("REPRO_LINEAGE")
    if args.lineage_out:
        os.environ["REPRO_LINEAGE"] = "1"
    try:
        result = run_experiment(
            city,
            wigle,
            make_attacker(args.attacker, city, wigle, faults=faults),
            profile,
            duration=args.duration,
            seed=args.seed,
            fidelity=args.fidelity,
            faults=faults,
        )
    finally:
        if args.lineage_out:
            if saved_lineage is None:
                os.environ.pop("REPRO_LINEAGE", None)
            else:
                os.environ["REPRO_LINEAGE"] = saved_lineage
    print(
        render_table(
            ["Attack", "Total probes", "Direct/Broadcast", "Clients connected",
             "h", "h_b"],
            [result.summary.as_table_row(args.attacker)],
            title=f"{args.attacker} at the {profile.venue_name} "
            f"({args.duration:.0f}s, seed {args.seed})",
        )
    )
    if args.csv:
        with open(args.csv, "w") as f:
            f.write(clients_to_csv(result.session))
        print(f"per-client records written to {args.csv}")
    if args.json:
        with open(args.json, "w") as f:
            f.write(session_to_json(result.session, label=args.attacker))
        print(f"summary written to {args.json}")
    if args.lineage_out:
        from repro.obs.lineage import write_chrome_trace

        lineage = result.attacker.sim.lineage
        write_chrome_trace(lineage.records(), args.lineage_out)
        print(
            f"{len(lineage)} lineage records "
            f"({lineage.dropped} dropped) written to {args.lineage_out} "
            "(Chrome trace-event JSON; open in Perfetto)"
        )
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    from repro.experiments import tables

    maker = {
        "1": tables.table1,
        "2": tables.table2,
        "3": tables.table3,
        "4": tables.table4,
    }[args.number]
    result = maker() if args.number == "4" else maker(duration=args.duration)
    print(result.render())
    if args.number == "2":
        share = tables.wigle_share_of_broadcast_hits(result.runs[1])
        print(f"  WiGLE share of City-Hunter broadcast hits: {100 * share:.0f}%")
    return 0


def _cmd_fig(args: argparse.Namespace) -> int:
    from repro.experiments import figures

    if args.number == "1":
        print(figures.fig1(duration=args.duration).render())
    elif args.number == "2":
        print(figures.fig2(duration=args.duration).render())
    elif args.number == "4":
        print(figures.fig4().render())
    elif args.number in ("5", "6"):
        venues = [args.venue] if args.venue else list(all_profiles())
        slots = args.slots
        for key in venues:
            result = figures.fig5_venue(key, slots=slots, workers=args.workers)
            print(
                result.render()
                if args.number == "5"
                else result.render_breakdown()
            )
            print()
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import generate_report

    slots = None if args.full else (0, 4, 10)
    text = generate_report(
        duration=args.duration,
        fig5_slots=slots,
        fig5_slot_duration=args.slot_duration,
    )
    if args.out:
        with open(args.out, "w") as f:
            f.write(text)
        print(f"report written to {args.out}")
    else:
        print(text)
    return 0


def _cmd_city(args: argparse.Namespace) -> int:
    city = default_city(args.city_seed)
    wigle = shared_wigle(args.city_seed)
    from repro.wigle.queries import top_ssids_by_count, top_ssids_by_heat

    print(f"APs: {len(city.aps)}   photos: {len(city.photos)}   "
          f"venues: {len(city.venues)}")
    print("\ntop-5 SSIDs by AP count:")
    for ssid, count in top_ssids_by_count(wigle, 5):
        print(f"  {count:5d}  {ssid}")
    print("\ntop-5 SSIDs by heat value:")
    for ssid, heat in top_ssids_by_heat(wigle, city.heatmap, 5):
        print(f"  {int(heat):6d}  {ssid}")
    if args.heatmap:
        print("\n" + city.heatmap.render())
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.observability import (
        filter_events,
        load_metrics,
        pbfb_timeline,
        provenance_breakdown,
        run_events,
        serve_breakdown,
        shard_breakdown,
        sink_status,
        top_hit_ssids,
    )
    from repro.obs.artifacts import artifact_path

    path = args.path or artifact_path("metrics")
    try:
        doc = load_metrics(path)
    except FileNotFoundError:
        print(f"no metrics artefact at {path} (run a batch first, or pass "
              "--path)", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"invalid metrics artefact {path}: {exc}", file=sys.stderr)
        return 1

    if args.action == "summarize":
        merged = doc["merged"]
        print(f"metrics artefact: {path}")
        print(f"  runs: {doc['run_count']}   workers: {doc['workers']}")
        counters = merged["counters"]
        for key in ("attacker.probes", "attacker.responses_sent",
                    "hunter.pbfb_swaps", "deauth.cycles",
                    "phone.deauth_rescans", "faults.",
                    "seeding.textgen_fallback"):
            named = {
                k: v for k, v in counters.items() if k.startswith(key)
            }
            for k, v in sorted(named.items()):
                print(f"  {k} = {v:g}")
        rows = [
            [prov, sent, hits, misses, f"{100 * rate:.1f}%"]
            for prov, sent, hits, misses, rate in provenance_breakdown(merged)
        ]
        if rows:
            print(render_table(
                ["provenance", "ssids sent", "hits", "misses", "hit rate"],
                rows,
                title="Provenance breakdown (merged over all runs)",
            ))
        swaps = sum(len(pbfb_timeline(r["metrics"])) for r in doc["runs"])
        print(f"  PB/FB timeline points across runs: {swaps}")
        shard = shard_breakdown(merged)
        if shard is not None:
            shards = shard["shards"]
            print(
                "  sharding: %s shard(s)"
                % (shards if shards is not None else "?")
            )
            if shard["owned_min"] is not None:
                print(
                    "    owned walkers per shard: min %d  median %d  max %d"
                    % (
                        shard["owned_min"],
                        shard["owned_median"],
                        shard["owned_max"],
                    )
                )
            print(
                "    migrations in/out: %d/%d"
                % (shard["migrations_in"], shard["migrations_out"])
            )
            print(
                "    scans %d  probes %d  offers %d (stale %d)  "
                "feedbacks %d  hits %d"
                % (
                    shard["scans"],
                    shard["probes"],
                    shard["offers"],
                    shard["offers_stale"],
                    shard["feedbacks"],
                    shard["hits"],
                )
            )
        serve = serve_breakdown(merged)
        if serve is not None:
            rate = serve["probes_per_s"]
            print(
                "  serving: %d event(s), %d probe(s), %d decision(s)"
                "%s"
                % (
                    serve["events"],
                    serve["probes"],
                    serve["decisions"],
                    "   probes/s %g" % rate if rate is not None else "",
                )
            )
            print(
                "    shed %d (%.2f%%)   worker restarts %d   "
                "events failed %d   queue peak %d"
                % (
                    serve["shed"],
                    100.0 * serve["shed_fraction"],
                    serve["worker_restarts"],
                    serve["events_failed"],
                    serve["queue_depth_peak"],
                )
            )
            for stage, row in serve["stages"].items():
                p50, p99 = row["p50_us"], row["p99_us"]
                print(
                    "    %-16s count %-7d est p50 %-9s est p99 %s"
                    % (
                        stage,
                        row["count"],
                        "%.0f us" % p50 if p50 is not None else "-",
                        "%.0f us" % p99 if p99 is not None else "-",
                    )
                )
        status = sink_status(doc)
        trace_cap = (
            f"cap {status['trace.cap']:g}" if status["trace.cap"] else "cap ?"
        )
        events_cap = (
            f"cap {status['events.cap']:g}"
            if status["events.cap"]
            else "cap ?"
        )
        trace_note = (
            "  <- TRUNCATED (raise REPRO_TRACE_MAX)"
            if status["trace.dropped"]
            else ""
        )
        events_note = (
            "  <- TRUNCATED (oldest events evicted)"
            if status["events.dropped"]
            else ""
        )
        print(
            f"  trace ring: {status['trace.records']:g} records, "
            f"{status['trace.dropped']:g} dropped ({trace_cap} per run)"
            f"{trace_note}"
        )
        print(
            f"  event sink: {status['events.buffered']:g} buffered, "
            f"{status['events.dropped']:g} dropped ({events_cap} per run)"
            f"{events_note}"
        )
        return 0

    if args.action == "events":
        events = filter_events(
            run_events(doc),
            kind=args.kind,
            since=args.since,
            until=args.until,
        )
        if args.jsonl:
            with open(args.jsonl, "w") as f:
                for event in events:
                    f.write(json.dumps(event, sort_keys=True) + "\n")
            print(f"{len(events)} events written to {args.jsonl}")
        else:
            for event in events:
                print(json.dumps(event, sort_keys=True))
        return 0

    if args.action == "top-ssids":
        rows = [
            [ssid, hits]
            for ssid, hits in top_hit_ssids(doc["merged"], args.count)
        ]
        print(render_table(
            ["ssid", "hits"], rows,
            title=f"Top {args.count} SSIDs by hits",
        ))
        return 0

    raise AssertionError(f"unhandled obs action {args.action!r}")


def _cmd_obs_lineage(args: argparse.Namespace) -> int:
    from repro.obs.artifacts import artifact_path
    from repro.obs.lineage import hunt_story, load_chrome_trace

    path = args.trace or artifact_path("lineage")
    try:
        records = load_chrome_trace(path)
    except FileNotFoundError:
        print(
            f"no lineage trace at {path} (run with --lineage-out or "
            "REPRO_LINEAGE=1 first, or pass --trace)",
            file=sys.stderr,
        )
        return 1
    except ValueError as exc:
        print(f"invalid lineage trace {path}: {exc}", file=sys.stderr)
        return 1
    print(hunt_story(records, args.mac))
    return 0


def _cmd_obs_profile(args: argparse.Namespace) -> int:
    from repro.obs.artifacts import artifact_path
    from repro.obs.profiler import (
        load_profile,
        render_hot_table,
        write_collapsed,
    )

    path = args.path or artifact_path("profile")
    try:
        doc = load_profile(path)
    except FileNotFoundError:
        print(
            f"no profile artefact at {path} (run with REPRO_PROFILE=1 "
            "first, or pass --path)",
            file=sys.stderr,
        )
        return 1
    except ValueError as exc:
        print(f"invalid profile artefact {path}: {exc}", file=sys.stderr)
        return 1
    print(render_hot_table(doc, top=args.count))
    if args.collapsed:
        write_collapsed(doc, args.collapsed)
        print(
            f"collapsed stacks written to {args.collapsed} "
            "(feed to flamegraph.pl or speedscope)"
        )
    return 0


def _cmd_obs_watch(args: argparse.Namespace) -> int:
    import time

    from repro.obs.telemetry import (
        heartbeat_dir,
        render_watch,
        watch_snapshot,
    )

    directory = args.dir or heartbeat_dir()
    while True:
        rows = watch_snapshot(directory, stall_after_s=args.stall_after)
        print(render_watch(rows, args.stall_after))
        if args.once:
            return 1 if any(r["stalled"] for r in rows) else 0
        time.sleep(args.interval)
        print()


def _cmd_obs_top(args: argparse.Namespace) -> int:
    import time

    from repro.obs.telemetry import (
        fleet_snapshot,
        heartbeat_dir,
        render_top,
    )

    directory = args.dir or heartbeat_dir()
    while True:
        doc = fleet_snapshot(
            directory,
            stall_after_s=args.stall_after,
            straggler_threshold=args.straggler_threshold,
            imbalance_threshold=args.imbalance_threshold,
        )
        if args.json:
            print(json.dumps(doc, indent=2, sort_keys=True))
        else:
            print(render_top(doc))
        if args.once:
            return 0 if doc["health"]["healthy"] else 1
        time.sleep(args.interval)
        print()


def _cmd_obs_shard_trace(args: argparse.Namespace) -> int:
    from repro.obs.artifacts import artifact_path
    from repro.obs.epochs import load_epoch_dir, write_epoch_trace
    from repro.obs.telemetry import heartbeat_dir

    directory = args.dir or heartbeat_dir()
    records = load_epoch_dir(directory)
    if not records:
        print(
            f"no epochs-*.jsonl files under {directory} (run a sharded "
            "scenario with REPRO_EPOCH_TRACE=1 first, or pass --dir)",
            file=sys.stderr,
        )
        return 1
    path = write_epoch_trace(records, args.out or artifact_path("epoch_trace"))
    spans = sum(len(r) for r in records.values())
    print(
        f"{spans} epoch spans across {len(records)} shard(s) written to "
        f"{path} (Chrome trace-event JSON; open in Perfetto)"
    )
    return 0


def _cmd_obs_serve_trace(args: argparse.Namespace) -> int:
    from repro.obs.artifacts import artifact_path
    from repro.obs.reqtrace import load_reqtrace_dir, write_req_trace
    from repro.obs.telemetry import heartbeat_dir

    directory = args.dir or heartbeat_dir()
    records = load_reqtrace_dir(directory)
    if not records:
        print(
            f"no reqtrace-*.jsonl files under {directory} (run a serving "
            "workload with REPRO_REQ_TRACE=1 first, or pass --dir)",
            file=sys.stderr,
        )
        return 1
    path = write_req_trace(records, args.out or artifact_path("req_trace"))
    workers = {r["worker"] for r in records if r.get("worker") is not None}
    seqs = {r["seq"] for r in records}
    print(
        f"{len(records)} request spans over {len(seqs)} event(s) across "
        f"{len(workers)} worker track(s) written to {path} "
        "(Chrome trace-event JSON; open in Perfetto)"
    )
    return 0


def _cmd_obs_slo(args: argparse.Namespace) -> int:
    import time

    from repro.obs.artifacts import artifact_path
    from repro.obs.slo import default_slo, evaluate_slo, render_slo_report

    overrides = {}
    for item in args.budget or ():
        stage, _, value = item.partition("=")
        try:
            overrides[stage.strip()] = float(value)
        except ValueError:
            print(
                f"bad --budget {item!r} (want stage=microseconds)",
                file=sys.stderr,
            )
            return 2
    try:
        slo = default_slo(overrides, shed_budget=args.shed_budget)
    except ValueError as exc:
        print(f"slo error: {exc}", file=sys.stderr)
        return 2
    path = args.path or artifact_path("metrics")
    while True:
        try:
            with open(path) as fh:
                doc = json.load(fh)
            report = evaluate_slo(slo, doc)
        except FileNotFoundError:
            print(
                f"no artefact at {path} (run 'repro serve run' or point "
                "--path at a BENCH_serve.json)",
                file=sys.stderr,
            )
            return 2
        except ValueError as exc:
            print(f"slo error: {exc}", file=sys.stderr)
            return 2
        print(render_slo_report(report))
        if args.once:
            return 0 if report["ok"] else 1
        time.sleep(args.interval)
        print()


def _cmd_obs_prom(args: argparse.Namespace) -> int:
    from repro.analysis.observability import load_metrics
    from repro.obs.artifacts import artifact_path
    from repro.obs.prom import validate_prom_text, write_prom

    path = args.path or artifact_path("metrics")
    try:
        doc = load_metrics(path)
    except FileNotFoundError:
        print(f"no metrics artefact at {path} (run a batch first, or pass "
              "--path)", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"invalid metrics artefact {path}: {exc}", file=sys.stderr)
        return 1
    out = args.out or artifact_path("metrics", ".prom")
    written = write_prom(doc, out)
    samples = validate_prom_text(written.read_text())
    print(f"{samples} exposition samples written to {written}")
    return 0


def _cmd_obs_bench(args: argparse.Namespace) -> int:
    from repro.obs.bench import (
        SERVE_SCHEMA,
        append_trajectory,
        compare_bench,
        load_bench_doc,
        render_bench_report,
    )

    try:
        current = load_bench_doc(args.current)
        baseline = load_bench_doc(args.baseline)
        report = compare_bench(
            current, baseline, tolerance=args.tolerance
        )
    except (FileNotFoundError, ValueError) as exc:
        print(f"bench gate error: {exc}", file=sys.stderr)
        return 2
    print(render_bench_report(report))
    if args.trajectory:
        append_trajectory(args.trajectory, report)
        print(f"trajectory appended to {args.trajectory}")
    ok = report["ok"]
    if report.get("bench_schema") == SERVE_SCHEMA and not args.no_slo:
        # Serving candidates also pass through the declared-SLO layer:
        # a machine can be no slower than baseline and still blow the
        # absolute tail budget.
        from repro.obs.slo import default_slo, evaluate_slo, render_slo_report

        slo_report = evaluate_slo(default_slo(), current)
        print(render_slo_report(slo_report))
        ok = ok and slo_report["ok"]
    return 0 if ok else 1


def _cmd_shards_run(args: argparse.Namespace) -> int:
    from repro.sim.shards.engine import run_sharded
    from repro.sim.shards.scenario import ShardScenario

    scenario = ShardScenario(
        stations=args.stations,
        sensors=args.sensors,
        duration=args.duration,
        seed=args.seed,
        size_m=args.size,
        district_m=args.district,
        epoch_s=args.epoch,
    )
    result = run_sharded(
        scenario,
        shards=args.shards,
        mode=args.mode,
        backend=args.backend,
        collect_states=False,
        faults=_load_fault_plan(args.fault_plan),
        ckpt_every=args.ckpt_every,
    )
    counters = result.metrics.get("counters", {})
    doc = {
        "shards": result.shards,
        "mode": result.mode,
        "backend": result.backend,
        "epochs": result.epochs,
        "digest": result.digest(),
        "summary": result.summary,
        "wall_phase_s": round(result.wall_phase_s, 4),
        "wall_handoff_s": round(result.wall_handoff_s, 4),
        "recovery": {
            "crashes": int(counters.get("shardops.recovery.crashes", 0)),
            "respawns": int(counters.get("shardops.recovery.respawns", 0)),
            "rollback_epochs": int(
                counters.get("shardops.recovery.rollback_epochs", 0)
            ),
            "ckpt_barriers": int(counters.get("shardops.ckpt.barriers", 0)),
        },
    }
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
    summary = result.session_summary()
    print(
        "sharded city: %d shards (%s, %s backend), %d epochs"
        % (result.shards, result.mode, result.backend, result.epochs)
    )
    print(
        "  stations %d  probed %d  connected %d  (h_b %.1f%%)"
        % (
            scenario.stations,
            summary.total_clients,
            summary.connected_total,
            100.0 * summary.broadcast_hit_rate,
        )
    )
    print(
        "  scans %d  probes %d  offers %d  feedbacks %d"
        % (
            result.summary["scans"],
            result.summary["probes"],
            result.summary["offers"],
            result.summary["feedbacks"],
        )
    )
    if doc["recovery"]["crashes"] or doc["recovery"]["ckpt_barriers"]:
        print(
            "  recovery: %d crash(es), %d respawn(s), %d epoch(s) rolled "
            "back, %d checkpoint barrier(s)"
            % (
                doc["recovery"]["crashes"],
                doc["recovery"]["respawns"],
                doc["recovery"]["rollback_epochs"],
                doc["recovery"]["ckpt_barriers"],
            )
        )
    print("  digest %s" % result.digest())
    return 0


def _cmd_shards_golden(args: argparse.Namespace) -> int:
    from repro.experiments.golden import run_golden_shards
    from repro.obs.golden import diff_metrics_docs, metrics_digest

    doc = run_golden_shards(
        workers=args.workers, shards=args.shards, chaos=args.chaos
    )
    digest = metrics_digest(doc)
    print(
        "golden shards digest (shards=%s%s): %s"
        % (args.shards or "env", ", chaos" if args.chaos else "", digest)
    )
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if args.check:
        with open(args.check) as fh:
            expected = fh.read().strip()
        if digest != expected:
            print("digest MISMATCH (expected %s)" % expected, file=sys.stderr)
            fixture_json = pathlib.Path(args.check).with_suffix(".json")
            if fixture_json.exists():
                with open(fixture_json) as fh:
                    old = json.load(fh)
                print(diff_metrics_docs(old, doc), file=sys.stderr)
            return 1
        print("digest matches fixture %s" % args.check)
    return 0


def _serve_core(args: argparse.Namespace):
    """(city, wigle, core) seeded the way every serve subcommand expects."""
    from repro.serve.core import RankingCore

    city = default_city(args.city_seed)
    wigle = shared_wigle(args.city_seed)
    profile = venue_profile(args.venue)
    position = city.venue(profile.venue_name).region.center
    core = RankingCore.seeded(
        wigle, city.heatmap, position, seed=args.seed
    )
    return city, wigle, core


def _cmd_serve_run(args: argparse.Namespace) -> int:
    from repro.obs.artifacts import artifact_path
    from repro.obs.prom import validate_prom_text, write_prom
    from repro.serve.service import run_stream, serve_metrics_doc
    from repro.serve.workload import synthetic_stream
    from repro.wigle.queries import top_ssids_by_count

    city, wigle, core = _serve_core(args)
    pool = [s for s, _ in top_ssids_by_count(wigle, 60)]
    events = synthetic_stream(
        args.clients,
        args.events,
        seed=args.seed,
        ssid_pool=pool,
    )
    service = run_stream(
        core,
        events,
        workers=args.workers,
        queue_max=args.queue_max,
        shed=args.shed,
    )
    stats = core.stats()
    print(
        "served %d events with %d worker(s): %d decisions, %d shed"
        % (
            len(events),
            service.workers,
            len(service.decisions),
            int(service.shed_total()),
        )
    )
    print(
        "  db %d SSIDs  clients %d  rank cache %d hit / %d miss"
        % (
            stats["db_size"],
            stats["clients"],
            stats["rank_cache_hits"],
            stats["rank_cache_misses"],
        )
    )
    doc = serve_metrics_doc(
        service, seed=args.seed, venue=args.venue
    )
    metrics_path = pathlib.Path(args.metrics_out or artifact_path("metrics"))
    metrics_path.parent.mkdir(parents=True, exist_ok=True)
    with open(metrics_path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    prom_path = write_prom(doc, metrics_path.with_suffix(".prom"))
    samples = validate_prom_text(prom_path.read_text())
    print(f"metrics written to {metrics_path}")
    print(f"{samples} exposition samples written to {prom_path}")
    return 0


def _cmd_serve_replay(args: argparse.Namespace) -> int:
    from repro.serve.events import decisions_digest
    from repro.serve.service import run_stream
    from repro.serve.trace import load_trace, write_decisions

    try:
        events, stats = load_trace(args.trace)
    except FileNotFoundError:
        print(f"no trace at {args.trace}", file=sys.stderr)
        return 1
    if not events:
        print(
            f"trace {args.trace} yielded no events "
            f"({stats.skipped} line(s) skipped)",
            file=sys.stderr,
        )
        return 1
    _, _, core = _serve_core(args)
    service = run_stream(core, events, workers=args.workers)
    digest = decisions_digest(service.decisions)
    print(
        "replayed %d events (%d line(s) skipped): %d decisions"
        % (len(events), stats.skipped, len(service.decisions))
    )
    for line_no, reason in stats.reasons[:5]:
        print(f"  skipped line {line_no}: {reason}")
    print(f"  decisions digest {digest}")
    if args.decisions_out:
        write_decisions(service.decisions, args.decisions_out)
        print(f"decisions written to {args.decisions_out}")
    if args.strict and stats.skipped:
        return 1
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.serve.workload import run_bench_grid

    doc = run_bench_grid(
        clients=args.clients,
        workers=args.workers,
        n_events=args.events,
        seed=args.seed,
        city_seed=args.city_seed,
        repeats=args.repeats,
        req_trace=args.req_trace,
    )
    rows = [
        [
            p["clients"],
            p["workers"],
            p["probes_per_s"],
            p["p50_us"],
            p["p99_us"],
            p["shed_fraction"],
            p["rank_cache_hit_rate"],
        ]
        for p in doc["grid"]
    ]
    print(render_table(
        ["clients", "workers", "probes/s", "p50 us", "p99 us",
         "shed frac", "cache hit"],
        rows,
        title=f"serving throughput grid ({doc['n_events']} events, "
              f"seed {doc['seed']})",
    ))
    print(f"max sustained probes/s: {doc['max_probes_per_s']}")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"benchmark document written to {args.json}")
    if args.req_trace:
        from repro.obs.artifacts import artifact_path
        from repro.obs.reqtrace import load_reqtrace_dir, write_req_trace
        from repro.obs.telemetry import heartbeat_dir

        records = load_reqtrace_dir(heartbeat_dir())
        if records:
            path = write_req_trace(records, artifact_path("req_trace"))
            print(
                f"{len(records)} request spans from the heaviest grid "
                f"point written to {path} (Chrome trace-event JSON)"
            )
        else:
            print("no request spans captured", file=sys.stderr)
            return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="City-Hunter (ICDCS 2017) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one attack deployment")
    run.add_argument("--attacker", choices=ATTACKERS, default="cityhunter")
    run.add_argument("--venue", choices=sorted(all_profiles()), default="canteen")
    run.add_argument("--duration", type=_positive_duration, default=1800.0)
    run.add_argument("--seed", type=int, default=7)
    run.add_argument("--fidelity", choices=("frame", "burst"), default="frame")
    run.add_argument("--city-seed", type=int, default=42)
    run.add_argument("--fault-plan",
                     help="JSON fault plan (FaultPlan.to_dict schema) to "
                          "inject channel/outage/WiGLE faults")
    run.add_argument("--csv", help="write per-client records to this file")
    run.add_argument("--json", help="write the summary document to this file")
    run.add_argument(
        "--lineage-out",
        metavar="PATH",
        help="enable causal lineage tracing and write the run's Chrome "
             "trace-event JSON here (view in Perfetto; query with "
             "'repro obs lineage')",
    )
    run.set_defaults(func=_cmd_run)

    table = sub.add_parser("table", help="regenerate a table of the paper")
    table.add_argument("number", choices=("1", "2", "3", "4"))
    table.add_argument("--duration", type=_positive_duration, default=1800.0)
    table.set_defaults(func=_cmd_table)

    fig = sub.add_parser("fig", help="regenerate a figure of the paper")
    fig.add_argument("number", choices=("1", "2", "4", "5", "6"))
    fig.add_argument("--duration", type=_positive_duration, default=1800.0)
    fig.add_argument("--venue", choices=sorted(all_profiles()))
    fig.add_argument("--slots", type=int, nargs="*",
                     help="restrict Fig 5/6 to these hourly slots (0-11)")
    fig.add_argument("--workers", type=int,
                     help="parallel workers for Fig 5/6 (default: the "
                          "REPRO_WORKERS env var, else all cores)")
    fig.set_defaults(func=_cmd_fig)

    report = sub.add_parser(
        "report", help="regenerate everything and check paper targets"
    )
    report.add_argument("--duration", type=_positive_duration, default=1800.0)
    report.add_argument("--slot-duration", type=_positive_duration,
                        default=3600.0)
    report.add_argument("--full", action="store_true",
                        help="run all 12 hourly Fig 5 slots per venue")
    report.add_argument("--out", help="write the markdown report here")
    report.set_defaults(func=_cmd_report)

    obs = sub.add_parser(
        "obs", help="inspect a metrics.json observability artefact"
    )
    obs_sub = obs.add_subparsers(dest="action", required=True)
    obs_summarize = obs_sub.add_parser(
        "summarize", help="headline counters + provenance breakdown"
    )
    obs_events = obs_sub.add_parser(
        "events", help="dump the batch's structured events as JSON Lines"
    )
    obs_events.add_argument(
        "--jsonl", help="write events here instead of stdout"
    )
    obs_events.add_argument(
        "--kind", help="only events of this kind (e.g. fault.outage)"
    )
    obs_events.add_argument(
        "--since", type=float, metavar="T",
        help="only events with sim time >= T seconds",
    )
    obs_events.add_argument(
        "--until", type=float, metavar="T",
        help="only events with sim time < T seconds",
    )
    obs_top = obs_sub.add_parser(
        "top-ssids", help="top-N SSIDs by recorded hits"
    )
    obs_top.add_argument("-n", "--count", type=int, default=10)
    for obs_parser in (obs_summarize, obs_events, obs_top):
        obs_parser.add_argument(
            "--path",
            help="metrics artefact to read (default: metrics.json in the "
                 "resolved artefact directory)",
        )
        obs_parser.set_defaults(func=_cmd_obs)

    obs_lineage = obs_sub.add_parser(
        "lineage",
        help="print one client's hunt story from a lineage trace file",
    )
    obs_lineage.add_argument("mac", help="client MAC address")
    obs_lineage.add_argument(
        "--trace",
        help="Chrome trace-event JSON written by 'repro run --lineage-out' "
             "(default: lineage.json in the resolved artefact directory)",
    )
    obs_lineage.set_defaults(func=_cmd_obs_lineage)

    obs_profile = obs_sub.add_parser(
        "profile", help="hot-handler table from a profile artefact"
    )
    obs_profile.add_argument(
        "--path",
        help="profile artefact to read (default: profile.json in the "
             "resolved artefact directory; produced under REPRO_PROFILE=1)",
    )
    obs_profile.add_argument("-n", "--count", type=int, default=15)
    obs_profile.add_argument(
        "--collapsed", metavar="PATH",
        help="also write flamegraph-ready collapsed stacks here",
    )
    obs_profile.set_defaults(func=_cmd_obs_profile)

    obs_watch = obs_sub.add_parser(
        "watch", help="tail live worker heartbeats and flag stalls"
    )
    obs_watch.add_argument(
        "--dir",
        help="telemetry directory (default: telemetry/ in the resolved "
             "artefact directory)",
    )
    obs_watch.add_argument(
        "--once", action="store_true",
        help="print one snapshot and exit (status 1 when stalled)",
    )
    obs_watch.add_argument(
        "--stall-after", type=float, default=60.0, metavar="S",
        help="flag a worker silent for more than S seconds (default 60)",
    )
    obs_watch.add_argument(
        "--interval", type=float, default=5.0, metavar="S",
        help="refresh period in follow mode (default 5)",
    )
    obs_watch.set_defaults(func=_cmd_obs_watch)

    obs_fleet = obs_sub.add_parser(
        "top",
        help="live fleet dashboard: heartbeats + per-shard epoch stats "
             "+ run health",
    )
    obs_fleet.add_argument(
        "--dir",
        help="telemetry directory (default: telemetry/ in the resolved "
             "artefact directory)",
    )
    obs_fleet.add_argument(
        "--once", action="store_true",
        help="print one snapshot and exit (non-zero status when the run "
             "is stalled or imbalanced)",
    )
    obs_fleet.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable fleet snapshot instead of tables",
    )
    obs_fleet.add_argument(
        "--stall-after", type=float, default=60.0, metavar="S",
        help="flag a worker/shard silent for more than S seconds "
             "(default 60)",
    )
    obs_fleet.add_argument(
        "--interval", type=float, default=5.0, metavar="S",
        help="refresh period in follow mode (default 5)",
    )
    obs_fleet.add_argument(
        "--straggler-threshold", type=float, default=4.0, metavar="R",
        help="flag when the slowest shard's mean phase time exceeds R x "
             "the median (default 4)",
    )
    obs_fleet.add_argument(
        "--imbalance-threshold", type=float, default=4.0, metavar="R",
        help="flag when one shard's handoff volume exceeds R x the mean "
             "(default 4)",
    )
    obs_fleet.set_defaults(func=_cmd_obs_top)

    obs_shard_trace = obs_sub.add_parser(
        "shard-trace",
        help="export per-epoch barrier spans as Chrome trace-event JSON",
    )
    obs_shard_trace.add_argument(
        "--dir",
        help="telemetry directory holding epochs-*.jsonl (default: "
             "telemetry/ in the resolved artefact directory)",
    )
    obs_shard_trace.add_argument(
        "--out",
        help="trace file to write (default: epoch_trace.json in the "
             "resolved artefact directory)",
    )
    obs_shard_trace.set_defaults(func=_cmd_obs_shard_trace)

    obs_serve_trace = obs_sub.add_parser(
        "serve-trace",
        help="export per-probe serving-stage spans as Chrome trace-event "
             "JSON (ingress + per-worker tracks, flow arrows per probe)",
    )
    obs_serve_trace.add_argument(
        "--dir",
        help="telemetry directory holding reqtrace-*.jsonl (default: "
             "telemetry/ in the resolved artefact directory)",
    )
    obs_serve_trace.add_argument(
        "--out",
        help="trace file to write (default: req_trace.json in the "
             "resolved artefact directory)",
    )
    obs_serve_trace.set_defaults(func=_cmd_obs_serve_trace)

    obs_slo = obs_sub.add_parser(
        "slo",
        help="evaluate the serving SLO (p99 stage budgets + shed budget) "
             "against a metrics.json or BENCH_serve.json artefact",
    )
    obs_slo.add_argument(
        "--path",
        help="artefact to evaluate (default: metrics.json in the "
             "resolved artefact directory; a repro.bench_serve/v1 "
             "document also works)",
    )
    obs_slo.add_argument(
        "--once", action="store_true",
        help="evaluate once and exit (status 1 on budget breach)",
    )
    obs_slo.add_argument(
        "--interval", type=float, default=5.0, metavar="S",
        help="refresh period in follow mode (default 5)",
    )
    obs_slo.add_argument(
        "--budget", action="append", metavar="STAGE=US",
        help="override one stage's p99 budget in microseconds (stages: "
             "queue_wait, commit_wait, select_latency, apply); repeatable",
    )
    obs_slo.add_argument(
        "--shed-budget", type=float, metavar="FRAC",
        help="override the shed-fraction budget (default 0.05)",
    )
    obs_slo.set_defaults(func=_cmd_obs_slo)

    obs_prom = obs_sub.add_parser(
        "prom",
        help="regenerate the Prometheus text exposition from metrics.json",
    )
    obs_prom.add_argument(
        "--path",
        help="metrics artefact to read (default: metrics.json in the "
             "resolved artefact directory)",
    )
    obs_prom.add_argument(
        "--out",
        help="exposition file to write (default: metrics.prom in the "
             "resolved artefact directory)",
    )
    obs_prom.set_defaults(func=_cmd_obs_prom)

    obs_bench = obs_sub.add_parser(
        "bench", help="gate a benchmark artefact against its baseline"
    )
    obs_bench.add_argument(
        "--current", required=True, help="freshly produced BENCH_*.json"
    )
    obs_bench.add_argument(
        "--baseline", required=True,
        help="committed baseline (benchmarks/baselines/BENCH_*.json)",
    )
    obs_bench.add_argument(
        "--tolerance", type=float, default=0.05, metavar="FRAC",
        help="allowed fractional regression (default 0.05 = 5%%)",
    )
    obs_bench.add_argument(
        "--trajectory", metavar="PATH",
        help="append the comparison to this JSONL trajectory artefact",
    )
    obs_bench.add_argument(
        "--no-slo", action="store_true",
        help="skip the declared-SLO evaluation that serving candidates "
             "(repro.bench_serve/v1) otherwise get for free",
    )
    obs_bench.set_defaults(func=_cmd_obs_bench)

    serve = sub.add_parser(
        "serve", help="attacker-as-a-service probe-stream ranking"
    )
    serve_sub = serve.add_subparsers(dest="serve_command", required=True)

    serve_run = serve_sub.add_parser(
        "run", help="serve a deterministic synthetic probe stream"
    )
    serve_run.add_argument("--clients", type=int, default=50,
                           help="synthetic client population (default 50)")
    serve_run.add_argument("--events", type=int, default=2000,
                           help="stream length in events (default 2000)")
    serve_run.add_argument("--shed", action="store_true",
                           help="drop probes when the ingress queue is full "
                                "instead of backpressuring")
    serve_run.add_argument("--queue-max", type=int,
                           help="ingress queue bound (default: "
                                "REPRO_SERVE_QUEUE_MAX, else 1024)")
    serve_run.add_argument(
        "--metrics-out", metavar="PATH",
        help="metrics artefact to write (default: metrics.json in the "
             "resolved artefact directory; a .prom exposition is written "
             "alongside)",
    )
    serve_run.set_defaults(func=_cmd_serve_run)

    serve_replay = serve_sub.add_parser(
        "replay",
        help="replay a UJI-shaped JSONL probe trace to burst decisions",
    )
    serve_replay.add_argument("trace", help="JSONL trace file")
    serve_replay.add_argument(
        "--decisions-out", metavar="PATH",
        help="write the burst decisions as JSONL here",
    )
    serve_replay.add_argument(
        "--strict", action="store_true",
        help="exit non-zero when any trace line was skipped",
    )
    serve_replay.set_defaults(func=_cmd_serve_replay)

    serve_bench = serve_sub.add_parser(
        "bench", help="sweep the serving throughput grid"
    )
    serve_bench.add_argument("--clients", type=int, nargs="+",
                             default=[20, 100])
    serve_bench.add_argument("--workers", type=int, nargs="+",
                             default=[1, 4])
    serve_bench.add_argument("--events", type=int, default=4000)
    serve_bench.add_argument("--repeats", type=int, default=1,
                             help="runs per grid point; fastest kept")
    serve_bench.add_argument("--seed", type=int, default=0)
    serve_bench.add_argument("--city-seed", type=int, default=42)
    serve_bench.add_argument(
        "--json", help="write the repro.bench_serve/v1 document here"
    )
    serve_bench.add_argument(
        "--req-trace", action="store_true",
        help="request-trace the heaviest grid point and export the "
             "Chrome trace (req_trace.json in the artefact directory)",
    )
    serve_bench.set_defaults(func=_cmd_serve_bench)

    for serve_parser in (serve_run, serve_replay):
        serve_parser.add_argument(
            "--venue", choices=sorted(all_profiles()), default="canteen",
            help="venue whose centre seeds the attacker position",
        )
        serve_parser.add_argument("--seed", type=int, default=7)
        serve_parser.add_argument("--city-seed", type=int, default=42)
        serve_parser.add_argument(
            "--workers", type=int,
            help="attacker-node worker count (default: REPRO_WORKERS, "
                 "else 4)",
        )

    city = sub.add_parser("city", help="inspect the synthetic city")
    city.add_argument("--city-seed", type=int, default=42)
    city.add_argument("--heatmap", action="store_true",
                      help="also render the ASCII heat map")
    city.set_defaults(func=_cmd_city)

    shards = sub.add_parser(
        "shards", help="district-sharded city simulation"
    )
    shards_sub = shards.add_subparsers(dest="shards_command", required=True)

    shards_run = shards_sub.add_parser(
        "run", help="run one sharded city scenario"
    )
    shards_run.add_argument("--stations", type=int, default=2000)
    shards_run.add_argument("--sensors", type=int, default=200)
    shards_run.add_argument("--duration", type=_positive_duration,
                            default=600.0)
    shards_run.add_argument("--seed", type=int, default=7)
    shards_run.add_argument("--size", type=float, default=1680.0,
                            help="city edge length in metres")
    shards_run.add_argument("--district", type=float, default=120.0,
                            help="district edge length in metres")
    shards_run.add_argument("--epoch", type=float, default=5.0,
                            help="handoff barrier spacing in sim seconds")
    shards_run.add_argument("--shards", type=int,
                            help="shard count (default: REPRO_SHARDS, else 1)")
    shards_run.add_argument("--mode", choices=("inline", "process"),
                            help="execution mode (default: REPRO_SHARD_MODE)")
    shards_run.add_argument("--backend", choices=("numpy", "python", "auto"),
                            help="batch backend (default: "
                                 "REPRO_SHARDS_BACKEND, else numpy)")
    shards_run.add_argument("--fault-plan", metavar="PATH",
                            help="JSON fault plan; its shard_faults block "
                                 "injects crash/stall/corrupt faults")
    shards_run.add_argument("--ckpt-every", type=int, metavar="N",
                            help="checkpoint every N epochs (default: "
                                 "REPRO_SHARD_CKPT_EVERY, else off)")
    shards_run.add_argument("--json", help="write the run document here")
    shards_run.set_defaults(func=_cmd_shards_run)

    shards_golden = shards_sub.add_parser(
        "golden",
        help="run the sharded golden batch and optionally check its "
             "digest against a fixture (the CI shard-smoke gate)",
    )
    shards_golden.add_argument("--shards", type=int,
                               help="shard count (default: REPRO_SHARDS)")
    shards_golden.add_argument("--workers", type=int,
                               help="executor width (default: REPRO_WORKERS)")
    shards_golden.add_argument("--check", metavar="FIXTURE",
                               help="digest fixture to compare against "
                                    "(tests/data/golden_shards.digest)")
    shards_golden.add_argument("--chaos", action="store_true",
                               help="inject the golden shard-crash fault "
                                    "(process mode + checkpoints); the "
                                    "digest must still match the fixture")
    shards_golden.add_argument("--json", help="write the metrics doc here")
    shards_golden.set_defaults(func=_cmd_shards_golden)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
