"""Attacker radio outage schedules.

An outage schedule is generated *eagerly* at scenario build time from a
dedicated RNG stream — a fixed, inspectable list of windows rather than
events that mutate hidden state mid-run.  That makes schedules easy to
assert on in tests, cheap to query from the hot receive path (bisect on
window starts), and trivially deterministic: the same run seed always
yields the same windows.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.faults.plan import OutageParams


@dataclass(frozen=True)
class OutageWindow:
    """One half-open ``[start, end)`` interval of radio death."""

    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class OutageSchedule:
    """An ordered, non-overlapping set of outage windows."""

    def __init__(self, windows: Tuple[OutageWindow, ...]):
        for a, b in zip(windows, windows[1:]):
            if b.start < a.end:
                raise ValueError("outage windows must be ordered and disjoint")
        self.windows = tuple(windows)
        self._starts = [w.start for w in self.windows]

    @classmethod
    def generate(
        cls,
        params: OutageParams,
        duration: float,
        rng: np.random.Generator,
    ) -> "OutageSchedule":
        """Draw a schedule over ``[0, duration)`` simulated seconds.

        Onsets are a Poisson process at ``rate_per_hour``; each outage
        lasts an exponential ``duration_mean_s`` floored at
        ``duration_min_s``.  The next onset is drawn from the *end* of
        the previous outage, so windows never overlap.
        """
        windows: List[OutageWindow] = []
        if params.rate_per_hour > 0.0:
            mean_gap = 3600.0 / params.rate_per_hour
            t = 0.0
            while True:
                t += float(rng.exponential(mean_gap))
                if t >= duration:
                    break
                length = max(
                    params.duration_min_s,
                    float(rng.exponential(params.duration_mean_s)),
                )
                windows.append(OutageWindow(t, t + length))
                t += length
        return cls(tuple(windows))

    def down_at(self, time: float) -> bool:
        """Whether the radio is dead at simulation time ``time``."""
        idx = bisect.bisect_right(self._starts, time) - 1
        return idx >= 0 and time < self.windows[idx].end

    @property
    def total_downtime(self) -> float:
        """Summed length of every window (seconds)."""
        return sum(w.duration for w in self.windows)

    def __len__(self) -> int:
        return len(self.windows)
