"""Injected worker crashes (executor-level chaos).

``FaultPlan.worker_crashes = N`` makes the first ``N`` execution
attempts of a spec die before the run starts, as if the worker process
was OOM-killed mid-batch.  The executor passes the zero-based attempt
number alongside the spec, so the crash decision is a pure function of
``(plan, attempt)`` — fully deterministic, fully picklable, and the
retried attempt (same spec, same derived seed) produces a RunSummary
bit-identical to a crash-free execution.

In a pool worker the crash is a hard ``os._exit`` so the parent
genuinely observes ``BrokenProcessPool``; inline (serial) execution
raises :class:`InjectedWorkerCrash` instead, because taking down the
caller's interpreter would be rather more chaos than requested.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.faults.plan import FaultPlan

CRASH_EXIT_CODE = 78
"""The injected crash's exit status (EX_CONFIG: unmistakably synthetic)."""

_IN_POOL_WORKER = False


class InjectedWorkerCrash(RuntimeError):
    """Raised instead of ``os._exit`` when executing inline."""


def mark_pool_worker() -> None:
    """Pool initializer: record that this process may hard-exit."""
    global _IN_POOL_WORKER
    _IN_POOL_WORKER = True


def in_pool_worker() -> bool:
    """Whether this process was marked as a pool worker."""
    return _IN_POOL_WORKER


def maybe_crash(plan: Optional[FaultPlan], attempt: int) -> None:
    """Die iff the plan schedules a crash for this attempt number."""
    if plan is None or attempt >= plan.worker_crashes:
        return
    if _IN_POOL_WORKER:
        os._exit(CRASH_EXIT_CODE)
    raise InjectedWorkerCrash(
        "injected worker crash (attempt %d of %d scheduled)"
        % (attempt, plan.worker_crashes)
    )
