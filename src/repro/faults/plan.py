"""The fault plan: one picklable description of every injected fault.

A plan is *declarative* — it names distributions and fractions, never
concrete draw outcomes.  All randomness is derived either from the run's
own :class:`~repro.util.rng.RngRegistry` (dedicated ``faults.*`` streams,
so enabling a fault never perturbs the draws of any other subsystem) or
from the plan's ``seed`` salt (WiGLE corruption, which must be decided
before a simulation exists).  Two runs with the same spec and the same
plan therefore suffer *bit-identical* faults, and an empty plan is
byte-for-byte equivalent to no plan at all.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Optional

from repro.faults.shards import ShardFaultParams


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError("%s must be a probability, got %r" % (name, value))


@dataclass(frozen=True)
class GilbertElliottParams:
    """Two-state bursty-loss channel (Gilbert–Elliott).

    The chain advances one step per delivery attempt: ``p_bad`` is the
    good→bad transition probability, ``p_good`` the bad→good recovery,
    and each state drops frames independently at its own rate.  The
    defaults model the contention bursts of a crowded 2.4 GHz channel:
    rare onsets, short bursts, heavy loss while inside one.
    """

    p_bad: float = 0.05
    p_good: float = 0.35
    loss_good: float = 0.0
    loss_bad: float = 0.8

    def __post_init__(self) -> None:
        for name in ("p_bad", "p_good", "loss_good", "loss_bad"):
            _check_probability(name, getattr(self, name))
        if self.p_bad + self.p_good <= 0.0:
            raise ValueError("degenerate chain: p_bad + p_good must be > 0")

    @property
    def stationary_bad(self) -> float:
        """Long-run share of delivery attempts spent in the bad state."""
        return self.p_bad / (self.p_bad + self.p_good)

    @property
    def marginal_loss(self) -> float:
        """Long-run loss rate (what a uniform channel would need)."""
        bad = self.stationary_bad
        return bad * self.loss_bad + (1.0 - bad) * self.loss_good


@dataclass(frozen=True)
class OutageParams:
    """Attacker radio outages (NIC resets, thermal throttling, power).

    Outage onsets arrive as a Poisson process at ``rate_per_hour``;
    each outage lasts an exponential ``duration_mean_s`` (floored at
    ``duration_min_s``).  While an outage is active the attacker NIC is
    dead: it neither receives probes nor transmits responses.
    """

    rate_per_hour: float = 2.0
    duration_mean_s: float = 45.0
    duration_min_s: float = 5.0

    def __post_init__(self) -> None:
        if self.rate_per_hour < 0:
            raise ValueError(
                "rate_per_hour must be >= 0, got %r" % self.rate_per_hour
            )
        if self.duration_mean_s <= 0 or self.duration_min_s < 0:
            raise ValueError("outage durations must be positive")


@dataclass(frozen=True)
class WigleFaultParams:
    """Corrupted / missing records in the WiGLE export.

    Real wardriving registries carry mojibake SSIDs, stale entries and
    plain gaps.  ``missing_fraction`` of SSIDs are absent from the
    export; a further ``corrupt_fraction`` are present but garbled
    beyond use.  Seeding skips both kinds and backfills from
    carrier/textgen SSIDs so the database keeps its designed size.
    """

    corrupt_fraction: float = 0.0
    missing_fraction: float = 0.0

    def __post_init__(self) -> None:
        _check_probability("corrupt_fraction", self.corrupt_fraction)
        _check_probability("missing_fraction", self.missing_fraction)
        if self.corrupt_fraction + self.missing_fraction > 1.0:
            raise ValueError("corrupt + missing fractions exceed 1.0")


@dataclass(frozen=True)
class FaultPlan:
    """Everything one run should suffer.  Empty by default.

    ``seed`` salts the plan-level draws (WiGLE corruption); in-run
    draws (channel, outages) come from the simulation's own ``faults.*``
    RNG streams, so they are derived from the run seed instead.
    ``worker_crashes`` is executor-level chaos: the first N attempts at
    executing the spec die as if the worker process was OOM-killed,
    which exercises retry + checkpoint without touching the run itself.
    ``shard_faults`` is shard-level chaos for district-sharded runs:
    crash / stall / corrupt-handoff faults against one seed-hashed
    shard, exercising the engine's checkpoint-recovery path.
    """

    seed: int = 0
    channel: Optional[GilbertElliottParams] = None
    outages: Optional[OutageParams] = None
    wigle: Optional[WigleFaultParams] = None
    worker_crashes: int = 0
    shard_faults: Optional[ShardFaultParams] = None

    def __post_init__(self) -> None:
        if self.worker_crashes < 0:
            raise ValueError(
                "worker_crashes must be >= 0, got %r" % self.worker_crashes
            )

    @property
    def empty(self) -> bool:
        """True when the plan injects nothing at all."""
        return (
            self.channel is None
            and self.outages is None
            and self.wigle is None
            and self.worker_crashes == 0
            and (self.shard_faults is None or self.shard_faults.empty)
        )

    def to_dict(self) -> dict:
        """JSON-serialisable form (the CLI ``--fault-plan`` schema)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultPlan":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        known = {
            "seed",
            "channel",
            "outages",
            "wigle",
            "worker_crashes",
            "shard_faults",
        }
        unknown = set(doc) - known
        if unknown:
            raise ValueError(
                "unknown fault-plan keys: %s" % ", ".join(sorted(unknown))
            )
        channel = doc.get("channel")
        outages = doc.get("outages")
        wigle = doc.get("wigle")
        shard_faults = doc.get("shard_faults")
        return cls(
            seed=int(doc.get("seed", 0)),
            channel=(
                GilbertElliottParams(**channel) if channel is not None else None
            ),
            outages=OutageParams(**outages) if outages is not None else None,
            wigle=WigleFaultParams(**wigle) if wigle is not None else None,
            worker_crashes=int(doc.get("worker_crashes", 0)),
            shard_faults=(
                ShardFaultParams(**shard_faults)
                if shard_faults is not None
                else None
            ),
        )
