"""Deterministic fault injection (``repro.faults``).

City-Hunter's headline numbers were measured over real, unreliable air;
this package reintroduces the non-idealities the simulation otherwise
abstracts away, as *seed-derived*, fully deterministic fault plans:

* :class:`~repro.faults.plan.FaultPlan` — the picklable description of
  every fault a run should suffer, carried on
  :class:`~repro.experiments.parallel.RunSpec` /
  :class:`~repro.experiments.scenarios.ScenarioConfig`;
* :class:`~repro.faults.gilbert.GilbertElliottChannel` — bursty frame
  loss for :class:`~repro.dot11.medium.Medium`;
* :class:`~repro.faults.outages.OutageSchedule` — attacker radio
  outages honoured by :class:`~repro.attacks.base.RogueAp`;
* :mod:`~repro.faults.wigle` — corrupted / missing WiGLE records that
  :func:`~repro.core.seeding.seed_database` skips and backfills;
* :mod:`~repro.faults.chaos` — injected worker crashes exercising the
  executor's retry + checkpoint machinery;
* :mod:`~repro.faults.shards` — shard-level crash / stall / corrupt
  handoff faults exercising the sharded engine's epoch-barrier
  checkpoint recovery.

Every injected fault is counted under ``faults.*`` metrics and, where
the frequency allows, evented through the run's
:class:`~repro.obs.events.EventSink`.  An empty plan injects nothing
and leaves every byte of a run's output unchanged.
"""

from repro.faults.chaos import InjectedWorkerCrash, maybe_crash
from repro.faults.gilbert import GilbertElliottChannel
from repro.faults.outages import OutageSchedule, OutageWindow
from repro.faults.plan import (
    FaultPlan,
    GilbertElliottParams,
    OutageParams,
    WigleFaultParams,
)
from repro.faults.shards import (
    SHARD_CRASH_EXIT_CODE,
    InjectedShardCrash,
    ShardFaultParams,
)
from repro.faults.wigle import ssid_fault_kind

__all__ = [
    "FaultPlan",
    "GilbertElliottParams",
    "GilbertElliottChannel",
    "InjectedShardCrash",
    "InjectedWorkerCrash",
    "OutageParams",
    "OutageSchedule",
    "OutageWindow",
    "SHARD_CRASH_EXIT_CODE",
    "ShardFaultParams",
    "WigleFaultParams",
    "maybe_crash",
    "ssid_fault_kind",
]
