"""Deterministic corrupted/missing WiGLE record selection.

Whether a given SSID's records survive the export is decided by hashing
``(plan seed, ssid)`` through the same SHA-256 fan-out the RNG registry
uses — a pure function, so the *same* SSIDs are corrupted for every
attacker, every run and every worker under one plan seed, and the
decision needs no live registry or simulation to evaluate.
"""

from __future__ import annotations

from typing import Optional

from repro.faults.plan import WigleFaultParams
from repro.util.rng import derive_seed

_DENOM = float(2**64)


def ssid_fault_kind(
    params: Optional[WigleFaultParams], salt: int, ssid: str
) -> Optional[str]:
    """``"missing"`` / ``"corrupt"`` / ``None`` for one SSID.

    The unit draw comes from ``derive_seed(salt, "wigle-fault:<ssid>")``
    mapped onto [0, 1); the missing band is checked first so the two
    fractions partition the space without overlap.
    """
    if params is None:
        return None
    if params.missing_fraction <= 0.0 and params.corrupt_fraction <= 0.0:
        return None
    u = derive_seed(salt, f"wigle-fault:{ssid}") / _DENOM
    if u < params.missing_fraction:
        return "missing"
    if u < params.missing_fraction + params.corrupt_fraction:
        return "corrupt"
    return None
