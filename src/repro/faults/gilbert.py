"""The Gilbert–Elliott bursty-loss channel.

A two-state Markov chain (good/bad) advanced one step per delivery
attempt, with an independent loss draw in whichever state results.
Bursts arise naturally: once the chain enters the bad state it tends to
stay for ``1 / p_good`` attempts, so losses cluster the way channel
contention clusters them in the field — unlike the medium's uniform
``loss_rate`` where every frame is an independent coin flip.

The chain owns no RNG; the caller hands it a dedicated stream (the
medium uses ``sim.rngs.stream("faults.channel")``) so enabling bursty
loss never perturbs any other subsystem's draws.
"""

from __future__ import annotations

import numpy as np

from repro.faults.plan import GilbertElliottParams
from repro.util.rng import BufferedUniform


class GilbertElliottChannel:
    """Mutable chain state plus loss bookkeeping for one run.

    The chain is this stream's sole consumer, so its uniform draws are
    served from a :class:`~repro.util.rng.BufferedUniform` block —
    bit-identical values in the same order, at a fraction of the
    per-call generator overhead on the frame-delivery hot path.
    """

    __slots__ = ("params", "_rng", "_uniform", "bad", "attempts", "losses")

    def __init__(self, params: GilbertElliottParams, rng: np.random.Generator):
        self.params = params
        self._rng = rng
        self._uniform = BufferedUniform(rng)
        self.bad = False
        self.attempts = 0
        self.losses = 0

    def lost(self) -> bool:
        """Advance the chain one delivery attempt; True drops the frame."""
        p = self.params
        draw = self._uniform.next
        if self.bad:
            if draw() < p.p_good:
                self.bad = False
        else:
            if draw() < p.p_bad:
                self.bad = True
        self.attempts += 1
        loss_p = p.loss_bad if self.bad else p.loss_good
        dropped = loss_p > 0.0 and draw() < loss_p
        if dropped:
            self.losses += 1
        return dropped

    @property
    def observed_loss_rate(self) -> float:
        """Fraction of attempts dropped so far."""
        if self.attempts == 0:
            return 0.0
        return self.losses / self.attempts
