"""Shard-level chaos: deterministic crash / stall / corruption faults.

The district-sharded engine (:mod:`repro.sim.shards`) runs one process
per shard; real fleets lose members mid-campaign.  A
:class:`ShardFaultParams` block on :class:`~repro.faults.plan.FaultPlan`
schedules exactly one of each failure class against one *seed-hashed*
target shard:

* **crash** — the target shard hard-exits (``os._exit``) when it
  receives phase A of ``crash_epoch``, exactly like an OOM kill.  In
  inline mode the driver raises :class:`InjectedShardCrash` instead
  (inline has no recovery path — taking down the caller would be more
  chaos than requested).
* **stall** — the target sleeps ``stall_s`` wall seconds before phase A
  of ``stall_epoch``, tripping the coordinator's per-phase deadline.
* **corrupt** — one record of the target's phase A outbox at
  ``corrupt_epoch`` is truncated or kind-mangled (or, when the outbox
  happens to be empty, a malformed record is injected), tripping the
  receiver-side :func:`~repro.sim.shards.handoff.validate_batch`.

Every decision is a pure function of ``(params, plan seed, shard id,
shard count, epoch, incarnation)`` — fully deterministic and therefore
CI-replayable.  Faults only fire at ``incarnation < crash_incarnations``
(default: the first incarnation only), so a recovered run replays
clean and must reproduce the uninterrupted digest bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.util.rng import derive_seed

SHARD_CRASH_EXIT_CODE = 86
"""Exit status of an injected shard crash (unmistakably synthetic)."""

CORRUPT_KINDS = ("truncate", "mangle")


class InjectedShardCrash(RuntimeError):
    """Raised instead of ``os._exit`` when shards run inline."""


@dataclass(frozen=True)
class ShardFaultParams:
    """Deterministic shard-level faults for one sharded run.

    ``shard`` pins the target explicitly; ``None`` (the default) hashes
    the plan seed into a shard id, so the same plan stresses different
    stripes at different shard counts without editing the plan.
    ``crash_incarnations`` is the number of successive incarnations that
    crash — values above the engine's recovery budget
    (``REPRO_SHARD_MAX_RECOVERIES``) model a persistent fault.
    """

    crash_epoch: Optional[int] = None
    crash_incarnations: int = 1
    stall_epoch: Optional[int] = None
    stall_s: float = 0.0
    corrupt_epoch: Optional[int] = None
    corrupt_kind: str = "truncate"
    shard: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("crash_epoch", "stall_epoch", "corrupt_epoch"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError("%s must be >= 0, got %r" % (name, value))
        if self.crash_incarnations < 1:
            raise ValueError(
                "crash_incarnations must be >= 1, got %r"
                % self.crash_incarnations
            )
        if self.stall_epoch is not None and self.stall_s <= 0:
            raise ValueError("stall_epoch set but stall_s is not positive")
        if self.corrupt_kind not in CORRUPT_KINDS:
            raise ValueError(
                "corrupt_kind must be one of %s, got %r"
                % (", ".join(CORRUPT_KINDS), self.corrupt_kind)
            )
        if self.shard is not None and self.shard < 0:
            raise ValueError("shard must be >= 0, got %r" % self.shard)

    @property
    def empty(self) -> bool:
        """True when no fault is scheduled at all."""
        return (
            self.crash_epoch is None
            and self.stall_epoch is None
            and self.corrupt_epoch is None
        )


def target_shard(params: ShardFaultParams, seed: int, shards: int) -> int:
    """The shard the faults land on: explicit pin or seed hash."""
    if params.shard is not None:
        return params.shard % shards
    return derive_seed(seed, "shard-fault:target") % shards


def _armed(
    params: ShardFaultParams,
    seed: int,
    shard_id: int,
    shards: int,
    incarnation: int,
    fire_incarnations: int,
) -> bool:
    return (
        incarnation < fire_incarnations
        and shard_id == target_shard(params, seed, shards)
    )


def crash_now(
    params: ShardFaultParams,
    seed: int,
    shard_id: int,
    shards: int,
    epoch: int,
    incarnation: int,
) -> bool:
    """Whether this shard should die at this phase A receipt."""
    return (
        params.crash_epoch is not None
        and epoch == params.crash_epoch
        and _armed(
            params, seed, shard_id, shards, incarnation,
            params.crash_incarnations,
        )
    )


def stall_seconds(
    params: ShardFaultParams,
    seed: int,
    shard_id: int,
    shards: int,
    epoch: int,
    incarnation: int,
) -> float:
    """Wall seconds this shard should stall before this phase A (0 = no)."""
    if params.stall_epoch is None or epoch != params.stall_epoch:
        return 0.0
    if not _armed(params, seed, shard_id, shards, incarnation, 1):
        return 0.0
    return float(params.stall_s)


def corrupt_now(
    params: ShardFaultParams,
    seed: int,
    shard_id: int,
    shards: int,
    epoch: int,
    incarnation: int,
) -> bool:
    """Whether this shard's phase A outbox should be corrupted."""
    return (
        params.corrupt_epoch is not None
        and epoch == params.corrupt_epoch
        and _armed(params, seed, shard_id, shards, incarnation, 1)
    )


def corrupt_outbox(params: ShardFaultParams, outbox: dict) -> bool:
    """Mangle one outgoing record in place (deterministically).

    ``truncate`` drops the tail fields of the first record of the
    lowest-numbered destination; ``mangle`` rewrites its kind tag.  An
    empty outbox gets a malformed record *injected* instead, so the
    fault always produces something for the receiver to reject.
    Returns True (the outbox is always left invalid).
    """
    for dest in sorted(outbox):
        records = outbox[dest]
        if records:
            record = records[0]
            if params.corrupt_kind == "truncate":
                records[0] = record[:3]
            else:
                records[0] = ("x",) + record[1:]
            return True
    outbox.setdefault(0, []).append(("x", 0.0, 0, 0, 0))
    return True
