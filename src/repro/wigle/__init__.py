"""WiGLE-like wardriving registry.

A queryable snapshot of every AP in the synthetic city, answering the
two query shapes City-Hunter issues: the N free networks nearest the
attack site, and city-wide free SSIDs ranked by AP count or by photo
heat value.
"""

from repro.wigle.database import WigleDatabase
from repro.wigle.queries import ssid_heat_values, top_ssids_by_count, top_ssids_by_heat
from repro.wigle.records import WigleRecord

__all__ = [
    "WigleDatabase",
    "WigleRecord",
    "ssid_heat_values",
    "top_ssids_by_count",
    "top_ssids_by_heat",
]
