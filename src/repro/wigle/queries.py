"""Derived registry queries: count ranking and heat ranking.

These implement the two columns of the paper's Table IV.  The heat value
of an SSID is the sum, over all its (free) APs, of the photo heat at the
AP's location (Section IV-B).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.city.heatmap import HeatMap
from repro.wigle.database import WigleDatabase


def top_ssids_by_count(db: WigleDatabase, count: int) -> List[Tuple[str, int]]:
    """Free SSIDs ranked by number of APs, descending."""
    if count < 0:
        raise ValueError("count must be non-negative, got %r" % count)
    return db.free_ssid_counts().most_common(count)


def ssid_heat_values(db: WigleDatabase, heatmap: HeatMap) -> Dict[str, float]:
    """Heat value per free SSID: sum of cell heat over its AP locations."""
    heats: Dict[str, float] = {}
    for rec in db.records:
        if not rec.free:
            continue
        heats[rec.ssid] = heats.get(rec.ssid, 0.0) + heatmap.heat_at(rec.location)
    return heats


def top_ssids_by_heat(
    db: WigleDatabase, heatmap: HeatMap, count: int
) -> List[Tuple[str, float]]:
    """Free SSIDs ranked by heat value, descending (Table IV, right)."""
    if count < 0:
        raise ValueError("count must be non-negative, got %r" % count)
    heats = ssid_heat_values(db, heatmap)
    ranked = sorted(heats.items(), key=lambda kv: (-kv[1], kv[0]))
    return ranked[:count]
