"""Registry records.

A :class:`WigleRecord` is the attacker-visible view of one AP: SSID,
whether the network is free (open), and where it is.  Provenance tags
from city generation are deliberately *not* carried over — a real
wardriving registry would not know them, and the attack must not peek.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.city.aps import AccessPoint
from repro.dot11.ssid import validate_ssid
from repro.geo.point import Point


@dataclass(frozen=True)
class WigleRecord:
    """One AP as listed in the registry."""

    ssid: str
    free: bool
    location: Point

    def __post_init__(self) -> None:
        validate_ssid(self.ssid)

    @classmethod
    def from_access_point(cls, ap: AccessPoint) -> "WigleRecord":
        """Project a city AP down to what wardriving observes."""
        return cls(ssid=ap.ssid, free=ap.is_free, location=ap.location)
