"""The queryable registry."""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.city.aps import AccessPoint
from repro.geo.grid import SpatialGrid
from repro.geo.point import Point
from repro.wigle.records import WigleRecord


class WigleDatabase:
    """All wardriven APs of the city, indexed for the attack's queries.

    The registry is immutable once built: the record set is stored as a
    tuple and every query returns a fresh container, so one database
    instance can safely back many experiment runs (the experiment runner
    caches and shares it — see ``repro.experiments.runner.shared_wigle``)
    without any run observing another run's mutations.
    """

    def __init__(self, records: Iterable[WigleRecord], grid_cell: float = 250.0):
        self._records: Tuple[WigleRecord, ...] = tuple(records)
        self._grid: SpatialGrid[WigleRecord] = SpatialGrid(grid_cell)
        self._by_ssid: Dict[str, List[WigleRecord]] = defaultdict(list)
        for rec in self._records:
            self._grid.insert(rec.location, rec)
            self._by_ssid[rec.ssid].append(rec)

    @classmethod
    def from_access_points(cls, aps: Sequence[AccessPoint]) -> "WigleDatabase":
        """Build the registry from the city's deployed APs."""
        return cls(WigleRecord.from_access_point(ap) for ap in aps)

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> Tuple[WigleRecord, ...]:
        """Every record, as an immutable tuple."""
        return self._records

    def ssids(self) -> List[str]:
        """All distinct SSIDs."""
        return list(self._by_ssid)

    def aps_of(self, ssid: str) -> List[WigleRecord]:
        """Every AP record carrying ``ssid`` (empty list when unknown)."""
        return list(self._by_ssid.get(ssid, ()))

    def free_ssid_counts(self) -> Counter:
        """AP count per SSID, restricted to free networks.

        Only SSIDs whose networks are (at least somewhere) free are
        counted, mirroring City-Hunter's "only SSIDs belong to free APs
        from WiGLE are selected".
        """
        counts: Counter = Counter()
        for rec in self._records:
            if rec.free:
                counts[rec.ssid] += 1
        return counts

    def nearest_free_ssids(self, location: Point, count: int) -> List[str]:
        """The ``count`` distinct free SSIDs nearest ``location``.

        Ordered by the distance of each SSID's nearest AP — the paper's
        "100 SSIDs near to the attacker" seeding query.
        """
        if count <= 0:
            return []
        out: List[str] = []
        seen = set()
        # Over-fetch APs since several may share one SSID.
        fetch = max(count * 4, 64)
        while True:
            hits = self._grid.nearest(location, fetch)
            for point, rec in hits:
                if rec.free and rec.ssid not in seen:
                    seen.add(rec.ssid)
                    out.append(rec.ssid)
                    if len(out) == count:
                        return out
            if len(hits) >= len(self._records):
                return out
            fetch *= 2
