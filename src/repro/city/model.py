"""The assembled city model.

``build_city`` wires venues + chain catalog + AP deployment + photo
corpus + heat map into one :class:`City` object, and precomputes the
*public pool*: every open public SSID together with its adoption
probability (the chance a random urbanite carries it in their PNL).
The public pool is what PNL synthesis draws from, and — because the same
SSIDs are also what the WiGLE registry ranks — it is the ground truth
the attack is trying to estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.city.aps import AccessPoint, deploy_access_points
from repro.city.chains import (
    ADOPTION_SCALE,
    ChainSpec,
    default_chain_catalog,
    scaled_adoption,
)
from repro.city.heatmap import HeatMap
from repro.city.photos import GeoPhoto, generate_photos
from repro.city.venues import Venue, VenueKind, default_venues
from repro.geo.region import Rect

_VENUE_ADOPTION: Dict[VenueKind, float] = {
    VenueKind.AIRPORT: 0.013,
    VenueKind.MALL: 0.0065,
    VenueKind.SHOPPING_CENTER: 0.008,
    VenueKind.RAILWAY_STATION: 0.0105,
    VenueKind.CANTEEN: 0.0015,
    VenueKind.SUBWAY_PASSAGE: 0.0005,
}
"""Base probability that a random urbanite has a venue's own open Wi-Fi
in their PNL (many people have been to the airport; few remember one
particular subway passage)."""


@dataclass(frozen=True)
class PublicSsid:
    """One entry of the public pool PNL synthesis draws from."""

    ssid: str
    adoption: float
    origin: str  # "chain" or "venue:<name>"


@dataclass(frozen=True)
class CityConfig:
    """Knobs of city generation (defaults reproduce the paper scenarios)."""

    bounds: Rect = field(default_factory=lambda: Rect(0, 0, 30_000, 30_000))
    n_shops: int = 9_000
    n_residential: int = 18_000
    photos_per_crowd_unit: float = 40.0
    background_photos: int = 30_000
    heat_cell_size: float = 100.0
    adoption_scale: float = ADOPTION_SCALE


class City:
    """A fully generated synthetic city."""

    def __init__(
        self,
        config: CityConfig,
        venues: List[Venue],
        chains: List[ChainSpec],
        aps: List[AccessPoint],
        photos: List[GeoPhoto],
        heatmap: HeatMap,
    ):
        self.config = config
        self.venues = venues
        self.chains = chains
        self.aps = aps
        self.photos = photos
        self.heatmap = heatmap
        self.public_pool = self._build_public_pool()
        self.open_shop_ssids = [
            ap.ssid for ap in aps if ap.source == "shop" and ap.is_free
        ]

    def _build_public_pool(self) -> List[PublicSsid]:
        scale = self.config.adoption_scale
        pool: List[PublicSsid] = []
        for spec in self.chains:
            if not spec.security.is_open:
                continue
            pool.append(
                PublicSsid(spec.name, scaled_adoption(spec, scale), "chain")
            )
        for venue in self.venues:
            base = _VENUE_ADOPTION.get(venue.kind, 0.0)
            if base <= 0 or not venue.free_wifi:
                continue
            for ssid in venue.wifi_ssids:
                pool.append(
                    PublicSsid(ssid, min(1.0, base * scale), f"venue:{venue.name}")
                )
        return pool

    def venue(self, name: str) -> Venue:
        """Look up a venue by exact name."""
        for v in self.venues:
            if v.name == name:
                return v
        raise KeyError("no venue named %r" % name)

    def secured_public_ssids(self) -> List[str]:
        """Secured chain SSIDs (present in PNLs but never exploitable)."""
        return [c.name for c in self.chains if not c.security.is_open]

    def expected_adoption_mass(self) -> float:
        """Sum of adoption probabilities over the public pool.

        A quick calibration diagnostic: roughly the expected number of
        open public networks in a random PNL.
        """
        return sum(p.adoption for p in self.public_pool)


def build_city(
    config: Optional[CityConfig] = None,
    rng: Optional[np.random.Generator] = None,
    venues: Optional[Sequence[Venue]] = None,
    chains: Optional[Sequence[ChainSpec]] = None,
) -> City:
    """Generate one deterministic city instance."""
    config = config if config is not None else CityConfig()
    rng = rng if rng is not None else np.random.default_rng(0)
    venue_list = list(venues) if venues is not None else default_venues()
    chain_list = list(chains) if chains is not None else default_chain_catalog()
    aps = deploy_access_points(
        config.bounds,
        venue_list,
        chain_list,
        n_shops=config.n_shops,
        n_residential=config.n_residential,
        rng=rng,
    )
    photos = generate_photos(
        config.bounds,
        venue_list,
        rng,
        photos_per_crowd_unit=config.photos_per_crowd_unit,
        background_photos=config.background_photos,
    )
    heatmap = HeatMap.from_photos(config.bounds, photos, config.heat_cell_size)
    return City(config, venue_list, chain_list, aps, photos, heatmap)
