"""Synthetic city: districts, venues, chain stores, APs, photos, heat map.

Replaces the paper's Hong Kong: a flat-plane city whose venues generate
both the crowds (via :mod:`repro.population` / :mod:`repro.mobility`) and
the observable side-channels the attack consumes — the WiGLE-like AP
registry and the geotagged-photo heat map.  Because one generative model
produces both, the correlations the attack exploits (popular networks are
in many PNLs *and* rank high in WiGLE-by-heat) hold by construction, as
they do in a real city.
"""

from repro.city.aps import AccessPoint, deploy_access_points
from repro.city.chains import ChainSpec, default_chain_catalog
from repro.city.heatmap import HeatMap
from repro.city.model import City, CityConfig, build_city
from repro.city.photos import GeoPhoto, generate_photos
from repro.city.venues import Venue, VenueKind, default_venues

__all__ = [
    "AccessPoint",
    "deploy_access_points",
    "ChainSpec",
    "default_chain_catalog",
    "HeatMap",
    "City",
    "CityConfig",
    "build_city",
    "GeoPhoto",
    "generate_photos",
    "Venue",
    "VenueKind",
    "default_venues",
]
