"""Photo-density heat map (the paper's Fig. 4 artefact).

Photos are binned into a uniform grid; the heat of a point is the photo
count of its cell.  The heat *value of an SSID* — the quantity Table IV
ranks by — is the sum of cell heats over all the SSID's AP locations, and
is computed by :mod:`repro.wigle.queries` / :mod:`repro.core.seeding`
from this map.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.city.photos import GeoPhoto
from repro.geo.point import Point
from repro.geo.region import Rect


class HeatMap:
    """Gridded photo counts over the city bounds."""

    def __init__(self, bounds: Rect, cell_size: float = 100.0):
        if cell_size <= 0:
            raise ValueError("cell_size must be positive, got %r" % cell_size)
        self.bounds = bounds
        self.cell_size = cell_size
        self.nx = max(1, int(np.ceil(bounds.width / cell_size)))
        self.ny = max(1, int(np.ceil(bounds.height / cell_size)))
        self._grid = np.zeros((self.nx, self.ny), dtype=np.int64)
        self.total_photos = 0

    @classmethod
    def from_photos(
        cls, bounds: Rect, photos: Sequence[GeoPhoto], cell_size: float = 100.0
    ) -> "HeatMap":
        """Build a heat map by binning ``photos``."""
        hm = cls(bounds, cell_size)
        if photos:
            xs = np.fromiter((p.location.x for p in photos), dtype=float)
            ys = np.fromiter((p.location.y for p in photos), dtype=float)
            hm.add_points(xs, ys)
        return hm

    def _cell_index(self, p: Point) -> Tuple[int, int]:
        ix = int((p.x - self.bounds.x0) // self.cell_size)
        iy = int((p.y - self.bounds.y0) // self.cell_size)
        return (min(max(ix, 0), self.nx - 1), min(max(iy, 0), self.ny - 1))

    def add_points(self, xs: np.ndarray, ys: np.ndarray) -> None:
        """Bin arrays of coordinates into the grid (vectorised)."""
        ix = np.clip(
            ((xs - self.bounds.x0) // self.cell_size).astype(int), 0, self.nx - 1
        )
        iy = np.clip(
            ((ys - self.bounds.y0) // self.cell_size).astype(int), 0, self.ny - 1
        )
        np.add.at(self._grid, (ix, iy), 1)
        self.total_photos += len(xs)

    def heat_at(self, p: Point) -> int:
        """Photo count of the cell containing ``p``."""
        ix, iy = self._cell_index(p)
        return int(self._grid[ix, iy])

    def hottest_cells(self, count: int) -> List[Tuple[Point, int]]:
        """The ``count`` hottest cells as (cell centre, heat) pairs."""
        if count <= 0:
            return []
        flat = self._grid.ravel()
        count = min(count, flat.size)
        idx = np.argpartition(flat, -count)[-count:]
        idx = idx[np.argsort(flat[idx])[::-1]]
        out: List[Tuple[Point, int]] = []
        for i in idx:
            ix, iy = divmod(int(i), self.ny)
            center = Point(
                self.bounds.x0 + (ix + 0.5) * self.cell_size,
                self.bounds.y0 + (iy + 0.5) * self.cell_size,
            )
            out.append((center, int(flat[i])))
        return out

    def render(self, cols: int = 60, rows: int = 30) -> str:
        """Coarse ASCII rendering (the textual stand-in for Fig. 4)."""
        shades = " .:-=+*#%@"
        block_x = max(1, self.nx // cols)
        block_y = max(1, self.ny // rows)
        # Sum grid cells into display blocks.
        trimmed = self._grid[
            : (self.nx // block_x) * block_x, : (self.ny // block_y) * block_y
        ]
        blocks = trimmed.reshape(
            trimmed.shape[0] // block_x, block_x, trimmed.shape[1] // block_y, block_y
        ).sum(axis=(1, 3))
        peak = blocks.max() if blocks.size else 0
        lines = []
        for iy in range(blocks.shape[1] - 1, -1, -1):  # north at the top
            row = []
            for ix in range(blocks.shape[0]):
                v = blocks[ix, iy]
                level = 0 if peak == 0 else int((len(shades) - 1) * (v / peak) ** 0.35)
                row.append(shades[level])
            lines.append("".join(row))
        return "\n".join(lines)
