"""Venues: the named places of the synthetic city.

A venue is a rectangular area with a *kind* (canteen, subway passage,
airport …), a crowd level that drives photo generation and visit
probabilities, and a *local affinity*: the probability that a person
found at the venue has the venue's own Wi-Fi in their PNL.  The four
attack venues of the paper (subway passage, canteen, shopping centre,
railway station) are present, plus the hot areas the paper names
(airport, large malls) and background residential/office districts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.geo.region import Rect


class VenueKind(enum.Enum):
    """Coarse venue category; drives mobility and photo behaviour."""

    CANTEEN = "canteen"
    SUBWAY_PASSAGE = "subway_passage"
    SHOPPING_CENTER = "shopping_center"
    RAILWAY_STATION = "railway_station"
    AIRPORT = "airport"
    MALL = "mall"
    RESIDENTIAL = "residential"
    OFFICE = "office"
    STREET = "street"


@dataclass(frozen=True)
class Venue:
    """One named place in the city."""

    name: str
    kind: VenueKind
    region: Rect
    crowd_level: float
    """Relative number of people passing through per day (photo intensity
    and visit probability both scale with this)."""

    local_affinity: float = 0.02
    """P(a person at this venue has the venue's own open Wi-Fi in their
    PNL).  High for a campus canteen full of regulars, low for a subway
    passage full of one-time passersby."""

    wifi_ssids: Tuple[str, ...] = field(default_factory=tuple)
    """SSIDs of the venue's own APs (may be empty)."""

    ap_count: int = 2
    """How many APs the venue operates per SSID."""

    free_wifi: bool = True
    """Whether the venue Wi-Fi is open (auto-joinable)."""


def default_venues() -> List[Venue]:
    """The venue set used by every experiment.

    The city is a 30 km x 30 km plane.  The four attack venues sit in the
    central district; the airport is remote (as Chek Lap Kok is), which is
    exactly what makes heat-based ranking beat nearest-N for it.
    """
    return [
        # --- the four attack venues ------------------------------------
        Venue(
            name="University Canteen",
            kind=VenueKind.CANTEEN,
            region=Rect(14_000, 14_000, 14_060, 14_040),
            crowd_level=25.0,
            local_affinity=0.030,
            wifi_ssids=("Uni Canteen Free WiFi",),
            ap_count=3,
        ),
        Venue(
            name="Central Subway Passage",
            kind=VenueKind.SUBWAY_PASSAGE,
            region=Rect(15_500, 14_800, 15_700, 14_815),
            crowd_level=60.0,
            local_affinity=0.008,
            wifi_ssids=("MTR Passage WiFi",),
            ap_count=2,
        ),
        Venue(
            name="Harbour Shopping Center",
            kind=VenueKind.SHOPPING_CENTER,
            region=Rect(16_200, 15_400, 16_440, 15_590),
            crowd_level=80.0,
            local_affinity=0.03,
            wifi_ssids=("Harbour SC Free WiFi",),
            ap_count=5,
        ),
        Venue(
            name="City Railway Station",
            kind=VenueKind.RAILWAY_STATION,
            region=Rect(13_000, 16_000, 13_250, 16_180),
            crowd_level=110.0,
            local_affinity=0.04,
            wifi_ssids=("Station Free Wi-Fi",),
            ap_count=6,
        ),
        # --- hot areas the paper names ----------------------------------
        Venue(
            name="International Airport",
            kind=VenueKind.AIRPORT,
            region=Rect(2_000, 4_000, 3_200, 4_800),
            crowd_level=150.0,
            local_affinity=0.0,
            wifi_ssids=("#HKAirport Free WiFi",),
            ap_count=231,
        ),
        Venue(
            name="iSQUARE Mall",
            kind=VenueKind.MALL,
            region=Rect(17_000, 17_000, 17_150, 17_120),
            crowd_level=90.0,
            local_affinity=0.0,
            wifi_ssids=("iSQUARE Free WiFi",),
            ap_count=5,
        ),
        Venue(
            name="the ONE Mall",
            kind=VenueKind.MALL,
            region=Rect(17_400, 16_800, 17_540, 16_930),
            crowd_level=85.0,
            local_affinity=0.0,
            wifi_ssids=("the ONE Free WiFi",),
            ap_count=5,
        ),
        Venue(
            name="Ocean Mall",
            kind=VenueKind.MALL,
            region=Rect(11_500, 12_200, 11_650, 12_330),
            crowd_level=70.0,
            local_affinity=0.0,
            wifi_ssids=("Ocean Mall WiFi",),
            ap_count=5,
        ),
        # --- background districts ---------------------------------------
        Venue(
            name="Kowloon Residential",
            kind=VenueKind.RESIDENTIAL,
            region=Rect(9_000, 9_000, 21_000, 13_000),
            crowd_level=8.0,
            local_affinity=0.0,
            wifi_ssids=(),
            ap_count=0,
        ),
        Venue(
            name="New Town Residential",
            kind=VenueKind.RESIDENTIAL,
            region=Rect(8_000, 19_000, 22_000, 24_000),
            crowd_level=6.0,
            local_affinity=0.0,
            wifi_ssids=(),
            ap_count=0,
        ),
        Venue(
            name="Central Offices",
            kind=VenueKind.OFFICE,
            region=Rect(14_500, 15_000, 16_000, 16_000),
            crowd_level=30.0,
            local_affinity=0.0,
            wifi_ssids=(),
            ap_count=0,
        ),
    ]


def venue_by_name(venues: List[Venue], name: str) -> Venue:
    """Look up a venue by exact name; raises ``KeyError`` when missing."""
    for v in venues:
        if v.name == name:
            return v
    raise KeyError("no venue named %r" % name)
