"""Access-point deployment.

Places every AP of the synthetic city: chain APs according to their
placement mixes, venue APs inside their venues, open small-business
("shop") APs along streets, and residential routers (mostly secured).
The result feeds both the WiGLE registry and PNL synthesis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.city.chains import ChainSpec
from repro.city.venues import Venue, VenueKind
from repro.dot11.capabilities import Security
from repro.dot11.ssid import validate_ssid
from repro.geo.point import Point
from repro.geo.region import Rect
from repro.util import textgen

HOT_VENUE_KINDS = (
    VenueKind.MALL,
    VenueKind.SHOPPING_CENTER,
    VenueKind.RAILWAY_STATION,
)
"""Venue kinds that count as the ``hot`` placement class."""


@dataclass(frozen=True)
class AccessPoint:
    """One deployed AP, as it would appear in a wardriving registry."""

    ssid: str
    security: Security
    location: Point
    source: str
    """Provenance tag: ``chain:<name>``, ``venue:<name>``, ``shop`` or
    ``residential``."""

    def __post_init__(self) -> None:
        validate_ssid(self.ssid)

    @property
    def is_free(self) -> bool:
        """Whether the network is open (exploitable by an evil twin)."""
        return self.security.is_open


def terminal_region(airport: Rect, shrink: float = 0.30) -> Rect:
    """The terminal building: the central ``shrink`` fraction of the
    airport rect, where both the people (photos) and the APs concentrate."""
    cx, cy = airport.center
    half_w = airport.width * shrink / 2.0
    half_h = airport.height * shrink / 2.0
    return Rect(cx - half_w, cy - half_h, cx + half_w, cy + half_h)


class _PlacementClasses:
    """Resolved sampling regions for the four placement classes."""

    def __init__(self, bounds: Rect, venues: Sequence[Venue]):
        self.hot_regions = [v.region for v in venues if v.kind in HOT_VENUE_KINDS]
        self.residential_regions = [
            v.region for v in venues if v.kind is VenueKind.RESIDENTIAL
        ]
        airports = [v.region for v in venues if v.kind is VenueKind.AIRPORT]
        self.airport_regions = [terminal_region(r) for r in airports]
        # Street level: the central third of the city.
        self.street_region = Rect(
            bounds.x0 + bounds.width * 0.30,
            bounds.y0 + bounds.height * 0.30,
            bounds.x0 + bounds.width * 0.72,
            bounds.y0 + bounds.height * 0.62,
        )

    def sample(self, klass: str, rng: np.random.Generator) -> Point:
        """A random point from one placement class."""
        if klass == "street":
            return self.street_region.sample(rng)
        if klass == "hot":
            regions = self.hot_regions
        elif klass == "residential":
            regions = self.residential_regions
        elif klass == "airport":
            regions = self.airport_regions
        else:
            raise ValueError("unknown placement class %r" % klass)
        if not regions:
            return self.street_region.sample(rng)
        region = regions[int(rng.integers(len(regions)))]
        return region.sample(rng)


def _chain_aps(
    chains: Sequence[ChainSpec],
    classes: _PlacementClasses,
    rng: np.random.Generator,
) -> List[AccessPoint]:
    out: List[AccessPoint] = []
    for spec in chains:
        mix = spec.placement
        weights = [mix.hot, mix.street, mix.residential, mix.airport]
        names = ["hot", "street", "residential", "airport"]
        draws = rng.choice(len(names), size=spec.ap_count, p=weights)
        for d in draws:
            out.append(
                AccessPoint(
                    ssid=spec.name,
                    security=spec.security,
                    location=classes.sample(names[int(d)], rng),
                    source=f"chain:{spec.name}",
                )
            )
    return out


def _venue_aps(venues: Sequence[Venue], rng: np.random.Generator) -> List[AccessPoint]:
    out: List[AccessPoint] = []
    for venue in venues:
        if not venue.wifi_ssids or venue.ap_count <= 0:
            continue
        region = venue.region
        if venue.kind is VenueKind.AIRPORT:
            region = terminal_region(region)
        security = Security.OPEN if venue.free_wifi else Security.WPA2_PSK
        for ssid in venue.wifi_ssids:
            for _ in range(venue.ap_count):
                out.append(
                    AccessPoint(
                        ssid=ssid,
                        security=security,
                        location=region.sample(rng),
                        source=f"venue:{venue.name}",
                    )
                )
    return out


def _shop_aps(
    count: int, classes: _PlacementClasses, rng: np.random.Generator
) -> List[AccessPoint]:
    names = textgen.unique_names(count, textgen.shop_ssid, rng)
    out: List[AccessPoint] = []
    for name in names:
        # Shops cluster at street level with a sprinkle inside hot venues.
        klass = "hot" if rng.random() < 0.013 else "street"
        security = Security.OPEN if rng.random() < 0.70 else Security.WPA2_PSK
        out.append(
            AccessPoint(
                ssid=name,
                security=security,
                location=classes.sample(klass, rng),
                source="shop",
            )
        )
    return out


def _residential_aps(
    count: int, classes: _PlacementClasses, rng: np.random.Generator
) -> List[AccessPoint]:
    out: List[AccessPoint] = []
    for _ in range(count):
        security = Security.OPEN if rng.random() < 0.15 else Security.WPA2_PSK
        # Apartments sit above the shops downtown too: 45% of home
        # routers land at street level, which is what makes the
        # nearest-100 around any central venue mostly unique SSIDs.
        klass = "street" if rng.random() < 0.45 else "residential"
        out.append(
            AccessPoint(
                ssid=textgen.home_router_ssid(rng),
                security=security,
                location=classes.sample(klass, rng),
                source="residential",
            )
        )
    return out


ATTACK_VENUE_KINDS = (
    VenueKind.CANTEEN,
    VenueKind.SUBWAY_PASSAGE,
    VenueKind.SHOPPING_CENTER,
    VenueKind.RAILWAY_STATION,
)
"""Venue kinds the paper deploys attackers at; each gets an urban-canyon
AP cluster."""


def _urban_canyon_aps(
    venues: Sequence[Venue],
    rng: np.random.Generator,
    n_residential: int = 420,
    n_shops: int = 130,
    radius: float = 250.0,
) -> List[AccessPoint]:
    """Dense unique-SSID clusters around the attack venues.

    The paper's sites sit under residential towers and shopping arcades:
    the WiGLE networks geographically nearest such a spot are hundreds
    of one-off home routers and small shops, not city chains.  This is
    what starves the preliminary design's nearest-100 seeding in the
    passage (Table III).
    """
    out: List[AccessPoint] = []
    for venue in venues:
        if venue.kind not in ATTACK_VENUE_KINDS:
            continue
        center = venue.region.center
        disc = Rect(
            center.x - radius, center.y - radius, center.x + radius, center.y + radius
        )
        for _ in range(n_residential):
            security = Security.OPEN if rng.random() < 0.15 else Security.WPA2_PSK
            out.append(
                AccessPoint(
                    ssid=textgen.home_router_ssid(rng),
                    security=security,
                    location=disc.sample(rng),
                    source="residential",
                )
            )
        for name in textgen.unique_names(n_shops, textgen.shop_ssid, rng):
            security = Security.OPEN if rng.random() < 0.70 else Security.WPA2_PSK
            out.append(
                AccessPoint(
                    ssid=name,
                    security=security,
                    location=disc.sample(rng),
                    source="shop",
                )
            )
    return out


def deploy_access_points(
    bounds: Rect,
    venues: Sequence[Venue],
    chains: Sequence[ChainSpec],
    n_shops: int,
    n_residential: int,
    rng: np.random.Generator,
) -> List[AccessPoint]:
    """Deploy the full AP population of the city."""
    classes = _PlacementClasses(bounds, venues)
    aps: List[AccessPoint] = []
    aps.extend(_chain_aps(chains, classes, rng))
    aps.extend(_venue_aps(venues, rng))
    aps.extend(_shop_aps(n_shops, classes, rng))
    aps.extend(_residential_aps(n_residential, classes, rng))
    aps.extend(_urban_canyon_aps(venues, rng))
    return aps
