"""Chain-store and public-hotspot SSID catalog.

Each :class:`ChainSpec` describes one city-wide SSID: how many APs carry
it, where those APs sit (mix over location classes), whether it is open,
and its *adoption* — the probability that a random urbanite has it in
their PNL.  The named entries reproduce the SSIDs the paper calls out
(`7-Eleven Free Wifi`, `-Free HKBN Wi-Fi-`, `#HKAirport Free WiFi`,
`Free Public WiFi`, `FREE 3Y5 AdWiFi`, `CSL`, `CMCC-WEB`, …) with AP
counts and placements chosen so that Table IV's two rankings come out as
published: HKBN/7-Eleven/Circle K/CSL/CMCC-WEB lead by AP count, while
heat ranking promotes `Free Public WiFi` and the airport network.

Adoption values are scaled by ``ADOPTION_SCALE`` during calibration; the
unscaled numbers encode only the *relative* popularity of the networks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.dot11.capabilities import Security


@dataclass(frozen=True)
class PlacementMix:
    """Where a chain's APs go: weights over location classes.

    Classes: ``hot`` (malls, shopping centres, railway station),
    ``street`` (central-district street level), ``residential``
    (residential districts), ``airport`` (airport terminal).
    Weights must be non-negative and sum to 1.
    """

    hot: float = 0.0
    street: float = 0.0
    residential: float = 0.0
    airport: float = 0.0

    def __post_init__(self) -> None:
        total = self.hot + self.street + self.residential + self.airport
        if any(w < 0 for w in (self.hot, self.street, self.residential, self.airport)):
            raise ValueError("placement weights must be non-negative")
        if abs(total - 1.0) > 1e-9:
            raise ValueError("placement weights must sum to 1, got %r" % total)


@dataclass(frozen=True)
class ChainSpec:
    """One public SSID deployed at many locations."""

    name: str
    ap_count: int
    placement: PlacementMix
    adoption: float
    security: Security = Security.OPEN

    def __post_init__(self) -> None:
        if self.ap_count <= 0:
            raise ValueError("ap_count must be positive for %r" % self.name)
        if not 0.0 <= self.adoption <= 1.0:
            raise ValueError("adoption must be a probability for %r" % self.name)


ADOPTION_SCALE = 0.30
"""Global multiplier applied to every adoption probability; the one knob
used to calibrate absolute hit-rate levels against the paper."""


def default_chain_catalog() -> List[ChainSpec]:
    """The ~40-entry public-SSID catalog of the synthetic city."""
    street_heavy = PlacementMix(hot=0.01, street=0.60, residential=0.39)
    return [
        # --- the five biggest by AP count (Table IV, left column) -------
        ChainSpec(
            "-Free HKBN Wi-Fi-",
            1083,
            PlacementMix(hot=0.05, street=0.38, residential=0.57),
            adoption=0.0262,
        ),
        ChainSpec("7-Eleven Free Wifi", 924, PlacementMix(hot=0.02,
                  street=0.59, residential=0.39), adoption=0.0236),
        ChainSpec("-Circle K Free Wi-Fi-", 742, PlacementMix(street=0.61,
                  residential=0.39), adoption=0.0079),
        ChainSpec(
            "CSL", 668, PlacementMix(street=0.57, residential=0.43),
            adoption=0.0157,
        ),
        ChainSpec("CMCC-WEB", 571, PlacementMix(street=0.61,
                  residential=0.39), adoption=0.0066),
        # --- promoted by heat (Table IV, right column) -------------------
        ChainSpec(
            "Free Public WiFi",
            412,
            PlacementMix(hot=0.70, street=0.30),
            adoption=0.0210,
        ),
        ChainSpec(
            "FREE 3Y5 AdWiFi",
            302,
            PlacementMix(hot=0.13, street=0.87),
            adoption=0.0157,
        ),
        # (the airport network is deployed by its venue, not the catalog)
        # --- other recognisable mid-tier networks ------------------------
        ChainSpec("MTR Free Wi-Fi", 288, PlacementMix(hot=0.02, street=0.98),
                  adoption=0.0197),
        ChainSpec("McDonalds Free WiFi", 244, street_heavy, adoption=0.0258),
        ChainSpec("Starbucks HK", 182, PlacementMix(hot=0.02, street=0.98),
                  adoption=0.0157),
        ChainSpec("Wi-Fi.HK via HKT", 260, street_heavy, adoption=0.0172),
        ChainSpec("Pacific Coffee", 138, PlacementMix(hot=0.03, street=0.97),
                  adoption=0.0105),
        ChainSpec("KFC Free WiFi", 150, street_heavy, adoption=0.0138),
        ChainSpec("Maxims Free WiFi", 120, street_heavy, adoption=0.0172),
        ChainSpec("Cafe de Coral WiFi", 160, street_heavy, adoption=0.0138),
        ChainSpec("Fairwood_FREE", 110, street_heavy, adoption=0.0138),
        ChainSpec("Watsons Free WiFi", 125, street_heavy, adoption=0.0028),
        ChainSpec("Mannings WiFi", 105, street_heavy, adoption=0.0028),
        ChainSpec("Wellcome Free WiFi", 140, street_heavy, adoption=0.0035),
        ChainSpec("ParknShop WiFi", 132, street_heavy, adoption=0.0035),
        ChainSpec("HK Public Library WiFi", 90,
                  PlacementMix(street=0.70, residential=0.30), adoption=0.0066),
        ChainSpec("GovWiFi", 210, PlacementMix(hot=0.015, street=0.785,
                  residential=0.20), adoption=0.0131),
        ChainSpec("Delifrance WiFi", 60, street_heavy, adoption=0.0022),
        ChainSpec("Genki Sushi WiFi", 55, street_heavy, adoption=0.0022),
        ChainSpec("Yoshinoya Free WiFi", 70, street_heavy, adoption=0.0022),
        ChainSpec("Broadway Cinema WiFi", 45, PlacementMix(hot=0.08, street=0.92),
                  adoption=0.0085),
        ChainSpec("UA Cinemas WiFi", 40, PlacementMix(hot=0.08, street=0.92),
                  adoption=0.0066),
        ChainSpec("Fortress Free WiFi", 58, street_heavy, adoption=0.0022),
        ChainSpec("SmarTone WiFi", 190, street_heavy, adoption=0.0172),
        ChainSpec("3Roam", 170, street_heavy, adoption=0.0138),
        ChainSpec("Y5ZONE", 150, street_heavy, adoption=0.0035),
        ChainSpec("FreeDuck", 80, street_heavy, adoption=0.0055),
        ChainSpec("CityBus FreeWiFi", 95, street_heavy, adoption=0.0028),
        ChainSpec("Ferry Pier WiFi", 35, PlacementMix(street=1.0), adoption=0.0021),
        ChainSpec("Park WiFi HK", 85, PlacementMix(street=0.60, residential=0.40),
                  adoption=0.0033),
        ChainSpec("Museum Free WiFi", 30, PlacementMix(street=1.0), adoption=0.0021),
        ChainSpec("Sports Centre WiFi", 42, PlacementMix(street=0.50,
                  residential=0.50), adoption=0.0021),
        ChainSpec("Night Market WiFi", 25, PlacementMix(street=1.0), adoption=0.0021),
        ChainSpec("Temple Street Free WiFi", 22, PlacementMix(street=1.0),
                  adoption=0.0021),
        # --- a couple of big *secured* networks (never exploitable) ------
        ChainSpec("eduroam", 320, PlacementMix(street=0.60, residential=0.40),
                  adoption=0.030, security=Security.WPA2_ENTERPRISE),
        ChainSpec("CorpNet-Secure", 260, PlacementMix(hot=0.10, street=0.70,
                  residential=0.20), adoption=0.020,
                  security=Security.WPA2_ENTERPRISE),
    ]


def scaled_adoption(spec: ChainSpec, scale: float = ADOPTION_SCALE) -> float:
    """The calibrated probability that a random urbanite holds this SSID."""
    return min(1.0, spec.adoption * scale)
