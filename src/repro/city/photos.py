"""Synthetic geotagged photos.

The paper estimates crowd density from photos people posted with
geotags; we generate the equivalent: each venue emits a Poisson number of
photos proportional to its crowd level (placed inside the venue — inside
the terminal for the airport), plus a diffuse background of street-level
photos over the central district and a sparse city-wide scatter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.city.aps import terminal_region
from repro.city.venues import Venue, VenueKind
from repro.geo.point import Point
from repro.geo.region import Rect


@dataclass(frozen=True)
class GeoPhoto:
    """One geotagged photo — only the location matters to the heat map."""

    location: Point


def generate_photos(
    bounds: Rect,
    venues: Sequence[Venue],
    rng: np.random.Generator,
    photos_per_crowd_unit: float = 40.0,
    background_photos: int = 30_000,
) -> List[GeoPhoto]:
    """Generate the photo corpus for one city instance."""
    if photos_per_crowd_unit <= 0:
        raise ValueError("photos_per_crowd_unit must be positive")
    photos: List[GeoPhoto] = []
    for venue in venues:
        mean = venue.crowd_level * photos_per_crowd_unit
        count = int(rng.poisson(mean))
        region = venue.region
        if venue.kind is VenueKind.AIRPORT:
            # Travellers photograph the terminal, not the tarmac.
            region = terminal_region(region)
        for _ in range(count):
            photos.append(GeoPhoto(region.sample(rng)))
    # Street-level background over the central district.
    central = Rect(
        bounds.x0 + bounds.width * 0.30,
        bounds.y0 + bounds.height * 0.30,
        bounds.x0 + bounds.width * 0.72,
        bounds.y0 + bounds.height * 0.62,
    )
    for _ in range(int(background_photos * 0.8)):
        photos.append(GeoPhoto(central.sample(rng)))
    for _ in range(int(background_photos * 0.2)):
        photos.append(GeoPhoto(bounds.sample(rng)))
    return photos
