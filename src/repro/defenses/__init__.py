"""Evil-twin countermeasures.

The paper closes by noting that "existing techniques to detect evil twin
APs ... can still work as effective countermeasures for the City-Hunter".
This package implements two classic ones so their effectiveness can be
measured against the reproduced attacks:

* :class:`MultiSsidDetector` — a passive monitor flagging any BSSID that
  advertises many distinct SSIDs (the signature of KARMA-family
  attackers, who impersonate whatever is asked of them);
* :class:`CanaryProbeDetector` — an active client that direct-probes
  SSIDs that *cannot exist*; any responder is by construction a rogue.
"""

from repro.defenses.detector import (
    CanaryProbeDetector,
    DetectionEvent,
    MultiSsidDetector,
)

__all__ = ["MultiSsidDetector", "CanaryProbeDetector", "DetectionEvent"]
