"""Evil-twin detectors.

Both detectors are radio stations attachable to the same medium as the
attack; both report :class:`DetectionEvent` records with the offending
BSSID, the detection time, and the evidence.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

import numpy as np

from repro.dot11.frames import Frame, ProbeRequest, ProbeResponse
from repro.dot11.mac import MacAddress
from repro.dot11.medium import Medium
from repro.geo.point import Point
from repro.sim.simulation import Simulation


@dataclass(frozen=True)
class DetectionEvent:
    """One rogue-AP verdict."""

    bssid: MacAddress
    time: float
    method: str
    evidence: str


class MultiSsidDetector:
    """Passive monitor: a BSSID advertising many SSIDs is a chameleon.

    Legitimate APs answer probes with their own (one, occasionally a
    handful of) SSIDs; KARMA-family attackers advertise dozens per
    client.  The detector counts distinct SSIDs per source BSSID across
    every overheard probe response and raises an alarm at ``threshold``.
    """

    max_speed_mps = 0.0  # fixed observation post: spatial-index eligible

    def __init__(
        self,
        mac: MacAddress,
        position: Point,
        medium: Medium,
        threshold: int = 8,
        tx_range: float = 60.0,
    ):
        if threshold < 2:
            raise ValueError("threshold below 2 would flag legitimate APs")
        self.mac = mac
        self.position = position
        self.medium = medium
        self.threshold = threshold
        self.tx_range = tx_range
        self._ssids_by_bssid: Dict[MacAddress, Set[str]] = defaultdict(set)
        self._flagged: Set[MacAddress] = set()
        self.detections: List[DetectionEvent] = []

    def position_at(self, time: float) -> Point:
        """Fixed observation point."""
        return self.position

    def start(self, sim: Simulation) -> None:
        """Entity hook: attach in monitor (promiscuous) mode."""
        self.sim = sim
        self.medium.attach(self, self.tx_range, promiscuous=True)

    def ssid_count(self, bssid: MacAddress) -> int:
        """Distinct SSIDs overheard from one BSSID so far."""
        return len(self._ssids_by_bssid.get(bssid, ()))

    def is_flagged(self, bssid: MacAddress) -> bool:
        """Whether the BSSID has been declared rogue."""
        return bssid in self._flagged

    def receive(self, frame: Frame, time: float) -> None:
        """Count SSIDs per responder; flag chameleons."""
        if not isinstance(frame, ProbeResponse):
            return
        seen = self._ssids_by_bssid[frame.src]
        seen.add(frame.ssid)
        if len(seen) >= self.threshold and frame.src not in self._flagged:
            self._flagged.add(frame.src)
            self.detections.append(
                DetectionEvent(
                    bssid=frame.src,
                    time=time,
                    method="multi-ssid",
                    evidence=f"{len(seen)} distinct SSIDs advertised",
                )
            )


class CanaryProbeDetector:
    """Active detector: direct-probe SSIDs that cannot exist.

    The canary SSIDs are freshly generated random names; an AP answering
    one is impersonating a network it cannot know, which is precisely
    KARMA behaviour.  (City-Hunter's broadcast machinery is immune to
    this specific trap — it never mimics — but its KARMA-style direct
    handler is not.)
    """

    max_speed_mps = 0.0  # fixed observation post: spatial-index eligible

    def __init__(
        self,
        mac: MacAddress,
        position: Point,
        medium: Medium,
        probe_period: float = 30.0,
        tx_range: float = 45.0,
    ):
        if probe_period <= 0:
            raise ValueError("probe_period must be positive")
        self.mac = mac
        self.position = position
        self.medium = medium
        self.probe_period = probe_period
        self.tx_range = tx_range
        self._canaries: Set[str] = set()
        self._flagged: Set[MacAddress] = set()
        self.detections: List[DetectionEvent] = []
        self.probes_sent = 0
        self._rng: Optional[np.random.Generator] = None

    def position_at(self, time: float) -> Point:
        """Fixed observation point."""
        return self.position

    def start(self, sim: Simulation) -> None:
        """Entity hook: attach and begin the canary cadence."""
        self.sim = sim
        self._rng = sim.rngs.stream("canary")
        self.medium.attach(self, self.tx_range)
        sim.at(float(self._rng.uniform(0.1, self.probe_period)), self._probe)

    def _fresh_canary(self) -> str:
        suffix = "".join(
            "0123456789abcdef"[int(d)] for d in self._rng.integers(0, 16, size=10)
        )
        name = f"canary-{suffix}"
        self._canaries.add(name)
        return name

    def _probe(self) -> None:
        ssid = self._fresh_canary()
        self.probes_sent += 1
        self.medium.transmit(self, ProbeRequest(self.mac, ssid))
        self.sim.at(self.probe_period, self._probe)

    def is_flagged(self, bssid: MacAddress) -> bool:
        """Whether the BSSID answered a canary."""
        return bssid in self._flagged

    def receive(self, frame: Frame, time: float) -> None:
        """Any response naming a canary SSID is a guilty verdict."""
        if not isinstance(frame, ProbeResponse):
            return
        if frame.ssid in self._canaries and frame.src not in self._flagged:
            self._flagged.add(frame.src)
            self.detections.append(
                DetectionEvent(
                    bssid=frame.src,
                    time=time,
                    method="canary-probe",
                    evidence=f"answered nonexistent SSID {frame.ssid!r}",
                )
            )
