"""Person records."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.dot11.capabilities import NetworkProfile


class OsFamily(enum.Enum):
    """Phone operating system; drives carrier PNL entries and probe habits."""

    IOS = "ios"
    ANDROID = "android"


@dataclass
class PersonSpec:
    """One synthetic person and their phone's Wi-Fi state."""

    person_id: int
    os_family: OsFamily
    pnl: Dict[str, NetworkProfile]
    """Preferred Network List keyed by SSID."""

    unsafe: bool = False
    """Whether the phone still sends direct (SSID-revealing) probes — the
    legacy behaviour MANA feeds on (~15 % of devices in the paper's
    measurements)."""

    direct_probe_ssids: Tuple[str, ...] = field(default_factory=tuple)
    """The PNL entries this phone reveals in direct probes (biased towards
    home/work networks, which are configured as hidden more often)."""

    group_id: int = -1
    """Social-group identifier (-1 when solo)."""

    def open_pnl_ssids(self) -> Tuple[str, ...]:
        """SSIDs of PNL entries an open evil twin can satisfy."""
        return tuple(s for s, p in self.pnl.items() if p.auto_joinable)

    def has_open_entry(self) -> bool:
        """Whether the phone would auto-join at least one open network."""
        return any(p.auto_joinable for p in self.pnl.values())
