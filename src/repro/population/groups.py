"""Social-group PNL sharing.

People who walk (or eat) together share history: families share the home
router, friend groups share the cafés they frequent.  A group *core* is
the set of network profiles the group has in common; each member inherits
each core entry with high probability.  This shared structure is what
gives a freshly-hit SSID predictive power over the companions of the hit
client — the entire premise of City-Hunter's freshness buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.dot11.capabilities import NetworkProfile, Security
from repro.util import textgen


@dataclass(frozen=True)
class GroupModel:
    """Probabilities of the group-sharing story."""

    p_shared_home: float = 0.55
    """P(the group is a household sharing one home router)."""

    p_hangout: float = 0.50
    """P(the group shares at least one open 'hangout' network)."""

    max_hangouts: int = 2

    p_inherit: float = 0.85
    """P(a member inherits one particular core entry)."""

    hangout_local_factor: float = 5.0
    """Multiplier on the venue's local affinity giving P(a hangout
    network sits near the current venue).  A campus canteen is a place
    groups actually frequent; a subway passage is not."""

    max_hangout_local: float = 0.30

    public_share_factor: float = 0.8
    """Families and friend groups visit the same chains: each public
    SSID joins the group core with ``adoption * public_share_factor``.
    This intra-group correlation is what lets a freshly-hit SSID find
    the hit client's companions (the freshness buffer's food supply)."""


def draw_group_core(
    model: GroupModel,
    open_shop_ssids: Sequence[str],
    rng: np.random.Generator,
    local_shop_ssids: Sequence[str] = (),
    p_local: float = 0.0,
    public_pool: Sequence = (),
) -> List[NetworkProfile]:
    """The network profiles shared by one group.

    ``p_local`` is the venue-dependent probability that a hangout is
    one of the networks near the current venue (see
    ``GroupModel.hangout_local_factor``); ``public_pool`` is the city's
    (ssid, adoption) list for the shared-chain draws.
    """
    core: List[NetworkProfile] = []
    for pub in public_pool:
        if rng.random() < pub.adoption * model.public_share_factor:
            core.append(NetworkProfile(pub.ssid, Security.OPEN))
    if rng.random() < model.p_shared_home:
        home = textgen.home_router_ssid(rng)
        sec = Security.OPEN if rng.random() < 0.15 else Security.WPA2_PSK
        core.append(NetworkProfile(home, sec))
    if open_shop_ssids and rng.random() < model.p_hangout:
        count = 1 + int(rng.integers(model.max_hangouts))
        for _ in range(count):
            pool = open_shop_ssids
            if local_shop_ssids and rng.random() < p_local:
                pool = local_shop_ssids
            ssid = pool[int(rng.integers(len(pool)))]
            core.append(NetworkProfile(ssid, Security.OPEN))
    return core


def member_share(
    core: Sequence[NetworkProfile],
    model: GroupModel,
    rng: np.random.Generator,
) -> List[NetworkProfile]:
    """The subset of the core one member actually carries."""
    return [p for p in core if rng.random() < model.p_inherit]
