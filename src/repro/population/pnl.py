"""PNL synthesis model.

:class:`PnlModel` holds every probability of the PNL generative story;
:class:`VenueContext` anchors it to one attack site (which venue, which
networks are physically nearby).  The defaults are the calibrated values
that land the reproduction inside the paper's bands; tests assert the
resulting marginals (PNL sizes, open-entry rates, top-40 coverage).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.city.model import City
from repro.city.venues import Venue
from repro.dot11.capabilities import NetworkProfile, Security
from repro.population.person import OsFamily
from repro.util import textgen

CARRIER_SSIDS: Dict[str, float] = {
    "PCCW1x": 0.35,
    "CSL Auto Connect": 0.25,
    "SmarTone Auto WiFi": 0.20,
    "3HK Wi-Fi Auto": 0.20,
}
"""Mobile-carrier hotspot SSIDs preloaded into iOS PNLs, with each
carrier's subscriber share.  Deliberately absent from the WiGLE registry
(the paper notes carrier SSIDs 'generally cannot be obtained from WiGLE,
or from direct probes')."""


@dataclass(frozen=True)
class PnlModel:
    """All probabilities of PNL synthesis."""

    p_home_open: float = 0.18
    """P(the home router is open) — open home networks are unique-SSID
    and therefore useless to the attacker, but they make direct probes
    occasionally exploitable."""

    p_has_work: float = 0.55
    p_work_open: float = 0.05

    ios_share: float = 0.45
    p_ios_carrier: float = 0.55
    """P(an iOS user subscribes to a carrier whose hotspot SSID is
    preloaded)."""

    long_tail_mean: float = 0.3
    """Poisson mean of personal open shop networks (cafés the person
    frequents) — the diversity source of direct probes."""

    p_unsafe: float = 0.15
    """P(the phone still sends direct probes)."""

    direct_probe_home_weight: float = 0.45
    direct_probe_work_weight: float = 0.20
    direct_probe_public_weight: float = 0.95
    direct_probe_shop_weight: float = 0.20
    """Per-category probabilities that an unsafe phone reveals a PNL
    entry of that kind.  Home/work dominate (hidden-network candidates),
    so MANA's database fills mostly with unique junk; the occasional
    public-network reveal is what seeds the direct-probe source class of
    Fig. 6.  Carrier profiles are never probed (SIM-managed)."""

    max_direct_probes: int = 5

    neighbour_affinity_factor: float = 0.02
    """Local affinity multiplier for networks near (but not at) the
    attack venue."""

    secured_public_scale: float = 1.0
    """Multiplier on adoption of the *secured* public networks (eduroam
    etc.) — present in PNLs, never exploitable."""


@dataclass
class VenueContext:
    """The attack site as seen by PNL synthesis."""

    venue: Venue
    neighbour_open_ssids: Sequence[str] = field(default_factory=tuple)
    """Open SSIDs physically near the venue (excluding the venue's own)."""


@dataclass
class BuiltPnl:
    """One synthesised PNL plus the identities of its home/work entries."""

    pnl: Dict[str, NetworkProfile]
    home_ssid: str
    work_ssid: str


class PnlBuilder:
    """Draws one person's PNL from the model. Stateless across calls
    except for the RNG it consumes."""

    def __init__(self, city: City, context: VenueContext, model: PnlModel,
                 rng: np.random.Generator):
        self.city = city
        self.context = context
        self.model = model
        self.rng = rng
        # Pre-extract the pools so per-person work stays O(pool size).
        self._public = [(p.ssid, p.adoption) for p in city.public_pool]
        self._secured_public = city.secured_public_ssids()
        self._shops = city.open_shop_ssids
        self._venue_ssids = list(context.venue.wifi_ssids)

    # -- pieces ------------------------------------------------------------

    def _home_profile(self) -> Tuple[str, NetworkProfile]:
        ssid = textgen.home_router_ssid(self.rng)
        open_ = self.rng.random() < self.model.p_home_open
        sec = Security.OPEN if open_ else Security.WPA2_PSK
        return ssid, NetworkProfile(ssid, sec)

    def _work_profile(self) -> Tuple[str, NetworkProfile]:
        ssid = textgen.corporate_ssid(self.rng)
        open_ = self.rng.random() < self.model.p_work_open
        sec = Security.OPEN if open_ else Security.WPA2_ENTERPRISE
        return ssid, NetworkProfile(ssid, sec)

    def _public_draws(self, scale: float = 1.0) -> List[NetworkProfile]:
        out: List[NetworkProfile] = []
        draws = self.rng.random(len(self._public))
        for (ssid, adoption), u in zip(self._public, draws):
            if u < adoption * scale:
                out.append(NetworkProfile(ssid, Security.OPEN))
        return out

    def _local_draws(self) -> List[NetworkProfile]:
        out: List[NetworkProfile] = []
        affinity = self.context.venue.local_affinity
        for ssid in self._venue_ssids:
            if self.rng.random() < affinity:
                out.append(NetworkProfile(ssid, Security.OPEN))
        neighbour_p = affinity * self.model.neighbour_affinity_factor
        for ssid in self.context.neighbour_open_ssids:
            if self.rng.random() < neighbour_p:
                out.append(NetworkProfile(ssid, Security.OPEN))
        return out

    def _long_tail(self) -> List[NetworkProfile]:
        if not self._shops:
            return []
        count = int(self.rng.poisson(self.model.long_tail_mean))
        out = []
        for _ in range(count):
            ssid = self._shops[int(self.rng.integers(len(self._shops)))]
            out.append(NetworkProfile(ssid, Security.OPEN))
        return out

    def _carrier(self, os_family: OsFamily) -> List[NetworkProfile]:
        if os_family is not OsFamily.IOS:
            return []
        if self.rng.random() >= self.model.p_ios_carrier:
            return []
        names = list(CARRIER_SSIDS)
        shares = np.array([CARRIER_SSIDS[n] for n in names])
        pick = names[int(self.rng.choice(len(names), p=shares / shares.sum()))]
        return [NetworkProfile(pick, Security.OPEN)]

    def _secured_public_draws(self) -> List[NetworkProfile]:
        out = []
        for spec in self.city.chains:
            if spec.security.is_open:
                continue
            p = spec.adoption * self.city.config.adoption_scale
            p *= self.model.secured_public_scale
            if self.rng.random() < p:
                out.append(NetworkProfile(spec.name, spec.security))
        return out

    # -- assembly -----------------------------------------------------------

    def build(
        self,
        os_family: OsFamily,
        extra: Sequence[NetworkProfile] = (),
        public_personal_scale: float = 1.0,
    ) -> "BuiltPnl":
        """One complete PNL; ``extra`` injects group-shared entries.

        ``public_personal_scale`` shrinks the personal public-network
        draws for group members, whose group core already carries the
        shared public draws — keeping every person's *marginal* adoption
        equal while making companions' PNLs correlate.
        """
        pnl: Dict[str, NetworkProfile] = {}
        home_ssid, home = self._home_profile()
        pnl[home_ssid] = home
        work_ssid = ""
        if self.rng.random() < self.model.p_has_work:
            work_ssid, work = self._work_profile()
            pnl[work_ssid] = work
        for profile in self._public_draws(public_personal_scale):
            pnl.setdefault(profile.ssid, profile)
        for profile in self._local_draws():
            pnl.setdefault(profile.ssid, profile)
        for profile in self._long_tail():
            pnl.setdefault(profile.ssid, profile)
        for profile in self._carrier(os_family):
            pnl.setdefault(profile.ssid, profile)
        for profile in self._secured_public_draws():
            pnl.setdefault(profile.ssid, profile)
        for profile in extra:
            pnl.setdefault(profile.ssid, profile)
        return BuiltPnl(pnl=pnl, home_ssid=home_ssid, work_ssid=work_ssid)

    def pick_direct_probes(
        self, pnl: Dict[str, NetworkProfile], home_ssid: str, work_ssid: str = ""
    ) -> Tuple[str, ...]:
        """Which PNL entries an unsafe phone reveals in direct probes.

        Each category is revealed with its own probability (home/work
        first, then public networks, then shops); at most
        ``max_direct_probes`` distinct SSIDs, carriers never.
        """
        m = self.model
        public = {ssid for ssid, _adoption in self._public}
        public.update(self._venue_ssids)
        chosen: List[str] = []
        if home_ssid in pnl and self.rng.random() < m.direct_probe_home_weight:
            chosen.append(home_ssid)
        if (
            work_ssid
            and work_ssid in pnl
            and self.rng.random() < m.direct_probe_work_weight
        ):
            chosen.append(work_ssid)
        for ssid in pnl:
            if len(chosen) >= m.max_direct_probes:
                break
            if ssid in (home_ssid, work_ssid) or ssid in CARRIER_SSIDS:
                continue
            p = (
                m.direct_probe_public_weight
                if ssid in public
                else m.direct_probe_shop_weight
            )
            if self.rng.random() < p:
                chosen.append(ssid)
        if not chosen and pnl:
            # An unsafe phone probes *something*; default to home.
            chosen.append(home_ssid if home_ssid in pnl else next(iter(pnl)))
        return tuple(chosen[: m.max_direct_probes])
