"""Synthetic population: people, their PNLs, and social groups.

The crowd at a venue is generated on demand: each arrival draws a group
of 1-4 people whose phones carry Preferred Network Lists synthesised
from the city's generative story — home and work networks (mostly
secured), the open public networks of the city (chains, hot venues)
weighted by adoption, the attack venue's own local networks for regulars,
carrier hotspots on iOS, and a personal long tail of small open shops.
Group members share part of their PNLs (families and friends frequent
the same places), which is the mechanism behind the paper's freshness
buffer.
"""

from repro.population.person import OsFamily, PersonSpec
from repro.population.pnl import PnlModel, VenueContext
from repro.population.synthesis import PersonFactory

__all__ = [
    "OsFamily",
    "PersonSpec",
    "PnlModel",
    "VenueContext",
    "PersonFactory",
]
