"""Person and group synthesis.

:class:`PersonFactory` is the single entry point the mobility layer uses:
``make_group(size)`` returns ``size`` fully-specified people who share a
group core.  Everything is drawn from one RNG stream, so a scenario's
crowd is a pure function of (city, venue context, model, seed).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.city.model import City
from repro.population.groups import GroupModel, draw_group_core, member_share
from repro.population.person import OsFamily, PersonSpec
from repro.population.pnl import PnlBuilder, PnlModel, VenueContext


class PersonFactory:
    """Generates people (and their phones' Wi-Fi state) on demand."""

    def __init__(
        self,
        city: City,
        context: VenueContext,
        rng: np.random.Generator,
        pnl_model: Optional[PnlModel] = None,
        group_model: Optional[GroupModel] = None,
    ):
        self.city = city
        self.context = context
        self.rng = rng
        self.pnl_model = pnl_model if pnl_model is not None else PnlModel()
        self.group_model = group_model if group_model is not None else GroupModel()
        self._builder = PnlBuilder(city, context, self.pnl_model, rng)
        self._next_person_id = 0
        self._next_group_id = 0

    def _draw_os(self) -> OsFamily:
        if self.rng.random() < self.pnl_model.ios_share:
            return OsFamily.IOS
        return OsFamily.ANDROID

    # With core draws at adoption*psf and inheritance p_i, a member's
    # personal draw must shrink so the marginal stays at `adoption`:
    # 1-(1-x*a)(1-p_i*psf*a) = a  =>  x = 1 - p_i*psf  (to first order).
    def _personal_public_scale(self) -> float:
        gm = self.group_model
        return max(0.0, 1.0 - gm.p_inherit * gm.public_share_factor)

    def make_person(self, group_id: int = -1, group_core=()) -> PersonSpec:
        """One person, optionally inheriting a group core."""
        os_family = self._draw_os()
        shared = member_share(group_core, self.group_model, self.rng)
        personal_scale = 1.0 if group_id < 0 else self._personal_public_scale()
        built = self._builder.build(
            os_family, extra=shared, public_personal_scale=personal_scale
        )
        # Direct-probing firmware survives on old Androids; conditioning
        # on OS keeps the overall unsafe share at p_unsafe while keeping
        # carrier SSIDs (iOS-only) out of direct probes, as the paper
        # observes they cannot be learned that way.
        p_unsafe_android = self.pnl_model.p_unsafe / max(
            1e-9, 1.0 - self.pnl_model.ios_share
        )
        unsafe = (
            os_family is OsFamily.ANDROID
            and self.rng.random() < p_unsafe_android
        )
        direct: tuple = ()
        if unsafe:
            direct = self._builder.pick_direct_probes(
                built.pnl, built.home_ssid, built.work_ssid
            )
        person = PersonSpec(
            person_id=self._next_person_id,
            os_family=os_family,
            pnl=built.pnl,
            unsafe=unsafe,
            direct_probe_ssids=direct,
            group_id=group_id,
        )
        self._next_person_id += 1
        return person

    def make_group(self, size: int) -> List[PersonSpec]:
        """A social group of ``size`` people sharing a PNL core."""
        if size <= 0:
            raise ValueError("group size must be positive, got %r" % size)
        if size == 1:
            return [self.make_person()]
        group_id = self._next_group_id
        self._next_group_id += 1
        gm = self.group_model
        p_local = min(
            gm.max_hangout_local,
            self.context.venue.local_affinity * gm.hangout_local_factor,
        )
        core = draw_group_core(
            gm,
            self.city.open_shop_ssids,
            self.rng,
            local_shop_ssids=self.context.neighbour_open_ssids,
            p_local=p_local,
            public_pool=self.city.public_pool,
        )
        return [self.make_person(group_id, core) for _ in range(size)]
