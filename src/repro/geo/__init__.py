"""Planar geometry for the synthetic city.

Coordinates are metres on a flat plane — at city scale (tens of km) the
flat-earth error is irrelevant to every query the attack makes (nearest-N
APs, point-in-venue, radio range).
"""

from repro.geo.grid import SpatialGrid
from repro.geo.point import Point, distance
from repro.geo.region import Rect

__all__ = ["Point", "distance", "Rect", "SpatialGrid"]
