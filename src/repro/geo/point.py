"""Points and distances (metres, flat plane)."""

from __future__ import annotations

import math
from typing import NamedTuple


class Point(NamedTuple):
    """A location in metres.  Immutable and hashable."""

    x: float
    y: float

    def translated(self, dx: float, dy: float) -> "Point":
        """A new point offset by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` in metres."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def towards(self, other: "Point", fraction: float) -> "Point":
        """Linear interpolation: 0 → self, 1 → other."""
        return Point(
            self.x + (other.x - self.x) * fraction,
            self.y + (other.y - self.y) * fraction,
        )


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points in metres."""
    return a.distance_to(b)
