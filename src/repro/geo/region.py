"""Axis-aligned rectangular regions (districts, venues, corridors)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.point import Point


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle [x0, x1] x [y0, y1] in metres."""

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        if self.x1 < self.x0 or self.y1 < self.y0:
            raise ValueError("degenerate rect: %r" % (self,))

    @property
    def width(self) -> float:
        """Extent along x in metres."""
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        """Extent along y in metres."""
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        """Area in square metres."""
        return self.width * self.height

    @property
    def center(self) -> Point:
        """Geometric centre."""
        return Point((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)

    def contains(self, p: Point) -> bool:
        """Whether ``p`` lies inside (edges inclusive)."""
        return self.x0 <= p.x <= self.x1 and self.y0 <= p.y <= self.y1

    def sample(self, rng: np.random.Generator) -> Point:
        """A uniformly random point inside the rectangle."""
        return Point(
            float(rng.uniform(self.x0, self.x1)),
            float(rng.uniform(self.y0, self.y1)),
        )

    def expanded(self, margin: float) -> "Rect":
        """A rect grown by ``margin`` metres on every side."""
        return Rect(
            self.x0 - margin, self.y0 - margin, self.x1 + margin, self.y1 + margin
        )
