"""Uniform spatial hash grid for nearest-neighbour and range queries.

Used by the WiGLE registry ("100 SSIDs nearest the attack site") and by
the heat map ("heat value at an AP's location").  A uniform grid beats a
k-d tree here: items are inserted once and queried with small radii.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Generic, Iterable, List, Tuple, TypeVar

from repro.geo.point import Point

T = TypeVar("T")


class SpatialGrid(Generic[T]):
    """Bucket items by ``cell_size`` squares and answer range queries."""

    def __init__(self, cell_size: float):
        if cell_size <= 0:
            raise ValueError("cell_size must be positive, got %r" % cell_size)
        self.cell_size = cell_size
        self._cells: Dict[Tuple[int, int], List[Tuple[Point, T]]] = defaultdict(list)
        self._count = 0

    def _key(self, p: Point) -> Tuple[int, int]:
        return (int(p.x // self.cell_size), int(p.y // self.cell_size))

    def insert(self, p: Point, item: T) -> None:
        """Add ``item`` at location ``p``."""
        self._cells[self._key(p)].append((p, item))
        self._count += 1

    def __len__(self) -> int:
        return self._count

    def within(self, center: Point, radius: float) -> List[Tuple[Point, T]]:
        """All (point, item) pairs within ``radius`` metres of ``center``."""
        if radius < 0:
            raise ValueError("radius must be non-negative, got %r" % radius)
        cx, cy = self._key(center)
        reach = int(radius // self.cell_size) + 1
        out: List[Tuple[Point, T]] = []
        r2 = radius * radius
        for ix in range(cx - reach, cx + reach + 1):
            for iy in range(cy - reach, cy + reach + 1):
                for p, item in self._cells.get((ix, iy), ()):
                    dx = p.x - center.x
                    dy = p.y - center.y
                    if dx * dx + dy * dy <= r2:
                        out.append((p, item))
        return out

    def nearest(self, center: Point, count: int) -> List[Tuple[Point, T]]:
        """The ``count`` items nearest ``center`` (distance ascending).

        Expands the search radius geometrically until enough items are
        found or the whole grid has been scanned.
        """
        if count <= 0:
            return []
        if self._count == 0:
            return []
        radius = self.cell_size
        while True:
            hits = self.within(center, radius)
            if len(hits) >= count or len(hits) == self._count:
                hits.sort(key=lambda pair: pair[0].distance_to(center))
                return hits[:count]
            radius *= 2.0

    def items(self) -> Iterable[Tuple[Point, T]]:
        """Iterate over every stored (point, item) pair."""
        for bucket in self._cells.values():
            yield from bucket
