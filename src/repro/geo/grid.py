"""Uniform spatial hash grids for nearest-neighbour and range queries.

:class:`SpatialGrid` is the write-once variant used by the WiGLE
registry ("100 SSIDs nearest the attack site") and by the heat map
("heat value at an AP's location").  A uniform grid beats a k-d tree
here: items are inserted once and queried with small radii.

:class:`MutableSpatialGrid` is its dynamic sibling: keyed items can be
inserted, moved and removed, which is what the radio medium needs to
keep stations binned as they walk through the scene.  Queries come in
two flavours — ``within`` (exact disc) and ``candidates`` (cell-coarse
superset, for callers that apply their own exact predicate afterwards).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Generic, Hashable, Iterable, List, Tuple, TypeVar

from repro.geo.point import Point

T = TypeVar("T")
K = TypeVar("K", bound=Hashable)


class DistrictPartition:
    """Fixed district grid over a square city, grouped into shards.

    Districts are ``district_m`` squares cut along the same axis-aligned
    seam as the spatial hash grids above (``ix = x // cell``), numbered
    row-major; they are a property of the *workload*, so district ids —
    unlike shard ids — are identical at every shard count and safe to
    use in cross-shard handoff sort keys.  Shards group whole district
    *columns* into contiguous x-stripes, so a shard's territory is a
    single interval ``[x_lo, x_hi)`` and candidate pruning needs only a
    1-D inflation.
    """

    __slots__ = ("size_m", "district_m", "nx", "ny")

    def __init__(self, size_m: float, district_m: float):
        if size_m <= 0:
            raise ValueError("size_m must be positive, got %r" % size_m)
        if district_m <= 0:
            raise ValueError("district_m must be positive, got %r" % district_m)
        self.size_m = float(size_m)
        self.district_m = float(district_m)
        self.nx = max(1, int(self.size_m // self.district_m))
        self.ny = self.nx

    @property
    def districts(self) -> int:
        """Total number of districts in the grid."""
        return self.nx * self.ny

    def column_of(self, x: float) -> int:
        """District column index of coordinate ``x`` (clamped to city)."""
        ix = int(x // self.district_m)
        if ix < 0:
            return 0
        if ix >= self.nx:
            return self.nx - 1
        return ix

    def district_of(self, x: float, y: float) -> int:
        """Row-major district id of a point (clamped to the city square)."""
        iy = int(y // self.district_m)
        if iy < 0:
            iy = 0
        elif iy >= self.ny:
            iy = self.ny - 1
        return iy * self.nx + self.column_of(x)

    def shard_of_column(self, ix: int, shards: int) -> int:
        """Shard owning district column ``ix`` when using ``shards`` stripes."""
        if shards < 1:
            raise ValueError("shards must be >= 1, got %r" % shards)
        if shards == 1:
            return 0
        shard = ix * shards // self.nx
        return min(shards - 1, max(0, shard))

    def shard_of_district(self, district: int, shards: int) -> int:
        """Shard owning one district id."""
        return self.shard_of_column(district % self.nx, shards)

    def shard_of_point(self, x: float, y: float, shards: int) -> int:
        """Shard owning the district containing ``(x, y)``."""
        return self.shard_of_column(self.column_of(x), shards)

    def stripe_bounds(self, shard: int, shards: int) -> Tuple[float, float]:
        """The ``[x_lo, x_hi)`` territory of one shard stripe in metres."""
        columns = [
            ix for ix in range(self.nx) if self.shard_of_column(ix, shards) == shard
        ]
        if not columns:
            return (0.0, 0.0)
        lo = columns[0] * self.district_m
        hi = (columns[-1] + 1) * self.district_m
        if columns[-1] == self.nx - 1:
            hi = max(hi, self.size_m)  # last column absorbs the remainder
        return (lo, hi)


class SpatialGrid(Generic[T]):
    """Bucket items by ``cell_size`` squares and answer range queries."""

    def __init__(self, cell_size: float):
        if cell_size <= 0:
            raise ValueError("cell_size must be positive, got %r" % cell_size)
        self.cell_size = cell_size
        self._cells: Dict[Tuple[int, int], List[Tuple[Point, T]]] = defaultdict(list)
        self._count = 0

    def _key(self, p: Point) -> Tuple[int, int]:
        return (int(p.x // self.cell_size), int(p.y // self.cell_size))

    def insert(self, p: Point, item: T) -> None:
        """Add ``item`` at location ``p``."""
        self._cells[self._key(p)].append((p, item))
        self._count += 1

    def __len__(self) -> int:
        return self._count

    def within(self, center: Point, radius: float) -> List[Tuple[Point, T]]:
        """All (point, item) pairs within ``radius`` metres of ``center``."""
        if radius < 0:
            raise ValueError("radius must be non-negative, got %r" % radius)
        cx, cy = self._key(center)
        reach = int(radius // self.cell_size) + 1
        out: List[Tuple[Point, T]] = []
        r2 = radius * radius
        for ix in range(cx - reach, cx + reach + 1):
            for iy in range(cy - reach, cy + reach + 1):
                for p, item in self._cells.get((ix, iy), ()):
                    dx = p.x - center.x
                    dy = p.y - center.y
                    if dx * dx + dy * dy <= r2:
                        out.append((p, item))
        return out

    def nearest(self, center: Point, count: int) -> List[Tuple[Point, T]]:
        """The ``count`` items nearest ``center`` (distance ascending).

        Expands the search radius geometrically until enough items are
        found or the whole grid has been scanned.
        """
        if count <= 0:
            return []
        if self._count == 0:
            return []
        radius = self.cell_size
        while True:
            hits = self.within(center, radius)
            if len(hits) >= count or len(hits) == self._count:
                hits.sort(key=lambda pair: pair[0].distance_to(center))
                return hits[:count]
            radius *= 2.0

    def items(self) -> Iterable[Tuple[Point, T]]:
        """Iterate over every stored (point, item) pair."""
        for bucket in self._cells.values():
            yield from bucket


class MutableSpatialGrid(Generic[K]):
    """Dynamic uniform hash grid of keyed, movable points.

    Each key occupies exactly one cell; ``move`` rebins only when the
    key's cell actually changed, so sweeping a mostly-stationary
    population is O(changed cells), not O(items).
    """

    __slots__ = ("cell_size", "_cells", "_where")

    def __init__(self, cell_size: float):
        if cell_size <= 0:
            raise ValueError("cell_size must be positive, got %r" % cell_size)
        self.cell_size = cell_size
        self._cells: Dict[Tuple[int, int], Dict[K, Point]] = {}
        self._where: Dict[K, Tuple[Tuple[int, int], Point]] = {}

    def _key(self, p: Point) -> Tuple[int, int]:
        return (int(p.x // self.cell_size), int(p.y // self.cell_size))

    def __len__(self) -> int:
        return len(self._where)

    def __contains__(self, key: K) -> bool:
        return key in self._where

    def position_of(self, key: K) -> Point:
        """The stored (possibly stale) position of ``key``."""
        return self._where[key][1]

    def insert(self, key: K, p: Point) -> None:
        """Add ``key`` at ``p`` (re-inserting an existing key moves it)."""
        if key in self._where:
            self.move(key, p)
            return
        cell = self._key(p)
        self._cells.setdefault(cell, {})[key] = p
        self._where[key] = (cell, p)

    def move(self, key: K, p: Point) -> None:
        """Update ``key``'s position, rebinning only on a cell change."""
        cell, _ = self._where[key]
        new_cell = self._key(p)
        if new_cell == cell:
            self._cells[cell][key] = p
            self._where[key] = (cell, p)
            return
        bucket = self._cells[cell]
        del bucket[key]
        if not bucket:
            del self._cells[cell]
        self._cells.setdefault(new_cell, {})[key] = p
        self._where[key] = (new_cell, p)

    def remove(self, key: K) -> None:
        """Drop ``key``; unknown keys are ignored (already gone)."""
        entry = self._where.pop(key, None)
        if entry is None:
            return
        cell, _ = entry
        bucket = self._cells[cell]
        del bucket[key]
        if not bucket:
            del self._cells[cell]

    def candidates(self, center: Point, radius: float) -> List[K]:
        """Keys of every cell overlapping the disc — a superset of the
        keys within ``radius``, with no per-item distance filtering.

        Callers that re-check candidates exactly (the radio medium does)
        want this cheaper form; use :meth:`within` for an exact answer.
        """
        if radius < 0:
            raise ValueError("radius must be non-negative, got %r" % radius)
        cx, cy = self._key(center)
        reach = int(radius // self.cell_size) + 1
        out: List[K] = []
        cells = self._cells
        for ix in range(cx - reach, cx + reach + 1):
            for iy in range(cy - reach, cy + reach + 1):
                bucket = cells.get((ix, iy))
                if bucket:
                    out.extend(bucket)
        return out

    def within(self, center: Point, radius: float) -> List[Tuple[Point, K]]:
        """All (point, key) pairs within ``radius`` metres of ``center``."""
        if radius < 0:
            raise ValueError("radius must be non-negative, got %r" % radius)
        cx, cy = self._key(center)
        reach = int(radius // self.cell_size) + 1
        out: List[Tuple[Point, K]] = []
        r2 = radius * radius
        for ix in range(cx - reach, cx + reach + 1):
            for iy in range(cy - reach, cy + reach + 1):
                for key, p in self._cells.get((ix, iy), {}).items():
                    dx = p.x - center.x
                    dy = p.y - center.y
                    if dx * dx + dy * dy <= r2:
                        out.append((p, key))
        return out

    def items(self) -> Iterable[Tuple[K, Point]]:
        """Iterate over every (key, stored position) pair."""
        for key, (_, p) in self._where.items():
            yield key, p
