"""Deterministic random-number management.

Every experiment in the reproduction is driven by a single integer seed.
That seed is fanned out into *named* substreams (``"population"``,
``"mobility"``, ``"medium"`` …) so that adding randomness to one subsystem
never perturbs the draws of another — a property the calibration tests
rely on.

The fan-out uses SHA-256 over ``(seed, name)`` which is stable across
Python versions and platforms (unlike ``hash()``).
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a stream name.

    The derivation is deterministic, platform independent, and
    collision-resistant for all practical purposes.
    """
    payload = f"{master_seed}:{name}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "little")


class RngRegistry:
    """A factory of named, independent ``numpy.random.Generator`` streams.

    >>> rngs = RngRegistry(seed=7)
    >>> a = rngs.stream("population")
    >>> b = rngs.stream("mobility")
    >>> a is rngs.stream("population")   # streams are cached
    True

    Streams with different names are statistically independent; the same
    name always yields the same (single) generator instance.
    """

    def __init__(self, seed: int):
        if not isinstance(seed, int):
            raise TypeError("seed must be an int, got %r" % type(seed).__name__)
        self._seed = seed
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The master seed this registry fans out."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        if name not in self._streams:
            child = derive_seed(self._seed, name)
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *new* generator for ``name``, resetting any cached one.

        Useful when an experiment re-initialises a subsystem mid-run (the
        paper re-initialises the attacker database before every test).
        """
        child = derive_seed(self._seed, name)
        self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def child(self, name: str) -> "RngRegistry":
        """Derive a whole child registry, e.g. one per repeated trial."""
        return RngRegistry(derive_seed(self._seed, name))


class BufferedUniform:
    """Batched uniform draws, bit-identical to scalar ``rng.random()``.

    ``Generator.random(size=n)`` consumes the underlying bit stream
    exactly like ``n`` scalar ``random()`` calls, so serving scalars out
    of a refilled block yields the *same values in the same order* while
    amortising the per-call generator overhead — the medium's per-frame
    loss draws are the hot consumer.

    Only safe for a stream with a single consumer: refilling draws ahead
    of demand, so interleaving other draw kinds on the same generator
    would observe an advanced stream state.
    """

    __slots__ = ("_rng", "_block", "_buf", "_pos")

    def __init__(self, rng: np.random.Generator, block: int = 256):
        if block < 1:
            raise ValueError("block size must be >= 1, got %r" % block)
        self._rng = rng
        self._block = block
        self._buf = None  # filled on first draw: idle consumers cost nothing
        self._pos = block

    def next(self) -> float:
        """The next uniform [0, 1) draw from the wrapped stream."""
        if self._pos >= self._block:
            self._buf = self._rng.random(self._block)
            self._pos = 0
        value = self._buf[self._pos]
        self._pos += 1
        return value
