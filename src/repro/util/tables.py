"""Plain-text table rendering for benchmark and example output.

The benchmark harness prints the same rows the paper's tables report; this
module renders them as aligned ASCII so the output is diffable and easy to
eyeball against the paper.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Floats are shown with one decimal (matching the paper's precision);
    everything else is ``str()``-ed.
    """
    str_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                "row has %d cells but table has %d headers" % (len(row), len(headers))
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append(sep)
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def render_ratio(numerator: int, denominator: int) -> str:
    """Render a breakdown ratio the way the paper annotates Fig. 6 bars.

    The paper prints e.g. ``243/69 = 3.5`` above each stacked bar.
    A zero denominator is rendered as ``inf``.
    """
    if denominator == 0:
        ratio = "inf"
    else:
        ratio = f"{numerator / denominator:.1f}"
    return f"{numerator}/{denominator} = {ratio}"
