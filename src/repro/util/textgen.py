"""Deterministic name generation for synthetic SSIDs.

The synthetic city needs thousands of plausible SSIDs: home routers with
vendor-default names, small shops, corporate networks, and the handful of
well-known chains and hot-area networks the paper calls out by name
(``7-Eleven Free Wifi``, ``#HKAirport Free WiFi`` …).  Everything here is a
pure function of the supplied RNG so city generation stays reproducible.
"""

from __future__ import annotations

from typing import List

import numpy as np

_ROUTER_VENDORS = [
    "TP-LINK",
    "D-Link",
    "NETGEAR",
    "Linksys",
    "ASUS",
    "Xiaomi",
    "HUAWEI",
    "Tenda",
    "Buffalo",
    "ZyXEL",
]

_SHOP_WORDS_A = [
    "Golden",
    "Lucky",
    "Happy",
    "Star",
    "Sunny",
    "Royal",
    "Ocean",
    "Jade",
    "Pearl",
    "Dragon",
    "Harbour",
    "Garden",
    "Phoenix",
    "Silver",
    "Grand",
]

_SHOP_WORDS_B = [
    "Cafe",
    "Noodle",
    "Tea",
    "Books",
    "Salon",
    "Bakery",
    "Dental",
    "Tailor",
    "Pharmacy",
    "Electronics",
    "Fashion",
    "Kitchen",
    "Studio",
    "Mart",
    "House",
]

_CORP_WORDS = [
    "Corp",
    "Office",
    "Staff",
    "Guest",
    "Internal",
    "HQ",
    "Lab",
    "Admin",
]


def home_router_ssid(rng: np.random.Generator) -> str:
    """A vendor-default home-router SSID like ``TP-LINK_3F2A``."""
    vendor = _ROUTER_VENDORS[int(rng.integers(len(_ROUTER_VENDORS)))]
    suffix = "".join(
        "0123456789ABCDEF"[int(d)] for d in rng.integers(0, 16, size=4)
    )
    return f"{vendor}_{suffix}"


def shop_ssid(rng: np.random.Generator) -> str:
    """A small-business SSID like ``Lucky Noodle WiFi``."""
    a = _SHOP_WORDS_A[int(rng.integers(len(_SHOP_WORDS_A)))]
    b = _SHOP_WORDS_B[int(rng.integers(len(_SHOP_WORDS_B)))]
    style = int(rng.integers(3))
    if style == 0:
        return f"{a} {b} WiFi"
    if style == 1:
        return f"{a}{b}"
    return f"{a} {b} Free WiFi"


def corporate_ssid(rng: np.random.Generator) -> str:
    """A corporate SSID like ``Pearl-Corp`` (usually secured)."""
    a = _SHOP_WORDS_A[int(rng.integers(len(_SHOP_WORDS_A)))]
    b = _CORP_WORDS[int(rng.integers(len(_CORP_WORDS)))]
    return f"{a}-{b}"


def unique_names(count: int, maker, rng: np.random.Generator) -> List[str]:
    """Draw ``count`` *distinct* names using ``maker(rng)``.

    Collisions are resolved by appending a counter (truncating the base
    name so the result stays within the 32-byte SSID limit), so the
    function always terminates and always returns exactly ``count`` names.
    """
    if count < 0:
        raise ValueError("count must be non-negative, got %r" % count)
    seen = set()
    out: List[str] = []
    attempts = 0
    while len(out) < count:
        name = maker(rng)
        attempts += 1
        if name in seen and attempts > 2 * count:
            suffix = f"-{len(out)}"
            name = name[: 32 - len(suffix)] + suffix
        if name not in seen:
            seen.add(name)
            out.append(name)
    return out
