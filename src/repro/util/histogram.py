"""Tiny histogram helpers for the figure-reproduction benches.

Fig. 2(b) of the paper is a histogram of "number of SSIDs tested per
client" with bars at 40, 80, 120 …; these helpers bucket integer samples
and render the result as text bars.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple


def bucket_counts(samples: Iterable[int], width: int) -> Dict[int, int]:
    """Bucket integer ``samples`` into buckets of ``width``.

    The key of each bucket is its inclusive upper edge, matching how the
    paper labels Fig. 2(b): a client that received 40 SSIDs falls in the
    ``40`` bucket, 41–80 in ``80`` and so on.  Zero falls in bucket 0.
    """
    if width <= 0:
        raise ValueError("bucket width must be positive, got %r" % width)
    counts: Counter = Counter()
    for s in samples:
        if s < 0:
            raise ValueError("samples must be non-negative, got %r" % s)
        if s == 0:
            counts[0] += 1
        else:
            upper = ((s + width - 1) // width) * width
            counts[upper] += 1
    return dict(sorted(counts.items()))


@dataclass
class Histogram:
    """Accumulating histogram with text rendering.

    >>> h = Histogram(width=40)
    >>> h.extend([40, 40, 80])
    >>> h.fraction(40)
    0.666...
    """

    width: int
    _samples: List[int] = field(default_factory=list)

    def add(self, sample: int) -> None:
        """Record one sample."""
        if sample < 0:
            raise ValueError("samples must be non-negative, got %r" % sample)
        self._samples.append(sample)

    def extend(self, samples: Iterable[int]) -> None:
        """Record many samples."""
        for s in samples:
            self.add(s)

    @property
    def total(self) -> int:
        """Number of recorded samples."""
        return len(self._samples)

    def buckets(self) -> Dict[int, int]:
        """Bucketed counts keyed by inclusive upper edge."""
        return bucket_counts(self._samples, self.width)

    def fraction(self, upper_edge: int) -> float:
        """Fraction of samples that fall in the bucket ``upper_edge``."""
        if not self._samples:
            return 0.0
        return self.buckets().get(upper_edge, 0) / len(self._samples)

    def mean(self) -> float:
        """Arithmetic mean of the raw samples."""
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    def min(self) -> int:
        """Smallest sample (0 when empty)."""
        return min(self._samples) if self._samples else 0

    def max(self) -> int:
        """Largest sample (0 when empty)."""
        return max(self._samples) if self._samples else 0

    def render(self, bar_width: int = 50) -> str:
        """Render the buckets as horizontal text bars."""
        buckets = self.buckets()
        if not buckets:
            return "(empty histogram)"
        peak = max(buckets.values())
        lines = []
        for edge, count in buckets.items():
            bar = "#" * max(1, round(bar_width * count / peak))
            share = 100.0 * count / self.total
            lines.append(f"{edge:>6} | {bar} {count} ({share:.0f}%)")
        return "\n".join(lines)


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (q in [0, 100])."""
    if not samples:
        raise ValueError("cannot take a percentile of no samples")
    if not 0 <= q <= 100:
        raise ValueError("q must be within [0, 100], got %r" % q)
    ordered = sorted(samples)
    if q == 0:
        return ordered[0]
    rank = max(1, int(round(q / 100.0 * len(ordered) + 0.5)) - 1)
    return ordered[min(rank, len(ordered) - 1)]


def split_ratio(pairs: Iterable[Tuple[int, int]]) -> float:
    """Aggregate ratio sum(a)/sum(b) over (a, b) pairs, inf-safe."""
    num = 0
    den = 0
    for a, b in pairs:
        num += a
        den += b
    if den == 0:
        return float("inf") if num else 0.0
    return num / den
