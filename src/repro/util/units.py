"""Physical units and 802.11 timing constants used across the simulator.

All simulation time is expressed in seconds (float).  The constants below
encode the scan-timing arithmetic the paper relies on (Section III-A):

* after sending a probe request a client listens for ``MIN_CHANNEL_TIME``
  (about 10 ms) for a first response, then at most one further
  ``MIN_CHANNEL_TIME`` window after the first response arrives;
* one probe response occupies the air for about 0.25 ms ([13] in the
  paper), so a client can receive roughly ``10 ms / 0.25 ms = 40``
  responses from a single AP in one scan round.

``MAX_RESPONSES_PER_SCAN`` is therefore *derived*, not hand-picked: it is
the same ceiling the paper derives and is recomputed from the two timing
constants so the dependency is explicit in code.
"""

US = 1e-6
"""One microsecond in seconds."""

MS = 1e-3
"""One millisecond in seconds."""

MINUTE = 60.0
"""One minute in seconds."""

HOUR = 3600.0
"""One hour in seconds."""

MIN_CHANNEL_TIME_S = 10 * MS
"""802.11 active-scan MinChannelTime: how long a client waits for the first
probe response after probing a channel."""

MAX_CHANNEL_TIME_S = 2 * MIN_CHANNEL_TIME_S
"""Upper bound of the listening window once at least one response arrived."""

PROBE_RESPONSE_AIRTIME_S = 0.25 * MS
"""Airtime of a single probe response frame (Castignani et al., cited as
[13] in the paper)."""

MAX_RESPONSES_PER_SCAN = int(MIN_CHANNEL_TIME_S / PROBE_RESPONSE_AIRTIME_S)
"""How many probe responses from one AP fit into a client's listening
window: the famous "only the first 40 SSIDs are received" ceiling."""

PROBE_REQUEST_AIRTIME_S = 0.15 * MS
"""Airtime of a probe request frame (shorter: no SSID list payload)."""

MANAGEMENT_FRAME_AIRTIME_S = 0.2 * MS
"""Airtime for auth/assoc/deauth management frames."""

DEFAULT_TX_POWER_MW = 100.0
"""Transmission power of the prototype attacker (Section V-A)."""


def db_from_mw(milliwatts: float) -> float:
    """Convert a power in milliwatts to dBm."""
    import math

    if milliwatts <= 0:
        raise ValueError("power must be positive, got %r" % milliwatts)
    return 10.0 * math.log10(milliwatts)
