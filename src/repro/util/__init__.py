"""Shared utilities: RNG streams, units, name generation, text rendering.

These helpers are deliberately dependency-light so every other subpackage
can import them without cycles.
"""

from repro.util.histogram import Histogram, bucket_counts
from repro.util.rng import RngRegistry, derive_seed
from repro.util.tables import render_table
from repro.util.units import (
    MS,
    US,
    MINUTE,
    HOUR,
    PROBE_RESPONSE_AIRTIME_S,
    MAX_RESPONSES_PER_SCAN,
)

__all__ = [
    "Histogram",
    "bucket_counts",
    "RngRegistry",
    "derive_seed",
    "render_table",
    "MS",
    "US",
    "MINUTE",
    "HOUR",
    "PROBE_RESPONSE_AIRTIME_S",
    "MAX_RESPONSES_PER_SCAN",
]
