"""Evil-twin attackers.

:class:`RogueAp` implements everything every attacker shares — frame
handling, the association handshake, hit recording — and exposes two
strategy hooks (``on_broadcast_probe``, ``on_direct_probe``).  KARMA and
MANA are the paper's baselines; ``CityHunterBasic`` is the Section III
preliminary design (untried lists + WiGLE seeding); the full adaptive
attacker lives in :mod:`repro.core`.
"""

from repro.attacks.base import RogueAp
from repro.attacks.cityhunter_basic import CityHunterBasic
from repro.attacks.deauth import DeauthEmitter
from repro.attacks.karma import KarmaAttacker
from repro.attacks.mana import ManaAttacker

__all__ = [
    "RogueAp",
    "DeauthEmitter",
    "KarmaAttacker",
    "ManaAttacker",
    "CityHunterBasic",
]
