"""The MANA attacker (Dominic & de Villiers, DEF CON 22 — baseline #2).

MANA extends KARMA with a global SSID database harvested from overheard
direct probes; a broadcast probe is answered with the *whole* database in
insertion order.  The client's listening window cuts reception at ~40
responses, so in practice only the head of the database is ever tested —
the inefficiency the paper's Section III-A diagnoses.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.session import SentSsid
from repro.attacks.base import RogueAp
from repro.dot11.mac import MacAddress


class ManaAttacker(RogueAp):
    """Harvest direct-probe SSIDs; answer broadcasts with the whole DB."""

    name = "mana"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        # dicts preserve insertion order — exactly MANA's send order.
        self._db: Dict[str, None] = {}

    @property
    def db_size(self) -> int:
        """Current number of harvested SSIDs."""
        return len(self._db)

    def db_ssids(self) -> List[str]:
        """Database contents in insertion (= send) order."""
        return list(self._db)

    def on_direct_probe(self, client: MacAddress, ssid: str, time: float) -> None:
        """Store the revealed SSID and reflect it KARMA-style."""
        if ssid not in self._db:
            self._db[ssid] = None
            self.session.record_db_size(time, len(self._db))
        self.send_mimic(client, ssid, time)

    def on_broadcast_probe(self, client: MacAddress, time: float) -> None:
        """Answer with the full database, head first.

        MANA transmits everything; the client's MinChannelTime window
        means only the first ``max_responses_per_scan`` land, so we cap
        the physical burst at twice that — the tail could never be
        received and simulating its airtime changes nothing observable.
        """
        cap = 2 * self.timing.max_responses_per_scan
        metas = [
            SentSsid(ssid, origin="direct", bucket="db")
            for ssid in list(self._db)[:cap]
        ]
        self.send_ssid_burst(client, metas, time)
