"""The KARMA attacker (Dai Zovi & Macaulay, baseline #1).

KARMA reflects every direct probe as an open evil twin of the probed
SSID.  It has no database and no answer to broadcast probes, which is
why its broadcast hit rate is identically zero under modern clients —
the observation that motivates the whole paper.
"""

from __future__ import annotations

from repro.attacks.base import RogueAp
from repro.dot11.mac import MacAddress


class KarmaAttacker(RogueAp):
    """Reflect direct probes; ignore broadcast probes."""

    name = "karma"

    def on_direct_probe(self, client: MacAddress, ssid: str, time: float) -> None:
        """Mimic the probed SSID as an open network."""
        self.send_mimic(client, ssid, time)
