"""Stealth City-Hunter: evading the classic detectors.

The plain attacker is trivially detectable: one BSSID advertising forty
SSIDs per burst trips any multi-SSID monitor, and KARMA-style reflection
of arbitrary direct probes walks straight into canary traps.  This
variant — an exploration of the arms race the paper's countermeasure
discussion implies — changes two things:

1. **BSSID-per-SSID**: every advertised SSID gets its own stable alias
   BSSID (real hardware does this with MAC spoofing on one radio).  A
   monitor now sees hundreds of ordinary-looking one-SSID APs instead of
   one chameleon.
2. **No blind mimicry** (optional, default on): direct probes are only
   answered for SSIDs already present in the database, so canary probes
   for freshly invented names go unanswered.  The cost is real — unknown
   direct probes are no longer harvested-and-hit in one step — and is
   measured in ``benchmarks/bench_stealth.py``.

Association still works: the phone associates to the alias BSSID it saw,
the alias forwards the handshake to the hunter, and the hit is recorded
against the same session.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.session import SentSsid
from repro.core.hunter import CityHunter
from repro.dot11.capabilities import Security
from repro.dot11.frames import Frame, ProbeRequest, ProbeResponse
from repro.dot11.mac import MacAddress, random_ap_mac
from repro.dot11.medium import Medium  # noqa: F401  (doc reference)
from repro.geo.point import Point
from repro.sim.simulation import Simulation


class _AliasStation:
    """One spoofed BSSID; forwards unicast traffic to the hunter."""

    __slots__ = ("mac", "owner")

    def __init__(self, mac: MacAddress, owner: "StealthCityHunter"):
        self.mac = mac
        self.owner = owner

    def position_at(self, time: float) -> Point:
        return self.owner.position_at(time)

    def receive(self, frame: Frame, time: float) -> None:
        # Aliases serve only the frames addressed to them (the handshake
        # after a client picked this BSSID); probes are the main
        # station's business — otherwise every alias would answer every
        # broadcast probe.
        if isinstance(frame, ProbeRequest):
            return
        if frame.dst == self.mac:
            self.owner.receive_as(self.mac, frame, time)


class StealthCityHunter(CityHunter):
    """City-Hunter with BSSID rotation and optional mimicry discipline."""

    name = "city-hunter-stealth"

    def __init__(self, *args, mimic_unknown: bool = False, **kwargs):
        super().__init__(*args, **kwargs)
        self.mimic_unknown = mimic_unknown
        self._alias_by_ssid: Dict[str, _AliasStation] = {}

    def start(self, sim: Simulation) -> None:
        super().start(sim)
        self._alias_rng = sim.rngs.stream("stealth_alias")

    # -- alias management ---------------------------------------------------

    def alias_for(self, ssid: str) -> _AliasStation:
        """The stable spoofed BSSID advertising ``ssid``."""
        alias = self._alias_by_ssid.get(ssid)
        if alias is None:
            mac = random_ap_mac(self._alias_rng)
            while self.medium.is_attached(mac):
                mac = random_ap_mac(self._alias_rng)
            alias = _AliasStation(mac, self)
            self._alias_by_ssid[ssid] = alias
            self.medium.attach(alias, self.tx_range)
        return alias

    @property
    def alias_count(self) -> int:
        """How many spoofed BSSIDs are live."""
        return len(self._alias_by_ssid)

    def receive_as(self, alias_mac: MacAddress, frame: Frame, time: float) -> None:
        """Handle a handshake frame addressed to one of our aliases."""
        from repro.dot11.frames import (
            AssocRequest,
            AssocResponse,
            AuthRequest,
            AuthResponse,
        )

        alias = next(
            a for a in self._alias_by_ssid.values() if a.mac == alias_mac
        )
        if isinstance(frame, AuthRequest):
            self.medium.transmit(alias, AuthResponse(alias_mac, frame.src, True))
        elif isinstance(frame, AssocRequest):
            prior = self.session.clients.get(frame.src)
            fresh_hit = prior is None or not prior.connected
            record = self.session.record_hit(frame.src, time, frame.ssid)
            if fresh_hit:
                self._count_hit(record)
            self.medium.transmit(
                alias, AssocResponse(alias_mac, frame.src, frame.ssid, True)
            )
            self.on_hit(frame.src, frame.ssid, time)

    # -- overridden transmit paths ----------------------------------------------

    def send_mimic(self, client: MacAddress, ssid: str, time: float) -> None:
        """Reflect a direct probe — from the SSID's own alias BSSID."""
        self.session.record_mimic(client, time, ssid)
        alias = self.alias_for(ssid)
        self.medium.transmit(
            alias,
            ProbeResponse(alias.mac, client, ssid, Security.OPEN),
            self.timing.response_airtime,
        )

    def on_direct_probe(self, client: MacAddress, ssid: str, time: float) -> None:
        """Harvest/reflect, but never answer for SSIDs we do not know
        unless ``mimic_unknown`` — that silence is what defeats canaries."""
        if ssid in self.db:
            self.db.bump_weight(ssid, self.config.direct_repeat_bump)
            entry = self.db.get(ssid)
            entry.direct_seen = True
            entry.last_direct_seen = time
            self.send_mimic(client, ssid, time)
            return
        if self.mimic_unknown:
            super().on_direct_probe(client, ssid, time)
        else:
            # Still learn the SSID (a future client may hold it); just
            # do not blindly impersonate it right now.
            self.db.add(
                ssid, self.config.direct_initial_weight, origin="direct", time=time
            )
            entry = self.db.get(ssid)
            entry.direct_seen = True
            entry.last_direct_seen = time
            self.session.record_db_size(time, len(self.db))

    def send_ssid_burst(
        self, client: MacAddress, metas: Sequence[SentSsid], time: float
    ) -> None:
        """Advertise the burst with one spoofed BSSID per SSID."""
        if not metas:
            return
        self.session.record_sent(client, time, metas)
        responses: List[ProbeResponse] = [
            ProbeResponse(self.alias_for(m.ssid).mac, client, m.ssid, Security.OPEN)
            for m in metas
        ]
        self.medium.transmit_response_burst(
            self, responses, self.timing.response_airtime
        )
