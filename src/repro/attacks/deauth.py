"""De-authentication extension (paper Section V-B).

Clients camped on a legitimate AP barely probe, so the attacker cannot
reach them.  The fix the paper adopts from Bellardo & Savage: spoof
de-authentication frames *as* the legitimate AP, forcing its clients to
disconnect and re-scan — at which point the normal City-Hunter machinery
gets its shot.  The emitter is a separate entity so it can be composed
with any attacker.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.session import AttackSession
from repro.dot11.frames import Deauth
from repro.dot11.mac import BROADCAST_MAC, MacAddress
from repro.dot11.medium import Medium
from repro.geo.point import Point
from repro.sim.simulation import Simulation


class DeauthEmitter:
    """Periodically broadcast spoofed deauth frames for victim BSSIDs."""

    def __init__(
        self,
        position: Point,
        medium: Medium,
        target_bssids: Sequence[MacAddress],
        period: float = 10.0,
        tx_range: float = 50.0,
        session: Optional[AttackSession] = None,
    ):
        if period <= 0:
            raise ValueError("period must be positive, got %r" % period)
        if not target_bssids:
            raise ValueError("need at least one target BSSID to spoof")
        self.position = position
        self.medium = medium
        self.target_bssids = list(target_bssids)
        self.period = period
        self.tx_range = tx_range
        self.session = session
        # The emitter spoofs src addresses, but the medium still needs a
        # station identity for range lookups.
        self.mac: MacAddress = "02:de:au:th:00:01"

    def position_at(self, time: float) -> Point:
        """Fixed installation point (co-located with the attacker)."""
        return self.position

    def receive(self, frame, time: float) -> None:
        """The emitter only transmits; received frames are ignored."""

    def start(self, sim: Simulation) -> None:
        """Entity hook: begin the deauth cadence."""
        self.sim = sim
        self.medium.attach(self, self.tx_range)
        sim.at(self.period, self._emit)

    def _emit(self) -> None:
        for bssid in self.target_bssids:
            spoofed = Deauth(src=bssid, dst=BROADCAST_MAC)
            self.medium.transmit(self, spoofed)
            if self.session is not None:
                self.session.record_deauth()
        self.sim.metrics.inc("deauth.cycles")
        self.sim.metrics.inc("deauth.frames_sent", len(self.target_bssids))
        self.sim.record_event(
            "deauth_cycle", targets=len(self.target_bssids)
        )
        self.sim.at(self.period, self._emit)
