"""Preliminary City-Hunter (paper Section III).

Two improvements over MANA, nothing more:

1. **Untried lists** — the attacker remembers what it already sent to
   each client MAC and answers every broadcast probe with the next 40
   SSIDs that client has not seen yet (Section III-A).
2. **WiGLE seeding** — the database starts with the 100 free SSIDs
   nearest the attack site followed by the top free SSIDs city-wide by
   AP count (Section III-B); overheard direct-probe SSIDs append at the
   tail.

There is no weighting, no freshness, no adaptation: the database is a
flat ordered list, which is exactly why this design collapses in the
subway passage (Table III) — walkers only ever receive the *nearby*
head, which passersby rarely carry.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.session import SentSsid
from repro.attacks.base import RogueAp
from repro.core.selection import DIRECT_ATTRIBUTION_WINDOW_S
from repro.dot11.mac import MacAddress
from repro.wigle.database import WigleDatabase
from repro.wigle.queries import top_ssids_by_count


class CityHunterBasic(RogueAp):
    """MANA + untried lists + WiGLE seeding (flat, unweighted)."""

    name = "cityhunter-basic"

    def __init__(
        self,
        *args,
        wigle: WigleDatabase,
        n_nearby: int = 100,
        n_popular: int = 200,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self._db: Dict[str, str] = {}  # ssid -> origin, insertion-ordered
        self._order: List[str] = []
        self._origins: List[str] = []
        self._direct_last_seen: Dict[str, float] = {}
        self._cursor: Dict[MacAddress, int] = {}
        for ssid in wigle.nearest_free_ssids(self.position, n_nearby):
            self._append(ssid, "wigle")
        for ssid, _count in top_ssids_by_count(wigle, n_popular):
            self._append(ssid, "wigle")

    def _append(self, ssid: str, origin: str) -> None:
        if ssid in self._db:
            return
        self._db[ssid] = origin
        self._order.append(ssid)
        self._origins.append(origin)

    @property
    def db_size(self) -> int:
        """Current database size (seeded + harvested)."""
        return len(self._order)

    def on_direct_probe(self, client: MacAddress, ssid: str, time: float) -> None:
        """KARMA-style reflection plus database harvest."""
        if ssid not in self._db:
            self._append(ssid, "direct")
            self.session.record_db_size(time, len(self._order))
        self._direct_last_seen[ssid] = time
        self.send_mimic(client, ssid, time)

    def on_broadcast_probe(self, client: MacAddress, time: float) -> None:
        """Send the next 40 SSIDs this client has not been offered yet.

        The database is append-only, so a per-client cursor *is* the
        untried list: everything before the cursor has been sent.
        """
        start = self._cursor.get(client, 0)
        end = min(start + self.timing.max_responses_per_scan, len(self._order))
        if start >= end:
            return  # database exhausted for this client
        metas = [
            SentSsid(
                self._order[i],
                origin=(
                    "direct"
                    if time - self._direct_last_seen.get(self._order[i], float("-inf"))
                    <= DIRECT_ATTRIBUTION_WINDOW_S
                    else self._origins[i]
                ),
                bucket="db",
            )
            for i in range(start, end)
        ]
        self._cursor[client] = end
        self.send_ssid_burst(client, metas, time)
