"""Shared rogue-AP machinery.

The base class handles the 802.11 conversation (probe in, responses out,
auth/assoc handshake, hit recording into the :class:`AttackSession`);
concrete attackers only decide *which SSIDs to advertise* by overriding
the two probe hooks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.session import AttackSession, SentSsid
from repro.dot11.capabilities import Security
from repro.dot11.channel import DEFAULT_ATTACK_CHANNEL, Channel, validate_channel
from repro.dot11.frames import (
    AssocRequest,
    AssocResponse,
    AuthRequest,
    AuthResponse,
    Frame,
    ProbeRequest,
    ProbeResponse,
)
from repro.dot11.mac import MacAddress
from repro.dot11.medium import Medium
from repro.dot11.timing import DEFAULT_SCAN_TIMING, ScanTiming
from repro.faults.outages import OutageSchedule
from repro.geo.point import Point
from repro.obs.registry import MetricsRegistry, metric_key
from repro.sim.simulation import Simulation

DEFAULT_ATTACKER_RANGE_M = 55.0
"""Radio reach of the 100 mW prototype (Section V-A)."""

BURST_SIZE_BUCKETS = (1, 2, 5, 10, 20, 30, 40, 80)
"""Histogram bounds for response-burst sizes (the paper caps at 40)."""

PROVENANCE_BY_ORIGIN = {
    "wigle": "wigle",
    "direct": "overheard-direct",
    "carrier": "carrier",
    "mimic": "mimic",
}
"""Coarse origin → metric provenance label.  Attackers with a seeded
weighted database refine ``wigle`` into ``wigle-near`` /
``wigle-heat`` (see :meth:`RogueAp.provenance_of`)."""

_PROBE_KEY = {
    True: metric_key("attacker.probes", {"type": "direct"}),
    False: metric_key("attacker.probes", {"type": "broadcast"}),
}
"""Pre-computed counter keys for the per-probe hot path."""


class RogueAp:
    """Base evil twin: answers probes, completes handshakes, records hits."""

    name = "rogue"
    max_speed_mps = 0.0  # fixed installation: spatial-index eligible

    def __init__(
        self,
        mac: MacAddress,
        position: Point,
        medium: Medium,
        session: Optional[AttackSession] = None,
        timing: ScanTiming = DEFAULT_SCAN_TIMING,
        tx_range: float = DEFAULT_ATTACKER_RANGE_M,
        channel: Channel = DEFAULT_ATTACK_CHANNEL,
    ):
        self.mac = mac
        self.position = position
        self.medium = medium
        self.session = session if session is not None else AttackSession()
        self.timing = timing
        self.tx_range = tx_range
        self.channel = validate_channel(channel)
        self.sim: Optional[Simulation] = None
        self.outages: Optional[OutageSchedule] = None
        self._sent_keys: Dict[Tuple[str, str], str] = {}
        self._lineage = None

    # -- Station protocol ------------------------------------------------------

    def position_at(self, time: float) -> Point:
        """Fixed installation point."""
        return self.position

    def start(self, sim: Simulation) -> None:
        """Entity hook: attach to the medium."""
        self.sim = sim
        self._lineage = sim.lineage if sim.lineage.enabled else None
        self.medium.attach(self, self.tx_range)
        if self.outages is not None and len(self.outages):
            sim.metrics.inc("faults.outages", len(self.outages))
            sim.metrics.inc(
                "faults.outage_downtime_s", self.outages.total_downtime
            )
            for window in self.outages.windows:
                sim.record_event(
                    "fault.outage", start=window.start, end=window.end
                )

    def install_outages(self, schedule: OutageSchedule) -> None:
        """Adopt a radio-outage schedule (scenario builder hook).

        While a window is active the NIC is dead: :meth:`receive` drops
        every frame, so no responses go out and — crucially — no SSIDs
        are marked tried on any per-client untried list.  City-Hunter
        degrades gracefully instead of burning candidates into a NIC
        that cannot answer.
        """
        self.outages = schedule

    def radio_down(self, time: float) -> bool:
        """Whether an injected outage has the radio dead right now."""
        return self.outages is not None and self.outages.down_at(time)

    @property
    def metrics(self) -> Optional[MetricsRegistry]:
        """The owning simulation's registry (None before ``start``)."""
        return self.sim.metrics if self.sim is not None else None

    def provenance_of(self, ssid: str, origin: Optional[str]) -> str:
        """Metric provenance label for one advertised/hit SSID.

        The base mapping is by coarse origin; attackers with a seeded
        database override this to split WiGLE-near from city-wide
        heat-ranked entries.
        """
        if origin is None:
            return "unknown"
        return PROVENANCE_BY_ORIGIN.get(origin, origin)

    # -- strategy hooks ------------------------------------------------------

    def on_broadcast_probe(self, client: MacAddress, time: float) -> None:
        """Called for each broadcast probe received.  Default: ignore."""

    def on_direct_probe(self, client: MacAddress, ssid: str, time: float) -> None:
        """Called for each direct probe received.  Default: ignore."""

    def on_hit(self, client: MacAddress, ssid: str, time: float) -> None:
        """Called after a client associated.  Default: nothing."""

    # -- frame handling ------------------------------------------------------

    def receive(self, frame: Frame, time: float) -> None:
        """Dispatch one received frame."""
        metrics = self.metrics
        if self.radio_down(time):
            if metrics is not None:
                metrics.inc(
                    "faults.outage_frames_dropped",
                    frame=type(frame).__name__,
                )
            return
        if isinstance(frame, ProbeRequest):
            if frame.channel != self.channel:
                return  # probing a channel we are not camped on
            direct = not frame.is_broadcast_probe
            self.session.observe_probe(frame.src, time, direct)
            if metrics is not None:
                metrics.inc_key(_PROBE_KEY[direct])
            if self.sim is not None:
                self.sim.emit(
                    "probe", frame.src, "direct" if direct else "broadcast"
                )
            if direct:
                self.on_direct_probe(frame.src, frame.ssid, time)
            else:
                self.on_broadcast_probe(frame.src, time)
        elif isinstance(frame, AuthRequest):
            self.medium.transmit(self, AuthResponse(self.mac, frame.src, True))
        elif isinstance(frame, AssocRequest):
            prior = self.session.clients.get(frame.src)
            fresh_hit = prior is None or not prior.connected
            record = self.session.record_hit(frame.src, time, frame.ssid)
            if fresh_hit:
                self._count_hit(record)
                if self.sim is not None:
                    self.sim.emit("hit", frame.src, frame.ssid)
                if self._lineage is not None:
                    # Parent defaults to the current delivery context, so
                    # the hit chains back through the AssocRequest to the
                    # probe response that advertised the SSID.
                    self._lineage.event(
                        time,
                        "hit",
                        self.mac,
                        client=frame.src,
                        ssid=frame.ssid,
                        origin=record.hit_origin,
                        bucket=record.hit_bucket,
                    )
            self.medium.transmit(
                self, AssocResponse(self.mac, frame.src, frame.ssid, True)
            )
            self.on_hit(frame.src, frame.ssid, time)

    def _count_hit(self, record) -> None:
        """Metric bookkeeping for one first-time association."""
        metrics = self.metrics
        if metrics is None:
            return
        metrics.inc(
            "attacker.hits",
            provenance=self.provenance_of(record.hit_ssid, record.hit_origin),
            bucket=record.hit_bucket or "unknown",
        )
        metrics.inc("attacker.hit_ssids", ssid=record.hit_ssid)

    # -- transmit helpers ------------------------------------------------------

    def send_mimic(self, client: MacAddress, ssid: str, time: float) -> None:
        """Reply to a direct probe with an open evil twin of ``ssid``."""
        self.session.record_mimic(client, time, ssid)
        self._count_sent([SentSsid(ssid, origin="mimic", bucket="mimic")])
        self.medium.transmit(
            self,
            ProbeResponse(self.mac, client, ssid, Security.OPEN),
            self.timing.response_airtime,
        )

    def send_ssid_burst(
        self, client: MacAddress, metas: Sequence[SentSsid], time: float
    ) -> None:
        """Advertise database SSIDs to ``client`` back-to-back."""
        if not metas:
            return
        self.session.record_sent(client, time, metas)
        self._count_sent(metas)
        responses: List[ProbeResponse] = [
            ProbeResponse(self.mac, client, meta.ssid, Security.OPEN)
            for meta in metas
        ]
        lineage = self._lineage
        if lineage is None:
            self.medium.transmit_response_burst(
                self, responses, self.timing.response_airtime
            )
            return
        # The selection record carries each candidate's PB/FB/ghost bucket
        # and provenance; pushing it makes every response in the burst a
        # child, so the story reads probe -> selection -> responses.
        ctx = lineage.event(
            time,
            "burst_select",
            self.mac,
            client=client,
            size=len(metas),
            candidates=[
                {"ssid": m.ssid, "bucket": m.bucket, "origin": m.origin}
                for m in metas
            ],
        )
        with lineage.push(ctx):
            self.medium.transmit_response_burst(
                self, responses, self.timing.response_airtime
            )

    def _count_sent(self, metas: Sequence[SentSsid]) -> None:
        """Metric bookkeeping for one outgoing response burst.

        Increments are batched per (provenance, bucket) group — one dict
        update per group instead of one per SSID — with the flat metric
        keys cached across bursts.  Totals are identical to per-SSID
        increments, and so is counter insertion order (a group first
        appears exactly when its first SSID would have)."""
        metrics = self.metrics
        if metrics is None:
            return
        metrics.inc("attacker.responses_sent", len(metas))
        grouped: Dict[Tuple[str, str], int] = {}
        for meta in metas:
            group = (self.provenance_of(meta.ssid, meta.origin), meta.bucket)
            grouped[group] = grouped.get(group, 0) + 1
        keys = self._sent_keys
        for group, count in grouped.items():
            key = keys.get(group)
            if key is None:
                key = keys[group] = metric_key(
                    "attacker.ssids_sent",
                    {"provenance": group[0], "bucket": group[1]},
                )
            metrics.inc_key(key, count)
        metrics.observe(
            "attacker.burst_size", len(metas), buckets=BURST_SIZE_BUCKETS
        )
