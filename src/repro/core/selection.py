"""Per-client SSID selection (paper step 3, Section IV-C).

For each broadcast probe the attacker assembles at most ``burst_total``
SSIDs the client has not been offered before:

* the top ``pb_size - ghost_picks`` untried SSIDs by weight (bucket
  ``pb``);
* the ``fb_size - ghost_picks`` most recently *hit* untried SSIDs that
  the popularity head did not already take (bucket ``fb``) — the bench
  of fresh mid-tier SSIDs whose recent hits say "companions nearby";
* ``ghost_picks`` random SSIDs from each ghost list — the next
  ``ghost_size`` weight ranks (bucket ``pb_ghost``) and the next
  ``ghost_size`` recency ranks (bucket ``fb_ghost``) — displacing the
  lowest slots of the owning buffer, as the paper prescribes;
* when the freshness side cannot fill its quota (early in a run nothing
  has hit yet), further weight-ranked SSIDs top up the burst (``pb``).

The burst order is freshness first (a just-hit SSID gets first crack
at the companions who most likely share it), then the popularity head,
then the exploratory ghost picks.

Origins are resolved at *send* time: an SSID counts as ``direct`` when
the attacker first learned it from a direct probe, or observed it in one
recently (within ``DIRECT_ATTRIBUTION_WINDOW_S``) — the instrumentation
behind the paper's Fig. 6 source split, and the reason the direct-probe
contribution rises in rush hours, when probes are plentiful.
"""

from __future__ import annotations

from typing import AbstractSet, List

import numpy as np

from repro.analysis.session import SentSsid
from repro.core.adaptive import AdaptiveSplit
from repro.core.config import CityHunterConfig
from repro.core.ssid_database import SsidEntry, WeightedSsidDatabase

DIRECT_ATTRIBUTION_WINDOW_S = 420.0
"""How recently an SSID must have appeared in a direct probe to count as
direct-sourced for a WiGLE-seeded entry."""


def send_origin(entry: SsidEntry, now: float) -> str:
    """The Fig. 6 source class of one entry at send time."""
    if entry.origin == "direct":
        return "direct"
    if now - entry.last_direct_seen <= DIRECT_ATTRIBUTION_WINDOW_S:
        return "direct"
    return entry.origin


def select_for_client(
    db: WeightedSsidDatabase,
    tried: AbstractSet[str],
    split: AdaptiveSplit,
    config: CityHunterConfig,
    rng: np.random.Generator,
    now: float = 0.0,
) -> List[SentSsid]:
    """The burst of (ssid, origin, bucket) to send to one client."""
    pb_list: List[SentSsid] = []
    fb_list: List[SentSsid] = []
    chosen: List[SentSsid] = []
    chosen_ssids = set()

    def _meta(entry: SsidEntry, bucket: str) -> SentSsid:
        chosen_ssids.add(entry.ssid)
        return SentSsid(entry.ssid, origin=send_origin(entry, now), bucket=bucket)

    def take(entry: SsidEntry, bucket: str) -> None:
        chosen.append(_meta(entry, bucket))

    # --- popularity buffer head ------------------------------------------
    ranked = db.ranked()
    pb_quota = max(0, split.pb_size - config.ghost_picks)
    pb_ghost_pool: List[SsidEntry] = []
    # Where the head scan stopped: every entry below resume_i is tried,
    # in pb_list, or in pb_ghost_pool, so the top-up below never needs
    # to re-scan the ranking head.
    resume_i = len(ranked)
    for i, entry in enumerate(ranked):
        if entry.ssid in tried:
            continue
        if len(pb_list) < pb_quota:
            pb_list.append(_meta(entry, "pb"))
        elif len(pb_ghost_pool) < config.ghost_size:
            pb_ghost_pool.append(entry)
        else:
            resume_i = i
            break

    # --- freshness buffer -------------------------------------------------
    fb_quota = max(0, split.fb_size - config.ghost_picks)
    fb_ghost_pool: List[SsidEntry] = []
    for ssid in db.recent_hits():
        if ssid in tried or ssid in chosen_ssids:
            continue
        entry = db.get(ssid)
        if entry is None:
            continue
        if len(fb_list) < fb_quota:
            fb_list.append(_meta(entry, "fb"))
        elif len(fb_ghost_pool) < config.ghost_size:
            fb_ghost_pool.append(entry)
        else:
            break

    # Freshness leads the burst: a just-hit SSID gets first crack at the
    # companions who most likely share it.
    chosen.extend(fb_list)
    chosen.extend(pb_list)

    # --- ghost picks ---------------------------------------------------------
    # Both pools must exclude SSIDs the other buffer already chose: the
    # FB may have taken a mid-rank SSID that also sits in the PB ghost
    # window, and offering it twice in one burst wastes a slot (caught
    # by the burst-uniqueness property test).
    if pb_ghost_pool and config.ghost_picks:
        pool = [e for e in pb_ghost_pool if e.ssid not in chosen_ssids]
        count = min(config.ghost_picks, len(pool))
        if count:
            for i in rng.choice(len(pool), size=count, replace=False):
                take(pool[int(i)], "pb_ghost")
    if fb_ghost_pool and config.ghost_picks:
        pool = [e for e in fb_ghost_pool if e.ssid not in chosen_ssids]
        count = min(config.ghost_picks, len(pool))
        if count:
            for i in rng.choice(len(pool), size=count, replace=False):
                take(pool[int(i)], "fb_ghost")

    # --- top-up from the weight ranking -----------------------------------
    # Equivalent to re-scanning ``ranked`` from the top, but O(remaining):
    # every untried entry above resume_i is either already chosen or
    # sitting in pb_ghost_pool (in rank order), so the ghost leftovers
    # followed by the unexamined tail reproduce the full scan exactly.
    if len(chosen) < config.burst_total:
        for entry in pb_ghost_pool:
            if len(chosen) >= config.burst_total:
                break
            if entry.ssid not in chosen_ssids:
                take(entry, "pb")
        for j in range(resume_i, len(ranked)):
            if len(chosen) >= config.burst_total:
                break
            entry = ranked[j]
            if entry.ssid in tried or entry.ssid in chosen_ssids:
                continue
            take(entry, "pb")

    return chosen[: config.burst_total]
