"""The weighted SSID database.

Entries carry a popularity *weight* (seeded from WiGLE heat rank, bumped
on every successful hit) and freshness state (time of last hit).  The
two orderings the selection step needs — by weight and by recency of
hit — are both maintained *incrementally*: the weight ranking is a pair
of parallel sorted lists updated by bisection on every mutation
(``O(log n)`` to find, ``O(n)`` memmove — no ``O(n log n)`` re-sort ever
happens after seeding), and the recency list is edited in place.  A
property test pins :meth:`ranked` to the obvious
``sorted(entries, key=(-weight, ssid))`` oracle after arbitrary
add/bump/hit interleavings.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass
class SsidEntry:
    """One database entry."""

    ssid: str
    weight: float
    origin: str
    added_at: float = 0.0
    hits: int = 0
    last_hit: float = float("-inf")
    direct_seen: bool = False
    """Whether any client has ever direct-probed this SSID."""

    last_direct_seen: float = float("-inf")
    """When this SSID was last seen in a direct probe — the Fig. 6
    source-attribution uses a recency window over this."""

    seed_class: str = ""
    """Fine-grained provenance label for the metrics layer: how this
    entry got into the database (``wigle-near``, ``wigle-heat``,
    ``carrier``, ``overheard-direct``).  The coarse ``origin`` keeps the
    Fig. 6 wigle/direct split unchanged."""


_SEED_CLASS_BY_ORIGIN = {
    "wigle": "wigle",
    "direct": "overheard-direct",
    "carrier": "carrier",
}


class WeightedSsidDatabase:
    """Weight- and recency-indexed SSID store."""

    def __init__(self) -> None:
        self._entries: Dict[str, SsidEntry] = {}
        # Parallel sorted lists: _rank_keys[i] == (-weight, ssid) of
        # _rank_entries[i].  The key is a total order (ssid is unique),
        # so every entry's position is found exactly by bisection.
        self._rank_keys: List[Tuple[float, str]] = []
        self._rank_entries: List[SsidEntry] = []
        self._recency: List[str] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, ssid: str) -> bool:
        return ssid in self._entries

    def get(self, ssid: str) -> Optional[SsidEntry]:
        """The entry for ``ssid`` or None."""
        return self._entries.get(ssid)

    # -- incremental ranking ----------------------------------------------

    def _rank_insert(self, entry: SsidEntry) -> None:
        key = (-entry.weight, entry.ssid)
        i = bisect_left(self._rank_keys, key)
        self._rank_keys.insert(i, key)
        self._rank_entries.insert(i, entry)

    def _rank_remove(self, weight: float, ssid: str) -> None:
        key = (-weight, ssid)
        i = bisect_left(self._rank_keys, key)
        # The key is present by construction; assert-grade check only.
        if i >= len(self._rank_keys) or self._rank_keys[i] != key:
            raise RuntimeError("ranking out of sync for %r" % ssid)
        del self._rank_keys[i]
        del self._rank_entries[i]

    def _reweight(self, entry: SsidEntry, new_weight: float) -> None:
        self._rank_remove(entry.weight, entry.ssid)
        entry.weight = new_weight
        self._rank_insert(entry)

    def add(
        self,
        ssid: str,
        weight: float,
        origin: str,
        time: float = 0.0,
        seed_class: str = "",
    ) -> bool:
        """Insert a new entry; returns False (and keeps the stronger
        weight) when the SSID is already present."""
        existing = self._entries.get(ssid)
        if existing is not None:
            if weight > existing.weight:
                self._reweight(existing, weight)
            return False
        entry = SsidEntry(
            ssid=ssid,
            weight=weight,
            origin=origin,
            added_at=time,
            seed_class=seed_class or _SEED_CLASS_BY_ORIGIN.get(origin, origin),
        )
        self._entries[ssid] = entry
        self._rank_insert(entry)
        return True

    def bump_weight(self, ssid: str, delta: float) -> None:
        """Increase an entry's weight (no-op for unknown SSIDs)."""
        entry = self._entries.get(ssid)
        if entry is None:
            return
        self._reweight(entry, entry.weight + delta)

    def record_hit(
        self, ssid: str, time: float, weight_bonus: float = 0.0, fresh: bool = True
    ) -> None:
        """Mark a successful hit: weight bonus, plus freshness front-of-
        line when ``fresh``.

        The paper updates the freshness side only for hits on *broadcast*
        probes (Section IV-B condition 1); KARMA-style mimic hits pass
        ``fresh=False`` so one-off home routers never pollute the FB.
        """
        entry = self._entries.get(ssid)
        if entry is None:
            return
        entry.hits += 1
        entry.last_hit = time
        if weight_bonus:
            self._reweight(entry, entry.weight + weight_bonus)
        if not fresh:
            return
        try:
            self._recency.remove(ssid)
        except ValueError:
            pass
        self._recency.insert(0, ssid)

    def ranked(self) -> List[SsidEntry]:
        """Entries by weight descending (ties broken by SSID for
        determinism).  The list is maintained incrementally — callers
        must treat it as read-only."""
        return self._rank_entries

    def recent_hits(self) -> List[str]:
        """SSIDs by recency of last hit, most recent first."""
        return self._recency

    def trim_recency(self, cap: int) -> None:
        """Bound the recency list (old entries fall off the end)."""
        if cap >= 0 and len(self._recency) > cap:
            del self._recency[cap:]

    def total_hits(self) -> int:
        """Sum of hit counts over all entries."""
        return sum(e.hits for e in self._entries.values())
