"""The paper's primary contribution: the advanced City-Hunter attacker.

Pieces (paper Section IV):

* :mod:`repro.core.weights` — rank-order ratio weighting (Barron &
  Barrett) for the seeded SSIDs;
* :mod:`repro.core.ssid_database` — the weighted, hit-aware SSID store;
* :mod:`repro.core.seeding` — database initialisation from the WiGLE
  registry: 100 nearest + 200 ranked by photo-heat value;
* :mod:`repro.core.adaptive` — the ARC-inspired PB/FB size adaptation;
* :mod:`repro.core.selection` — per-client assembly of the popularity &
  freshness buffers (with their ghost lists) into the 40-SSID burst,
  honouring untried lists;
* :mod:`repro.core.hunter` — the :class:`CityHunter` attacker tying it
  all together (plus the Sec. V-B carrier-SSID extension).
"""

from repro.core.adaptive import AdaptiveSplit
from repro.core.config import CityHunterConfig
from repro.core.hunter import CityHunter
from repro.core.seeding import seed_database
from repro.core.selection import select_for_client
from repro.core.ssid_database import SsidEntry, WeightedSsidDatabase
from repro.core.weights import rank_order_weights

__all__ = [
    "AdaptiveSplit",
    "CityHunterConfig",
    "CityHunter",
    "seed_database",
    "select_for_client",
    "SsidEntry",
    "WeightedSsidDatabase",
    "rank_order_weights",
]
