"""Database initialisation (paper step 1, Section IV-B).

Seeds the weighted database from the WiGLE registry.  Following the
paper precisely: the ``n_popular`` city-wide SSIDs are *selected* by AP
count (Section III-B) and then *ranked by heat value* (sum of photo-map
heat over each SSID's APs) to assign rank-order ratio weights 200…1
(Section IV-B) — selection-by-count keeps one-off cafés out of the
database even when they sit in a photogenic mall.  The ``n_nearby``
free SSIDs nearest the attack site get weights 100…1 by distance rank.
SSIDs appearing in both lists keep the stronger weight.

Fault injection: a :class:`~repro.faults.plan.WigleFaultParams` marks a
deterministic subset of SSIDs as corrupted or missing in the export.
Seeding skips those records (counting each skip into ``stats``) and
backfills the shortfall so the database keeps its designed size — first
from the configured carrier SSIDs (always added anyway), then from
deterministic textgen SSIDs at tail weight.  Plausible-but-unlisted
names are exactly what a field operator would type in by hand when the
registry lets them down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.city.heatmap import HeatMap
from repro.core.config import CityHunterConfig
from repro.core.ssid_database import WeightedSsidDatabase
from repro.core.weights import rank_order_weights
from repro.faults.plan import WigleFaultParams
from repro.faults.wigle import ssid_fault_kind
from repro.geo.point import Point
from repro.util.rng import derive_seed
from repro.util.textgen import shop_ssid, unique_names
from repro.wigle.database import WigleDatabase
from repro.wigle.queries import ssid_heat_values, top_ssids_by_count

TEXTGEN_FALLBACK_WEIGHT = 1.0
"""Weight of backfilled textgen SSIDs — tail entries that must earn
promotion through hits like any other unproven candidate."""


@dataclass
class SeedingStats:
    """What fault injection did to one database initialisation."""

    skipped_corrupt: int = 0
    skipped_missing: int = 0
    textgen_fallback: int = 0
    skipped_ssids: List[str] = field(default_factory=list)

    @property
    def total_skipped(self) -> int:
        return self.skipped_corrupt + self.skipped_missing


def seed_database(
    wigle: WigleDatabase,
    heatmap: Optional[HeatMap],
    position: Point,
    config: CityHunterConfig = CityHunterConfig(),
    use_heat: bool = True,
    faults: Optional[WigleFaultParams] = None,
    fault_seed: int = 0,
    stats: Optional[SeedingStats] = None,
) -> WeightedSsidDatabase:
    """Build the initial database for an attacker at ``position``.

    ``use_heat=False`` is the ablation that ranks the city-wide SSIDs by
    plain AP count instead of heat value (Table IV, left column) —
    the comparison the paper uses to motivate the heat map.

    ``faults`` (with its ``fault_seed`` salt) injects corrupted/missing
    WiGLE records; ``stats``, when supplied, receives the skip and
    backfill counts so the caller can publish them as metrics.
    """
    if stats is None:
        stats = SeedingStats()

    def usable(ssid: str) -> bool:
        kind = ssid_fault_kind(faults, fault_seed, ssid)
        if kind is None:
            return True
        if kind == "corrupt":
            stats.skipped_corrupt += 1
        else:
            stats.skipped_missing += 1
        stats.skipped_ssids.append(ssid)
        return False

    db = WeightedSsidDatabase()
    by_count = [
        s
        for s, _ in top_ssids_by_count(wigle, config.n_popular)
        if usable(s)
    ]
    if use_heat:
        if heatmap is None:
            raise ValueError("heat ranking requested but no heat map given")
        heats = ssid_heat_values(wigle, heatmap)
        popular = sorted(by_count, key=lambda s: (-heats.get(s, 0.0), s))
    else:
        popular = by_count
    for ssid, weight in zip(popular, rank_order_weights(len(popular))):
        db.add(ssid, weight, origin="wigle", seed_class="wigle-heat")

    nearby = [
        s
        for s in wigle.nearest_free_ssids(position, config.n_nearby)
        if usable(s)
    ]
    for ssid, weight in zip(nearby, rank_order_weights(len(nearby))):
        db.add(ssid, weight, origin="wigle", seed_class="wigle-near")

    for ssid in config.carrier_ssids:
        db.add(ssid, config.carrier_weight, origin="carrier")

    shortfall = stats.total_skipped
    if shortfall > 0:
        _backfill_textgen(db, shortfall, fault_seed, stats)
    return db


def _backfill_textgen(
    db: WeightedSsidDatabase,
    count: int,
    fault_seed: int,
    stats: SeedingStats,
) -> None:
    """Pad ``count`` deterministic textgen SSIDs onto the database tail."""
    rng = np.random.default_rng(derive_seed(fault_seed, "seeding:textgen"))
    # Over-draw so collisions with already-seeded names still leave
    # enough fresh candidates to cover the shortfall.
    for ssid in unique_names(count * 2, shop_ssid, rng):
        if count == 0:
            break
        if ssid in db:
            continue
        db.add(
            ssid,
            TEXTGEN_FALLBACK_WEIGHT,
            origin="textgen",
            seed_class="textgen-fallback",
        )
        stats.textgen_fallback += 1
        count -= 1
