"""Database initialisation (paper step 1, Section IV-B).

Seeds the weighted database from the WiGLE registry.  Following the
paper precisely: the ``n_popular`` city-wide SSIDs are *selected* by AP
count (Section III-B) and then *ranked by heat value* (sum of photo-map
heat over each SSID's APs) to assign rank-order ratio weights 200…1
(Section IV-B) — selection-by-count keeps one-off cafés out of the
database even when they sit in a photogenic mall.  The ``n_nearby``
free SSIDs nearest the attack site get weights 100…1 by distance rank.
SSIDs appearing in both lists keep the stronger weight.
"""

from __future__ import annotations

from typing import Optional

from repro.city.heatmap import HeatMap
from repro.core.config import CityHunterConfig
from repro.core.ssid_database import WeightedSsidDatabase
from repro.core.weights import rank_order_weights
from repro.geo.point import Point
from repro.wigle.database import WigleDatabase
from repro.wigle.queries import ssid_heat_values, top_ssids_by_count


def seed_database(
    wigle: WigleDatabase,
    heatmap: Optional[HeatMap],
    position: Point,
    config: CityHunterConfig = CityHunterConfig(),
    use_heat: bool = True,
) -> WeightedSsidDatabase:
    """Build the initial database for an attacker at ``position``.

    ``use_heat=False`` is the ablation that ranks the city-wide SSIDs by
    plain AP count instead of heat value (Table IV, left column) —
    the comparison the paper uses to motivate the heat map.
    """
    db = WeightedSsidDatabase()
    by_count = [s for s, _ in top_ssids_by_count(wigle, config.n_popular)]
    if use_heat:
        if heatmap is None:
            raise ValueError("heat ranking requested but no heat map given")
        heats = ssid_heat_values(wigle, heatmap)
        popular = sorted(by_count, key=lambda s: (-heats.get(s, 0.0), s))
    else:
        popular = by_count
    for ssid, weight in zip(popular, rank_order_weights(len(popular))):
        db.add(ssid, weight, origin="wigle", seed_class="wigle-heat")

    nearby = wigle.nearest_free_ssids(position, config.n_nearby)
    for ssid, weight in zip(nearby, rank_order_weights(len(nearby))):
        db.add(ssid, weight, origin="wigle", seed_class="wigle-near")

    for ssid in config.carrier_ssids:
        db.add(ssid, config.carrier_weight, origin="carrier")
    return db
