"""City-Hunter configuration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class CityHunterConfig:
    """All knobs of the advanced attacker (paper Section IV defaults)."""

    n_nearby: int = 100
    """Nearest free SSIDs seeded from WiGLE (weights 100…1)."""

    n_popular: int = 200
    """City-wide free SSIDs ranked by heat value (weights 200…1)."""

    burst_total: int = 40
    """SSIDs per response burst — the MinChannelTime reception ceiling."""

    initial_pb: int = 28
    """Initial popularity-buffer share of the 40 (FB gets the rest)."""

    min_buffer: int = 4
    """Neither buffer shrinks below this under adaptation."""

    ghost_size: int = 20
    """Length of each ghost list (paper: 20)."""

    ghost_picks: int = 2
    """Random SSIDs taken from each ghost list per response, replacing
    the lowest entries of the owning buffer (paper: 2, i.e. 10%)."""

    hit_weight_bonus: float = 8.0
    """Weight added to an SSID on every successful hit (the 'updated
    according to its actual hit record' rule)."""

    direct_initial_weight: float = 110.0
    """Initial weight of an SSID learned from a direct probe — below the
    popularity head, so it must earn promotion through hits."""

    direct_repeat_bump: float = 5.0
    """Weight added when another client direct-probes a known SSID."""

    recency_cap: int = 100
    """Bound on the freshness recency list."""

    carrier_ssids: Tuple[str, ...] = ()
    """Sec. V-B extension: carrier hotspot SSIDs preloaded at high
    weight (empty = extension disabled)."""

    carrier_weight: float = 170.0

    untried_lists: bool = True
    """Ablation switch: when False the attacker forgets what it sent and
    may repeat SSIDs to the same client (MANA-style resending)."""

    adaptive: bool = True
    """Ablation switch: when False the PB/FB split stays fixed."""

    def __post_init__(self) -> None:
        if self.burst_total <= 0:
            raise ValueError("burst_total must be positive")
        if not self.min_buffer <= self.initial_pb <= self.burst_total - self.min_buffer:
            raise ValueError(
                "initial_pb %r incompatible with burst_total %r / min_buffer %r"
                % (self.initial_pb, self.burst_total, self.min_buffer)
            )
        if self.ghost_picks < 0 or self.ghost_size < self.ghost_picks:
            raise ValueError("need 0 <= ghost_picks <= ghost_size")
