"""Rank-order weighting.

The paper assigns seeded SSIDs weights by "the ratio method proposed in
[Barron & Barrett 1996]": rank the selected SSIDs, give the top one
weight ``n`` and the bottom one weight 1 — i.e. weights decrease
linearly with rank.  (Table IV's 200 heat-ranked SSIDs get 200…1; the
100 nearby SSIDs get 100…1.)
"""

from __future__ import annotations

from typing import List


def rank_order_weights(count: int, top: float = 0.0) -> List[float]:
    """Weights for ranks 0..count-1, best first.

    ``top`` overrides the weight of rank 0 (defaults to ``count`` as in
    the paper); the bottom rank always gets weight 1, with linear
    interpolation in between.
    """
    if count < 0:
        raise ValueError("count must be non-negative, got %r" % count)
    if count == 0:
        return []
    if count == 1:
        return [top if top > 0 else 1.0]
    top_w = top if top > 0 else float(count)
    step = (top_w - 1.0) / (count - 1)
    return [top_w - i * step for i in range(count)]
