"""ARC-inspired buffer-size adaptation (paper Section IV-C).

A hit on an SSID that was selected from the *ghost list* of a buffer is
evidence that buffer is too small: ghost-of-PB hits grow PB by one (and
shrink FB, keeping the total at 40); ghost-of-FB hits do the opposite.
Both sizes are clamped so neither buffer disappears.
"""

from __future__ import annotations

from typing import Optional


class AdaptiveSplit:
    """Mutable PB/FB size state under the total-40 constraint."""

    def __init__(
        self,
        total: int = 40,
        initial_pb: int = 30,
        min_size: int = 4,
        enabled: bool = True,
    ):
        if not min_size <= initial_pb <= total - min_size:
            raise ValueError(
                "initial_pb %r out of range for total %r" % (initial_pb, total)
            )
        self.total = total
        self.min_size = min_size
        self.enabled = enabled
        self._pb = initial_pb
        self.adjustments = 0

    @property
    def pb_size(self) -> int:
        """Current popularity-buffer size."""
        return self._pb

    @property
    def fb_size(self) -> int:
        """Current freshness-buffer size (= total - PB)."""
        return self.total - self._pb

    def on_hit(self, bucket: str) -> Optional[str]:
        """Feed one hit's provenance bucket into the adaptation.

        Returns the swap direction (``"grow_pb"`` / ``"grow_fb"``) when
        the split actually moved, else None — the observability layer
        records each swap as an event.
        """
        if not self.enabled:
            return None
        if bucket == "pb_ghost":
            if self._pb < self.total - self.min_size:
                self._pb += 1
                self.adjustments += 1
                return "grow_pb"
        elif bucket == "fb_ghost":
            if self._pb > self.min_size:
                self._pb -= 1
                self.adjustments += 1
                return "grow_fb"
        return None
