"""The advanced City-Hunter attacker (paper Section IV).

Implements the four-step loop of Fig. 3: database initialisation from
WiGLE + heat map, online updating (direct-probe harvest, hit-record
weight bumps, freshness list), adaptive PB/FB selection with ghost-list
exploration, and per-client untried bookkeeping.  Direct probes are
handled KARMA-style, as the paper specifies.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

import numpy as np

from repro.attacks.base import RogueAp
from repro.city.heatmap import HeatMap
from repro.core.adaptive import AdaptiveSplit
from repro.core.config import CityHunterConfig
from repro.core.seeding import SeedingStats, seed_database
from repro.core.selection import select_for_client
from repro.core.ssid_database import WeightedSsidDatabase
from repro.dot11.mac import MacAddress
from repro.faults.plan import WigleFaultParams
from repro.sim.simulation import Simulation
from repro.wigle.database import WigleDatabase

_EMPTY_SET: frozenset = frozenset()


class CityHunter(RogueAp):
    """The full adaptive attacker."""

    name = "city-hunter"

    def __init__(
        self,
        *args,
        wigle: WigleDatabase,
        heatmap: Optional[HeatMap],
        config: Optional[CityHunterConfig] = None,
        use_heat: bool = True,
        wigle_faults: Optional[WigleFaultParams] = None,
        wigle_fault_seed: int = 0,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.config = config if config is not None else CityHunterConfig()
        self.seeding_stats = SeedingStats()
        self.db: WeightedSsidDatabase = seed_database(
            wigle,
            heatmap,
            self.position,
            self.config,
            use_heat=use_heat,
            faults=wigle_faults,
            fault_seed=wigle_fault_seed,
            stats=self.seeding_stats,
        )
        self.split = AdaptiveSplit(
            total=self.config.burst_total,
            initial_pb=self.config.initial_pb,
            min_size=self.config.min_buffer,
            enabled=self.config.adaptive,
        )
        self._tried: Dict[MacAddress, Set[str]] = {}
        self._rng: Optional[np.random.Generator] = None

    def start(self, sim: Simulation) -> None:
        """Attach to the medium and claim an RNG stream for ghost picks."""
        super().start(sim)
        self._rng = sim.rngs.stream("cityhunter")
        self.session.record_db_size(sim.now, len(self.db))
        self._record_split(sim.now)
        stats = self.seeding_stats
        if stats.total_skipped:
            if stats.skipped_corrupt:
                sim.metrics.inc(
                    "faults.wigle_records_skipped",
                    stats.skipped_corrupt,
                    kind="corrupt",
                )
            if stats.skipped_missing:
                sim.metrics.inc(
                    "faults.wigle_records_skipped",
                    stats.skipped_missing,
                    kind="missing",
                )
            sim.metrics.inc(
                "seeding.textgen_fallback", stats.textgen_fallback
            )
            sim.record_event(
                "fault.wigle_seed",
                skipped_corrupt=stats.skipped_corrupt,
                skipped_missing=stats.skipped_missing,
                textgen_fallback=stats.textgen_fallback,
            )

    def provenance_of(self, ssid: str, origin) -> str:
        """Refine ``wigle`` into near/heat via the entry's seed class."""
        if origin == "wigle":
            entry = self.db.get(ssid)
            if entry is not None and entry.seed_class:
                return entry.seed_class
        return super().provenance_of(ssid, origin)

    def _record_split(self, time: float) -> None:
        """Append the current PB/FB sizes to the metrics timelines."""
        metrics = self.metrics
        if metrics is None:
            return
        metrics.series_append("hunter.pb_size", time, self.split.pb_size)
        metrics.series_append("hunter.fb_size", time, self.split.fb_size)

    @property
    def db_size(self) -> int:
        """Current database size."""
        return len(self.db)

    # -- probe handling ---------------------------------------------------------

    def on_broadcast_probe(self, client: MacAddress, time: float) -> None:
        """Step 3+4: select and send the best untried SSIDs."""
        if self.config.untried_lists:
            tried = self._tried.setdefault(client, set())
        else:
            tried = _EMPTY_SET
        metas = select_for_client(
            self.db, tried, self.split, self.config, self._rng, now=time
        )
        if not metas:
            return
        if self.config.untried_lists:
            tried.update(m.ssid for m in metas)
        self.send_ssid_burst(client, metas, time)

    def on_direct_probe(self, client: MacAddress, ssid: str, time: float) -> None:
        """KARMA-style reflection plus online database updating."""
        if ssid in self.db:
            self.db.bump_weight(ssid, self.config.direct_repeat_bump)
        else:
            self.db.add(
                ssid, self.config.direct_initial_weight, origin="direct", time=time
            )
            self.session.record_db_size(time, len(self.db))
            if self.metrics is not None:
                self.metrics.inc("hunter.db_adds", provenance="overheard-direct")
                self.metrics.gauge_max("hunter.db_size_peak", len(self.db))
        entry = self.db.get(ssid)
        entry.direct_seen = True
        entry.last_direct_seen = time
        self.send_mimic(client, ssid, time)

    # -- online updating on hits ---------------------------------------------------

    def on_hit(self, client: MacAddress, ssid: str, time: float) -> None:
        """Step 2: weight bump, freshness update, buffer adaptation."""
        record = self.session.clients.get(client)
        bucket = record.hit_bucket if record is not None else None
        broadcast_hit = bucket is not None and bucket != "mimic"
        self.db.record_hit(
            ssid,
            time,
            weight_bonus=self.config.hit_weight_bonus,
            fresh=broadcast_hit,
        )
        self.db.trim_recency(self.config.recency_cap)
        if broadcast_hit:
            direction = self.split.on_hit(bucket)
            if direction is not None:
                self._record_split(time)
                if self.metrics is not None:
                    self.metrics.inc("hunter.pbfb_swaps", direction=direction)
                if self.sim is not None:
                    self.sim.record_event(
                        "pbfb_swap",
                        direction=direction,
                        pb=self.split.pb_size,
                        fb=self.split.fb_size,
                        trigger_bucket=bucket,
                        ssid=ssid,
                    )
