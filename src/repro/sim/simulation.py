"""The :class:`Simulation` facade.

Owns the clock, scheduler, RNG registry and trace; higher layers register
entities against it.  An *entity* is anything with a ``start(sim)``
method — phones, attackers and arrival processes all qualify.
"""

from __future__ import annotations

from typing import Any, Callable, List

from repro.sim.clock import Clock
from repro.sim.events import EventHandle
from repro.sim.scheduler import Scheduler
from repro.sim.tracing import Trace
from repro.util.rng import RngRegistry


class Simulation:
    """Top-level container for one simulated run."""

    def __init__(self, seed: int = 0, trace: bool = False):
        self.rngs = RngRegistry(seed)
        self.clock = Clock()
        self.scheduler = Scheduler(self.clock)
        self.trace = Trace(enabled=trace)
        self._entities: List[Any] = []
        self._started = False

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self.clock.now

    def at(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        return self.scheduler.schedule(delay, fn, *args)

    def at_time(self, time: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``."""
        return self.scheduler.schedule_at(time, fn, *args)

    def add_entity(self, entity: Any) -> Any:
        """Register an entity; its ``start(sim)`` runs when the sim starts.

        Entities added after the simulation started are started
        immediately, which lets arrival processes inject phones mid-run.
        """
        self._entities.append(entity)
        if self._started and hasattr(entity, "start"):
            entity.start(self)
        return entity

    @property
    def entities(self) -> List[Any]:
        """All registered entities, in registration order."""
        return list(self._entities)

    def _start_entities(self) -> None:
        if self._started:
            return
        self._started = True
        for entity in list(self._entities):
            if hasattr(entity, "start"):
                entity.start(self)

    def run(self, until: float) -> None:
        """Start entities (once) and run events up to time ``until``."""
        self._start_entities()
        self.scheduler.run_until(until)

    def run_all(self) -> int:
        """Start entities and drain every queued event."""
        self._start_entities()
        return self.scheduler.run_all()

    def emit(self, kind: str, subject: str, detail: str = "") -> None:
        """Trace helper stamped with the current time."""
        self.trace.emit(self.now, kind, subject, detail)
