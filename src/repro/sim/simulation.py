"""The :class:`Simulation` facade.

Owns the clock, scheduler, RNG registry, trace, metrics registry and
event sink; higher layers register entities against it.  An *entity* is
anything with a ``start(sim)`` method — phones, attackers and arrival
processes all qualify.

Observability: ``sim.metrics`` is the run's
:class:`~repro.obs.registry.MetricsRegistry` and ``sim.events`` its
capped :class:`~repro.obs.events.EventSink`; both are cheap enough to
stay on for every run.  ``run``/``run_all`` are bracketed by spans
(``span.sim.start_entities``, ``span.sim.run``) so every batch records
its phase timeline.  The row-level :class:`~repro.sim.tracing.Trace`
defaults to the ``REPRO_TRACE`` environment variable (off unless set to
``1``/``true``/``on``) and can be forced either way per simulation.

Deep observability (both observers only — neither touches RNG draws,
scheduling or metrics, so golden digests are identical on or off):

* ``sim.lineage`` is the run's causal
  :class:`~repro.obs.lineage.LineageTrace` (``REPRO_LINEAGE`` env or the
  ``lineage=`` argument);
* ``profile=True`` (or ``REPRO_PROFILE``) attaches a
  :class:`~repro.obs.profiler.SimProfiler` to the scheduler, reachable
  as ``sim.profiler``.
"""

from __future__ import annotations

import os
from typing import Any, Callable, List, Optional

from repro.obs.events import EventSink
from repro.obs.lineage import LineageTrace
from repro.obs.profiler import SimProfiler, env_profile_default
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import span
from repro.sim.clock import Clock
from repro.sim.events import EventHandle
from repro.sim.scheduler import Scheduler
from repro.sim.tracing import Trace
from repro.util.rng import RngRegistry

TRACE_ENV = "REPRO_TRACE"
_TRUTHY = ("1", "true", "on", "yes")


def _env_trace_default() -> bool:
    return os.environ.get(TRACE_ENV, "").strip().lower() in _TRUTHY


class Simulation:
    """Top-level container for one simulated run."""

    def __init__(
        self,
        seed: int = 0,
        trace: Optional[bool] = None,
        metrics: Optional[MetricsRegistry] = None,
        events: Optional[EventSink] = None,
        lineage: Optional[bool] = None,
        profile: Optional[bool] = None,
    ):
        self.rngs = RngRegistry(seed)
        self.clock = Clock()
        self.scheduler = Scheduler(self.clock)
        if trace is None:
            trace = _env_trace_default()
        self.trace = Trace(enabled=trace)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events = events if events is not None else EventSink()
        self.lineage = LineageTrace(enabled=lineage)
        if profile is None:
            profile = env_profile_default()
        if profile:
            self.scheduler.profiler = SimProfiler()
        self._entities: List[Any] = []
        self._started = False

    @property
    def profiler(self) -> Optional[SimProfiler]:
        """The attached profiler, or None when profiling is off."""
        return self.scheduler.profiler

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self.clock.now

    def at(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        return self.scheduler.schedule(delay, fn, *args)

    def at_time(self, time: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``."""
        return self.scheduler.schedule_at(time, fn, *args)

    def add_entity(self, entity: Any) -> Any:
        """Register an entity; its ``start(sim)`` runs when the sim starts.

        Entities added after the simulation started are started
        immediately, which lets arrival processes inject phones mid-run.
        """
        self._entities.append(entity)
        if self._started and hasattr(entity, "start"):
            entity.start(self)
        return entity

    @property
    def entities(self) -> List[Any]:
        """All registered entities, in registration order."""
        return list(self._entities)

    def _start_entities(self) -> None:
        if self._started:
            return
        self._started = True
        with span(self, "sim.start_entities"):
            for entity in list(self._entities):
                if hasattr(entity, "start"):
                    entity.start(self)
        self.metrics.gauge_set("sim.entities", len(self._entities))

    def run(self, until: float) -> int:
        """Start entities (once) and run events up to time ``until``;
        returns the number of events fired (matching :meth:`run_all`)."""
        self._start_entities()
        with span(self, "sim.run"):
            fired = self.scheduler.run_until(until)
        self._snapshot_health()
        return fired

    def run_all(self) -> int:
        """Start entities and drain every queued event."""
        self._start_entities()
        with span(self, "sim.run"):
            fired = self.scheduler.run_all()
        self._snapshot_health()
        return fired

    def _snapshot_health(self) -> None:
        """Post-drive gauges: totals the artefact reader wants at a glance."""
        self.metrics.gauge_set("sim.events_fired", self.scheduler.fired)
        self.metrics.gauge_set("sim.time", self.now)
        self.metrics.gauge_set("trace.records", len(self.trace))
        self.metrics.gauge_set("trace.dropped", self.trace.dropped)
        self.metrics.gauge_set("trace.cap", self.trace.max_records)
        self.metrics.gauge_set("events.buffered", len(self.events))
        self.metrics.gauge_set("events.dropped", self.events.dropped)
        self.metrics.gauge_set("events.cap", self.events.max_events)

    def emit(self, kind: str, subject: str, detail: str = "") -> None:
        """Trace helper stamped with the current time."""
        self.trace.emit(self.now, kind, subject, detail)

    def record_event(self, kind: str, **fields: Any) -> None:
        """Structured-event helper stamped with the current time."""
        self.events.emit(self.now, kind, **fields)
