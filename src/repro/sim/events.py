"""Scheduled-event bookkeeping.

Events live in a binary heap ordered by ``(time, seq)``; ``seq`` is a
monotonically increasing tiebreaker so same-time events fire in the order
they were scheduled (FIFO), which keeps runs deterministic.
"""

from __future__ import annotations

from typing import Any, Callable, Tuple


class EventHandle:
    """A cancellable reference to one scheduled callback.

    The scheduler hands one of these back from ``schedule``; calling
    :meth:`cancel` marks the event dead without the cost of re-heapifying
    (lazy deletion: the scheduler skips dead events when popping).
    """

    __slots__ = ("time", "seq", "fn", "args", "_alive")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: Tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self._alive = True

    @property
    def alive(self) -> bool:
        """Whether the event is still pending (not cancelled, not fired)."""
        return self._alive

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self._alive = False

    def _mark_fired(self) -> None:
        self._alive = False

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if self._alive else "done"
        return f"<EventHandle t={self.time:.6f} seq={self.seq} {state}>"
