"""Discrete-event simulation engine.

A minimal, fast event-queue simulator: a monotonic clock, a binary-heap
scheduler with cancellable handles, and a :class:`Simulation` facade that
owns both and drives entity callbacks.  All higher layers (radio medium,
phones, attackers, mobility) are plain callbacks scheduled here.
"""

from repro.sim.clock import Clock
from repro.sim.events import EventHandle
from repro.sim.scheduler import Scheduler
from repro.sim.simulation import Simulation
from repro.sim.tracing import Trace, TraceRecord

__all__ = [
    "Clock",
    "EventHandle",
    "Scheduler",
    "Simulation",
    "Trace",
    "TraceRecord",
]
