"""Simulation clock.

Time is a float number of seconds since the start of the run.  The clock
only ever moves forward; the scheduler is the single writer.
"""

from __future__ import annotations

from typing import List


def epoch_schedule(duration: float, epoch_s: float) -> List[float]:
    """Barrier times ``[0, e, 2e, ..., >= duration]`` for epoch stepping.

    Each barrier is computed by *multiplication* (``b * epoch_s``), not
    accumulation, so every shard — at any shard count — computes the
    exact same float for barrier ``b``.  The final barrier is the first
    multiple of ``epoch_s`` at or past ``duration``, so the last epoch
    may be short when ``duration`` is not a multiple.
    """
    if duration <= 0:
        raise ValueError("duration must be positive, got %r" % duration)
    if epoch_s <= 0:
        raise ValueError("epoch_s must be positive, got %r" % epoch_s)
    barriers = [0.0]
    b = 1
    while True:
        t = b * epoch_s
        barriers.append(t)
        if t >= duration:
            return barriers
        b += 1


class Clock:
    """Monotonic simulation clock (seconds)."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise ValueError("clock cannot start before t=0, got %r" % start)
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to ``t``.

        Raises ``ValueError`` on any attempt to move backwards — that
        always indicates a scheduler bug, never a legitimate request.
        """
        if t < self._now:
            raise ValueError(
                "clock cannot move backwards: now=%r requested=%r" % (self._now, t)
            )
        self._now = t
