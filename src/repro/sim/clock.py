"""Simulation clock.

Time is a float number of seconds since the start of the run.  The clock
only ever moves forward; the scheduler is the single writer.
"""

from __future__ import annotations


class Clock:
    """Monotonic simulation clock (seconds)."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise ValueError("clock cannot start before t=0, got %r" % start)
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to ``t``.

        Raises ``ValueError`` on any attempt to move backwards — that
        always indicates a scheduler bug, never a legitimate request.
        """
        if t < self._now:
            raise ValueError(
                "clock cannot move backwards: now=%r requested=%r" % (self._now, t)
            )
        self._now = t
