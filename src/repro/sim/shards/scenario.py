"""The sharded-city workload description and its pure derivations.

A :class:`ShardScenario` is a frozen, picklable value object — the
third :class:`~repro.experiments.parallel.RunSpec` route next to venue
profiles and explicit scenarios.  Everything about the run (walker
paths, scan cadences, PNLs, sensor placement) derives from it through
the stateless RNG of :mod:`repro.sim.shards.srng`, so any shard — and
any shard *count* — reconstructs the identical city.

Walkers are corridor crossers: each enters on one edge of the square
city at a random offset and walks straight across at a fixed speed
(the paper's subway-passage pattern scaled city-wide), actively
scanning on a personal period/phase.  Sensors are City-Hunter
deployments (:class:`~repro.sim.shards.attacker.LiteHunter`) pinned at
random positions.  The shard count is *not* a scenario field: it is an
execution parameter (``--shards`` / ``REPRO_SHARDS``), which is exactly
why the golden digest must not move when it changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.geo.grid import DistrictPartition
from repro.mobility.batch import corridor_endpoints
from repro.sim.shards.soa import WalkerBatch
from repro.sim.shards.srng import stream_base, u01, u01_vec

P_WALKER = "walker"
P_SENSOR = "sensor"

# Per-walker draw counters (the stateless RNG contract: changing any
# assignment below changes every golden digest).
_C_SPAWN = 0
_C_AXIS = 1
_C_DIR = 2
_C_CROSS = 3
_C_SPEED = 4
_C_PERIOD = 5
_C_PHASE = 6
_C_PNL_N = 7
_C_PNL_BASE = 8  # entry j uses counters (8 + 2j, 9 + 2j)


@dataclass(frozen=True)
class ShardScenario:
    """One sharded city run, described entirely by plain values."""

    stations: int
    sensors: int
    duration: float
    seed: int = 0
    size_m: float = 960.0
    district_m: float = 120.0
    """District edge — a multiple of the medium index cell
    (:data:`~repro.dot11.medium.DEFAULT_INDEX_CELL_M`) keeps the
    district seam aligned with the spatial-hash seam."""

    epoch_s: float = 5.0
    reach_m: float = 60.0
    ssid_universe: int = 160
    pb_size: int = 64
    fb_size: int = 16
    burst_size: int = 12
    spawn_fraction: float = 0.7
    speed_min_mps: float = 0.9
    speed_max_mps: float = 1.8
    scan_period_min_s: float = 15.0
    scan_period_max_s: float = 60.0
    pnl_max: int = 6
    open_share: float = 0.6

    def __post_init__(self) -> None:
        if self.stations < 1:
            raise ValueError("stations must be >= 1, got %r" % self.stations)
        if self.sensors < 1:
            raise ValueError("sensors must be >= 1, got %r" % self.sensors)
        if self.duration <= 0:
            raise ValueError("duration must be positive, got %r" % self.duration)
        if self.epoch_s <= 0:
            raise ValueError("epoch_s must be positive, got %r" % self.epoch_s)
        if self.size_m < self.district_m:
            raise ValueError("city smaller than one district")
        if self.reach_m <= 0:
            raise ValueError("reach_m must be positive, got %r" % self.reach_m)
        if self.ssid_universe < 1:
            raise ValueError("ssid_universe must be >= 1")
        if self.pnl_max < 2:
            raise ValueError("pnl_max must be >= 2, got %r" % self.pnl_max)
        if not 0.0 < self.open_share <= 1.0:
            raise ValueError("open_share must be in (0, 1], got %r" % self.open_share)
        if not 0.0 < self.speed_min_mps <= self.speed_max_mps:
            raise ValueError("bad walker speed bounds")
        if not 0.0 < self.scan_period_min_s <= self.scan_period_max_s:
            raise ValueError("bad scan period bounds")
        if not 0.0 <= self.spawn_fraction <= 1.0:
            raise ValueError("spawn_fraction must be in [0, 1]")

    def partition(self) -> DistrictPartition:
        """The fixed district grid this scenario is cut along."""
        return DistrictPartition(self.size_m, self.district_m)


def derive_walkers(scenario: ShardScenario, backend: str) -> WalkerBatch:
    """The full walker population as a :class:`WalkerBatch`.

    The numpy and python paths evaluate the *same* elementwise
    expressions over the *same* stateless draws, so their columns are
    bit-identical (pinned by tests).
    """
    base = stream_base(scenario.seed, P_WALKER)
    n = scenario.stations
    size = scenario.size_m
    speed_span = scenario.speed_max_mps - scenario.speed_min_mps
    period_span = scenario.scan_period_max_s - scenario.scan_period_min_s
    if backend == "numpy":
        import numpy as np

        ids = np.arange(n, dtype=np.uint64)
        draw = [u01_vec(base, ids, c) for c in range(_C_PNL_N + 1)]
        t0 = draw[_C_SPAWN] * scenario.spawn_fraction * scenario.duration
        horizontal = draw[_C_AXIS] < 0.5
        forward = draw[_C_DIR] < 0.5
        cross = draw[_C_CROSS] * size
        speed = scenario.speed_min_mps + draw[_C_SPEED] * speed_span
        period = scenario.scan_period_min_s + draw[_C_PERIOD] * period_span
        phase = draw[_C_PHASE] * period
        x0 = np.where(horizontal, np.where(forward, 0.0, size), cross)
        y0 = np.where(horizontal, cross, np.where(forward, 0.0, size))
        vx = np.where(horizontal, np.where(forward, speed, -speed), 0.0)
        vy = np.where(horizontal, 0.0, np.where(forward, speed, -speed))
        t_exit = t0 + size / speed
        pnl_n = (2.0 + np.floor(draw[_C_PNL_N] * (scenario.pnl_max - 1))).astype(
            np.int64
        )
    else:
        import math

        t0l, t_exitl, x0l, y0l, vxl, vyl = [], [], [], [], [], []
        periodl, phasel, pnl_nl = [], [], []
        for i in range(n):
            t_enter = u01(base, i, _C_SPAWN) * scenario.spawn_fraction
            t_enter = t_enter * scenario.duration
            horizontal_i = u01(base, i, _C_AXIS) < 0.5
            forward_i = u01(base, i, _C_DIR) < 0.5
            cross_i = u01(base, i, _C_CROSS) * size
            speed_i = scenario.speed_min_mps + u01(base, i, _C_SPEED) * speed_span
            period_i = (
                scenario.scan_period_min_s + u01(base, i, _C_PERIOD) * period_span
            )
            ex, ey, ux, uy = corridor_endpoints(horizontal_i, forward_i, cross_i, size)
            t0l.append(t_enter)
            t_exitl.append(t_enter + size / speed_i)
            x0l.append(ex)
            y0l.append(ey)
            vxl.append(ux * speed_i)
            vyl.append(uy * speed_i)
            periodl.append(period_i)
            phasel.append(u01(base, i, _C_PHASE) * period_i)
            pnl_nl.append(
                2 + math.floor(u01(base, i, _C_PNL_N) * (scenario.pnl_max - 1))
            )
        t0, t_exit, x0, y0 = t0l, t_exitl, x0l, y0l
        vx, vy, period, phase, pnl_n = vxl, vyl, periodl, phasel, pnl_nl

    pnl_open: List[frozenset] = []
    universe = scenario.ssid_universe
    for i in range(n):
        entries = set()
        for j in range(int(pnl_n[i])):
            pick = u01(base, i, _C_PNL_BASE + 2 * j)
            is_open = u01(base, i, _C_PNL_BASE + 1 + 2 * j) < scenario.open_share
            if is_open:
                # Quadratic skew towards low SSIDs, mirroring the
                # popularity ranking the sensors seed their PB with.
                entries.add(int(pick * pick * universe))
        pnl_open.append(frozenset(entries))
    return WalkerBatch(
        backend, t0, t_exit, x0, y0, vx, vy, period, phase, tuple(pnl_open)
    )


def derive_sensors(scenario: ShardScenario) -> List[Tuple[int, float, float]]:
    """Every sensor as ``(sensor_id, x, y)`` — identical in all shards."""
    base = stream_base(scenario.seed, P_SENSOR)
    size = scenario.size_m
    return [
        (s, u01(base, s, 0) * size, u01(base, s, 1) * size)
        for s in range(scenario.sensors)
    ]
