"""Epoch-barrier checkpoints for the district-sharded engine.

Layout, under ``<artifact dir>/checkpoints/``::

    shard-<k>-epoch-<e>.bin   one CRC-framed blob per shard
    pending-epoch-<e>.bin     the coordinator's buffered inboxes
    manifest.json             the last *globally consistent* barrier

A barrier at epoch ``e`` is consistent when every shard has finished
phase B of epoch ``e - 1`` (``epochs_done == e``) and the coordinator
holds the migrations and buffered offers due for delivery at phase A of
``e``.  The manifest is written last, atomically, *after* every blob of
its barrier — so a crash mid-checkpoint leaves the previous manifest
(and therefore the previous consistent barrier) intact.

Checkpointing is off unless ``REPRO_SHARD_CKPT_EVERY`` (or the explicit
``ckpt_every`` argument) selects a positive period, and is strictly
observe-only: all its side effects live under stripped ``shardops.*``
metrics and on disk, never in the ``shardsim.*`` digest.
"""

from __future__ import annotations

import json
import os
import pickle
import struct
import zlib
from pathlib import Path
from typing import Optional

from repro.obs.artifacts import artifact_dir

#: Checkpoint period in epochs; unset/0 disables checkpointing.
CKPT_EVERY_ENV = "REPRO_SHARD_CKPT_EVERY"

CKPT_SUBDIR = "checkpoints"
CKPT_SCHEMA = "repro.shard_ckpt/v1"
MANIFEST_NAME = "manifest.json"

_BLOB_MAGIC = b"RSC1"


class CheckpointError(RuntimeError):
    """A checkpoint blob or manifest is missing, torn or inconsistent."""


def resolve_ckpt_every(every: Optional[int] = None) -> int:
    """Checkpoint period: explicit argument beats env; 0 = disabled."""
    if every is None:
        raw = os.environ.get(CKPT_EVERY_ENV, "").strip()
        every = int(raw) if raw else 0
    every = int(every)
    if every < 0:
        raise ValueError("checkpoint period must be >= 0, got %d" % every)
    return every


def checkpoint_dir(base: Optional[Path] = None) -> Path:
    """Where this run's checkpoints live (not created here)."""
    return (base if base is not None else artifact_dir()) / CKPT_SUBDIR


def shard_ckpt_name(shard: int, epoch: int) -> str:
    return "shard-%d-epoch-%d.bin" % (shard, epoch)


def pending_name(epoch: int) -> str:
    return "pending-epoch-%d.bin" % epoch


def write_blob(path: Path, payload: object) -> int:
    """Atomically write ``magic + crc32 + pickle(payload)``; returns bytes.

    Atomic rename means a reader never sees a half-written blob — torn
    writes leave the old file (or nothing), both of which the manifest
    protocol handles.
    """
    body = pickle.dumps(payload, protocol=4)
    blob = _BLOB_MAGIC + struct.pack(">I", zlib.crc32(body) & 0xFFFFFFFF) + body
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(blob)
    os.replace(tmp, path)
    return len(blob)


def read_blob(path: Path) -> object:
    """Inverse of :func:`write_blob`; CRC-validated."""
    try:
        blob = path.read_bytes()
    except OSError as exc:
        raise CheckpointError("unreadable checkpoint %s: %s" % (path, exc))
    if len(blob) < 8 or blob[:4] != _BLOB_MAGIC:
        raise CheckpointError("bad checkpoint magic in %s" % path)
    (crc,) = struct.unpack(">I", blob[4:8])
    body = blob[8:]
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise CheckpointError("checkpoint CRC mismatch in %s" % path)
    try:
        return pickle.loads(body)
    except Exception as exc:
        raise CheckpointError(
            "undecodable checkpoint %s: %s" % (path, exc)
        ) from exc


def write_manifest(directory: Path, doc: dict) -> Path:
    """Atomically publish the manifest — the commit point of a barrier."""
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / MANIFEST_NAME
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)
    return path


def load_manifest(directory: Path) -> Optional[dict]:
    """The last consistent barrier, or None when never checkpointed.

    Raises :class:`CheckpointError` when a manifest exists but is torn
    or names files that are gone — recovery then restarts from scratch.
    """
    path = directory / MANIFEST_NAME
    if not path.exists():
        return None
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise CheckpointError("unreadable manifest %s: %s" % (path, exc))
    if not isinstance(doc, dict) or doc.get("schema") != CKPT_SCHEMA:
        raise CheckpointError("bad manifest schema in %s" % path)
    for key in ("epoch", "shards", "seed", "files", "pending"):
        if key not in doc:
            raise CheckpointError("manifest %s missing %r" % (path, key))
    for name in list(doc["files"].values()) + [doc["pending"]]:
        if not (directory / name).exists():
            raise CheckpointError(
                "manifest %s names missing file %s" % (path, name)
            )
    return doc
