"""LiteHunter: the City-Hunter buffer core, scaled down per sensor.

The full :class:`~repro.attacker.hunter.CityHunterAp` speaks frames on
the shared medium; a district shard instead needs the *decision core*
only — which SSIDs to offer a probing walker next — driven by plain
probe/feedback records.  LiteHunter keeps the paper's two buffers:

* **PB** (popularity buffer): the SSID universe ranked by weight,
  seeded with the WiGLE-style popularity order (SSID 0 most popular)
  and bumped by every observed hit.
* **FB** (freshness buffer): most-recent hit SSIDs first, capped.

A burst for a walker takes FB entries first, then the PB top — skipping
everything already sent to that walker, so repeated probes walk down
the candidate list exactly like the event-driven attacker's untried
ranking.  All state is integer-valued and updated only from sorted
handoff records, which makes the evolution — and :meth:`state` —
bit-comparable across shard counts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

BUCKET_POPULARITY = "P"
BUCKET_FRESHNESS = "F"


class LiteHunter:
    """Per-sensor probe→burst→feedback core with PB/FB buffers."""

    __slots__ = ("universe", "pb_size", "fb_size", "burst_size", "weights", "order", "fb", "sent")

    def __init__(self, universe: int, pb_size: int, fb_size: int, burst_size: int):
        self.universe = universe
        self.pb_size = pb_size
        self.fb_size = fb_size
        self.burst_size = burst_size
        # Initial weight U-s keeps the seeded order = popularity order.
        self.weights: List[int] = [universe - s for s in range(universe)]
        self.order: List[int] = list(range(universe))  # sorted by (-weight, ssid)
        self.fb: List[int] = []
        self.sent: Dict[int, Dict[int, str]] = {}

    def burst_for(self, walker: int) -> Tuple[int, ...]:
        """Next SSID burst for ``walker``: FB first, then the PB top,
        never repeating an SSID already sent to this walker."""
        sent = self.sent.setdefault(walker, {})
        out: List[int] = []
        for ssid in self.fb:
            if len(out) >= self.burst_size:
                break
            if ssid not in sent:
                sent[ssid] = BUCKET_FRESHNESS
                out.append(ssid)
        if len(out) < self.burst_size:
            for ssid in self.order[: self.pb_size]:
                if len(out) >= self.burst_size:
                    break
                if ssid not in sent:
                    sent[ssid] = BUCKET_POPULARITY
                    out.append(ssid)
        return tuple(out)

    def feedback(self, walker: int, ssid: int) -> Optional[str]:
        """Record a hit: bump the SSID's weight, refresh FB; returns the
        buffer the winning SSID was offered from (hit attribution)."""
        bucket = self.sent.get(walker, {}).get(ssid)
        w = self.weights[ssid] + 1
        self.weights[ssid] = w
        self.order.remove(ssid)
        key = (-w, ssid)
        lo, hi = 0, len(self.order)
        while lo < hi:
            mid = (lo + hi) // 2
            other = self.order[mid]
            if (-self.weights[other], other) < key:
                lo = mid + 1
            else:
                hi = mid
        self.order.insert(lo, ssid)
        if ssid in self.fb:
            self.fb.remove(ssid)
        self.fb.insert(0, ssid)
        del self.fb[self.fb_size :]
        return bucket

    def untried(self, walker: int) -> frozenset:
        """SSIDs not yet offered to ``walker`` (the shrinking untried list)."""
        sent = self.sent.get(walker)
        if not sent:
            return frozenset(range(self.universe))
        return frozenset(s for s in range(self.universe) if s not in sent)

    def state(self):
        """Canonical, hashable full state — plain ints/tuples only, so
        digests compare across shard counts, backends and processes."""
        return (
            tuple(self.weights),
            tuple(self.order),
            tuple(self.fb),
            tuple(
                (walker, tuple(sorted(sent.items())))
                for walker, sent in sorted(self.sent.items())
            ),
        )

    @classmethod
    def restore(
        cls,
        universe: int,
        pb_size: int,
        fb_size: int,
        burst_size: int,
        state,
    ) -> "LiteHunter":
        """Rebuild a hunter from a :meth:`state` tuple (checkpoint path).

        Round-trip contract: ``restore(..., h.state()).state() ==
        h.state()`` exactly, so recovered runs replay bit-identically.
        """
        weights, order, fb, sent = state
        hunter = cls(universe, pb_size, fb_size, burst_size)
        hunter.weights = list(weights)
        hunter.order = list(order)
        hunter.fb = list(fb)
        hunter.sent = {walker: dict(items) for walker, items in sent}
        return hunter
