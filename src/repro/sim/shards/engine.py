"""The sharded city engine: shard drivers + deterministic exchange.

:class:`ShardedCitySim` cuts the city into district-column stripes,
runs one :class:`~repro.sim.shards.shard.ShardRuntime` per shard, and
moves every cross-shard effect through the barrier exchange:

* **X1** (after phase A): probe and feedback records to each sensor's
  owner, migration records to each walker's next owner.
* **X2** (after phase B): offer records to each walker's next owner,
  buffered one epoch (the protocol's fixed response latency — itself
  shard-count-invariant, since it applies identically at one shard).

Receivers sort every batch by the shard-count-invariant
:func:`~repro.sim.shards.handoff.sort_key` before applying, so the
result — metrics, walker rows, hunter states, and therefore
:meth:`ShardRunResult.digest` — is bit-identical at any shard count, in
either execution mode:

* ``inline`` — all shards stepped in this process (the default; on a
  single-core box this is also the fast path, because the win is
  per-shard candidate locality, not parallel scheduling).
* ``process`` — one OS process per shard, exchanged over pipes.

``REPRO_SHARDS`` / ``REPRO_SHARD_MODE`` select count and mode the same
way ``REPRO_WORKERS`` selects executor width.  When ``REPRO_HEARTBEAT``
is set each shard appends live progress (including epoch counts) to
``telemetry/shard-<k>.jsonl`` for ``repro obs watch``; when
``REPRO_EPOCH_TRACE`` is set each shard additionally records per-epoch
barrier spans to ``telemetry/epochs-<k>.jsonl`` for ``repro obs top``
and ``repro obs shard-trace`` (see :mod:`repro.obs.epochs`).
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing as mp
import os
import time as _time
import traceback
from contextlib import ExitStack
from typing import Dict, List, Optional

from repro.analysis.breakdown import BufferBreakdown, SourceBreakdown
from repro.analysis.metrics import SessionSummary
from repro.obs.registry import MetricsRegistry, merge_snapshots
from repro.obs.telemetry import maybe_heartbeat
from repro.sim.clock import epoch_schedule
from repro.sim.shards.scenario import ShardScenario
from repro.sim.shards.shard import ShardRuntime
from repro.sim.shards.soa import resolve_backend

SHARDS_ENV = "REPRO_SHARDS"
SHARD_MODE_ENV = "REPRO_SHARD_MODE"
SHARD_MODES = ("inline", "process")

#: Metric namespace stripped from golden canonical form and digests —
#: everything under it is legitimately shard-count-dependent.
OPS_PREFIX = "shardops."
#: Workload namespace: integer-valued, bit-identical at any shard count.
SIM_PREFIX = "shardsim."

RESULT_SCHEMA = "repro.shard_run/v1"


def resolve_shards(shards: Optional[int] = None) -> int:
    """Shard count: explicit argument beats ``REPRO_SHARDS`` beats 1."""
    if shards is None:
        raw = os.environ.get(SHARDS_ENV, "").strip()
        shards = int(raw) if raw else 1
    shards = int(shards)
    if shards < 1:
        raise ValueError("shard count must be >= 1, got %r" % shards)
    return shards


def resolve_shard_mode(mode: Optional[str] = None) -> str:
    """Execution mode: explicit argument beats ``REPRO_SHARD_MODE``."""
    if mode is None:
        mode = os.environ.get(SHARD_MODE_ENV, "").strip().lower() or "inline"
    if mode not in SHARD_MODES:
        raise ValueError(
            "unknown shard mode %r (have: %s)" % (mode, ", ".join(SHARD_MODES))
        )
    return mode


class ShardRunResult:
    """Everything a finished sharded run produced."""

    def __init__(
        self,
        scenario: ShardScenario,
        shards: int,
        mode: str,
        backend: str,
        epochs: int,
        metrics: dict,
        summary: Dict[str, int],
        walker_rows: Optional[dict],
        hunter_states: Optional[dict],
        handoff_logs: Optional[Dict[int, list]],
        wall_phase_s: float,
        wall_handoff_s: float,
    ):
        self.scenario = scenario
        self.shards = shards
        self.mode = mode
        self.backend = backend
        self.epochs = epochs
        self.metrics = metrics
        self.summary = summary
        self.walker_rows = walker_rows
        self.hunter_states = hunter_states
        self.handoff_logs = handoff_logs
        self.wall_phase_s = wall_phase_s
        self.wall_handoff_s = wall_handoff_s

    def digest(self) -> str:
        """SHA-256 over the shard-count-invariant portion of the run:
        ``shardsim.*`` metrics, the summary, and (when collected) every
        walker row and hunter state.  The number this PR's invariance
        gates compare at shards 1/2/4."""
        payload = {
            "schema": RESULT_SCHEMA,
            "counters": {
                k: v
                for k, v in self.metrics.get("counters", {}).items()
                if k.startswith(SIM_PREFIX)
            },
            "gauges": {
                k: v
                for k, v in self.metrics.get("gauges", {}).items()
                if k.startswith(SIM_PREFIX)
            },
            "summary": self.summary,
        }
        if self.walker_rows is not None:
            payload["walkers"] = {
                str(w): list(row) for w, row in sorted(self.walker_rows.items())
            }
        if self.hunter_states is not None:
            payload["hunters"] = {
                str(s): state for s, state in sorted(self.hunter_states.items())
            }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def session_summary(self) -> SessionSummary:
        """The Table I-style row: shard walkers only broadcast-probe, so
        every client and every catch sits in the broadcast column."""
        probed = self.summary["probed"]
        return SessionSummary(
            total_clients=probed,
            direct_clients=0,
            broadcast_clients=probed,
            connected_direct=0,
            connected_broadcast=self.summary["connected"],
        )

    def source_breakdown(self) -> SourceBreakdown:
        """All lures come from the popularity-seeded SSID ranking (the
        WiGLE analogue); shard walkers never direct-probe."""
        return SourceBreakdown(from_wigle=self.summary["hits"], from_direct=0)

    def buffer_breakdown(self) -> BufferBreakdown:
        """Hit attribution by offering buffer (PB vs FB)."""
        counters = self.metrics.get("counters", {})
        return BufferBreakdown(
            from_popularity=int(counters.get("shardsim.hits_popularity", 0)),
            from_freshness=int(counters.get("shardsim.hits_freshness", 0)),
        )


def _merge_results(
    scenario: ShardScenario,
    shards: int,
    mode: str,
    backend: str,
    epochs: int,
    results: List[dict],
    wall_phase: float,
    wall_handoff: float,
    collect_states: bool,
    log_handoffs: bool,
) -> ShardRunResult:
    """Fold per-shard finalise payloads (in shard order) into one result."""
    engine = MetricsRegistry()
    engine.gauge_set("shardops.shards", shards)
    engine.timer_add("shards.phase_wall", wall_phase)
    engine.timer_add("shards.handoff_wall", wall_handoff)
    merged = merge_snapshots([r["metrics"] for r in results] + [engine.to_dict()])
    counters = merged["counters"]
    summary = {
        "stations": scenario.stations,
        "sensors": scenario.sensors,
        "probed": sum(r["summary"]["probed"] for r in results),
        "connected": sum(r["summary"]["connected"] for r in results),
        "hits": int(counters.get("shardsim.hits", 0)),
        "scans": int(counters.get("shardsim.scans", 0)),
        "probes": int(counters.get("shardsim.probes", 0)),
        "offers": int(counters.get("shardsim.offers", 0)),
        "feedbacks": int(counters.get("shardsim.feedbacks", 0)),
    }
    walker_rows = hunter_states = None
    if collect_states:
        walker_rows = {}
        hunter_states = {}
        for r in results:
            walker_rows.update(r["walker_rows"])
            hunter_states.update(r["hunter_states"])
    handoff_logs = (
        {r["shard"]: r["handoff_log"] for r in results} if log_handoffs else None
    )
    return ShardRunResult(
        scenario,
        shards,
        mode,
        backend,
        epochs,
        merged,
        summary,
        walker_rows,
        hunter_states,
        handoff_logs,
        wall_phase,
        wall_handoff,
    )


def _route(outboxes: List[dict], shards: int) -> List[list]:
    """Merge per-shard outboxes into per-destination inboxes."""
    inboxes: List[list] = [[] for _ in range(shards)]
    for out in outboxes:
        for dest, records in out.items():
            inboxes[dest].extend(records)
    return inboxes


def _shard_worker(
    conn,
    scenario: ShardScenario,
    shard_id: int,
    shards: int,
    backend: Optional[str],
    collect_states: bool,
    log_handoffs: bool,
    epoch_trace: Optional[bool] = None,
) -> None:
    """Process-mode loop: one ShardRuntime driven by pipe commands."""
    try:
        runtime = ShardRuntime(
            scenario,
            shard_id,
            shards,
            backend=backend,
            log_handoffs=log_handoffs,
            epoch_trace=epoch_trace,
        )
        duration = runtime.barriers[-1]
        with maybe_heartbeat(
            "shard %d/%d" % (shard_id, shards),
            duration,
            lambda: (runtime.sim.now, runtime.hits),
            file_stem="shard-%d" % shard_id,
            extra=lambda: {
                "epoch": runtime.epochs_done,
                "epochs": runtime.epochs,
            },
        ):
            while True:
                msg = conn.recv()
                op = msg[0]
                if op == "a":
                    _, epoch, migrations, offers, last = msg
                    conn.send(("ok", runtime.run_phase_a(epoch, migrations, offers, last)))
                elif op == "b":
                    _, epoch, feedbacks, probes = msg
                    conn.send(("ok", runtime.run_phase_b(epoch, feedbacks, probes)))
                elif op == "fin":
                    conn.send(("ok", runtime.finalize(collect_states)))
                    return
                else:  # pragma: no cover - protocol bug guard
                    raise RuntimeError("unknown shard command %r" % (op,))
    except Exception:
        try:
            conn.send(("err", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        conn.close()


class ShardedCitySim:
    """Run one :class:`ShardScenario` across district shards."""

    def __init__(
        self,
        scenario: ShardScenario,
        shards: Optional[int] = None,
        mode: Optional[str] = None,
        backend: Optional[str] = None,
        collect_states: bool = True,
        log_handoffs: bool = False,
        epoch_trace: Optional[bool] = None,
    ):
        self.scenario = scenario
        self.shards = resolve_shards(shards)
        self.mode = resolve_shard_mode(mode)
        self.backend = resolve_backend(backend)
        self.collect_states = collect_states
        self.log_handoffs = log_handoffs
        self.epoch_trace = epoch_trace
        self.epochs = len(epoch_schedule(scenario.duration, scenario.epoch_s)) - 1

    def run(self) -> ShardRunResult:
        if self.mode == "process" and self.shards > 1:
            return self._run_process()
        return self._run_inline()

    # -- inline mode ------------------------------------------------------

    def _run_inline(self) -> ShardRunResult:
        shards = self.shards
        runtimes = [
            ShardRuntime(
                self.scenario,
                k,
                shards,
                backend=self.backend,
                log_handoffs=self.log_handoffs,
                epoch_trace=self.epoch_trace,
            )
            for k in range(shards)
        ]
        duration = runtimes[0].barriers[-1]
        migrations: List[list] = [[] for _ in range(shards)]
        offers: List[list] = [[] for _ in range(shards)]
        wall_phase = wall_handoff = 0.0
        with ExitStack() as stack:
            for k, runtime in enumerate(runtimes):
                stack.enter_context(
                    maybe_heartbeat(
                        "shard %d/%d" % (k, shards),
                        duration,
                        lambda rt=runtime: (rt.sim.now, rt.hits),
                        file_stem="shard-%d" % k,
                        extra=lambda rt=runtime: {
                            "epoch": rt.epochs_done,
                            "epochs": rt.epochs,
                        },
                    )
                )
            for epoch in range(self.epochs):
                last = epoch == self.epochs - 1
                t0 = _time.perf_counter()
                outs_a = [
                    rt.run_phase_a(epoch, migrations[k], offers[k], last)
                    for k, rt in enumerate(runtimes)
                ]
                t1 = _time.perf_counter()
                # X1: probes + feedbacks to sensor owners, migrations to
                # each walker's next owner.
                sensor_in = _route(outs_a, shards)
                migrations = [[] for _ in range(shards)]
                probes_in: List[list] = [[] for _ in range(shards)]
                feedbacks_in: List[list] = [[] for _ in range(shards)]
                for dest in range(shards):
                    for rec in sensor_in[dest]:
                        if rec[0] == "p":
                            probes_in[dest].append(rec)
                        elif rec[0] == "f":
                            feedbacks_in[dest].append(rec)
                        else:
                            migrations[dest].append(rec)
                t2 = _time.perf_counter()
                outs_b = [
                    rt.run_phase_b(epoch, feedbacks_in[k], probes_in[k])
                    for k, rt in enumerate(runtimes)
                ]
                t3 = _time.perf_counter()
                # X2: offers buffered for the next epoch's phase A.
                offers = _route(outs_b, shards) if not last else [[] for _ in range(shards)]
                wall_phase += (t1 - t0) + (t3 - t2)
                wall_handoff += (t2 - t1) + (_time.perf_counter() - t3)
            results = [rt.finalize(self.collect_states) for rt in runtimes]
        return _merge_results(
            self.scenario,
            shards,
            self.mode,
            self.backend,
            self.epochs,
            results,
            wall_phase,
            wall_handoff,
            self.collect_states,
            self.log_handoffs,
        )

    # -- process mode -----------------------------------------------------

    def _run_process(self) -> ShardRunResult:
        shards = self.shards
        parents = []
        procs = []
        for k in range(shards):
            parent, child = mp.Pipe()
            proc = mp.Process(
                target=_shard_worker,
                args=(
                    child,
                    self.scenario,
                    k,
                    shards,
                    self.backend,
                    self.collect_states,
                    self.log_handoffs,
                    self.epoch_trace,
                ),
                daemon=True,
            )
            proc.start()
            child.close()
            parents.append(parent)
            procs.append(proc)
        migrations: List[list] = [[] for _ in range(shards)]
        offers: List[list] = [[] for _ in range(shards)]
        wall_phase = wall_handoff = 0.0
        try:
            for epoch in range(self.epochs):
                last = epoch == self.epochs - 1
                t0 = _time.perf_counter()
                for k in range(shards):
                    parents[k].send(("a", epoch, migrations[k], offers[k], last))
                outs_a = [self._recv(parents[k], k) for k in range(shards)]
                t1 = _time.perf_counter()
                sensor_in = _route(outs_a, shards)
                migrations = [[] for _ in range(shards)]
                probes_in: List[list] = [[] for _ in range(shards)]
                feedbacks_in: List[list] = [[] for _ in range(shards)]
                for dest in range(shards):
                    for rec in sensor_in[dest]:
                        if rec[0] == "p":
                            probes_in[dest].append(rec)
                        elif rec[0] == "f":
                            feedbacks_in[dest].append(rec)
                        else:
                            migrations[dest].append(rec)
                t2 = _time.perf_counter()
                for k in range(shards):
                    parents[k].send(("b", epoch, feedbacks_in[k], probes_in[k]))
                outs_b = [self._recv(parents[k], k) for k in range(shards)]
                t3 = _time.perf_counter()
                offers = (
                    _route(outs_b, shards) if not last else [[] for _ in range(shards)]
                )
                wall_phase += (t1 - t0) + (t3 - t2)
                wall_handoff += (t2 - t1) + (_time.perf_counter() - t3)
            for k in range(shards):
                parents[k].send(("fin",))
            results = [self._recv(parents[k], k) for k in range(shards)]
        finally:
            for parent in parents:
                parent.close()
            for proc in procs:
                proc.join(timeout=30.0)
                if proc.is_alive():  # pragma: no cover - hang guard
                    proc.terminate()
        return _merge_results(
            self.scenario,
            shards,
            self.mode,
            self.backend,
            self.epochs,
            results,
            wall_phase,
            wall_handoff,
            self.collect_states,
            self.log_handoffs,
        )

    @staticmethod
    def _recv(parent, shard_id: int):
        status, payload = parent.recv()
        if status != "ok":
            raise RuntimeError("shard %d failed:\n%s" % (shard_id, payload))
        return payload


def run_sharded(
    scenario: ShardScenario,
    shards: Optional[int] = None,
    mode: Optional[str] = None,
    backend: Optional[str] = None,
    collect_states: bool = True,
    log_handoffs: bool = False,
    epoch_trace: Optional[bool] = None,
) -> ShardRunResult:
    """One-call front door: resolve knobs, run, return the result."""
    return ShardedCitySim(
        scenario,
        shards=shards,
        mode=mode,
        backend=backend,
        collect_states=collect_states,
        log_handoffs=log_handoffs,
        epoch_trace=epoch_trace,
    ).run()
