"""The sharded city engine: shard drivers + deterministic exchange.

:class:`ShardedCitySim` cuts the city into district-column stripes,
runs one :class:`~repro.sim.shards.shard.ShardRuntime` per shard, and
moves every cross-shard effect through the barrier exchange:

* **X1** (after phase A): probe and feedback records to each sensor's
  owner, migration records to each walker's next owner.
* **X2** (after phase B): offer records to each walker's next owner,
  buffered one epoch (the protocol's fixed response latency — itself
  shard-count-invariant, since it applies identically at one shard).

Receivers sort every batch by the shard-count-invariant
:func:`~repro.sim.shards.handoff.sort_key` before applying, so the
result — metrics, walker rows, hunter states, and therefore
:meth:`ShardRunResult.digest` — is bit-identical at any shard count, in
either execution mode:

* ``inline`` — all shards stepped in this process (the default; on a
  single-core box this is also the fast path, because the win is
  per-shard candidate locality, not parallel scheduling).
* ``process`` — one OS process per shard, exchanged over pipes.

**Fault tolerance** (PR 8, process mode): with
``REPRO_SHARD_CKPT_EVERY=N`` every shard serialises its barrier state
to ``checkpoints/`` every N epochs and the coordinator commits a
manifest naming the last globally consistent barrier (see
:mod:`repro.sim.shards.checkpoint`).  The coordinator detects dead
shards (pipe ``EOFError`` + exitcode polling), hung shards (a per-phase
deadline derived from recent phase walls, or the explicit
``REPRO_SHARD_PHASE_TIMEOUT_S``), and corrupt handoff batches
(:func:`~repro.sim.shards.handoff.validate_outbox` on every received
outbox); any of the three raises :class:`ShardCrash`, after which *all*
shards are torn down, respawned from the manifest barrier, and the run
replays — deterministically, so the recovered digest is bit-identical
to an uninterrupted run.  At most ``REPRO_SHARD_MAX_RECOVERIES``
(default 3) recoveries are attempted; an ``("err", traceback)`` reply
is a deterministic bug, never retried.  All recovery accounting lands
under stripped ``shardops.recovery.*`` / ``shardops.ckpt.*`` metrics
and as ``telemetry/shardops-events.jsonl`` events — digests never move.

``REPRO_SHARDS`` / ``REPRO_SHARD_MODE`` select count and mode the same
way ``REPRO_WORKERS`` selects executor width.  When ``REPRO_HEARTBEAT``
is set each shard appends live progress (including epoch counts) to
``telemetry/shard-<k>.jsonl`` for ``repro obs watch``; when
``REPRO_EPOCH_TRACE`` is set each shard additionally records per-epoch
barrier spans to ``telemetry/epochs-<k>.jsonl`` for ``repro obs top``
and ``repro obs shard-trace`` (see :mod:`repro.obs.epochs`).
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing as mp
import os
import pathlib
import time as _time
import traceback
from collections import deque
from contextlib import ExitStack
from typing import Dict, List, Optional, Tuple

from repro.analysis.breakdown import BufferBreakdown, SourceBreakdown
from repro.analysis.metrics import SessionSummary
from repro.faults.plan import FaultPlan
from repro.faults.shards import (
    SHARD_CRASH_EXIT_CODE,
    InjectedShardCrash,
    ShardFaultParams,
    corrupt_now,
    corrupt_outbox,
    crash_now,
    stall_seconds,
    target_shard,
)
from repro.obs.registry import MetricsRegistry, merge_snapshots
from repro.obs.telemetry import append_ops_event, maybe_heartbeat
from repro.sim.clock import epoch_schedule
from repro.sim.shards import handoff
from repro.sim.shards.checkpoint import (
    CKPT_SCHEMA,
    CheckpointError,
    checkpoint_dir,
    load_manifest,
    pending_name,
    read_blob,
    resolve_ckpt_every,
    shard_ckpt_name,
    write_blob,
    write_manifest,
)
from repro.sim.shards.handoff import CorruptHandoffError
from repro.sim.shards.scenario import ShardScenario
from repro.sim.shards.shard import ShardRuntime
from repro.sim.shards.soa import resolve_backend

SHARDS_ENV = "REPRO_SHARDS"
SHARD_MODE_ENV = "REPRO_SHARD_MODE"
SHARD_MODES = ("inline", "process")

#: Per-phase coordinator deadline override (seconds); unset = adaptive.
PHASE_TIMEOUT_ENV = "REPRO_SHARD_PHASE_TIMEOUT_S"
#: How many crash recoveries to attempt before giving up.
MAX_RECOVERIES_ENV = "REPRO_SHARD_MAX_RECOVERIES"
DEFAULT_MAX_RECOVERIES = 3

#: Adaptive deadline: before any phase completed we have no baseline.
FIRST_PHASE_DEADLINE_S = 300.0
#: ...after that, a phase is hung at this multiple of the recent mean.
DEADLINE_FACTOR = 25.0
#: Never declare a hang faster than this (scheduler noise headroom).
DEADLINE_FLOOR_S = 30.0

#: Metric namespace stripped from golden canonical form and digests —
#: everything under it is legitimately shard-count-dependent.
OPS_PREFIX = "shardops."
#: Workload namespace: integer-valued, bit-identical at any shard count.
SIM_PREFIX = "shardsim."

RESULT_SCHEMA = "repro.shard_run/v1"


def resolve_shards(shards: Optional[int] = None) -> int:
    """Shard count: explicit argument beats ``REPRO_SHARDS`` beats 1."""
    if shards is None:
        raw = os.environ.get(SHARDS_ENV, "").strip()
        shards = int(raw) if raw else 1
    shards = int(shards)
    if shards < 1:
        raise ValueError("shard count must be >= 1, got %r" % shards)
    return shards


def resolve_shard_mode(mode: Optional[str] = None) -> str:
    """Execution mode: explicit argument beats ``REPRO_SHARD_MODE``."""
    if mode is None:
        mode = os.environ.get(SHARD_MODE_ENV, "").strip().lower() or "inline"
    if mode not in SHARD_MODES:
        raise ValueError(
            "unknown shard mode %r (have: %s)" % (mode, ", ".join(SHARD_MODES))
        )
    return mode


def resolve_phase_timeout(timeout: Optional[float] = None) -> Optional[float]:
    """Explicit per-phase deadline, or None for the adaptive one."""
    if timeout is None:
        raw = os.environ.get(PHASE_TIMEOUT_ENV, "").strip()
        if not raw:
            return None
        timeout = float(raw)
    timeout = float(timeout)
    if timeout <= 0:
        raise ValueError("phase timeout must be > 0, got %r" % timeout)
    return timeout


def resolve_max_recoveries(limit: Optional[int] = None) -> int:
    """Crash-recovery budget (``REPRO_SHARD_MAX_RECOVERIES``, default 3)."""
    if limit is None:
        raw = os.environ.get(MAX_RECOVERIES_ENV, "").strip()
        limit = int(raw) if raw else DEFAULT_MAX_RECOVERIES
    limit = int(limit)
    if limit < 0:
        raise ValueError("max recoveries must be >= 0, got %r" % limit)
    return limit


class ShardCrash(RuntimeError):
    """A shard died, hung, or handed off garbage — recoverable.

    Distinct from an ``("err", traceback)`` reply, which is a
    deterministic bug in shard code and would fail identically on
    replay; only *this* class triggers checkpoint recovery.
    """

    def __init__(
        self,
        shard_id: int,
        epoch: int,
        phase: str,
        reason: str,
        exitcode: Optional[int] = None,
    ):
        super().__init__(
            "shard %d crashed at epoch %d phase %s: %s%s"
            % (
                shard_id,
                epoch,
                phase,
                reason,
                "" if exitcode is None else " (exitcode %s)" % exitcode,
            )
        )
        self.shard_id = shard_id
        self.epoch = epoch
        self.phase = phase
        self.reason = reason
        self.exitcode = exitcode


class ShardRunResult:
    """Everything a finished sharded run produced."""

    def __init__(
        self,
        scenario: ShardScenario,
        shards: int,
        mode: str,
        backend: str,
        epochs: int,
        metrics: dict,
        summary: Dict[str, int],
        walker_rows: Optional[dict],
        hunter_states: Optional[dict],
        handoff_logs: Optional[Dict[int, list]],
        wall_phase_s: float,
        wall_handoff_s: float,
    ):
        self.scenario = scenario
        self.shards = shards
        self.mode = mode
        self.backend = backend
        self.epochs = epochs
        self.metrics = metrics
        self.summary = summary
        self.walker_rows = walker_rows
        self.hunter_states = hunter_states
        self.handoff_logs = handoff_logs
        self.wall_phase_s = wall_phase_s
        self.wall_handoff_s = wall_handoff_s

    def digest(self) -> str:
        """SHA-256 over the shard-count-invariant portion of the run:
        ``shardsim.*`` metrics, the summary, and (when collected) every
        walker row and hunter state.  The number this PR's invariance
        gates compare at shards 1/2/4."""
        payload = {
            "schema": RESULT_SCHEMA,
            "counters": {
                k: v
                for k, v in self.metrics.get("counters", {}).items()
                if k.startswith(SIM_PREFIX)
            },
            "gauges": {
                k: v
                for k, v in self.metrics.get("gauges", {}).items()
                if k.startswith(SIM_PREFIX)
            },
            "summary": self.summary,
        }
        if self.walker_rows is not None:
            payload["walkers"] = {
                str(w): list(row) for w, row in sorted(self.walker_rows.items())
            }
        if self.hunter_states is not None:
            payload["hunters"] = {
                str(s): state for s, state in sorted(self.hunter_states.items())
            }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def session_summary(self) -> SessionSummary:
        """The Table I-style row: shard walkers only broadcast-probe, so
        every client and every catch sits in the broadcast column."""
        probed = self.summary["probed"]
        return SessionSummary(
            total_clients=probed,
            direct_clients=0,
            broadcast_clients=probed,
            connected_direct=0,
            connected_broadcast=self.summary["connected"],
        )

    def source_breakdown(self) -> SourceBreakdown:
        """All lures come from the popularity-seeded SSID ranking (the
        WiGLE analogue); shard walkers never direct-probe."""
        return SourceBreakdown(from_wigle=self.summary["hits"], from_direct=0)

    def buffer_breakdown(self) -> BufferBreakdown:
        """Hit attribution by offering buffer (PB vs FB)."""
        counters = self.metrics.get("counters", {})
        return BufferBreakdown(
            from_popularity=int(counters.get("shardsim.hits_popularity", 0)),
            from_freshness=int(counters.get("shardsim.hits_freshness", 0)),
        )


def _empty_ops() -> Dict[str, float]:
    """Per-run recovery/checkpoint accounting, merged nonzero-only."""
    return {
        "crashes": 0,
        "respawns": 0,
        "rollback_epochs": 0,
        "recovery_wall": 0.0,
        "ckpt_barriers": 0,
        "ckpt_pending_bytes": 0,
        "ckpt_barrier_wall": 0.0,
    }


def _merge_results(
    scenario: ShardScenario,
    shards: int,
    mode: str,
    backend: str,
    epochs: int,
    results: List[dict],
    wall_phase: float,
    wall_handoff: float,
    collect_states: bool,
    log_handoffs: bool,
    ops: Optional[Dict[str, float]] = None,
) -> ShardRunResult:
    """Fold per-shard finalise payloads (in shard order) into one result."""
    engine = MetricsRegistry()
    engine.gauge_set("shardops.shards", shards)
    engine.timer_add("shards.phase_wall", wall_phase)
    engine.timer_add("shards.handoff_wall", wall_handoff)
    if ops:
        # Nonzero-only, so fault-free runs emit byte-identical metrics
        # documents whether or not the recovery machinery was armed.
        if ops["crashes"]:
            engine.inc("shardops.recovery.crashes", int(ops["crashes"]))
            engine.inc("shardops.recovery.respawns", int(ops["respawns"]))
            engine.inc(
                "shardops.recovery.rollback_epochs",
                int(ops["rollback_epochs"]),
            )
            engine.timer_add("shardops.recovery_wall", ops["recovery_wall"])
        if ops["ckpt_barriers"]:
            engine.inc("shardops.ckpt.barriers", int(ops["ckpt_barriers"]))
            engine.inc(
                "shardops.ckpt.pending_bytes", int(ops["ckpt_pending_bytes"])
            )
            engine.timer_add(
                "shardops.ckpt_barrier_wall", ops["ckpt_barrier_wall"]
            )
    merged = merge_snapshots([r["metrics"] for r in results] + [engine.to_dict()])
    counters = merged["counters"]
    summary = {
        "stations": scenario.stations,
        "sensors": scenario.sensors,
        "probed": sum(r["summary"]["probed"] for r in results),
        "connected": sum(r["summary"]["connected"] for r in results),
        "hits": int(counters.get("shardsim.hits", 0)),
        "scans": int(counters.get("shardsim.scans", 0)),
        "probes": int(counters.get("shardsim.probes", 0)),
        "offers": int(counters.get("shardsim.offers", 0)),
        "feedbacks": int(counters.get("shardsim.feedbacks", 0)),
    }
    walker_rows = hunter_states = None
    if collect_states:
        walker_rows = {}
        hunter_states = {}
        for r in results:
            walker_rows.update(r["walker_rows"])
            hunter_states.update(r["hunter_states"])
    handoff_logs = (
        {r["shard"]: r["handoff_log"] for r in results} if log_handoffs else None
    )
    return ShardRunResult(
        scenario,
        shards,
        mode,
        backend,
        epochs,
        merged,
        summary,
        walker_rows,
        hunter_states,
        handoff_logs,
        wall_phase,
        wall_handoff,
    )


def _route(outboxes: List[dict], shards: int) -> List[list]:
    """Merge per-shard outboxes into per-destination inboxes."""
    inboxes: List[list] = [[] for _ in range(shards)]
    for out in outboxes:
        for dest, records in out.items():
            inboxes[dest].extend(records)
    return inboxes


def _split_sensor_in(
    sensor_in: List[list], shards: int
) -> Tuple[List[list], List[list], List[list]]:
    """Split routed X1 inboxes into (migrations, probes, feedbacks)."""
    migrations: List[list] = [[] for _ in range(shards)]
    probes_in: List[list] = [[] for _ in range(shards)]
    feedbacks_in: List[list] = [[] for _ in range(shards)]
    for dest in range(shards):
        for rec in sensor_in[dest]:
            if rec[0] == "p":
                probes_in[dest].append(rec)
            elif rec[0] == "f":
                feedbacks_in[dest].append(rec)
            else:
                migrations[dest].append(rec)
    return migrations, probes_in, feedbacks_in


def _shard_worker(
    conn,
    scenario: ShardScenario,
    shard_id: int,
    shards: int,
    backend: Optional[str],
    collect_states: bool,
    log_handoffs: bool,
    epoch_trace: Optional[bool] = None,
    fault: Optional[ShardFaultParams] = None,
    fault_seed: int = 0,
    incarnation: int = 0,
    restore_path: Optional[str] = None,
) -> None:
    """Process-mode loop: one ShardRuntime driven by pipe commands.

    ``incarnation`` counts respawns of this shard id (0 = original),
    gating fault injection so a recovered replay runs clean;
    ``restore_path`` rolls the fresh runtime back to a checkpoint
    barrier before the first command.
    """
    try:
        runtime = ShardRuntime(
            scenario,
            shard_id,
            shards,
            backend=backend,
            log_handoffs=log_handoffs,
            epoch_trace=epoch_trace,
        )
        if restore_path is not None:
            runtime.restore_file(pathlib.Path(restore_path))
        duration = runtime.barriers[-1]
        with maybe_heartbeat(
            "shard %d/%d" % (shard_id, shards),
            duration,
            lambda: (runtime.sim.now, runtime.hits),
            file_stem="shard-%d" % shard_id,
            extra=lambda: {
                "epoch": runtime.epochs_done,
                "epochs": runtime.epochs,
            },
        ):
            while True:
                msg = conn.recv()
                op = msg[0]
                if op == "a":
                    _, epoch, migrations, offers, last = msg
                    if fault is not None:
                        if crash_now(
                            fault, fault_seed, shard_id, shards, epoch, incarnation
                        ):
                            # Die like an OOM kill: no cleanup, no reply,
                            # a distinctive exitcode for the coordinator.
                            os._exit(SHARD_CRASH_EXIT_CODE)
                        stall = stall_seconds(
                            fault, fault_seed, shard_id, shards, epoch, incarnation
                        )
                        if stall > 0:
                            _time.sleep(stall)
                    out = runtime.run_phase_a(epoch, migrations, offers, last)
                    if fault is not None and corrupt_now(
                        fault, fault_seed, shard_id, shards, epoch, incarnation
                    ):
                        corrupt_outbox(fault, out)
                    conn.send(("ok", out))
                elif op == "b":
                    _, epoch, feedbacks, probes = msg
                    conn.send(("ok", runtime.run_phase_b(epoch, feedbacks, probes)))
                elif op == "ckpt":
                    _, epoch, directory = msg
                    conn.send(
                        ("ok", runtime.write_checkpoint(epoch, pathlib.Path(directory)))
                    )
                elif op == "fin":
                    conn.send(("ok", runtime.finalize(collect_states)))
                    return
                else:  # pragma: no cover - protocol bug guard
                    raise RuntimeError("unknown shard command %r" % (op,))
    except Exception:
        try:
            conn.send(("err", traceback.format_exc()))
        except (BrokenPipeError, OSError):
            # The pipe itself failed: the error report cannot reach the
            # coordinator, so leave an event behind and die loudly —
            # a nonzero exitcode is what its crash detection polls for.
            try:
                append_ops_event("shard.pipe_error", shard=shard_id)
            except OSError:  # pragma: no cover - best-effort telemetry
                pass
            raise
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass


class ShardedCitySim:
    """Run one :class:`ShardScenario` across district shards."""

    def __init__(
        self,
        scenario: ShardScenario,
        shards: Optional[int] = None,
        mode: Optional[str] = None,
        backend: Optional[str] = None,
        collect_states: bool = True,
        log_handoffs: bool = False,
        epoch_trace: Optional[bool] = None,
        faults: Optional[FaultPlan] = None,
        ckpt_every: Optional[int] = None,
    ):
        self.scenario = scenario
        self.shards = resolve_shards(shards)
        self.mode = resolve_shard_mode(mode)
        self.backend = resolve_backend(backend)
        self.collect_states = collect_states
        self.log_handoffs = log_handoffs
        self.epoch_trace = epoch_trace
        self.epochs = len(epoch_schedule(scenario.duration, scenario.epoch_s)) - 1
        self.fault: Optional[ShardFaultParams] = None
        self.fault_seed = 0
        if faults is not None and faults.shard_faults is not None:
            if not faults.shard_faults.empty:
                self.fault = faults.shard_faults
                self.fault_seed = faults.seed
        self.ckpt_every = resolve_ckpt_every(ckpt_every)
        self.phase_timeout = resolve_phase_timeout()
        self.max_recoveries = resolve_max_recoveries()
        self._phase_walls: deque = deque(maxlen=32)
        self._last_ckpt_epoch = -1

    def run(self) -> ShardRunResult:
        if self.mode == "process" and self.shards > 1:
            return self._run_process()
        return self._run_inline()

    # -- checkpoint barrier (shared by both modes) ------------------------

    def _ckpt_due(self, epoch: int) -> bool:
        return (
            self.ckpt_every > 0
            and epoch > 0
            and epoch % self.ckpt_every == 0
            and epoch > self._last_ckpt_epoch
        )

    def _commit_barrier(
        self,
        infos: List[dict],
        epoch: int,
        migrations: List[list],
        offers: List[list],
        ckpt_dir: pathlib.Path,
        ops: Dict[str, float],
        pc0: float,
    ) -> None:
        """Publish the barrier: pending inboxes, then the manifest.

        The manifest is written last, so a crash anywhere before it
        leaves the previous consistent barrier in force.
        """
        pending = {
            "epoch": epoch,
            "migrations": [handoff.encode_records(m) for m in migrations],
            "offers": [handoff.encode_records(o) for o in offers],
        }
        pending_bytes = write_blob(ckpt_dir / pending_name(epoch), pending)
        manifest = {
            "schema": CKPT_SCHEMA,
            "epoch": epoch,
            "shards": self.shards,
            "seed": self.scenario.seed,
            "wall": _time.time(),
            "files": {
                str(info["shard"]): shard_ckpt_name(info["shard"], epoch)
                for info in infos
            },
            "pending": pending_name(epoch),
            "bytes": int(sum(i["bytes"] for i in infos)) + pending_bytes,
        }
        write_manifest(ckpt_dir, manifest)
        keep = set(manifest["files"].values()) | {manifest["pending"]}
        for path in ckpt_dir.glob("*.bin"):
            if path.name not in keep:
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - concurrent cleanup
                    pass
        self._last_ckpt_epoch = epoch
        ops["ckpt_barriers"] += 1
        ops["ckpt_pending_bytes"] += pending_bytes
        ops["ckpt_barrier_wall"] += _time.perf_counter() - pc0

    # -- inline mode ------------------------------------------------------

    def _run_inline(self) -> ShardRunResult:
        shards = self.shards
        fault = self.fault
        target = (
            target_shard(fault, self.fault_seed, shards)
            if fault is not None
            else None
        )
        ckpt_dir = checkpoint_dir() if self.ckpt_every > 0 else None
        ops = _empty_ops()
        runtimes = [
            ShardRuntime(
                self.scenario,
                k,
                shards,
                backend=self.backend,
                log_handoffs=self.log_handoffs,
                epoch_trace=self.epoch_trace,
            )
            for k in range(shards)
        ]
        duration = runtimes[0].barriers[-1]
        migrations: List[list] = [[] for _ in range(shards)]
        offers: List[list] = [[] for _ in range(shards)]
        wall_phase = wall_handoff = 0.0
        with ExitStack() as stack:
            for k, runtime in enumerate(runtimes):
                stack.enter_context(
                    maybe_heartbeat(
                        "shard %d/%d" % (k, shards),
                        duration,
                        lambda rt=runtime: (rt.sim.now, rt.hits),
                        file_stem="shard-%d" % k,
                        extra=lambda rt=runtime: {
                            "epoch": rt.epochs_done,
                            "epochs": rt.epochs,
                        },
                    )
                )
            for epoch in range(self.epochs):
                if ckpt_dir is not None and self._ckpt_due(epoch):
                    pc0 = _time.perf_counter()
                    infos = [
                        rt.write_checkpoint(epoch, ckpt_dir) for rt in runtimes
                    ]
                    self._commit_barrier(
                        infos, epoch, migrations, offers, ckpt_dir, ops, pc0
                    )
                if fault is not None:
                    if crash_now(
                        fault, self.fault_seed, target, shards, epoch, 0
                    ):
                        raise InjectedShardCrash(
                            "injected crash of shard %d at epoch %d "
                            "(inline mode has no recovery; use mode='process')"
                            % (target, epoch)
                        )
                    stall = stall_seconds(
                        fault, self.fault_seed, target, shards, epoch, 0
                    )
                    if stall > 0:
                        _time.sleep(stall)
                last = epoch == self.epochs - 1
                t0 = _time.perf_counter()
                outs_a = [
                    rt.run_phase_a(epoch, migrations[k], offers[k], last)
                    for k, rt in enumerate(runtimes)
                ]
                t1 = _time.perf_counter()
                if fault is not None:
                    if corrupt_now(
                        fault, self.fault_seed, target, shards, epoch, 0
                    ):
                        corrupt_outbox(fault, outs_a[target])
                    for out in outs_a:
                        handoff.validate_outbox(out)
                # X1: probes + feedbacks to sensor owners, migrations to
                # each walker's next owner.
                sensor_in = _route(outs_a, shards)
                migrations, probes_in, feedbacks_in = _split_sensor_in(
                    sensor_in, shards
                )
                t2 = _time.perf_counter()
                outs_b = [
                    rt.run_phase_b(epoch, feedbacks_in[k], probes_in[k])
                    for k, rt in enumerate(runtimes)
                ]
                t3 = _time.perf_counter()
                if fault is not None:
                    for out in outs_b:
                        handoff.validate_outbox(out)
                # X2: offers buffered for the next epoch's phase A.
                offers = _route(outs_b, shards) if not last else [[] for _ in range(shards)]
                wall_phase += (t1 - t0) + (t3 - t2)
                wall_handoff += (t2 - t1) + (_time.perf_counter() - t3)
            results = [rt.finalize(self.collect_states) for rt in runtimes]
        return _merge_results(
            self.scenario,
            shards,
            self.mode,
            self.backend,
            self.epochs,
            results,
            wall_phase,
            wall_handoff,
            self.collect_states,
            self.log_handoffs,
            ops=ops,
        )

    # -- process mode -----------------------------------------------------

    def _run_process(self) -> ShardRunResult:
        shards = self.shards
        ckpt_dir = checkpoint_dir() if self.ckpt_every > 0 else None
        ops = _empty_ops()
        walls = {"phase": 0.0, "handoff": 0.0}
        incarnation = 0
        start_epoch = 0
        migrations: List[list] = [[] for _ in range(shards)]
        offers: List[list] = [[] for _ in range(shards)]
        restore_paths: Optional[Dict[int, pathlib.Path]] = None
        while True:
            parents, procs = self._spawn_all(incarnation, restore_paths)
            try:
                results = self._drive_process(
                    parents, procs, start_epoch, migrations, offers, ckpt_dir,
                    ops, walls,
                )
            except ShardCrash as crash:
                self._kill_procs(procs, parents)
                ops["crashes"] += 1
                append_ops_event(
                    "shard.crash",
                    shard=crash.shard_id,
                    epoch=crash.epoch,
                    phase=crash.phase,
                    reason=crash.reason,
                    exitcode=crash.exitcode,
                )
                if ops["crashes"] > self.max_recoveries:
                    raise RuntimeError(
                        "recovery budget exhausted (%d recoveries): %s"
                        % (self.max_recoveries, crash)
                    ) from crash
                rec0 = _time.perf_counter()
                (
                    start_epoch,
                    migrations,
                    offers,
                    restore_paths,
                ) = self._load_recovery_point(ckpt_dir)
                ops["rollback_epochs"] += max(0, crash.epoch - start_epoch)
                incarnation += 1
                ops["respawns"] += shards
                append_ops_event(
                    "shard.respawn",
                    shards=shards,
                    epoch=start_epoch,
                    incarnation=incarnation,
                    from_checkpoint=restore_paths is not None,
                )
                ops["recovery_wall"] += _time.perf_counter() - rec0
                continue
            except BaseException:
                self._kill_procs(procs, parents)
                raise
            self._shutdown_procs(procs, parents)
            break
        return _merge_results(
            self.scenario,
            shards,
            self.mode,
            self.backend,
            self.epochs,
            results,
            walls["phase"],
            walls["handoff"],
            self.collect_states,
            self.log_handoffs,
            ops=ops,
        )

    def _spawn_all(
        self,
        incarnation: int,
        restore_paths: Optional[Dict[int, pathlib.Path]],
    ) -> Tuple[list, list]:
        parents = []
        procs = []
        for k in range(self.shards):
            parent, child = mp.Pipe()
            proc = mp.Process(
                target=_shard_worker,
                args=(
                    child,
                    self.scenario,
                    k,
                    self.shards,
                    self.backend,
                    self.collect_states,
                    self.log_handoffs,
                    self.epoch_trace,
                    self.fault,
                    self.fault_seed,
                    incarnation,
                    str(restore_paths[k]) if restore_paths else None,
                ),
                daemon=True,
            )
            proc.start()
            child.close()
            parents.append(parent)
            procs.append(proc)
        return parents, procs

    def _drive_process(
        self,
        parents: list,
        procs: list,
        start_epoch: int,
        migrations: List[list],
        offers: List[list],
        ckpt_dir: Optional[pathlib.Path],
        ops: Dict[str, float],
        walls: Dict[str, float],
    ) -> List[dict]:
        """Step epochs over the pipes; raises :class:`ShardCrash` on any
        recoverable failure, returns the finalise payloads otherwise."""
        shards = self.shards
        for epoch in range(start_epoch, self.epochs):
            if ckpt_dir is not None and self._ckpt_due(epoch):
                pc0 = _time.perf_counter()
                for k in range(shards):
                    parents[k].send(("ckpt", epoch, str(ckpt_dir)))
                infos = [
                    self._recv(parents[k], procs[k], k, epoch, "ckpt")
                    for k in range(shards)
                ]
                self._commit_barrier(
                    infos, epoch, migrations, offers, ckpt_dir, ops, pc0
                )
            last = epoch == self.epochs - 1
            t0 = _time.perf_counter()
            for k in range(shards):
                parents[k].send(("a", epoch, migrations[k], offers[k], last))
            outs_a = [
                self._recv(parents[k], procs[k], k, epoch, "a")
                for k in range(shards)
            ]
            t1 = _time.perf_counter()
            self._phase_walls.append(t1 - t0)
            self._validate_outboxes(outs_a, procs, epoch, "a")
            sensor_in = _route(outs_a, shards)
            migrations, probes_in, feedbacks_in = _split_sensor_in(
                sensor_in, shards
            )
            t2 = _time.perf_counter()
            for k in range(shards):
                parents[k].send(("b", epoch, feedbacks_in[k], probes_in[k]))
            outs_b = [
                self._recv(parents[k], procs[k], k, epoch, "b")
                for k in range(shards)
            ]
            t3 = _time.perf_counter()
            self._phase_walls.append(t3 - t2)
            self._validate_outboxes(outs_b, procs, epoch, "b")
            offers = (
                _route(outs_b, shards) if not last else [[] for _ in range(shards)]
            )
            walls["phase"] += (t1 - t0) + (t3 - t2)
            walls["handoff"] += (t2 - t1) + (_time.perf_counter() - t3)
        for k in range(shards):
            parents[k].send(("fin",))
        return [
            self._recv(parents[k], procs[k], k, self.epochs, "fin")
            for k in range(shards)
        ]

    def _validate_outboxes(
        self, outs: List[dict], procs: list, epoch: int, phase: str
    ) -> None:
        """Receiver-side schema check: a torn or mangled batch is a
        shard crash (recoverable), never an applied record."""
        for k, out in enumerate(outs):
            try:
                handoff.validate_outbox(out)
            except CorruptHandoffError as exc:
                raise ShardCrash(
                    k, epoch, phase, "corrupt handoff: %s" % exc,
                    procs[k].exitcode,
                )

    def _phase_deadline(self) -> float:
        """How long a single phase reply may take before the shard is
        declared hung (explicit env override, else adaptive from the
        recent phase-wall window)."""
        if self.phase_timeout is not None:
            return self.phase_timeout
        if not self._phase_walls:
            return FIRST_PHASE_DEADLINE_S
        mean = sum(self._phase_walls) / len(self._phase_walls)
        return max(DEADLINE_FLOOR_S, DEADLINE_FACTOR * mean)

    def _recv(self, parent, proc, shard_id: int, epoch: int, phase: str):
        """One reply off a shard pipe, with crash + hang detection."""
        deadline = self._phase_deadline()
        t0 = _time.perf_counter()
        while True:
            try:
                ready = parent.poll(0.05)
            except (OSError, EOFError) as exc:  # pragma: no cover - race
                raise ShardCrash(
                    shard_id, epoch, phase, "pipe failed: %s" % exc,
                    proc.exitcode,
                )
            if ready:
                try:
                    status, payload = parent.recv()
                except (EOFError, OSError) as exc:
                    # Reap briefly so the crash event carries the real
                    # exitcode (e.g. the injected-crash status 86).
                    proc.join(timeout=1.0)
                    raise ShardCrash(
                        shard_id, epoch, phase, "pipe closed: %s" % exc,
                        proc.exitcode,
                    )
                if status != "ok":
                    raise RuntimeError(
                        "shard %d failed:\n%s" % (shard_id, payload)
                    )
                return payload
            if not proc.is_alive():
                # Drain a reply the shard may have flushed before dying.
                if parent.poll(0.2):
                    continue
                raise ShardCrash(
                    shard_id, epoch, phase, "process died", proc.exitcode
                )
            if _time.perf_counter() - t0 > deadline:
                raise ShardCrash(
                    shard_id,
                    epoch,
                    phase,
                    "phase deadline %.1fs exceeded" % deadline,
                    None,
                )

    def _load_recovery_point(
        self, ckpt_dir: Optional[pathlib.Path]
    ) -> Tuple[int, List[list], List[list], Optional[Dict[int, pathlib.Path]]]:
        """The barrier to roll back to: the manifest's, or scratch."""
        shards = self.shards
        scratch = (
            0,
            [[] for _ in range(shards)],
            [[] for _ in range(shards)],
            None,
        )
        if ckpt_dir is None:
            self._last_ckpt_epoch = -1
            return scratch
        try:
            manifest = load_manifest(ckpt_dir)
            if manifest is None:
                self._last_ckpt_epoch = -1
                return scratch
            if (
                manifest["shards"] != shards
                or manifest["seed"] != self.scenario.seed
            ):
                raise CheckpointError(
                    "manifest is for shards=%r seed=%r, not this run"
                    % (manifest["shards"], manifest["seed"])
                )
            pending = read_blob(ckpt_dir / manifest["pending"])
            migrations = [
                handoff.decode_records(b) for b in pending["migrations"]
            ]
            offers = [handoff.decode_records(b) for b in pending["offers"]]
            if len(migrations) != shards or len(offers) != shards:
                raise CheckpointError("pending inboxes have wrong shard count")
            restore = {
                k: ckpt_dir / manifest["files"][str(k)] for k in range(shards)
            }
        except (CheckpointError, CorruptHandoffError, KeyError, TypeError) as exc:
            append_ops_event("shard.ckpt_invalid", reason=str(exc))
            self._last_ckpt_epoch = -1
            return scratch
        self._last_ckpt_epoch = int(manifest["epoch"])
        return int(manifest["epoch"]), migrations, offers, restore

    @staticmethod
    def _kill_procs(procs: list, parents: list) -> None:
        """Recovery teardown: deliberately violent, children first so
        healthy shards die by signal instead of surfacing pipe errors."""
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - SIGTERM ignored
                proc.kill()
                proc.join(timeout=5.0)
        for parent in parents:
            try:
                parent.close()
            except OSError:  # pragma: no cover
                pass

    @staticmethod
    def _shutdown_procs(
        procs: list, parents: list, join_timeout_s: float = 30.0
    ) -> None:
        """Normal-path shutdown with escalation: join, then terminate,
        then kill — a shard that outlives the join is surfaced as a
        ``shard.shutdown_kill`` event instead of silently leaking."""
        for parent in parents:
            try:
                parent.close()
            except OSError:  # pragma: no cover
                pass
        for k, proc in enumerate(procs):
            proc.join(timeout=join_timeout_s)
            if not proc.is_alive():
                continue
            proc.terminate()
            proc.join(timeout=5.0)
            escalation = "terminate"
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5.0)
                escalation = "kill"
            append_ops_event(
                "shard.shutdown_kill",
                shard=k,
                escalation=escalation,
                exitcode=proc.exitcode,
            )


def run_sharded(
    scenario: ShardScenario,
    shards: Optional[int] = None,
    mode: Optional[str] = None,
    backend: Optional[str] = None,
    collect_states: bool = True,
    log_handoffs: bool = False,
    epoch_trace: Optional[bool] = None,
    faults: Optional[FaultPlan] = None,
    ckpt_every: Optional[int] = None,
) -> ShardRunResult:
    """One-call front door: resolve knobs, run, return the result."""
    return ShardedCitySim(
        scenario,
        shards=shards,
        mode=mode,
        backend=backend,
        collect_states=collect_states,
        log_handoffs=log_handoffs,
        epoch_trace=epoch_trace,
        faults=faults,
        ckpt_every=ckpt_every,
    ).run()
