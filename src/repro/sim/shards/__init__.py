"""District-sharded city simulation with deterministic handoff.

One :class:`~repro.sim.simulation.Simulation` owns one medium and tops
out around 400 stations; this package is the scale path.  The city is
partitioned into fixed *districts* (a grid over the square city, cut
along the same spatial-hash seam as the medium's index), districts are
grouped into *shards*, and each shard steps its owned walkers in a
struct-of-arrays batch — thousands of phones per scheduler callback.

Cross-shard effects (boundary-crossing walkers, frames delivered across
a district edge) are exchanged only at fixed epoch barriers, as records
sorted by the shard-count-invariant key ``(sim_time, district_id,
walker_id, sensor_id)``.  Every derived quantity is a pure function of
``(scenario, walker_id/sensor_id)`` via a stateless counter RNG, so the
shard count changes *where* a station is computed, never *what* — runs
are bit-identical at any ``--shards`` value, a property the golden
harness pins (see :mod:`repro.experiments.golden`).
"""

from repro.sim.shards.checkpoint import (
    CKPT_EVERY_ENV,
    CheckpointError,
    resolve_ckpt_every,
)
from repro.sim.shards.engine import (
    MAX_RECOVERIES_ENV,
    PHASE_TIMEOUT_ENV,
    SHARD_MODE_ENV,
    SHARDS_ENV,
    ShardCrash,
    ShardedCitySim,
    ShardRunResult,
    resolve_shard_mode,
    resolve_shards,
    run_sharded,
)
from repro.sim.shards.handoff import CorruptHandoffError
from repro.sim.shards.scenario import ShardScenario

__all__ = [
    "CKPT_EVERY_ENV",
    "CheckpointError",
    "CorruptHandoffError",
    "MAX_RECOVERIES_ENV",
    "PHASE_TIMEOUT_ENV",
    "SHARD_MODE_ENV",
    "SHARDS_ENV",
    "ShardCrash",
    "ShardScenario",
    "ShardedCitySim",
    "ShardRunResult",
    "resolve_ckpt_every",
    "resolve_shard_mode",
    "resolve_shards",
    "run_sharded",
]
