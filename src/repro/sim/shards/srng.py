"""Stateless counter-based RNG for the sharded city.

The ordinary :class:`~repro.util.rng.RngRegistry` streams are stateful:
the value of draw *n* depends on every draw before it, so two shards
could never agree on a walker's parameters without replaying the exact
global draw order.  The shard engine instead derives every random
quantity as a *pure function* ``u01(base, ident, counter)`` — a
splitmix64-style hash of (stream base, entity id, draw counter) mapped
to [0, 1).  Any shard can derive any walker's spawn time, path or PNL
without coordination, which is the foundation of the bit-identical
shard-count invariance.

The vector form (:func:`u01_vec`) exists for batch derivation and is
pinned by tests to produce exactly the same floats as the scalar form:
the hash pipeline is pure 64-bit integer arithmetic (numpy ``uint64``
wraps exactly like the masked Python ints) and the final mapping
``(h >> 11) * 2**-53`` is exact in both backends.
"""

from __future__ import annotations

from typing import Optional

from repro.util.rng import derive_seed

try:  # numpy is a hard dependency of the repo, but the pure-python
    import numpy as np  # fallback keeps this module importable anywhere.
except ImportError:  # pragma: no cover - numpy is baked into the image
    np = None  # type: ignore[assignment]

_MASK = (1 << 64) - 1
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB
_ID_SALT = 0x9E3779B97F4A7C15
_CTR_SALT = 0xD1B54A32D192ED03
_U53 = 2.0**-53


def stream_base(seed: int, purpose: str) -> int:
    """64-bit stream base for one (scenario seed, purpose) pair.

    Uses the same SHA-256 fan-out as the registry streams, so shard
    purposes can never collide with each other or with the event-driven
    simulator's named streams.
    """
    return derive_seed(seed, "shards:" + purpose)


def mix64(x: int) -> int:
    """The splitmix64 finaliser over a masked 64-bit integer."""
    x &= _MASK
    x = ((x ^ (x >> 30)) * _MIX1) & _MASK
    x = ((x ^ (x >> 27)) * _MIX2) & _MASK
    return x ^ (x >> 31)


def hash64(base: int, ident: int, counter: int) -> int:
    """Stateless 64-bit hash of (stream base, entity id, draw counter)."""
    key = (ident * _ID_SALT ^ counter * _CTR_SALT) & _MASK
    return mix64(base ^ mix64(key))


def u01(base: int, ident: int, counter: int) -> float:
    """Uniform [0, 1) draw as a pure function of its three arguments."""
    return (hash64(base, ident, counter) >> 11) * _U53


def u01_vec(base: int, idents, counter: int):
    """Vectorised :func:`u01` over an array of entity ids.

    Bit-identical to the scalar path (asserted by tests); requires
    numpy — callers on the pure-python backend loop over :func:`u01`.
    """
    if np is None:  # pragma: no cover - numpy is baked into the image
        raise RuntimeError("u01_vec requires numpy")
    ids = np.asarray(idents, dtype=np.uint64)
    key = ids * np.uint64(_ID_SALT) ^ np.uint64((counter * _CTR_SALT) & _MASK)
    key = _mix64_vec(key)
    h = _mix64_vec(np.uint64(base) ^ key)
    return (h >> np.uint64(11)).astype(np.float64) * _U53


def _mix64_vec(x):
    x = (x ^ (x >> np.uint64(30))) * np.uint64(_MIX1)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(_MIX2)
    return x ^ (x >> np.uint64(31))


def numpy_available() -> Optional[bool]:
    """Whether the vector backend can be used at all."""
    return np is not None
