"""One district shard: owned walkers, owned sensors, two-phase epochs.

A :class:`ShardRuntime` owns a contiguous stripe of district columns
(:meth:`~repro.geo.grid.DistrictPartition.stripe_bounds`).  Per epoch
``[t_e, t_{e+1})`` it runs two barrier-aligned phases, each a single
callback on its own :class:`~repro.sim.simulation.Simulation` scheduler
— one callback steps *every* owned walker via the struct-of-arrays
batch, which is what makes a shard cheap:

* **Phase A** (walker side, at ``t_e``): apply handed-in migrations,
  then handed-in offer records, both in canonical
  :func:`~repro.sim.shards.handoff.sort_key` order; emit this epoch's
  scans as probe records; compute end-of-epoch migrations.
* **Phase B** (sensor side, at ``t_{e+1}``): feed sorted feedback
  records to the owned :class:`~repro.sim.shards.attacker.LiteHunter`
  cores, then answer sorted probe records with offer records addressed
  to each walker's *next* owner.

Determinism: all record processing is sorted by shard-count-invariant
keys; all arithmetic is elementwise over values derived from the
stateless RNG; candidate-sensor pruning (the stripe inflated by
:func:`~repro.dot11.medium.reach_with_motion`, plus a per-epoch
adjacency refresh at the same inflated radius) is a strict superset of
every sensor a walker can reach this epoch, followed by exact distance
checks — so pruning changes work, never results.

Workload metrics live under ``shardsim.*`` and are **integer-valued
only** (float sums across different shard partitions are not
bit-associative; integer sums are exact); operational metrics —
anything legitimately shard-count-dependent, like migration counts —
live under ``shardops.*``, which golden canonicalisation strips.
"""

from __future__ import annotations

import math
import time as _time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.dot11.medium import reach_with_motion
from repro.obs.epochs import maybe_epoch_tracer
from repro.obs.registry import MetricsRegistry
from repro.sim.clock import epoch_schedule
from repro.sim.shards import handoff
from repro.sim.shards.checkpoint import (
    CKPT_SCHEMA,
    CheckpointError,
    read_blob,
    shard_ckpt_name,
    write_blob,
)
from repro.sim.shards.attacker import (
    BUCKET_FRESHNESS,
    BUCKET_POPULARITY,
    LiteHunter,
)
from repro.sim.shards.scenario import ShardScenario, derive_sensors, derive_walkers
from repro.sim.shards.soa import resolve_backend
from repro.sim.simulation import Simulation
from repro.util.rng import derive_seed

try:
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

#: Handoff-log cap — enough for every test workload, bounded for big runs.
HANDOFF_LOG_CAP = 50_000

Outbox = Dict[int, List[tuple]]

_SHARD_PREFIXES = ("shardsim.", "shardops.")


def _namespace_snapshot(snap: dict) -> dict:
    """Move every metric a shard's own :class:`Simulation` emitted
    (``span.sim.*`` health counters, ``sim.*`` gauges, ...) under the
    ``shardops.`` namespace.

    Those values scale with the shard count — each shard runs its own
    scheduler — so leaving them in the workload namespace would break
    shard-count invariance of the merged document.  Workload metrics
    are written as ``shardsim.*`` at the source and pass through.
    """
    for section in ("counters", "gauges", "histograms", "series"):
        values = snap.get(section)
        if not isinstance(values, dict):
            continue
        for key in [k for k in values if not k.startswith(_SHARD_PREFIXES)]:
            values["shardops." + key] = values.pop(key)
    return snap


class ShardRuntime:
    """The per-shard simulation driver (one per shard, any process)."""

    def __init__(
        self,
        scenario: ShardScenario,
        shard_id: int,
        shards: int,
        backend: Optional[str] = None,
        log_handoffs: bool = False,
        epoch_trace: Optional[bool] = None,
    ):
        if not 0 <= shard_id < shards:
            raise ValueError("shard_id %r out of range for %d shards" % (shard_id, shards))
        self.scenario = scenario
        self.shard_id = shard_id
        self.shards = shards
        self.backend = resolve_backend(backend)
        self.part = scenario.partition()
        self.barriers = epoch_schedule(scenario.duration, scenario.epoch_s)
        self.epochs = len(self.barriers) - 1
        self.metrics = MetricsRegistry()
        self.sim = Simulation(
            seed=derive_seed(scenario.seed, "shard:%d" % shard_id),
            trace=False,
            metrics=self.metrics,
        )
        self.walkers = derive_walkers(scenario, self.backend)
        self.sensors = derive_sensors(scenario)
        self.sensor_owner = {
            sid: self.part.shard_of_point(x, y, shards) for sid, x, y in self.sensors
        }
        self.hunters: Dict[int, LiteHunter] = {
            sid: LiteHunter(
                scenario.ssid_universe,
                scenario.pb_size,
                scenario.fb_size,
                scenario.burst_size,
            )
            for sid, _, _ in self.sensors
            if self.sensor_owner[sid] == shard_id
        }
        # Candidate sensors: everything a walker owned by this stripe
        # could reach during one epoch, walker motion included.
        margin = reach_with_motion(
            scenario.reach_m, scenario.speed_max_mps, scenario.epoch_s
        )
        x_lo, x_hi = self.part.stripe_bounds(shard_id, shards)
        self.cand = [
            (sid, x, y)
            for sid, x, y in self.sensors
            if x_lo - margin <= x <= x_hi + margin
        ]
        if self.backend == "numpy":
            self._cand_ids = np.array([c[0] for c in self.cand], dtype=np.int64)
            self._cand_x = np.array([c[1] for c in self.cand], dtype=np.float64)
            self._cand_y = np.array([c[2] for c in self.cand], dtype=np.float64)
        self._reach2 = scenario.reach_m * scenario.reach_m
        self._adj_r2 = margin * margin
        self.owned: List[int] = self._initial_owned()
        self.hits = 0
        self.epochs_done = 0
        self._log: Optional[List[tuple]] = [] if log_handoffs else None
        # Per-epoch barrier tracing (REPRO_EPOCH_TRACE): observe-only,
        # so digests are bit-identical with it on or off.
        self.tracer = maybe_epoch_tracer(
            shard_id, shards, self.epochs, enabled=epoch_trace
        )
        self._phase_end_pc: Optional[float] = None
        self.metrics.gauge_set("shardops.owned_initial", len(self.owned), shard=shard_id)
        self.metrics.gauge_set(
            "shardops.sensors_owned", len(self.hunters), shard=shard_id
        )
        self.metrics.gauge_set(
            "shardops.candidate_sensors", len(self.cand), shard=shard_id
        )

    # -- ownership --------------------------------------------------------

    def _initial_owned(self) -> List[int]:
        t0 = self.barriers[0]
        if self.backend == "numpy":
            idx = np.arange(self.walkers.n, dtype=np.int64)
            xs, ys = self.walkers.positions_at(t0, idx)
            owner = self._owner_shards_vec(xs)
            return [int(i) for i in idx[owner == self.shard_id]]
        return [
            i
            for i in range(self.walkers.n)
            if self.part.shard_of_point(*self.walkers.position_of(i, t0), self.shards)
            == self.shard_id
        ]

    def _owner_shards_vec(self, xs):
        """Vector form of DistrictPartition.shard_of_point's x logic."""
        ix = np.clip(
            (xs // self.part.district_m).astype(np.int64), 0, self.part.nx - 1
        )
        return np.minimum(self.shards - 1, ix * self.shards // self.part.nx)

    def walker_owner_at(self, t: float, walker: int) -> int:
        """Which shard owns ``walker`` at barrier time ``t`` — a pure
        function of static state, so every shard can route to it."""
        x, y = self.walkers.position_of(walker, t)
        return self.part.shard_of_point(x, y, self.shards)

    # -- logging ----------------------------------------------------------

    def _log_applied(self, record: tuple) -> None:
        if self._log is not None and len(self._log) < HANDOFF_LOG_CAP:
            self._log.append(handoff.applied_key(record))

    # -- phase A ----------------------------------------------------------

    def run_phase_a(
        self,
        epoch: int,
        migrations_in: List[tuple],
        offers_in: List[tuple],
        last: bool = False,
    ) -> Outbox:
        """Drive phase A of ``epoch`` through the scheduler; returns the
        outboxes (dest shard -> records) for the X1 exchange."""
        pc0 = _time.perf_counter()
        t_e = self.barriers[epoch]
        out: Outbox = {}
        self.sim.at_time(t_e, self._phase_a, epoch, migrations_in, offers_in, out, last)
        self.sim.run(t_e)
        if self.tracer is not None:
            pc1 = _time.perf_counter()
            self.tracer.record(
                epoch,
                "a",
                wall_s=pc1 - pc0,
                barrier_s=(
                    pc0 - self._phase_end_pc
                    if self._phase_end_pc is not None
                    else 0.0
                ),
                records_in={"m": len(migrations_in), "o": len(offers_in)},
                outboxes=out,
            )
            self._phase_end_pc = pc1
        return out

    def _phase_a(
        self,
        epoch: int,
        migrations_in: List[tuple],
        offers_in: List[tuple],
        out: Outbox,
        last: bool,
    ) -> None:
        t_e = self.barriers[epoch]
        t_next = self.barriers[epoch + 1]
        if migrations_in:
            arrived = []
            for rec in handoff.sorted_records(migrations_in):
                self.walkers.apply_row(rec[3], rec[5])
                arrived.append(rec[3])
                self._log_applied(rec)
            self.owned.extend(arrived)
            self.owned.sort()
            self.metrics.inc("shardops.migrations_in", len(arrived))
        for rec in handoff.sorted_records(offers_in):
            self._apply_offer(rec, out)
        self._step_epoch(t_e, t_next, out)
        if not last:
            self._emit_migrations(t_next, out)

    def _apply_offer(self, rec: tuple, out: Outbox) -> None:
        _, t, district, wid, sid, burst = rec
        self._log_applied(rec)
        self.walkers.offers[wid] += 1
        if self.walkers.connected[wid]:
            self.metrics.inc("shardsim.offers_stale")
            return
        chosen = None
        pnl = self.walkers.pnl_open[wid]
        for ssid in burst:
            if ssid in pnl:
                chosen = ssid
                break
        if chosen is None:
            return
        # Same first-matching-open-entry policy as
        # repro.devices.phone.pick_join_target, over the sorted record
        # order instead of frame-arrival order.
        self.walkers.connect(wid, t, sid, chosen)
        self.hits += 1
        self.metrics.inc("shardsim.hits")
        self.metrics.inc("shardsim.hits_by_district", district=district)
        out.setdefault(self.sensor_owner[sid], []).append(
            handoff.feedback(t, district, wid, sid, chosen)
        )

    def _step_epoch(self, t_e: float, t_next: float, out: Outbox) -> None:
        own = self.owned
        if not own:
            return
        batch = self.walkers
        hi_cap = min(t_next, self.scenario.duration)
        if self.backend == "numpy":
            own_arr = np.asarray(own, dtype=np.int64)
            wx, wy = batch.positions_at(t_e, own_arr)
            if len(self.cand):
                # The per-epoch adjacency refresh: one dense in-range
                # matrix against this stripe's candidate sensors — the
                # O(owned x candidates) term that shrinks with shard
                # count and pays for the whole handoff protocol.
                dx = wx[:, None] - self._cand_x[None, :]
                dy = wy[:, None] - self._cand_y[None, :]
                adj = (dx * dx + dy * dy) <= self._adj_r2
                indptr = np.concatenate(
                    ([0], np.cumsum(adj.sum(axis=1, dtype=np.int64)))
                )
                cols = np.nonzero(adj)[1]
            else:
                indptr = np.zeros(len(own) + 1, dtype=np.int64)
                cols = np.zeros(0, dtype=np.int64)
            start = batch.t0[own_arr] + batch.phase[own_arr]
            pero = batch.period[own_arr]
            hi = np.minimum(hi_cap, batch.t_exit[own_arr])
            k_lo = np.maximum(0.0, np.ceil((t_e - start) / pero))
            k_hi = np.maximum(k_lo, np.ceil((hi - start) / pero))
            eligible = ~batch.connected[own_arr] & (k_hi > k_lo)
            for r in np.nonzero(eligible)[0]:
                cand = [
                    (
                        int(self._cand_ids[c]),
                        float(self._cand_x[c]),
                        float(self._cand_y[c]),
                    )
                    for c in cols[indptr[r] : indptr[r + 1]]
                ]
                self._scan_walker(
                    int(own_arr[r]),
                    float(start[r]),
                    float(pero[r]),
                    int(k_lo[r]),
                    int(k_hi[r]),
                    cand,
                    out,
                )
        else:
            for i in own:
                if batch.connected[i]:
                    continue
                start = batch.t0[i] + batch.phase[i]
                pero = batch.period[i]
                hi = min(hi_cap, batch.t_exit[i])
                k_lo = max(0.0, math.ceil((t_e - start) / pero))
                k_hi = max(k_lo, math.ceil((hi - start) / pero))
                if k_hi > k_lo:
                    self._scan_walker(
                        i, start, pero, int(k_lo), int(k_hi), self.cand, out
                    )

    def _scan_walker(
        self,
        i: int,
        start: float,
        period: float,
        k_lo: int,
        k_hi: int,
        cand: List[Tuple[int, float, float]],
        out: Outbox,
    ) -> None:
        batch = self.walkers
        for k in range(k_lo, k_hi):
            t_s = start + k * period
            x, y = batch.position_of(i, t_s)
            batch.scans[i] += 1
            self.metrics.inc("shardsim.scans")
            emitted = 0
            district = -1
            for sid, sx, sy in cand:
                dx = sx - x
                dy = sy - y
                if dx * dx + dy * dy <= self._reach2:
                    if district < 0:
                        district = self.part.district_of(x, y)
                    out.setdefault(self.sensor_owner[sid], []).append(
                        handoff.probe(t_s, district, i, sid)
                    )
                    emitted += 1
            if emitted:
                batch.probes[i] += emitted
                self.metrics.inc("shardsim.probes", emitted)

    def _emit_migrations(self, t_next: float, out: Outbox) -> None:
        own = self.owned
        if not own:
            return
        batch = self.walkers
        if self.backend == "numpy":
            own_arr = np.asarray(own, dtype=np.int64)
            xs, _ = batch.positions_at(t_next, own_arr)
            owner = self._owner_shards_vec(xs)
            moving = np.nonzero(owner != self.shard_id)[0]
            if not len(moving):
                return
            movers = [(int(own_arr[r]), int(owner[r])) for r in moving]
        else:
            movers = []
            for i in own:
                dest = self.walker_owner_at(t_next, i)
                if dest != self.shard_id:
                    movers.append((i, dest))
            if not movers:
                return
        moving_ids = {i for i, _ in movers}
        for i, dest in movers:
            x, y = batch.position_of(i, t_next)
            out.setdefault(dest, []).append(
                handoff.migrate(
                    t_next, self.part.district_of(x, y), i, batch.dynamic_row(i)
                )
            )
        self.owned = [i for i in own if i not in moving_ids]
        self.metrics.inc("shardops.migrations_out", len(movers))

    # -- phase B ----------------------------------------------------------

    def run_phase_b(
        self, epoch: int, feedbacks_in: List[tuple], probes_in: List[tuple]
    ) -> Outbox:
        """Drive phase B of ``epoch``; returns offer outboxes for X2."""
        pc0 = _time.perf_counter()
        t_next = self.barriers[epoch + 1]
        out: Outbox = {}
        self.sim.at_time(t_next, self._phase_b, epoch, feedbacks_in, probes_in, out)
        self.sim.run(t_next)
        if self.tracer is not None:
            pc1 = _time.perf_counter()
            self.tracer.record(
                epoch,
                "b",
                wall_s=pc1 - pc0,
                barrier_s=(
                    pc0 - self._phase_end_pc
                    if self._phase_end_pc is not None
                    else 0.0
                ),
                records_in={"f": len(feedbacks_in), "p": len(probes_in)},
                outboxes=out,
            )
            self._phase_end_pc = pc1
        self.epochs_done = epoch + 1
        return out

    def _phase_b(
        self,
        epoch: int,
        feedbacks_in: List[tuple],
        probes_in: List[tuple],
        out: Outbox,
    ) -> None:
        t_deliver = self.barriers[epoch + 1]
        for rec in handoff.sorted_records(feedbacks_in):
            _, t, district, wid, sid, ssid = rec
            bucket = self.hunters[sid].feedback(wid, ssid)
            self._log_applied(rec)
            self.metrics.inc("shardsim.feedbacks")
            if bucket == BUCKET_POPULARITY:
                self.metrics.inc("shardsim.hits_popularity")
            elif bucket == BUCKET_FRESHNESS:
                self.metrics.inc("shardsim.hits_freshness")
        for rec in handoff.sorted_records(probes_in):
            _, t, district, wid, sid = rec
            burst = self.hunters[sid].burst_for(wid)
            self._log_applied(rec)
            if not burst:
                self.metrics.inc("shardsim.bursts_exhausted")
                continue
            self.metrics.inc("shardsim.offers")
            out.setdefault(self.walker_owner_at(t_deliver, wid), []).append(
                handoff.offer(t, district, wid, sid, burst)
            )

    # -- finalisation -----------------------------------------------------

    def finalize(self, collect_states: bool = True) -> dict:
        """Close out the run: totals, gauges, and the picklable result."""
        batch = self.walkers
        probed = sum(1 for i in self.owned if batch.probes[i] > 0)
        connected = sum(1 for i in self.owned if batch.connected[i])
        self.metrics.inc("shardsim.walkers_probed", probed)
        self.metrics.inc("shardsim.walkers_connected", connected)
        self.metrics.gauge_set("shardsim.stations", self.scenario.stations)
        self.metrics.gauge_set("shardsim.sensors", self.scenario.sensors)
        self.metrics.gauge_set("shardsim.districts", self.part.districts)
        self.metrics.gauge_set("shardsim.epochs", self.epochs)
        self.metrics.gauge_set("shardops.owned_final", len(self.owned), shard=self.shard_id)
        result = {
            "shard": self.shard_id,
            "metrics": _namespace_snapshot(self.metrics.to_dict()),
            "summary": {"probed": probed, "connected": connected},
            "hits": self.hits,
            "walker_rows": None,
            "hunter_states": None,
            "handoff_log": list(self._log) if self._log is not None else None,
        }
        if collect_states:
            result["walker_rows"] = {
                int(i): batch.dynamic_row(i) for i in self.owned
            }
            result["hunter_states"] = {
                sid: hunter.state() for sid, hunter in sorted(self.hunters.items())
            }
        return result

    # -- checkpointing (PR 8) ---------------------------------------------

    def checkpoint_state(self) -> dict:
        """Everything mutable, as plain picklable values.

        The static majority of a shard — walker trajectories, sensor
        layout, the partition — is a pure function of the scenario and
        is *re-derived* on restore, so a checkpoint carries only the
        dynamic rows of owned walkers, hunter buffers, counters and the
        metrics snapshot.  Non-owned rows need no saving: a row only
        matters once its walker migrates in, and the migration record
        itself carries the authoritative row.
        """
        batch = self.walkers
        return {
            "schema": CKPT_SCHEMA,
            "shard": self.shard_id,
            "shards": self.shards,
            "seed": self.scenario.seed,
            "epoch": self.epochs_done,
            "hits": self.hits,
            "owned": list(self.owned),
            "rows": {int(i): batch.dynamic_row(i) for i in self.owned},
            "hunters": {
                sid: hunter.state()
                for sid, hunter in sorted(self.hunters.items())
            },
            "metrics": self.metrics.to_dict(),
            "log": list(self._log) if self._log is not None else None,
        }

    def restore_state(self, payload: dict) -> None:
        """Roll this (freshly constructed) runtime back to a barrier."""
        if not isinstance(payload, dict) or payload.get("schema") != CKPT_SCHEMA:
            raise CheckpointError("bad shard checkpoint schema")
        for key, want in (
            ("shard", self.shard_id),
            ("shards", self.shards),
            ("seed", self.scenario.seed),
        ):
            if payload.get(key) != want:
                raise CheckpointError(
                    "checkpoint %s=%r does not match runtime %s=%r"
                    % (key, payload.get(key), key, want)
                )
        for i, row in payload["rows"].items():
            self.walkers.apply_row(int(i), tuple(row))
        self.owned = sorted(int(i) for i in payload["owned"])
        sc = self.scenario
        restored_hunters = {}
        for sid, state in payload["hunters"].items():
            if sid not in self.hunters:
                raise CheckpointError(
                    "checkpoint hunter %r not owned by shard %d"
                    % (sid, self.shard_id)
                )
            restored_hunters[sid] = LiteHunter.restore(
                sc.ssid_universe, sc.pb_size, sc.fb_size, sc.burst_size, state
            )
        self.hunters.update(restored_hunters)
        self.metrics.load_snapshot(payload["metrics"])
        self.hits = int(payload["hits"])
        self.epochs_done = int(payload["epoch"])
        if self._log is not None and payload.get("log") is not None:
            self._log = list(payload["log"])
        self._phase_end_pc = None

    def restore_file(self, path: Path) -> None:
        """Restore from a :meth:`write_checkpoint` blob (CRC-validated)."""
        self.restore_state(read_blob(Path(path)))

    def write_checkpoint(self, epoch: int, directory: Path) -> dict:
        """Serialise this shard's barrier state; returns the write record.

        Observe-only by construction: all accounting lands under
        ``shardops.*`` (stripped from digests) and the state snapshot is
        taken *before* the accounting, so a checkpointed run and a plain
        run step through identical ``shardsim.*`` space.
        """
        pc0 = _time.perf_counter()
        path = Path(directory) / shard_ckpt_name(self.shard_id, epoch)
        nbytes = write_blob(path, self.checkpoint_state())
        wall_s = _time.perf_counter() - pc0
        self.metrics.inc("shardops.ckpt.writes")
        self.metrics.inc("shardops.ckpt.bytes", nbytes)
        self.metrics.timer_add("shardops.ckpt_wall", wall_s)
        if self.tracer is not None:
            self.tracer.record(
                epoch,
                "c",
                wall_s=wall_s,
                barrier_s=0.0,
                records_in={},
                outboxes={},
                extra={"bytes": nbytes},
            )
        return {
            "shard": self.shard_id,
            "epoch": epoch,
            "path": str(path),
            "bytes": nbytes,
            "wall_s": wall_s,
        }
