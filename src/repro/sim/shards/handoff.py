"""The deterministic cross-shard handoff protocol's record format.

All cross-shard effects travel as plain tuples exchanged at epoch
barriers::

    (kind, time, district, walker, sensor, payload)

* ``"m"`` migrate — a walker's ownership moves; payload is its
  :data:`~repro.sim.shards.soa.DynamicRow`.
* ``"p"`` probe — a walker's scan reached a sensor; no payload.
* ``"o"`` offer — a sensor's SSID burst answering a probe; payload is
  the burst tuple.
* ``"f"`` feedback — a walker joined an offered SSID; payload is the
  winning SSID.

Every field in the sort key is a *workload* coordinate — sim time, the
fixed district grid, walker id, sensor id — never a shard id or
arrival order, so the processing order of any record batch is
identical at every shard count.  That invariance is the whole protocol:
receivers sort, then apply; ties are impossible because two records of
the same kind at the same time differ in walker or sensor id.

Robustness (PR 8): records cross process boundaries and survive in
checkpoint files, so the module also carries the *readers* — schema
validation (:func:`validate_record` / :func:`validate_batch`, raising
:class:`CorruptHandoffError` on torn, mangled or duplicated records)
and a CRC-framed byte codec (:func:`encode_records` /
:func:`decode_records`) used by the epoch-barrier checkpoints.  A
corrupt batch is *detected*, never applied: the engine turns the error
into a shard crash and recovers from the last consistent barrier.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from typing import Iterable, List, Tuple

MIGRATE = "m"
PROBE = "p"
OFFER = "o"
FEEDBACK = "f"

#: Sensor field of records that have no sensor (migrations).
NO_SENSOR = -1

Record = Tuple  # (kind, time, district, walker, sensor, *payload)


def migrate(time: float, district: int, walker: int, row) -> Record:
    """Ownership transfer carrying the walker's dynamic state."""
    return (MIGRATE, time, district, walker, NO_SENSOR, row)


def probe(time: float, district: int, walker: int, sensor: int) -> Record:
    """A walker's active scan heard by ``sensor``."""
    return (PROBE, time, district, walker, sensor)


def offer(
    time: float, district: int, walker: int, sensor: int, burst: Tuple[int, ...]
) -> Record:
    """A sensor's SSID burst answering a probe."""
    return (OFFER, time, district, walker, sensor, burst)


def feedback(time: float, district: int, walker: int, sensor: int, ssid: int) -> Record:
    """A walker joined ``ssid`` offered by ``sensor``."""
    return (FEEDBACK, time, district, walker, sensor, ssid)


def sort_key(record: Record) -> Tuple[float, int, int, int]:
    """(time, district, walker, sensor) — strictly shard-count-invariant."""
    return (record[1], record[2], record[3], record[4])


def sorted_records(records: Iterable[Record]) -> List[Record]:
    """Records in canonical processing order."""
    return sorted(records, key=sort_key)


def applied_key(record: Record) -> Tuple[str, float, int, int, int]:
    """Compact identity of an applied record, for the handoff log."""
    return (record[0], record[1], record[2], record[3], record[4])


# -- validation --------------------------------------------------------------


class CorruptHandoffError(ValueError):
    """A handoff record or batch failed schema/CRC validation."""


#: Total tuple arity per record kind (header fields + payload).
_ARITY = {MIGRATE: 6, PROBE: 5, OFFER: 6, FEEDBACK: 6}

#: Length of a migrate payload (:data:`~repro.sim.shards.soa.DynamicRow`).
_ROW_LEN = 7


def _is_int(value) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def validate_record(record) -> Record:
    """Schema-check one record; raises :class:`CorruptHandoffError`.

    Checks the kind tag, the tuple arity, the header field types and
    the payload shape — everything a truncated or bit-mangled record
    trips over.  Value-level corruption *within* a well-typed field is
    out of scope here (checkpoint files add a CRC for that)."""
    if not isinstance(record, tuple):
        raise CorruptHandoffError(
            "record is %s, not a tuple: %r" % (type(record).__name__, record)
        )
    if not record or record[0] not in _ARITY:
        raise CorruptHandoffError("unknown record kind: %r" % (record[:1],))
    kind = record[0]
    if len(record) != _ARITY[kind]:
        raise CorruptHandoffError(
            "truncated %r record: %d fields, expected %d: %r"
            % (kind, len(record), _ARITY[kind], record)
        )
    if not isinstance(record[1], (int, float)) or isinstance(record[1], bool):
        raise CorruptHandoffError("non-numeric time field: %r" % (record,))
    for idx, name in ((2, "district"), (3, "walker"), (4, "sensor")):
        if not _is_int(record[idx]):
            raise CorruptHandoffError(
                "non-integer %s field: %r" % (name, record)
            )
    if kind == MIGRATE:
        row = record[5]
        if not isinstance(row, tuple) or len(row) != _ROW_LEN:
            raise CorruptHandoffError("bad migrate payload row: %r" % (record,))
    elif kind == OFFER:
        burst = record[5]
        if not isinstance(burst, tuple) or not all(_is_int(s) for s in burst):
            raise CorruptHandoffError("bad offer burst: %r" % (record,))
    elif kind == FEEDBACK:
        if not _is_int(record[5]):
            raise CorruptHandoffError("bad feedback ssid: %r" % (record,))
    return record


def validate_batch(records: Iterable[Record]) -> List[Record]:
    """Validate every record of a batch and reject duplicates.

    Two records sharing an :func:`applied_key` cannot occur in a
    healthy run (each record is emitted exactly once by exactly one
    owner), so a duplicate means a replayed or corrupted exchange."""
    seen = set()
    out: List[Record] = []
    for record in records:
        validate_record(record)
        key = applied_key(record)
        if key in seen:
            raise CorruptHandoffError("duplicate record: %r" % (record,))
        seen.add(key)
        out.append(record)
    return out


def validate_outbox(outbox) -> None:
    """Validate one phase outbox (dest shard -> record list)."""
    for dest, records in outbox.items():
        if not _is_int(dest) or dest < 0:
            raise CorruptHandoffError("bad destination shard: %r" % (dest,))
        validate_batch(records)


# -- byte codec (checkpoint files) -------------------------------------------

_CODEC_MAGIC = b"RHO1"


def encode_records(records: Iterable[Record]) -> bytes:
    """Frame a record batch as ``magic + crc32(body) + pickle(body)``.

    Used for the pending-inbox section of epoch-barrier checkpoints;
    the CRC turns torn or bit-flipped files into clean
    :class:`CorruptHandoffError` instead of silently wrong replays."""
    body = pickle.dumps(list(records), protocol=4)
    return _CODEC_MAGIC + struct.pack(">I", zlib.crc32(body) & 0xFFFFFFFF) + body


def decode_records(blob: bytes) -> List[Record]:
    """Inverse of :func:`encode_records`, fully validated."""
    if not isinstance(blob, (bytes, bytearray)) or len(blob) < 8:
        raise CorruptHandoffError(
            "handoff blob too short: %d bytes" % len(blob or b"")
        )
    if bytes(blob[:4]) != _CODEC_MAGIC:
        raise CorruptHandoffError("bad handoff blob magic: %r" % (blob[:4],))
    (crc,) = struct.unpack(">I", bytes(blob[4:8]))
    body = bytes(blob[8:])
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise CorruptHandoffError("handoff blob CRC mismatch")
    try:
        records = pickle.loads(body)
    except Exception as exc:  # unpickling garbage raises many types
        raise CorruptHandoffError("undecodable handoff blob: %s" % exc) from exc
    if not isinstance(records, list):
        raise CorruptHandoffError(
            "handoff blob decodes to %s, not a list" % type(records).__name__
        )
    return validate_batch(records)
