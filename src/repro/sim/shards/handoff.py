"""The deterministic cross-shard handoff protocol's record format.

All cross-shard effects travel as plain tuples exchanged at epoch
barriers::

    (kind, time, district, walker, sensor, payload)

* ``"m"`` migrate — a walker's ownership moves; payload is its
  :data:`~repro.sim.shards.soa.DynamicRow`.
* ``"p"`` probe — a walker's scan reached a sensor; no payload.
* ``"o"`` offer — a sensor's SSID burst answering a probe; payload is
  the burst tuple.
* ``"f"`` feedback — a walker joined an offered SSID; payload is the
  winning SSID.

Every field in the sort key is a *workload* coordinate — sim time, the
fixed district grid, walker id, sensor id — never a shard id or
arrival order, so the processing order of any record batch is
identical at every shard count.  That invariance is the whole protocol:
receivers sort, then apply; ties are impossible because two records of
the same kind at the same time differ in walker or sensor id.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

MIGRATE = "m"
PROBE = "p"
OFFER = "o"
FEEDBACK = "f"

#: Sensor field of records that have no sensor (migrations).
NO_SENSOR = -1

Record = Tuple  # (kind, time, district, walker, sensor, *payload)


def migrate(time: float, district: int, walker: int, row) -> Record:
    """Ownership transfer carrying the walker's dynamic state."""
    return (MIGRATE, time, district, walker, NO_SENSOR, row)


def probe(time: float, district: int, walker: int, sensor: int) -> Record:
    """A walker's active scan heard by ``sensor``."""
    return (PROBE, time, district, walker, sensor)


def offer(
    time: float, district: int, walker: int, sensor: int, burst: Tuple[int, ...]
) -> Record:
    """A sensor's SSID burst answering a probe."""
    return (OFFER, time, district, walker, sensor, burst)


def feedback(time: float, district: int, walker: int, sensor: int, ssid: int) -> Record:
    """A walker joined ``ssid`` offered by ``sensor``."""
    return (FEEDBACK, time, district, walker, sensor, ssid)


def sort_key(record: Record) -> Tuple[float, int, int, int]:
    """(time, district, walker, sensor) — strictly shard-count-invariant."""
    return (record[1], record[2], record[3], record[4])


def sorted_records(records: Iterable[Record]) -> List[Record]:
    """Records in canonical processing order."""
    return sorted(records, key=sort_key)


def applied_key(record: Record) -> Tuple[str, float, int, int, int]:
    """Compact identity of an applied record, for the handoff log."""
    return (record[0], record[1], record[2], record[3], record[4])
