"""Struct-of-arrays walker state for one shard.

The event-driven simulator keeps one :class:`~repro.devices.phone.Phone`
object per station; at district scale that representation is the
bottleneck (object headers, per-phone scheduler events, per-call
position math).  :class:`WalkerBatch` flips the layout: every per-walker
quantity is one array column, so a shard steps thousands of walkers per
scheduler callback with vector arithmetic.

Two backends share the exact same semantics:

* ``numpy`` — the default whenever numpy imports; column math runs as
  float64 array expressions.
* ``python`` — stdlib-only fallback (plain lists + the scalar helpers
  in :mod:`repro.mobility.batch`).

Only elementwise float operations are used, so the two backends — and
any shard partition of the population — produce bit-identical results;
``REPRO_SHARDS_BACKEND`` forces a backend and the differential tests
pin the equivalence.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

from repro.mobility.batch import position_scalar, positions_vec

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy is baked into the image
    np = None  # type: ignore[assignment]

BACKEND_ENV = "REPRO_SHARDS_BACKEND"
BACKENDS = ("numpy", "python")

NO_SENSOR = -1
NO_SSID = -1

#: One walker's transferable dynamic state, as plain picklable scalars:
#: (connected, conn_time, conn_sensor, conn_ssid, scans, probes, offers).
DynamicRow = Tuple[bool, float, int, int, int, int, int]


def resolve_backend(backend: Optional[str] = None) -> str:
    """Batch backend: explicit argument, else ``REPRO_SHARDS_BACKEND``,
    else ``numpy`` when importable (``python`` otherwise)."""
    if backend is None:
        backend = os.environ.get(BACKEND_ENV, "").strip().lower()
    if not backend or backend == "auto":
        return "numpy" if np is not None else "python"
    if backend not in BACKENDS:
        raise ValueError(
            "unknown shards backend %r (have: %s)" % (backend, ", ".join(BACKENDS))
        )
    if backend == "numpy" and np is None:
        raise RuntimeError("numpy backend requested but numpy is unavailable")
    return backend


class WalkerBatch:
    """Column store of every walker's static parameters + dynamic state.

    Static columns are derived for the *full* population in every shard
    (they are pure functions of the scenario, see
    :mod:`repro.sim.shards.srng`), so any shard can route records for
    any walker.  Dynamic columns are only authoritative for the rows a
    shard currently *owns*; ownership transfers carry
    :data:`DynamicRow` tuples through the handoff protocol.
    """

    __slots__ = (
        "backend",
        "n",
        "t0",
        "t_exit",
        "x0",
        "y0",
        "vx",
        "vy",
        "period",
        "phase",
        "pnl_open",
        "connected",
        "conn_time",
        "conn_sensor",
        "conn_ssid",
        "scans",
        "probes",
        "offers",
    )

    def __init__(
        self,
        backend: str,
        t0,
        t_exit,
        x0,
        y0,
        vx,
        vy,
        period,
        phase,
        pnl_open: Tuple[frozenset, ...],
    ):
        self.backend = backend
        self.n = len(pnl_open)
        self.t0 = t0
        self.t_exit = t_exit
        self.x0 = x0
        self.y0 = y0
        self.vx = vx
        self.vy = vy
        self.period = period
        self.phase = phase
        self.pnl_open = pnl_open
        if backend == "numpy":
            self.connected = np.zeros(self.n, dtype=bool)
            self.conn_time = np.full(self.n, -1.0, dtype=np.float64)
            self.conn_sensor = np.full(self.n, NO_SENSOR, dtype=np.int64)
            self.conn_ssid = np.full(self.n, NO_SSID, dtype=np.int64)
            self.scans = np.zeros(self.n, dtype=np.int64)
            self.probes = np.zeros(self.n, dtype=np.int64)
            self.offers = np.zeros(self.n, dtype=np.int64)
        else:
            self.connected = [False] * self.n
            self.conn_time = [-1.0] * self.n
            self.conn_sensor = [NO_SENSOR] * self.n
            self.conn_ssid = [NO_SSID] * self.n
            self.scans = [0] * self.n
            self.probes = [0] * self.n
            self.offers = [0] * self.n

    # -- kinematics -------------------------------------------------------

    def positions_at(self, t: float, idx: Sequence[int]):
        """Positions of the walkers in ``idx`` at time ``t`` (two columns)."""
        if self.backend == "numpy":
            sel = np.asarray(idx, dtype=np.int64)
            return positions_vec(
                t,
                self.t0[sel],
                self.t_exit[sel],
                self.x0[sel],
                self.y0[sel],
                self.vx[sel],
                self.vy[sel],
            )
        xs: List[float] = []
        ys: List[float] = []
        for i in idx:
            x, y = self.position_of(i, t)
            xs.append(x)
            ys.append(y)
        return xs, ys

    def position_of(self, i: int, t: float) -> Tuple[float, float]:
        """Scalar position of walker ``i`` at time ``t`` (both backends)."""
        return position_scalar(
            t,
            float(self.t0[i]),
            float(self.t_exit[i]),
            float(self.x0[i]),
            float(self.y0[i]),
            float(self.vx[i]),
            float(self.vy[i]),
        )

    # -- dynamic-state transfer ------------------------------------------

    def dynamic_row(self, i: int) -> DynamicRow:
        """Walker ``i``'s dynamic state as plain picklable scalars."""
        return (
            bool(self.connected[i]),
            float(self.conn_time[i]),
            int(self.conn_sensor[i]),
            int(self.conn_ssid[i]),
            int(self.scans[i]),
            int(self.probes[i]),
            int(self.offers[i]),
        )

    def apply_row(self, i: int, row: DynamicRow) -> None:
        """Install a handed-off dynamic row for newly-owned walker ``i``."""
        (
            self.connected[i],
            self.conn_time[i],
            self.conn_sensor[i],
            self.conn_ssid[i],
            self.scans[i],
            self.probes[i],
            self.offers[i],
        ) = row

    def connect(self, i: int, t: float, sensor: int, ssid: int) -> None:
        """Mark walker ``i`` lured by ``sensor`` on ``ssid`` at time ``t``."""
        self.connected[i] = True
        self.conn_time[i] = t
        self.conn_sensor[i] = sensor
        self.conn_ssid[i] = ssid
