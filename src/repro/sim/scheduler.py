"""Binary-heap event scheduler with lazy cancellation."""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Any, Callable, List, Optional

from repro.sim.clock import Clock
from repro.sim.events import EventHandle


class Scheduler:
    """Priority queue of timed callbacks driving a :class:`Clock`.

    The scheduler is the only component allowed to advance the clock; it
    does so just before invoking each callback, so a callback always
    observes ``clock.now`` equal to its own fire time.

    When ``profiler`` is set (a :class:`~repro.obs.profiler.SimProfiler`),
    every callback is timed and credited by qualified name; the attribute
    stays ``None`` by default so the hot loop pays a single falsy check.
    """

    def __init__(self, clock: Optional[Clock] = None):
        self.clock = clock if clock is not None else Clock()
        self._heap: List[EventHandle] = []
        self._seq = 0
        self._fired = 0
        self.profiler = None

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("cannot schedule into the past: delay=%r" % delay)
        return self.schedule_at(self.clock.now + delay, fn, *args)

    def schedule_at(
        self, time: float, fn: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Schedule ``fn(*args)`` to run at absolute time ``time``."""
        if time < self.clock.now:
            raise ValueError(
                "cannot schedule into the past: now=%r time=%r" % (self.clock.now, time)
            )
        handle = EventHandle(time, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, handle)
        return handle

    @property
    def pending(self) -> int:
        """Number of live events still queued (excludes cancelled)."""
        return sum(1 for e in self._heap if e.alive)

    @property
    def fired(self) -> int:
        """Total number of events that have been executed."""
        return self._fired

    def peek_time(self) -> Optional[float]:
        """Fire time of the next live event, or None if the queue is empty."""
        self._drop_dead()
        return self._heap[0].time if self._heap else None

    def _drop_dead(self) -> None:
        while self._heap and not self._heap[0].alive:
            heapq.heappop(self._heap)

    def step(self) -> bool:
        """Execute the next live event.  Returns False if none remain."""
        self._drop_dead()
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        profiler = self.profiler
        if profiler is None:
            self.clock.advance_to(event.time)
            event._mark_fired()
            self._fired += 1
            event.fn(*event.args)
            return True
        advance = event.time - self.clock.now
        self.clock.advance_to(event.time)
        event._mark_fired()
        self._fired += 1
        fn = event.fn
        start = perf_counter()
        fn(*event.args)
        profiler.record(
            getattr(fn, "__qualname__", repr(fn)), perf_counter() - start, advance
        )
        return True

    def run_until(self, end_time: float) -> int:
        """Run events with fire time <= ``end_time``, then set the clock
        there; returns the number of events fired.

        Events scheduled beyond ``end_time`` stay queued, so a simulation
        can be resumed with a later deadline.
        """
        if end_time < self.clock.now:
            raise ValueError(
                "end_time %r is before now %r" % (end_time, self.clock.now)
            )
        fired = 0
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time > end_time:
                break
            self.step()
            fired += 1
        self.clock.advance_to(end_time)
        return fired

    def run_all(self, max_events: int = 10_000_000) -> int:
        """Drain the queue completely; returns the number of events fired.

        ``max_events`` is a runaway guard: exceeding it raises
        ``RuntimeError`` instead of looping forever on self-rescheduling
        bugs.
        """
        count = 0
        while self.step():
            count += 1
            if count > max_events:
                raise RuntimeError("run_all exceeded %d events" % max_events)
        return count
