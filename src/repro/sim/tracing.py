"""Structured trace of simulation happenings.

Entities append :class:`TraceRecord` rows (time, kind, subject, detail);
tests and the analysis layer consume them.  Tracing can be disabled for
the large Fig. 5 sweeps (the trace would hold millions of rows).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped trace row."""

    time: float
    kind: str
    subject: str
    detail: str = ""


class Trace:
    """Append-only in-memory trace with simple filtering."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._records: List[TraceRecord] = []

    def emit(self, time: float, kind: str, subject: str, detail: str = "") -> None:
        """Append a record (no-op when the trace is disabled)."""
        if self.enabled:
            self._records.append(TraceRecord(time, kind, subject, detail))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def of_kind(self, kind: str) -> List[TraceRecord]:
        """All records of one kind, in emission order."""
        return [r for r in self._records if r.kind == kind]

    def counts_by_kind(self) -> Dict[str, int]:
        """Histogram of record kinds."""
        out: Dict[str, int] = {}
        for r in self._records:
            out[r.kind] = out.get(r.kind, 0) + 1
        return out

    def last(self, kind: Optional[str] = None) -> Optional[TraceRecord]:
        """Most recent record, optionally restricted to one kind."""
        if kind is None:
            return self._records[-1] if self._records else None
        for r in reversed(self._records):
            if r.kind == kind:
                return r
        return None
