"""Structured trace of simulation happenings.

Entities append :class:`TraceRecord` rows (time, kind, subject, detail);
tests and the analysis layer consume them.  The trace is a *ring
buffer*: once ``max_records`` rows are held, the oldest fall off and are
tallied in :attr:`Trace.dropped`, so tracing can stay enabled even for
the large Fig. 5 sweeps (which previously required switching it off to
avoid holding millions of rows).
"""

from __future__ import annotations

import os
from collections import Counter, deque
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

DEFAULT_MAX_RECORDS = 1_000_000
"""Generous default cap — a 30-minute canteen run emits a few thousand
rows, so only the multi-hour sweep grids ever approach it."""

TRACE_MAX_ENV = "REPRO_TRACE_MAX"


def _default_max_records() -> int:
    value = os.environ.get(TRACE_MAX_ENV, "").strip()
    if value:
        try:
            cap = int(value)
        except ValueError:
            raise ValueError(
                "%s must be an integer, got %r" % (TRACE_MAX_ENV, value)
            ) from None
        if cap < 1:
            raise ValueError("%s must be >= 1, got %r" % (TRACE_MAX_ENV, cap))
        return cap
    return DEFAULT_MAX_RECORDS


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped trace row."""

    time: float
    kind: str
    subject: str
    detail: str = ""


class Trace:
    """Bounded in-memory trace with simple filtering.

    The pre-ring API (``emit`` / ``of_kind`` / ``counts_by_kind`` /
    ``last`` / iteration / ``len``) is unchanged; ``max_records`` and
    ``dropped`` are additive.
    """

    def __init__(self, enabled: bool = True, max_records: Optional[int] = None):
        if max_records is None:
            max_records = _default_max_records()
        if max_records < 1:
            raise ValueError("max_records must be >= 1, got %r" % max_records)
        self.enabled = enabled
        self.max_records = max_records
        self._records: "deque[TraceRecord]" = deque(maxlen=max_records)
        self.dropped = 0

    def emit(self, time: float, kind: str, subject: str, detail: str = "") -> None:
        """Append a record (no-op when the trace is disabled)."""
        if self.enabled:
            if len(self._records) == self.max_records:
                self.dropped += 1
            self._records.append(TraceRecord(time, kind, subject, detail))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def of_kind(self, kind: str) -> List[TraceRecord]:
        """All retained records of one kind, in emission order."""
        return [r for r in self._records if r.kind == kind]

    def counts_by_kind(self) -> Dict[str, int]:
        """Histogram of retained record kinds."""
        return dict(Counter(r.kind for r in self._records))

    def between(self, t0: float, t1: float) -> List[TraceRecord]:
        """Retained records with ``t0 <= time < t1``, in emission order."""
        return [r for r in self._records if t0 <= r.time < t1]

    def last(self, kind: Optional[str] = None) -> Optional[TraceRecord]:
        """Most recent record, optionally restricted to one kind."""
        if kind is None:
            return self._records[-1] if self._records else None
        for r in reversed(self._records):
            if r.kind == kind:
                return r
        return None
