"""Readers for the metrics artefact and trace windows.

These helpers turn the raw ``metrics.json`` document (written by
:func:`repro.experiments.parallel.write_metrics`) back into the views
the paper cares about: the Table II-style provenance breakdown of sent
SSIDs vs hits, the top hit SSIDs, and the PB/FB adaptation timeline of
one run.  They operate on plain dicts so they work equally on a
just-merged registry or on a document loaded from disk.
"""

from __future__ import annotations

import json
import pathlib
from collections import Counter
from typing import Dict, List, Optional, Tuple, Union

from repro.obs.registry import (
    estimate_percentile,
    parse_key,
    validate_metrics_doc,
)
from repro.sim.tracing import Trace

PROVENANCE_ORDER = (
    "wigle-near",
    "wigle-heat",
    "wigle",
    "carrier",
    "overheard-direct",
    "mimic",
)
"""Display order for provenance rows (coarse ``wigle`` appears only for
flat-database attackers that cannot split near from heat-ranked)."""


def load_metrics(path: Union[str, pathlib.Path]) -> dict:
    """Load and validate a metrics artefact document."""
    doc = json.loads(pathlib.Path(path).read_text())
    validate_metrics_doc(doc)
    return doc


def _sum_by_label(
    counters: Dict[str, float], name: str, label: str
) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for key, value in counters.items():
        base, labels = parse_key(key)
        if base == name and label in labels:
            out[labels[label]] = out.get(labels[label], 0) + value
    return out


def provenance_breakdown(
    snapshot: dict,
) -> List[Tuple[str, int, int, int, float]]:
    """Rows of (provenance, ssids_sent, hits, misses, hit_rate).

    ``misses`` counts advertised SSIDs that never produced a hit for
    that provenance class — the efficiency view behind the paper's
    Table II / Fig. 6 discussion.  Provenances the run never touched are
    omitted; unknown labels sort after the canonical order.
    """
    counters = snapshot.get("counters", {})
    sent = _sum_by_label(counters, "attacker.ssids_sent", "provenance")
    hits = _sum_by_label(counters, "attacker.hits", "provenance")
    seen = set(sent) | set(hits)
    ordered = [p for p in PROVENANCE_ORDER if p in seen]
    ordered += sorted(seen - set(PROVENANCE_ORDER))
    rows = []
    for prov in ordered:
        s = int(sent.get(prov, 0))
        h = int(hits.get(prov, 0))
        rows.append((prov, s, h, max(0, s - h), h / s if s else 0.0))
    return rows


def top_hit_ssids(snapshot: dict, n: int = 10) -> List[Tuple[str, int]]:
    """The ``n`` SSIDs with the most hits, ties broken alphabetically."""
    tally: Counter = Counter()
    for key, value in snapshot.get("counters", {}).items():
        base, labels = parse_key(key)
        if base == "attacker.hit_ssids" and "ssid" in labels:
            tally[labels["ssid"]] += int(value)
    return sorted(tally.items(), key=lambda kv: (-kv[1], kv[0]))[:n]


def pbfb_timeline(snapshot: dict) -> List[Tuple[float, int, int]]:
    """(time, pb_size, fb_size) points of one run's adaptation timeline.

    FB values are matched to PB points by timestamp; a lone PB point
    (should not happen — both series append together) falls back to the
    previous FB value.
    """
    series = snapshot.get("series", {})
    pb = series.get("hunter.pb_size", [])
    fb_at = {t: v for t, v in series.get("hunter.fb_size", [])}
    out: List[Tuple[float, int, int]] = []
    last_fb = 0
    for t, v in pb:
        last_fb = fb_at.get(t, last_fb)
        out.append((float(t), int(v), int(last_fb)))
    return out


def run_events(doc: dict) -> List[Dict[str, object]]:
    """Every retained event of the batch, tagged with its run tag."""
    out: List[Dict[str, object]] = []
    for run in doc.get("runs", []):
        for event in run.get("events", []):
            out.append({"run": run.get("tag", ""), **event})
    return out


def filter_events(
    events: List[Dict[str, object]],
    kind: Optional[str] = None,
    since: Optional[float] = None,
    until: Optional[float] = None,
) -> List[Dict[str, object]]:
    """Narrow an event list by kind and/or sim-time window.

    ``since``/``until`` bound the half-open window ``[since, until)`` on
    each event's ``time`` field (events without one are kept only when
    no window is given) — the ``repro obs events --kind/--since/--until``
    filters.
    """
    out = []
    for event in events:
        if kind is not None and event.get("kind") != kind:
            continue
        if since is not None or until is not None:
            t = event.get("time")
            if t is None:
                continue
            t = float(t)
            if since is not None and t < since:
                continue
            if until is not None and t >= until:
                continue
        out.append(event)
    return out


def sink_status(doc: dict) -> Dict[str, float]:
    """Trace/event-ring totals across a batch's runs.

    Sums ``trace.records``/``trace.dropped`` and
    ``events.buffered``/``events.dropped`` over per-run gauges, and
    reports the ring caps (``trace.cap``/``events.cap`` — merged gauges
    take the max, which is the shared configuration value).  Runs from
    artefacts predating the cap gauges simply contribute zeros.
    """
    totals = {
        "trace.records": 0.0,
        "trace.dropped": 0.0,
        "events.buffered": 0.0,
        "events.dropped": 0.0,
    }
    for run in doc.get("runs", []):
        gauges = run.get("metrics", {}).get("gauges", {})
        for key in totals:
            totals[key] += float(gauges.get(key, 0))
    merged_gauges = doc.get("merged", {}).get("gauges", {})
    totals["trace.cap"] = float(merged_gauges.get("trace.cap", 0))
    totals["events.cap"] = float(merged_gauges.get("events.cap", 0))
    return totals


def trace_window_counts(
    trace: Trace, t0: float, t1: float
) -> Dict[str, int]:
    """Per-kind record counts inside ``[t0, t1)`` of a live trace."""
    return dict(Counter(r.kind for r in trace.between(t0, t1)))


def _label_values(gauges: Dict[str, float], name: str, label: str) -> List[float]:
    out = []
    for key, value in gauges.items():
        base, labels = parse_key(key)
        if base == name and label in labels:
            out.append(float(value))
    return out


def shard_breakdown(snapshot: dict) -> Optional[dict]:
    """Sharding summary of a metrics snapshot, or None when the batch
    never ran the sharded engine.

    Ownership spread comes from the per-shard ``shardops.owned_final``
    gauges (absent from golden-canonicalised documents, in which case
    only the workload totals are reported); migration and offer volumes
    come from the ``shardops.``/``shardsim.`` counters.
    """
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    if not any(
        k.startswith(("shardsim.", "shardops."))
        for k in list(counters) + list(gauges)
    ):
        return None
    owned = sorted(_label_values(gauges, "shardops.owned_final", "shard"))
    out = {
        "shards": int(gauges.get("shardops.shards", 0)) or None,
        "owned_min": int(owned[0]) if owned else None,
        "owned_median": int(owned[len(owned) // 2]) if owned else None,
        "owned_max": int(owned[-1]) if owned else None,
        "migrations_in": int(counters.get("shardops.migrations_in", 0)),
        "migrations_out": int(counters.get("shardops.migrations_out", 0)),
        "scans": int(counters.get("shardsim.scans", 0)),
        "probes": int(counters.get("shardsim.probes", 0)),
        "offers": int(counters.get("shardsim.offers", 0)),
        "offers_stale": int(counters.get("shardsim.offers_stale", 0)),
        "feedbacks": int(counters.get("shardsim.feedbacks", 0)),
        "hits": int(counters.get("shardsim.hits", 0)),
    }
    return out


#: Serving pipeline stages with a ``serve.<stage>_us`` histogram,
#: in path order.
SERVE_STAGES = ("queue_wait", "commit_wait", "select_latency", "apply")


def serve_breakdown(snapshot: dict) -> Optional[dict]:
    """Serving summary of a metrics snapshot, or None when the document
    never saw a :class:`~repro.serve.service.RankingService`.

    Throughput divides the probe count (select-histogram count) by the
    ``serve.stream`` wall timer; stage tail latencies are estimated
    from the fixed-bucket ``serve.*_us`` histograms via
    :func:`~repro.obs.registry.estimate_percentile`.  Documents from
    before the stage histograms existed simply report fewer stages.
    """
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    hists = snapshot.get("histograms", {})
    if not any(
        k.startswith("serve.")
        for k in list(counters) + list(gauges) + list(hists)
    ):
        return None

    def counter_sum(name: str) -> float:
        return sum(
            v for k, v in counters.items() if parse_key(k)[0] == name
        )

    select = hists.get("serve.select_latency_us")
    probes = int(select["count"]) if select else 0
    stream = snapshot.get("timers", {}).get("serve.stream", {})
    wall_s = float(stream.get("total_s", 0.0))
    events = counter_sum("serve.events_total")
    shed = counter_sum("serve.shed_total")
    stages = {}
    for stage in SERVE_STAGES:
        hist = hists.get("serve.%s_us" % stage)
        if hist is None:
            continue
        stages[stage] = {
            "count": int(hist["count"]),
            "p50_us": estimate_percentile(hist, 50),
            "p99_us": estimate_percentile(hist, 99),
        }
    return {
        "events": int(events),
        "probes": probes,
        "decisions": int(counter_sum("serve.decisions_total")),
        "probes_per_s": (
            round(probes / wall_s, 1) if wall_s > 0 and probes else None
        ),
        "shed": int(shed),
        "shed_fraction": round(shed / events, 6) if events else 0.0,
        "worker_restarts": int(counters.get("serve.worker_restarts", 0)),
        "events_failed": int(counters.get("serve.events_failed", 0)),
        "queue_depth_peak": int(gauges.get("serve.queue_depth_peak", 0)),
        "stages": stages,
    }
