"""Session export: CSV and JSON serialisation of attack results.

Downstream analysis (pandas, spreadsheets, plotting) wants flat records;
these helpers dump a finished :class:`AttackSession` per-client, plus a
compact JSON summary bundling the headline metrics and breakdowns.
"""

from __future__ import annotations

import csv
import io
import json

from repro.analysis.breakdown import breakdown_hits
from repro.analysis.metrics import summarize
from repro.analysis.session import AttackSession

CLIENT_FIELDS = [
    "mac",
    "first_seen",
    "direct_prober",
    "probes_seen",
    "ssids_sent",
    "connected",
    "hit_time",
    "hit_ssid",
    "hit_origin",
    "hit_bucket",
    "hit_position",
]


def clients_to_csv(session: AttackSession) -> str:
    """One CSV row per observed client, in first-seen order."""
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=CLIENT_FIELDS)
    writer.writeheader()
    for rec in session.records():
        writer.writerow(
            {
                "mac": rec.mac,
                "first_seen": f"{rec.first_seen:.3f}",
                "direct_prober": int(rec.direct_prober),
                "probes_seen": rec.probes_seen,
                "ssids_sent": rec.ssids_sent,
                "connected": int(rec.connected),
                "hit_time": "" if rec.hit_time is None else f"{rec.hit_time:.3f}",
                "hit_ssid": rec.hit_ssid or "",
                "hit_origin": rec.hit_origin or "",
                "hit_bucket": rec.hit_bucket or "",
                "hit_position": "" if rec.hit_position is None else rec.hit_position,
            }
        )
    return buf.getvalue()


def session_to_json(session: AttackSession, label: str = "") -> str:
    """Headline metrics + breakdowns as a JSON document."""
    summary = summarize(session)
    source, buffers = breakdown_hits(session)
    doc = {
        "label": label,
        "clients": {
            "total": summary.total_clients,
            "direct": summary.direct_clients,
            "broadcast": summary.broadcast_clients,
        },
        "connected": {
            "direct": summary.connected_direct,
            "broadcast": summary.connected_broadcast,
        },
        "rates": {
            "h": summary.hit_rate,
            "h_b": summary.broadcast_hit_rate,
        },
        "breakdown": {
            "source": {
                "wigle": source.from_wigle,
                "direct": source.from_direct,
                "other": source.from_other,
            },
            "buffers": {
                "popularity": buffers.from_popularity,
                "freshness": buffers.from_freshness,
                "other": buffers.from_other,
            },
        },
        "db_size_series": [
            {"time": t, "size": size} for t, size in session.db_size_series
        ],
        "deauths_sent": session.deauths_sent,
    }
    return json.dumps(doc, indent=2)


def load_summary(json_text: str) -> dict:
    """Parse a document produced by :func:`session_to_json`."""
    doc = json.loads(json_text)
    for key in ("clients", "connected", "rates", "breakdown"):
        if key not in doc:
            raise ValueError(f"not a session summary document: missing {key!r}")
    return doc
