"""Per-run attack bookkeeping.

Buckets: ``pb`` / ``pb_ghost`` / ``fb`` / ``fb_ghost`` for the advanced
attacker's buffers, ``db`` for flat-database attackers (MANA, basic
City-Hunter), and ``mimic`` for KARMA-style replies to direct probes.
Origins: ``wigle`` (seeded from the registry), ``direct`` (learned from
an overheard direct probe), ``carrier`` (the Sec. V-B extension), and
``mimic`` for direct-probe reflections.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class SentSsid:
    """Provenance of one SSID inside one response burst."""

    ssid: str
    origin: str
    bucket: str


@dataclass
class ClientRecord:
    """Everything the attacker learned about one client MAC."""

    mac: str
    first_seen: float
    direct_prober: bool = False
    probes_seen: int = 0
    ssids_sent: int = 0
    """Database SSIDs sent in response bursts (mimic replies excluded)."""

    connected: bool = False
    hit_time: Optional[float] = None
    hit_ssid: Optional[str] = None
    hit_origin: Optional[str] = None
    hit_bucket: Optional[str] = None
    hit_position: Optional[int] = None
    """1-based position of the hitting SSID in the cumulative send order
    (the paper's 'number of SSIDs sent to this connected client')."""

    @property
    def connected_via_direct(self) -> bool:
        """Whether the hit came from mimicking a direct probe."""
        return self.connected and self.hit_bucket == "mimic"

    @property
    def connected_via_broadcast(self) -> bool:
        """Whether the hit came from a broadcast-response SSID."""
        return self.connected and self.hit_bucket != "mimic"


@dataclass
class _Provenance:
    origin: str
    bucket: str
    position: int


class AttackSession:
    """Mutable per-run log the attacker writes and the analysis reads."""

    def __init__(self) -> None:
        self.clients: Dict[str, ClientRecord] = {}
        self._provenance: Dict[str, Dict[str, _Provenance]] = {}
        self.db_size_series: List[Tuple[float, int]] = []
        self.deauths_sent: int = 0

    # -- attacker-side writers ------------------------------------------------

    def _client(self, mac: str, time: float) -> ClientRecord:
        rec = self.clients.get(mac)
        if rec is None:
            rec = ClientRecord(mac=mac, first_seen=time)
            self.clients[mac] = rec
            self._provenance[mac] = {}
        return rec

    def observe_probe(self, mac: str, time: float, direct: bool) -> None:
        """A probe request arrived from ``mac``."""
        rec = self._client(mac, time)
        rec.probes_seen += 1
        if direct:
            rec.direct_prober = True

    def record_sent(self, mac: str, time: float, metas: Sequence[SentSsid]) -> None:
        """A burst of database SSIDs went out to ``mac``."""
        rec = self._client(mac, time)
        prov = self._provenance[mac]
        for meta in metas:
            rec.ssids_sent += 1
            prov[meta.ssid] = _Provenance(meta.origin, meta.bucket, rec.ssids_sent)

    def record_mimic(self, mac: str, time: float, ssid: str) -> None:
        """A KARMA-style reflection of a direct probe went out to ``mac``."""
        rec = self._client(mac, time)
        self._provenance[mac][ssid] = _Provenance("mimic", "mimic", rec.ssids_sent)

    def record_hit(self, mac: str, time: float, ssid: str) -> ClientRecord:
        """``mac`` associated to us using ``ssid``."""
        rec = self._client(mac, time)
        if rec.connected:
            return rec  # duplicate association (re-assoc) — keep first hit
        rec.connected = True
        rec.hit_time = time
        rec.hit_ssid = ssid
        prov = self._provenance[mac].get(ssid)
        if prov is not None:
            rec.hit_origin = prov.origin
            rec.hit_bucket = prov.bucket
            rec.hit_position = prov.position if prov.bucket != "mimic" else None
        else:
            # Association to an SSID we never advertised to this client —
            # should not happen, but keep the record honest.
            rec.hit_origin = "unknown"
            rec.hit_bucket = "unknown"
        return rec

    def record_db_size(self, time: float, size: int) -> None:
        """Snapshot the attacker database size (Fig. 1a time series)."""
        self.db_size_series.append((time, size))

    def record_deauth(self) -> None:
        """Count one de-authentication frame sent (Sec. V-B extension)."""
        self.deauths_sent += 1

    # -- convenience readers -----------------------------------------------------

    def tried_count(self, mac: str) -> int:
        """How many database SSIDs have been sent to ``mac`` so far."""
        rec = self.clients.get(mac)
        return rec.ssids_sent if rec is not None else 0

    def records(self) -> List[ClientRecord]:
        """All client records, in first-seen order."""
        return sorted(self.clients.values(), key=lambda r: r.first_seen)

    def broadcast_clients(self) -> List[ClientRecord]:
        """Clients that never revealed an SSID (broadcast-only probers)."""
        return [r for r in self.records() if not r.direct_prober]

    def direct_clients(self) -> List[ClientRecord]:
        """Clients that sent at least one direct probe."""
        return [r for r in self.records() if r.direct_prober]
