"""Windowed time series (Fig. 1).

``h_b^r`` — the real-time broadcast hit rate — assigns each broadcast
client to the window of its first observed probe and asks what fraction
of those clients the attacker eventually lured.  Cumulative series for
database size and connections support Fig. 1(a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.session import AttackSession


@dataclass(frozen=True)
class WindowStat:
    """One window of the real-time broadcast hit rate."""

    start: float
    end: float
    broadcast_clients: int
    connected: int

    @property
    def rate(self) -> float:
        """``h_b^r`` for this window (0 when the window saw nobody)."""
        if self.broadcast_clients == 0:
            return 0.0
        return self.connected / self.broadcast_clients


def windowed_broadcast_hit_rate(
    session: AttackSession, duration: float, window: float
) -> List[WindowStat]:
    """``h_b^r`` per window over ``[0, duration)``."""
    if window <= 0 or duration <= 0:
        raise ValueError("duration and window must be positive")
    count = int(round(duration / window))
    stats = [
        {"clients": 0, "connected": 0} for _ in range(count)
    ]
    for rec in session.broadcast_clients():
        idx = int(rec.first_seen // window)
        if not 0 <= idx < count:
            continue
        stats[idx]["clients"] += 1
        if rec.connected:
            stats[idx]["connected"] += 1
    return [
        WindowStat(i * window, (i + 1) * window, s["clients"], s["connected"])
        for i, s in enumerate(stats)
    ]


def cumulative_broadcast_connections(
    session: AttackSession, duration: float, step: float
) -> List[Tuple[float, int]]:
    """Cumulative broadcast-client connections over time (Fig. 1a)."""
    times = sorted(
        r.hit_time
        for r in session.broadcast_clients()
        if r.connected and r.hit_time is not None
    )
    out: List[Tuple[float, int]] = []
    t = step
    i = 0
    while t <= duration + 1e-9:
        while i < len(times) and times[i] <= t:
            i += 1
        out.append((t, i))
        t += step
    return out


def db_size_at_steps(
    session: AttackSession, duration: float, step: float
) -> List[Tuple[float, int]]:
    """Database size sampled at regular steps (Fig. 1a)."""
    series = sorted(session.db_size_series)
    out: List[Tuple[float, int]] = []
    t = step
    i = 0
    size = series[0][1] if series else 0
    while t <= duration + 1e-9:
        while i < len(series) and series[i][0] <= t:
            size = series[i][1]
            i += 1
        out.append((t, size))
        t += step
    return out
