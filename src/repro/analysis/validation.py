"""Paper-target validation.

A declarative registry of the paper's quantitative claims and helpers
to check measured values against them.  Used by the EXPERIMENTS
workflow and by tests; each target records the paper's value, the band
the reproduction accepts, and where the claim comes from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class PaperTarget:
    """One quantitative claim of the paper."""

    key: str
    description: str
    paper_value: float
    low: float
    high: float
    source: str

    def check(self, measured: float) -> bool:
        """Whether a measured value lands in the accepted band."""
        return self.low <= measured <= self.high

    def report(self, measured: float) -> str:
        """One human-readable verdict line."""
        verdict = "OK " if self.check(measured) else "OUT"
        return (
            f"[{verdict}] {self.key}: measured {measured:.3f} "
            f"(paper {self.paper_value:.3f}, band {self.low:.3f}-{self.high:.3f})"
        )


_TARGETS: List[PaperTarget] = [
    PaperTarget("karma.h", "KARMA overall hit rate, canteen",
                0.039, 0.02, 0.07, "Table I"),
    PaperTarget("karma.h_b", "KARMA broadcast hit rate",
                0.0, 0.0, 0.0, "Table I"),
    PaperTarget("mana.h", "MANA overall hit rate, canteen",
                0.066, 0.03, 0.11, "Table I"),
    PaperTarget("mana.h_b", "MANA broadcast hit rate, canteen",
                0.03, 0.005, 0.06, "Table I"),
    PaperTarget("basic.canteen.h_b", "preliminary City-Hunter h_b, canteen",
                0.159, 0.12, 0.25, "Table II"),
    PaperTarget("basic.passage.h_b", "preliminary City-Hunter h_b, passage",
                0.041, 0.015, 0.08, "Table III"),
    PaperTarget("adv.passage.h_b", "City-Hunter average h_b, passage",
                0.12, 0.08, 0.17, "Fig. 5a"),
    PaperTarget("adv.canteen.h_b", "City-Hunter average h_b, canteen",
                0.1786, 0.13, 0.24, "Fig. 5b"),
    PaperTarget("adv.shopping_center.h_b", "City-Hunter average h_b, mall",
                0.14, 0.09, 0.20, "Fig. 5c"),
    PaperTarget("adv.railway_station.h_b", "City-Hunter average h_b, station",
                0.166, 0.10, 0.22, "Fig. 5d"),
    PaperTarget("fig2b.single_burst_share",
                "share of passage clients receiving exactly 40 SSIDs",
                0.70, 0.55, 0.90, "Fig. 2b"),
    PaperTarget("table2.wigle_share",
                "share of basic City-Hunter broadcast hits from WiGLE",
                0.74, 0.60, 0.97, "Table II text"),
]


def targets() -> Dict[str, PaperTarget]:
    """All registered targets keyed by their identifier."""
    return {t.key: t for t in _TARGETS}


def check_all(measured: Dict[str, float]) -> List[str]:
    """Verdict lines for every provided measurement (unknown keys raise)."""
    registry = targets()
    lines = []
    for key, value in measured.items():
        if key not in registry:
            raise KeyError(f"no paper target registered for {key!r}")
        lines.append(registry[key].report(value))
    return lines


def all_pass(measured: Dict[str, float]) -> bool:
    """Whether every provided measurement is inside its band."""
    registry = targets()
    return all(registry[k].check(v) for k, v in measured.items())
