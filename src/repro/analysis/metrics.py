"""Headline metrics: the columns of Tables I-III.

Client classification follows the paper: a client is a *direct* client
if it ever sent a direct probe, otherwise a *broadcast* client; the
connected counts are partitioned by client class, ``h`` is overall
connected / total, and ``h_b`` is connected broadcast clients / total
broadcast clients.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.session import AttackSession


@dataclass(frozen=True)
class SessionSummary:
    """One row of a Table I/II/III-style comparison."""

    total_clients: int
    direct_clients: int
    broadcast_clients: int
    connected_direct: int
    connected_broadcast: int

    @property
    def connected_total(self) -> int:
        """All clients lured, regardless of class."""
        return self.connected_direct + self.connected_broadcast

    @property
    def hit_rate(self) -> float:
        """The paper's ``h``: connected / total clients seen."""
        if self.total_clients == 0:
            return 0.0
        return self.connected_total / self.total_clients

    @property
    def broadcast_hit_rate(self) -> float:
        """The paper's ``h_b``: connected broadcast / broadcast clients."""
        if self.broadcast_clients == 0:
            return 0.0
        return self.connected_broadcast / self.broadcast_clients

    def as_table_row(self, label: str) -> list:
        """Row in the paper's table layout."""
        return [
            label,
            self.total_clients,
            f"{self.direct_clients}/{self.broadcast_clients}",
            f"{self.connected_direct} (direct); {self.connected_broadcast} (broadcast)",
            f"{100.0 * self.hit_rate:.1f}%",
            f"{100.0 * self.broadcast_hit_rate:.1f}%",
        ]


def summarize(session: AttackSession) -> SessionSummary:
    """Collapse a finished session into the headline metrics."""
    direct = session.direct_clients()
    broadcast = session.broadcast_clients()
    connected_direct = sum(1 for r in direct if r.connected)
    connected_broadcast = sum(1 for r in broadcast if r.connected)
    return SessionSummary(
        total_clients=len(direct) + len(broadcast),
        direct_clients=len(direct),
        broadcast_clients=len(broadcast),
        connected_direct=connected_direct,
        connected_broadcast=connected_broadcast,
    )
