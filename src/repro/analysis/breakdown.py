"""Hit-provenance breakdowns (Fig. 6).

Among the SSIDs that successfully hit *broadcast* clients, the paper
splits (a) by source — WiGLE-seeded vs learned from direct probes — and
(b) by buffer — popularity buffer (+ its ghost) vs freshness buffer
(+ its ghost).  Ratios are annotated above each bar; we reproduce both
numbers and ratio strings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.session import AttackSession

POPULARITY_BUCKETS = frozenset({"pb", "pb_ghost", "db"})
FRESHNESS_BUCKETS = frozenset({"fb", "fb_ghost"})


@dataclass(frozen=True)
class SourceBreakdown:
    """Broadcast hits split by SSID source."""

    from_wigle: int
    from_direct: int
    from_other: int = 0

    @property
    def ratio(self) -> float:
        """wigle : direct ratio (inf when no direct-sourced hits)."""
        if self.from_direct == 0:
            return float("inf") if self.from_wigle else 0.0
        return self.from_wigle / self.from_direct


@dataclass(frozen=True)
class BufferBreakdown:
    """Broadcast hits split by selection buffer."""

    from_popularity: int
    from_freshness: int
    from_other: int = 0

    @property
    def ratio(self) -> float:
        """popularity : freshness ratio (inf when freshness never hit)."""
        if self.from_freshness == 0:
            return float("inf") if self.from_popularity else 0.0
        return self.from_popularity / self.from_freshness


def breakdown_hits(session: AttackSession) -> "tuple[SourceBreakdown, BufferBreakdown]":
    """Fig. 6 split for one finished session."""
    wigle = direct = other_src = 0
    pop = fresh = other_buf = 0
    for rec in session.broadcast_clients():
        if not rec.connected or rec.hit_bucket == "mimic":
            continue
        if rec.hit_origin == "wigle":
            wigle += 1
        elif rec.hit_origin == "direct":
            direct += 1
        else:
            other_src += 1
        if rec.hit_bucket in POPULARITY_BUCKETS:
            pop += 1
        elif rec.hit_bucket in FRESHNESS_BUCKETS:
            fresh += 1
        else:
            other_buf += 1
    return (
        SourceBreakdown(wigle, direct, other_src),
        BufferBreakdown(pop, fresh, other_buf),
    )
