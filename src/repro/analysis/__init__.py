"""Attacker-side instrumentation and metric computation.

The :class:`AttackSession` is the ground truth every table and figure is
derived from: it records, per client MAC, the probes observed, the SSIDs
sent (with provenance: WiGLE vs direct-probe origin, which buffer), and
the eventual hit.  Pure functions over a finished session compute the
paper's metrics — hit rate *h*, broadcast hit rate *h_b*, the windowed
real-time rate *h_b^r*, per-client SSID counts, and the Fig. 6 source /
buffer breakdowns.
"""

from repro.analysis.breakdown import BufferBreakdown, SourceBreakdown, breakdown_hits
from repro.analysis.metrics import SessionSummary, summarize
from repro.analysis.observability import (
    load_metrics,
    pbfb_timeline,
    provenance_breakdown,
    top_hit_ssids,
    trace_window_counts,
)
from repro.analysis.session import AttackSession, ClientRecord, SentSsid
from repro.analysis.timeseries import WindowStat, windowed_broadcast_hit_rate

__all__ = [
    "load_metrics",
    "pbfb_timeline",
    "provenance_breakdown",
    "top_hit_ssids",
    "trace_window_counts",
    "AttackSession",
    "ClientRecord",
    "SentSsid",
    "SessionSummary",
    "summarize",
    "WindowStat",
    "windowed_broadcast_hit_rate",
    "SourceBreakdown",
    "BufferBreakdown",
    "breakdown_hits",
]
