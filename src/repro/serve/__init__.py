"""Attacker-as-a-service: async probe-stream ranking.

The paper's attack loop — rank WiGLE-seeded SSIDs, answer each probing
client with a PB/FB/ghost burst, learn from association feedback —
extracted from the batch simulator into a serving system:

* :mod:`repro.serve.events` — probe/feedback events in, burst decisions
  out, with canonical digests;
* :mod:`repro.serve.core` — the synchronous ranking state machine,
  proven bit-identical to the inline simulator by the differential
  harness;
* :mod:`repro.serve.service` — the asyncio layer: bounded ingress,
  backpressure or shedding, N supervised workers, sequenced commits,
  ``serve.*`` metrics;
* :mod:`repro.serve.trace` — UJI-shaped JSONL trace replay (torn-line
  tolerant);
* :mod:`repro.serve.record` — wire-tapped simulator runs for the
  differential harness;
* :mod:`repro.serve.workload` — deterministic synthetic load and the
  shared bench harness.
"""

from repro.serve.core import RankingCore
from repro.serve.events import (
    BurstDecision,
    FeedbackEvent,
    ProbeEvent,
    decisions_by_client,
    decisions_digest,
)
from repro.serve.service import RankingService, run_stream, serve_stream

__all__ = [
    "BurstDecision",
    "FeedbackEvent",
    "ProbeEvent",
    "RankingCore",
    "RankingService",
    "decisions_by_client",
    "decisions_digest",
    "run_stream",
    "serve_stream",
]
