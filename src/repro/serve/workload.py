"""Synthetic probe-stream workloads and load measurement.

The serving benchmarks need an open-loop event stream that looks like
city traffic — many concurrent clients, mostly broadcast probes, a
direct-probe minority revealing home SSIDs, and a trickle of
association feedback — generated deterministically from a seed so every
measurement (and every replay-determinism check) sees the same bytes.

:func:`measure_load` is the shared harness under both
``benchmarks/bench_serve.py`` and the ``repro serve bench`` CLI: it
pushes one stream through a fresh service at a given worker count and
reports sustained probes/s, exact p50/p99 burst-selection latency and
the shed/cache accounting.
"""

from __future__ import annotations

import time as _time
from typing import List, Optional, Sequence

import numpy as np

from repro.obs.registry import MetricsRegistry
from repro.serve.core import RankingCore
from repro.serve.events import (
    Event,
    FeedbackEvent,
    ProbeEvent,
    decisions_digest,
)
from repro.serve.service import run_stream
from repro.util.rng import derive_seed

WORKLOAD_STREAM = "serve-workload"

SERVE_BENCH_SCHEMA = "repro.bench_serve/v1"


def client_mac(index: int) -> str:
    """Deterministic locally-administered MAC for synthetic client ``i``."""
    return "02:5e:%02x:%02x:%02x:%02x" % (
        (index >> 24) & 0xFF,
        (index >> 16) & 0xFF,
        (index >> 8) & 0xFF,
        index & 0xFF,
    )


def synthetic_stream(
    n_clients: int,
    n_events: int,
    seed: int = 0,
    direct_share: float = 0.08,
    feedback_share: float = 0.04,
    ssid_pool: Sequence[str] = (),
    interval_s: float = 0.02,
) -> List[Event]:
    """A deterministic open-loop event stream.

    Each event picks a client uniformly; a ``direct_share`` fraction are
    direct probes and a ``feedback_share`` fraction are association
    feedback, both naming SSIDs from ``ssid_pool`` (typically the
    city's WiGLE head, so feedback lands on real database entries and
    exercises the freshness path).  Without a pool, everything is
    broadcast.
    """
    rng = np.random.default_rng(derive_seed(seed, WORKLOAD_STREAM))
    events: List[Event] = []
    pool = list(ssid_pool)
    for i in range(n_events):
        t = round(i * interval_s, 6)
        mac = client_mac(int(rng.integers(n_clients)))
        draw = float(rng.random())
        if pool and draw < direct_share:
            events.append(
                ProbeEvent(mac, t, pool[int(rng.integers(len(pool)))])
            )
        elif pool and draw < direct_share + feedback_share:
            events.append(
                FeedbackEvent(mac, t, pool[int(rng.integers(len(pool)))])
            )
        else:
            events.append(ProbeEvent(mac, t))
    return events


def measure_load(
    core: RankingCore,
    events: Sequence[Event],
    workers: int,
    queue_max: Optional[int] = None,
    shed: bool = False,
    metrics: Optional[MetricsRegistry] = None,
    req_trace: Optional[bool] = None,
) -> dict:
    """Serve one stream as fast as possible; return the load report."""
    start = _time.perf_counter()
    service = run_stream(
        core,
        events,
        workers=workers,
        queue_max=queue_max,
        shed=shed,
        metrics=metrics,
        sample_latencies=True,
        req_trace=req_trace,
    )
    wall_s = _time.perf_counter() - start
    probes = sum(
        1 for e in events if isinstance(e, ProbeEvent)
    )
    latencies = service.latencies_us
    stats = service.core.stats()
    cache_total = stats["rank_cache_hits"] + stats["rank_cache_misses"]
    return {
        "events": len(events),
        "probes": probes,
        "decisions": len(service.decisions),
        "wall_s": round(wall_s, 4),
        "probes_per_s": round(probes / wall_s) if wall_s > 0 else None,
        "events_per_s": round(len(events) / wall_s) if wall_s > 0 else None,
        "p50_us": (
            round(float(np.percentile(latencies, 50)), 1) if latencies else None
        ),
        "p99_us": (
            round(float(np.percentile(latencies, 99)), 1) if latencies else None
        ),
        "shed": service.shed_total(),
        "shed_fraction": (
            round(service.shed_total() / len(events), 6) if events else 0.0
        ),
        "queue_depth_peak": service.metrics.gauge_value(
            "serve.queue_depth_peak"
        ),
        "rank_cache_hit_rate": (
            round(stats["rank_cache_hits"] / cache_total, 4)
            if cache_total
            else None
        ),
        "db_size": stats["db_size"],
        "clients": stats["clients"],
        "digest": decisions_digest(service.decisions),
    }


def run_bench_grid(
    clients: Sequence[int] = (20, 100),
    workers: Sequence[int] = (1, 4),
    n_events: int = 4000,
    seed: int = 0,
    city_seed: int = 42,
    repeats: int = 1,
    venue: str = "canteen",
    req_trace: bool = False,
) -> dict:
    """Sweep the serving grid; return a ``repro.bench_serve/v1`` doc.

    Shared by ``benchmarks/bench_serve.py`` and ``repro serve bench``.
    Each (clients, workers) point serves the *same* deterministic
    stream through a fresh core; with ``repeats > 1`` the fastest run
    per point is kept (standard benchmarking practice — the minimum is
    the least noisy estimator of the machine's capability).

    With ``req_trace`` only the heaviest grid point (max clients, max
    workers) is traced — spans cost nanoseconds each but the flushed
    JSONL does not, and one representative point is what the exported
    timeline is for.  Every other point runs with tracing explicitly
    off, so a ``REPRO_REQ_TRACE=1`` environment cannot skew the
    untraced measurements either.
    """
    from repro.experiments.calibration import default_city, venue_profile
    from repro.experiments.runner import shared_wigle
    from repro.wigle.queries import top_ssids_by_count

    city = default_city(city_seed)
    wigle = shared_wigle(city_seed)
    position = city.venue(venue_profile(venue).venue_name).region.center
    pool = [s for s, _ in top_ssids_by_count(wigle, 60)]
    grid: List[dict] = []
    trace_cl, trace_wk = max(clients), max(workers)
    for n_cl in clients:
        events = synthetic_stream(
            n_cl, n_events, seed=seed, ssid_pool=pool
        )
        base_digest: Optional[str] = None
        for n_wk in workers:
            best: Optional[dict] = None
            for _ in range(max(1, repeats)):
                core = RankingCore.seeded(
                    wigle, city.heatmap, position, seed=seed
                )
                report = measure_load(
                    core,
                    events,
                    workers=n_wk,
                    req_trace=(n_cl == trace_cl and n_wk == trace_wk)
                    if req_trace
                    else False,
                )
                if best is None or (
                    report["probes_per_s"] or 0
                ) > (best["probes_per_s"] or 0):
                    best = report
            # Determinism contract, re-checked on every benchmark run:
            # the decision stream must be byte-identical at any worker
            # count (commits are sequenced; see repro.serve.service).
            if base_digest is None:
                base_digest = best["digest"]
            elif best["digest"] != base_digest:
                raise AssertionError(
                    "worker invariance violated at %d clients: "
                    "%d workers digest %s != %s"
                    % (n_cl, n_wk, best["digest"], base_digest)
                )
            point = dict(best)
            point["clients"] = n_cl
            point["workers"] = n_wk
            grid.append(point)
    return {
        "schema": SERVE_BENCH_SCHEMA,
        "seed": seed,
        "n_events": n_events,
        "repeats": repeats,
        "grid": grid,
        "max_probes_per_s": max(
            (p["probes_per_s"] or 0) for p in grid
        ),
    }
