"""The serving layer's wire types.

A probe-request capture pipeline delivers two kinds of facts to an
attacker node: *probe events* (a client scanned — broadcast, or direct
with an SSID) and *feedback events* (a client associated to one of the
SSIDs we advertised).  The service answers probe events with *burst
decisions* — the PB/FB/ghost SSID burst of the paper's step 3, or a
KARMA-style mimic for a direct probe — and consumes feedback events
silently (they update the ranking, Section IV step 2).

Everything here is a frozen dataclass so events survive queues, process
boundaries and JSON round-trips unchanged, and so the differential
harness can compare decision sequences with plain ``==``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple, Union

from repro.analysis.session import SentSsid


@dataclass(frozen=True)
class ProbeEvent:
    """One probe request: broadcast (``ssid is None``) or direct."""

    mac: str
    time: float
    ssid: Optional[str] = None

    @property
    def is_direct(self) -> bool:
        return self.ssid is not None


@dataclass(frozen=True)
class FeedbackEvent:
    """One association: ``mac`` connected to an evil twin of ``ssid``."""

    mac: str
    time: float
    ssid: str


Event = Union[ProbeEvent, FeedbackEvent]


@dataclass(frozen=True)
class BurstDecision:
    """One outgoing answer: a response burst or a mimic reflection.

    ``ssids`` carries the full per-SSID provenance
    (:class:`~repro.analysis.session.SentSsid`) in send order — the
    exact payload the inline simulator's
    :meth:`~repro.attacks.base.RogueAp.send_ssid_burst` transmits, which
    is what makes decision sequences comparable bit-for-bit.
    """

    mac: str
    time: float
    kind: str  # "burst" | "mimic"
    ssids: Tuple[SentSsid, ...]

    def as_row(self) -> list:
        """Canonical JSON-serialisable form (digests, exports, diffs)."""
        return [
            self.mac,
            self.time,
            self.kind,
            [[s.ssid, s.origin, s.bucket] for s in self.ssids],
        ]


def decisions_digest(decisions: Iterable[BurstDecision]) -> str:
    """SHA-256 over the canonical decision sequence.

    Two decision streams are bit-identical iff their digests match —
    the compact form the replay-determinism tests and the ``serve
    replay`` CLI print.
    """
    h = hashlib.sha256()
    for d in decisions:
        h.update(json.dumps(d.as_row(), sort_keys=True).encode("utf-8"))
    return h.hexdigest()


def decisions_by_client(
    decisions: Iterable[BurstDecision],
) -> dict:
    """mac -> that client's decision sequence, in stream order."""
    out: dict = {}
    for d in decisions:
        out.setdefault(d.mac, []).append(d)
    return out


def decision_rows(decisions: Iterable[BurstDecision]) -> List[list]:
    """Canonical rows for a whole stream (JSONL export payload)."""
    return [d.as_row() for d in decisions]
