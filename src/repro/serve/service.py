"""Attacker-as-a-service: the asyncio serving layer.

:class:`RankingService` turns the synchronous
:class:`~repro.serve.core.RankingCore` into a traffic-serving system:
probe-request events flow in through a bounded ingress queue, ``N``
concurrent attacker-node workers pull them off, and burst decisions
flow out — with explicit backpressure, load-shed accounting, worker
supervision and ``serve.*`` metrics through the standard
:class:`~repro.obs.registry.MetricsRegistry`.

**Determinism under concurrency.**  The ranking state (SSID store,
PB/FB split, ghost-pick RNG) is shared across every client, so the
*apply order* of events decides every downstream burst.  Each accepted
event is stamped with an ingress sequence number and workers commit
through a sequencer that admits exactly one event at a time, in stamp
order — transport concurrency (queueing, parsing, shedding, emission)
is real, state mutation is serialised.  Decisions therefore come out in
ingress order at *any* worker count, which is what lets the replay
tests pin one digest across ``REPRO_WORKERS`` settings and what makes
the differential harness meaningful.

**Backpressure vs shedding.**  The default policy is backpressure:
``submit`` awaits queue space, pushing the wait onto the producer (a
capture pipeline that cannot buffer should shed upstream).  With
``shed=True`` a full queue drops *probe* events on the floor — counted
in ``serve.shed_total`` — but feedback events always take the
backpressure path: losing a probe costs one response opportunity,
losing feedback forks the ranking state from reality.

**Worker faults.**  Worker tasks run under a supervisor loop: an
exception restarts the worker (counted in ``serve.worker_restarts``)
with all session state intact, because state lives in the core, not the
worker.  An event in flight at crash time is salvaged: if it had not
reached the core it is re-applied by the supervisor (in-flight feedback
is never dropped); if the core raised mid-apply the event is counted in
``serve.events_failed`` and its sequence slot released so the stream
never deadlocks.
"""

from __future__ import annotations

import asyncio
import os
import time as _time
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.obs.registry import (
    METRICS_SCHEMA,
    MetricsRegistry,
    estimate_percentile,
)
from repro.obs.reqtrace import maybe_request_trace
from repro.obs.telemetry import (
    HeartbeatWriter,
    resolve_serve_heartbeat_interval,
)
from repro.serve.core import RankingCore
from repro.serve.events import BurstDecision, Event, FeedbackEvent, ProbeEvent

WORKERS_ENV = "REPRO_WORKERS"
QUEUE_MAX_ENV = "REPRO_SERVE_QUEUE_MAX"

DEFAULT_WORKERS = 4
DEFAULT_QUEUE_MAX = 1024

LATENCY_BUCKETS_US: Tuple[float, ...] = (
    50, 100, 200, 400, 800, 1600, 3200, 6400, 12800, 25600,
)
"""Burst-selection latency histogram bounds, microseconds (an overflow
bucket is implicit).  Wall-clock observations: like the ``timers``
section, these are *not* part of the deterministic metric surface."""

STAGE_BUCKETS_US: Tuple[float, ...] = (
    50, 100, 200, 400, 800, 1600, 3200, 6400, 12800, 25600,
    102400, 409600, 1638400, 6553600,
)
"""Queue-wait / commit-wait histogram bounds, microseconds.  The waits
are dominated by backlog, not compute, so the range extends to ~6.5 s
before the overflow bucket.  Wall-clock, like the select histogram."""


def resolve_serve_workers(workers: Optional[int] = None) -> int:
    """Worker count: explicit arg, else ``REPRO_WORKERS``, else 4."""
    if workers is not None:
        return max(1, int(workers))
    value = os.environ.get(WORKERS_ENV, "").strip()
    if value:
        try:
            return max(1, int(value))
        except ValueError:
            pass
    return DEFAULT_WORKERS


def resolve_queue_max(queue_max: Optional[int] = None) -> int:
    """Ingress bound: explicit arg, else ``REPRO_SERVE_QUEUE_MAX``."""
    if queue_max is not None:
        return max(1, int(queue_max))
    value = os.environ.get(QUEUE_MAX_ENV, "").strip()
    if value:
        try:
            return max(1, int(value))
        except ValueError:
            pass
    return DEFAULT_QUEUE_MAX


class _Sequencer:
    """Admit commits strictly in sequence-number order."""

    def __init__(self) -> None:
        self._next = 0
        self._waiters: Dict[int, asyncio.Event] = {}

    async def wait(self, seq: int) -> None:
        if seq == self._next:
            return
        event = self._waiters.setdefault(seq, asyncio.Event())
        await event.wait()

    def done(self, seq: int) -> None:
        """Release ``seq``'s slot and wake the next committer."""
        self._next = seq + 1
        waiter = self._waiters.pop(self._next, None)
        if waiter is not None:
            waiter.set()


class _Inflight:
    """One worker's event-in-flight slot (crash-salvage bookkeeping)."""

    __slots__ = ("seq", "event", "applying")

    def __init__(self, seq: int, event: Event):
        self.seq = seq
        self.event = event
        self.applying = False


class RankingService:
    """Async probe-stream server over one shared :class:`RankingCore`."""

    def __init__(
        self,
        core: RankingCore,
        workers: Optional[int] = None,
        queue_max: Optional[int] = None,
        shed: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        fault_hook: Optional[Callable[[int, Event], None]] = None,
        on_decision: Optional[Callable[[BurstDecision], None]] = None,
        sample_latencies: bool = False,
        req_trace: Optional[bool] = None,
    ):
        self.core = core
        self.workers = resolve_serve_workers(workers)
        self.queue_max = resolve_queue_max(queue_max)
        self.shed = shed
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.decisions: List[BurstDecision] = []
        self.events_log: List[dict] = []
        self._fault_hook = fault_hook
        self._on_decision = on_decision
        self._sample_latencies = sample_latencies
        self.latencies_us: List[float] = []
        self._queue: Optional[asyncio.Queue] = None
        self._gate = _Sequencer()
        self._next_seq = 0
        self._tasks: List[asyncio.Task] = []
        self._inflight: Dict[int, Optional[_Inflight]] = {}
        self._started = False
        # Observe-only instrumentation: the span ring never touches an
        # RNG stream and the heartbeat thread never mutates core state,
        # so digests are identical with both on or off.
        self.reqtrace = maybe_request_trace(req_trace)
        self._heartbeat: Optional[HeartbeatWriter] = None
        self._committed = 0
        self._hb_anchor: Tuple[float, int] = (0.0, 0)

    # -- lifecycle -------------------------------------------------------------

    def _ensure_queue(self) -> asyncio.Queue:
        if self._queue is None:
            self._queue = asyncio.Queue(maxsize=self.queue_max)
        return self._queue

    async def start(self) -> None:
        """Spawn the supervised worker pool."""
        if self._started:
            return
        self._ensure_queue()
        loop = asyncio.get_running_loop()
        for wid in range(self.workers):
            self._inflight[wid] = None
            self._tasks.append(loop.create_task(self._supervise(wid)))
        self._started = True
        interval = resolve_serve_heartbeat_interval()
        if interval is not None and self._heartbeat is None:
            self._heartbeat = HeartbeatWriter(
                "serve",
                1.0,  # rescaled to the submitted count on every beat
                lambda: (float(self._committed), len(self.decisions)),
                interval_s=interval,
                file_stem="serve-%d" % os.getpid(),
                extra=self._heartbeat_extra,
            ).__enter__()

    async def drain(self) -> None:
        """Wait until every accepted event has been committed."""
        if self._queue is not None:
            await self._queue.join()

    async def stop(self) -> None:
        """Cancel the worker pool (drain first for a clean shutdown)."""
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._tasks = []
        self._started = False
        if self._heartbeat is not None:
            heartbeat, self._heartbeat = self._heartbeat, None
            heartbeat.__exit__(None, None, None)

    # -- ingress ---------------------------------------------------------------

    async def submit(self, event: Event) -> bool:
        """Offer one event; returns False when shed (never for feedback)."""
        queue = self._ensure_queue()
        etype = "feedback" if isinstance(event, FeedbackEvent) else (
            "direct" if event.is_direct else "broadcast"
        )
        self.metrics.inc("serve.events_total", type=etype)
        if (
            self.shed
            and isinstance(event, ProbeEvent)
            and queue.full()
        ):
            self.metrics.inc("serve.shed_total", type=etype)
            return False
        seq = self._next_seq
        self._next_seq += 1
        t_offer = _time.perf_counter()
        await queue.put((seq, event, t_offer))
        self.metrics.gauge_max("serve.queue_depth_peak", queue.qsize())
        if self.reqtrace is not None:
            # The enqueue span covers any backpressure wait for queue
            # space; queue_wait starts at the offer for the same reason.
            self.reqtrace.record(
                "enqueue",
                seq,
                None,
                t_offer,
                _time.perf_counter() - t_offer,
                mac=event.mac,
                etype=etype,
            )
        return True

    # -- workers ---------------------------------------------------------------

    async def _supervise(self, wid: int) -> None:
        while True:
            try:
                await self._worker_loop(wid)
            except asyncio.CancelledError:
                raise
            except Exception:
                self.metrics.inc("serve.worker_restarts")
                self.events_log.append(
                    {"kind": "serve.worker_restart", "worker": wid}
                )
                item = self._inflight.get(wid)
                self._inflight[wid] = None
                if item is None:
                    continue
                if item.applying:
                    # The core raised mid-apply: the commit's finally
                    # clause already released the sequence slot, so just
                    # count the casualty and move on.
                    self.metrics.inc("serve.events_failed")
                    self._queue.task_done()
                    continue
                # Transport-stage crash: the core never saw the event —
                # apply it now so nothing (feedback especially) is lost.
                await self._commit(item.seq, item.event, wid=wid)
                self._queue.task_done()

    async def _worker_loop(self, wid: int) -> None:
        queue = self._ensure_queue()
        while True:
            seq, event, t_offer = await queue.get()
            t_pick = _time.perf_counter()
            self.metrics.observe(
                "serve.queue_wait_us",
                (t_pick - t_offer) * 1e6,
                buckets=STAGE_BUCKETS_US,
            )
            if self.reqtrace is not None:
                self.reqtrace.record(
                    "queue_wait", seq, wid, t_offer, t_pick - t_offer
                )
            item = _Inflight(seq, event)
            self._inflight[wid] = item
            if self._fault_hook is not None:
                # Transport-stage processing (parse/validate stand-in);
                # the test fault injector raises here.
                self._fault_hook(wid, event)
            await self._commit(seq, event, item, wid=wid)
            self._inflight[wid] = None
            queue.task_done()

    async def _commit(
        self,
        seq: int,
        event: Event,
        item: Optional[_Inflight] = None,
        wid: Optional[int] = None,
    ) -> None:
        t_gate = _time.perf_counter()
        await self._gate.wait(seq)
        if item is not None:
            item.applying = True
        start = _time.perf_counter()
        self.metrics.observe(
            "serve.commit_wait_us",
            (start - t_gate) * 1e6,
            buckets=STAGE_BUCKETS_US,
        )
        try:
            decision = self.core.handle(event)
        finally:
            self._gate.done(seq)
        t_rank = _time.perf_counter()
        elapsed_us = (t_rank - start) * 1e6
        if isinstance(event, ProbeEvent):
            self.metrics.observe(
                "serve.select_latency_us",
                elapsed_us,
                buckets=LATENCY_BUCKETS_US,
            )
            self.metrics.timer_add("serve.select", elapsed_us / 1e6)
            if self._sample_latencies:
                self.latencies_us.append(elapsed_us)
        self._committed += 1
        if decision is not None:
            self.decisions.append(decision)
            self.metrics.inc("serve.decisions_total", kind=decision.kind)
            self.metrics.inc("serve.ssids_offered", len(decision.ssids))
            if self._on_decision is not None:
                self._on_decision(decision)
        t_apply = _time.perf_counter()
        self.metrics.observe(
            "serve.apply_us",
            (t_apply - t_rank) * 1e6,
            buckets=LATENCY_BUCKETS_US,
        )
        if self.reqtrace is not None:
            self.reqtrace.record(
                "commit_wait", seq, wid, t_gate, start - t_gate
            )
            self.reqtrace.record(
                "rank",
                seq,
                wid,
                start,
                t_rank - start,
                kind=None if decision is None else decision.kind,
            )
            self.reqtrace.record("apply", seq, wid, t_rank, t_apply - t_rank)

    # -- bookkeeping -----------------------------------------------------------

    def _heartbeat_extra(self) -> dict:
        """Serving vitals for one heartbeat record (read-only).

        Runs on the heartbeat thread: every value is a plain read of
        int/float attributes or histogram buckets the event loop writes
        — a torn read smears one beat, never the service.
        """
        now = _time.perf_counter()
        hist = self.metrics.histogram("serve.select_latency_us")
        probes = hist.count if hist is not None else 0
        last_wall, last_probes = self._hb_anchor
        rate = None
        if last_wall and now > last_wall:
            rate = round((probes - last_probes) / (now - last_wall), 1)
        self._hb_anchor = (now, probes)
        submitted = self._next_seq
        shed = self.shed_total()
        offered = submitted + shed
        if self._heartbeat is not None:
            # Fraction in the base record = committed / submitted.
            self._heartbeat.duration_s = float(max(1, submitted))
        return {
            "kind": "serve",
            "workers": self.workers,
            "events": int(offered),
            "committed": int(self._committed),
            "probes_per_s": rate,
            "queue_depth": self._queue.qsize() if self._queue else 0,
            "queue_max": self.queue_max,
            "shed": int(shed),
            "shed_fraction": (
                round(shed / offered, 6) if offered else 0.0
            ),
            "p50_us": estimate_percentile(hist, 50) if hist else None,
            "p99_us": estimate_percentile(hist, 99) if hist else None,
            "worker_restarts": int(
                self.metrics.counter_value("serve.worker_restarts")
            ),
        }

    def finish(self) -> None:
        """Fold the core's deterministic counters into the registry."""
        stats = self.core.stats()
        self.metrics.gauge_set("serve.db_size", stats["db_size"])
        self.metrics.gauge_set("serve.clients", stats["clients"])
        self.metrics.gauge_set("serve.pb_size", stats["pb_size"])
        self.metrics.gauge_set("serve.fb_size", stats["fb_size"])
        hits, misses = stats["rank_cache_hits"], stats["rank_cache_misses"]
        if hits:
            self.metrics.inc("serve.rank_cache", hits, result="hit")
        if misses:
            self.metrics.inc("serve.rank_cache", misses, result="miss")
        if self.reqtrace is not None:
            self.metrics.gauge_set(
                "reqtrace.records", float(len(self.reqtrace))
            )
            self.metrics.gauge_set(
                "reqtrace.dropped", float(self.reqtrace.dropped)
            )
            self.metrics.gauge_set(
                "reqtrace.cap", float(self.reqtrace.max_records)
            )
            self.reqtrace.flush()

    def shed_total(self) -> float:
        """Total events shed so far (all types)."""
        return sum(
            self.metrics.counters_named("serve.shed_total").values()
        )


async def serve_stream(
    service: RankingService, events: Iterable[Event]
) -> List[BurstDecision]:
    """Run one bounded stream to completion through ``service``."""
    stream_start = _time.perf_counter()
    await service.start()
    try:
        for event in events:
            await service.submit(event)
        await service.drain()
    finally:
        await service.stop()
    # Wall time of the whole stream (quarantined in ``timers``): what
    # ``obs summarize`` divides the probe count by for probes/s.
    service.metrics.timer_add(
        "serve.stream", _time.perf_counter() - stream_start
    )
    service.finish()
    return service.decisions


def serve_metrics_doc(
    service: RankingService,
    tag: str = "serve",
    seed: int = 0,
    venue: Optional[str] = None,
) -> dict:
    """One serving run as a standard ``repro.metrics/v1`` artefact.

    The same document shape the batch executor writes, so the whole
    ``obs`` toolchain — ``summarize``, ``prom``, the schema validator —
    works on serving runs unchanged.
    """
    snapshot = service.metrics.to_dict()
    return {
        "schema": METRICS_SCHEMA,
        "workers": service.workers,
        "run_count": 1,
        "merged": snapshot,
        "runs": [
            {
                "tag": tag,
                "attacker": "serve",
                "venue": venue,
                "seed": seed,
                "metrics": snapshot,
                "events": list(service.events_log),
            }
        ],
    }


def run_stream(
    core: RankingCore,
    events: Iterable[Event],
    workers: Optional[int] = None,
    queue_max: Optional[int] = None,
    shed: bool = False,
    metrics: Optional[MetricsRegistry] = None,
    sample_latencies: bool = False,
    req_trace: Optional[bool] = None,
) -> RankingService:
    """Synchronous convenience: serve ``events``, return the service.

    The returned service carries the decision list, the metrics
    registry and (optionally) the raw latency samples.
    """
    service = RankingService(
        core,
        workers=workers,
        queue_max=queue_max,
        shed=shed,
        metrics=metrics,
        sample_latencies=sample_latencies,
        req_trace=req_trace,
    )
    asyncio.run(serve_stream(service, events))
    return service
