"""Recording the inline simulator's probe stream and decisions.

The differential harness needs two things from one simulated attack
run: the exact sequence of attacker-visible events (probes heard,
associations received — post frame loss, post outage, in medium
delivery order) and the exact sequence of burst decisions the inline
attacker made in response.  :class:`RecordingCityHunter` is a
byte-for-byte passthrough subclass of the real attacker that logs both
at the strategy-hook boundary — the same boundary
:class:`~repro.serve.core.RankingCore` implements — without perturbing
a single draw, weight or frame (asserted by the differential tests,
which compare its session against an unrecorded run's).

:func:`record_probe_stream` packages the common case: build a venue
scenario around a recording attacker, run it, and hand back the event
stream, the decision log and the scenario parameters needed to seed an
equivalent :class:`~repro.serve.core.RankingCore`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.session import SentSsid
from repro.city.model import City
from repro.core.config import CityHunterConfig
from repro.core.hunter import CityHunter
from repro.dot11.mac import random_ap_mac
from repro.experiments.calibration import venue_profile
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.geo.point import Point
from repro.serve.core import RankingCore
from repro.serve.events import BurstDecision, Event, FeedbackEvent, ProbeEvent
from repro.wigle.database import WigleDatabase


@dataclass
class StreamRecorder:
    """Ordered logs of one attacker's inputs and outputs."""

    events: List[Event] = field(default_factory=list)
    decisions: List[BurstDecision] = field(default_factory=list)


class RecordingCityHunter(CityHunter):
    """The advanced attacker, with a wire-tap at the hook boundary."""

    name = "city-hunter-recording"

    def __init__(self, *args, recorder: StreamRecorder, **kwargs):
        super().__init__(*args, **kwargs)
        self._recorder = recorder

    def on_broadcast_probe(self, client, time):
        self._recorder.events.append(ProbeEvent(str(client), time))
        super().on_broadcast_probe(client, time)

    def on_direct_probe(self, client, ssid, time):
        self._recorder.events.append(ProbeEvent(str(client), time, ssid))
        super().on_direct_probe(client, ssid, time)

    def on_hit(self, client, ssid, time):
        self._recorder.events.append(FeedbackEvent(str(client), time, ssid))
        super().on_hit(client, ssid, time)

    def send_ssid_burst(self, client, metas, time):
        if metas:
            self._recorder.decisions.append(
                BurstDecision(str(client), time, "burst", tuple(metas))
            )
        super().send_ssid_burst(client, metas, time)

    def send_mimic(self, client, ssid, time):
        self._recorder.decisions.append(
            BurstDecision(
                str(client),
                time,
                "mimic",
                (SentSsid(ssid, origin="mimic", bucket="mimic"),),
            )
        )
        super().send_mimic(client, ssid, time)


@dataclass
class SimRecording:
    """One recorded scenario: the stream, the answers, the parameters."""

    events: List[Event]
    decisions: List[BurstDecision]
    venue: str
    seed: int
    position: Point
    config: CityHunterConfig
    result: ExperimentResult

    def seeded_core(
        self, wigle: WigleDatabase, city: City
    ) -> RankingCore:
        """A service core seeded identically to the recorded attacker."""
        return RankingCore.seeded(
            wigle,
            city.heatmap,
            self.position,
            config=self.config,
            seed=self.seed,
        )


def record_probe_stream(
    city: City,
    wigle: WigleDatabase,
    venue: str = "canteen",
    duration: float = 300.0,
    seed: int = 7,
    config: Optional[CityHunterConfig] = None,
    fidelity: str = "frame",
) -> SimRecording:
    """Run one recorded venue scenario and return its stream."""
    config = config if config is not None else CityHunterConfig()
    recorder = StreamRecorder()
    profile = venue_profile(venue)
    position_box: List[Point] = []

    def factory(sim, medium, scenario_venue):
        position_box.append(scenario_venue.region.center)
        return RecordingCityHunter(
            random_ap_mac(sim.rngs.stream("attacker_mac")),
            scenario_venue.region.center,
            medium,
            wigle=wigle,
            heatmap=city.heatmap,
            config=config,
            recorder=recorder,
        )

    result = run_experiment(
        city,
        wigle,
        factory,
        profile,
        duration=duration,
        seed=seed,
        fidelity=fidelity,
    )
    return SimRecording(
        events=recorder.events,
        decisions=recorder.decisions,
        venue=venue,
        seed=seed,
        position=position_box[0],
        config=config,
        result=result,
    )
