"""The synchronous probe-stream ranking core.

This is the City-Hunter attack loop (paper Section IV) extracted from
the batch simulator into a pure event-in / decision-out state machine:
feed it :class:`~repro.serve.events.ProbeEvent` and
:class:`~repro.serve.events.FeedbackEvent` objects in stream order and
it emits :class:`~repro.serve.events.BurstDecision` objects, mutating
the same :class:`~repro.core.ssid_database.WeightedSsidDatabase`,
:class:`~repro.core.adaptive.AdaptiveSplit` and
:class:`~repro.analysis.session.AttackSession` machinery the inline
:class:`~repro.core.hunter.CityHunter` drives from the medium.

**Equivalence contract.**  For the same seeded database, the same RNG
stream and the same event sequence, :meth:`RankingCore.handle` produces
decisions bit-identical to the inline attacker's transmissions — the
handlers below mirror :meth:`repro.attacks.base.RogueAp.receive` plus
the three ``CityHunter`` hooks *operation for operation*, including the
order of session bookkeeping around each mutation.  The differential
harness (``tests/test_serve_differential.py``) drives both paths with
recorded simulator streams and asserts exactly that, so any divergence
introduced here fails CI rather than silently forking the semantics.

The core is deliberately synchronous and single-threaded: one event, one
state transition, no awaits.  Concurrency (queues, workers, shedding)
lives in :mod:`repro.serve.service`, which commits events through this
core in ingress order.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

import numpy as np

from repro.analysis.session import AttackSession, SentSsid
from repro.city.heatmap import HeatMap
from repro.core.adaptive import AdaptiveSplit
from repro.core.config import CityHunterConfig
from repro.core.seeding import SeedingStats, seed_database
from repro.core.selection import select_for_client
from repro.core.ssid_database import WeightedSsidDatabase
from repro.faults.plan import WigleFaultParams
from repro.geo.point import Point
from repro.serve.events import BurstDecision, Event, FeedbackEvent, ProbeEvent
from repro.util.rng import derive_seed
from repro.wigle.database import WigleDatabase

RNG_STREAM = "cityhunter"
"""Name of the ghost-pick RNG substream — the same name the inline
attacker claims from ``sim.rngs``, so a core seeded with the scenario
seed replays the identical pick sequence."""

_EMPTY_SET: frozenset = frozenset()


class RankingCore:
    """Per-node ranking state: shared SSID store + per-client sessions.

    The SSID store (``db``), the adaptive PB/FB split and the ghost-pick
    RNG are *shared* across every client the node serves — exactly as in
    the inline attacker, where one database serves every probe the
    medium delivers.  Per-client state (untried lists, session records)
    is keyed by MAC.
    """

    def __init__(
        self,
        db: WeightedSsidDatabase,
        config: Optional[CityHunterConfig] = None,
        rng: Optional[np.random.Generator] = None,
        session: Optional[AttackSession] = None,
    ):
        self.config = config if config is not None else CityHunterConfig()
        self.db = db
        self.session = session if session is not None else AttackSession()
        self.split = AdaptiveSplit(
            total=self.config.burst_total,
            initial_pb=self.config.initial_pb,
            min_size=self.config.min_buffer,
            enabled=self.config.adaptive,
        )
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._tried: Dict[str, Set[str]] = {}
        self.seeding_stats: Optional[SeedingStats] = None
        # Deterministic serving counters (pure functions of the stream).
        self.events_handled = 0
        self.rank_cache_hits = 0
        self.rank_cache_misses = 0
        # Bumped on every db mutation; a selection that runs with the
        # version unchanged reuses the incremental ranking lists with
        # zero maintenance done since — the "cache hit" of the
        # bisect-based ranking from the hot-path PR.
        self._db_version = 0
        self._version_at_last_select = -1

    @classmethod
    def seeded(
        cls,
        wigle: WigleDatabase,
        heatmap: Optional[HeatMap],
        position: Point,
        config: Optional[CityHunterConfig] = None,
        seed: int = 0,
        use_heat: bool = True,
        wigle_faults: Optional[WigleFaultParams] = None,
        wigle_fault_seed: int = 0,
    ) -> "RankingCore":
        """A core seeded exactly like an inline attacker at ``position``.

        ``seed`` is the *scenario* seed: the ghost-pick RNG is derived
        through the same ``(seed, "cityhunter")`` fan-out the
        simulation's :class:`~repro.util.rng.RngRegistry` performs, so a
        service replaying a recorded stream from a seed-``s`` scenario
        consumes the identical pick sequence.
        """
        config = config if config is not None else CityHunterConfig()
        stats = SeedingStats()
        db = seed_database(
            wigle,
            heatmap,
            position,
            config,
            use_heat=use_heat,
            faults=wigle_faults,
            fault_seed=wigle_fault_seed,
            stats=stats,
        )
        rng = np.random.default_rng(derive_seed(seed, RNG_STREAM))
        core = cls(db, config=config, rng=rng)
        core.seeding_stats = stats
        return core

    @property
    def db_size(self) -> int:
        return len(self.db)

    # -- event handlers --------------------------------------------------------
    #
    # Each handler is a line-for-line mirror of the inline path:
    # RogueAp.receive's session bookkeeping, then the CityHunter hook.

    def handle(self, event: Event) -> Optional[BurstDecision]:
        """Apply one event; returns the decision it produced, if any."""
        self.events_handled += 1
        if isinstance(event, ProbeEvent):
            if event.is_direct:
                return self._handle_direct(event)
            return self._handle_broadcast(event)
        if isinstance(event, FeedbackEvent):
            self._handle_feedback(event)
            return None
        raise TypeError("unknown event type %r" % type(event).__name__)

    def _handle_broadcast(self, event: ProbeEvent) -> Optional[BurstDecision]:
        # receive(): probe observed first, then the strategy hook.
        self.session.observe_probe(event.mac, event.time, direct=False)
        # CityHunter.on_broadcast_probe:
        if self.config.untried_lists:
            tried = self._tried.setdefault(event.mac, set())
        else:
            tried = _EMPTY_SET
        if self._db_version == self._version_at_last_select:
            self.rank_cache_hits += 1
        else:
            self.rank_cache_misses += 1
            self._version_at_last_select = self._db_version
        metas = select_for_client(
            self.db, tried, self.split, self.config, self._rng, now=event.time
        )
        if not metas:
            return None
        if self.config.untried_lists:
            tried.update(m.ssid for m in metas)
        # send_ssid_burst(): session first, frames after.
        self.session.record_sent(event.mac, event.time, metas)
        return BurstDecision(event.mac, event.time, "burst", tuple(metas))

    def _handle_direct(self, event: ProbeEvent) -> BurstDecision:
        self.session.observe_probe(event.mac, event.time, direct=True)
        # CityHunter.on_direct_probe: KARMA reflection + online update.
        ssid = event.ssid
        if ssid in self.db:
            self.db.bump_weight(ssid, self.config.direct_repeat_bump)
        else:
            self.db.add(
                ssid,
                self.config.direct_initial_weight,
                origin="direct",
                time=event.time,
            )
            self.session.record_db_size(event.time, len(self.db))
        self._db_version += 1
        entry = self.db.get(ssid)
        entry.direct_seen = True
        entry.last_direct_seen = event.time
        # send_mimic(): session first, frame after.
        self.session.record_mimic(event.mac, event.time, ssid)
        return BurstDecision(
            event.mac,
            event.time,
            "mimic",
            (SentSsid(ssid, origin="mimic", bucket="mimic"),),
        )

    def _handle_feedback(self, event: FeedbackEvent) -> None:
        # receive() AssocRequest path: the session records the hit
        # (first association wins), then the strategy hook adapts.
        record = self.session.record_hit(event.mac, event.time, event.ssid)
        # CityHunter.on_hit:
        bucket = record.hit_bucket
        broadcast_hit = bucket is not None and bucket != "mimic"
        self.db.record_hit(
            event.ssid,
            event.time,
            weight_bonus=self.config.hit_weight_bonus,
            fresh=broadcast_hit,
        )
        self.db.trim_recency(self.config.recency_cap)
        self._db_version += 1
        if broadcast_hit:
            self.split.on_hit(bucket)

    # -- introspection ----------------------------------------------------------

    def stats(self) -> dict:
        """Deterministic serving counters (pure functions of the stream)."""
        return {
            "events_handled": self.events_handled,
            "db_size": len(self.db),
            "clients": len(self.session.clients),
            "rank_cache_hits": self.rank_cache_hits,
            "rank_cache_misses": self.rank_cache_misses,
            "pb_size": self.split.pb_size,
            "fb_size": self.split.fb_size,
        }
