"""UJI-shaped JSONL probe-trace adapter.

Real capture pipelines deliver timestamped probe-request records — the
UJI Probes dataset (Bravenec et al., PAPERS.md) is the reference shape:
one JSON object per line with a timestamp, a source MAC and an SSID
field that is empty for broadcast probes.  This module adapts such
files into the serving layer's event types, tolerantly: torn or
malformed lines (a capture process killed mid-write, a corrupted
export) are *skipped and counted*, never fatal — the same reader
discipline :mod:`repro.obs.epochs` applies to shard telemetry.

Accepted record fields (first match wins):

* time     — ``ts`` | ``time`` | ``timestamp`` (seconds, number)
* MAC      — ``mac`` | ``src`` | ``mac_address``
* SSID     — ``ssid`` (missing/empty/null = broadcast probe)
* kind     — ``type`` | ``kind``: ``assoc``/``feedback`` records become
  :class:`~repro.serve.events.FeedbackEvent` (they need an SSID);
  anything else (``probe-req``, ``probe``, absent) is a probe.

Decision output goes the other way: :func:`write_decisions` exports a
decision stream as JSONL rows for diffing and artefact upload.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import List, Tuple, Union

from repro.serve.events import Event, FeedbackEvent, ProbeEvent

_TIME_KEYS = ("ts", "time", "timestamp")
_MAC_KEYS = ("mac", "src", "mac_address")
_KIND_KEYS = ("type", "kind")

_FEEDBACK_KINDS = ("assoc", "association", "feedback", "hit")


@dataclass
class TraceStats:
    """What the tolerant reader skipped, and why."""

    lines: int = 0
    parsed: int = 0
    skipped: int = 0
    reasons: List[Tuple[int, str]] = field(default_factory=list)

    def skip(self, line_no: int, reason: str) -> None:
        self.skipped += 1
        self.reasons.append((line_no, reason))


def _first(doc: dict, keys) -> object:
    for key in keys:
        if key in doc:
            return doc[key]
    return None


def parse_trace_record(doc: object) -> Event:
    """One JSON record -> event; raises ``ValueError`` when malformed."""
    if not isinstance(doc, dict):
        raise ValueError("record is not an object")
    raw_time = _first(doc, _TIME_KEYS)
    if not isinstance(raw_time, (int, float)) or isinstance(raw_time, bool):
        raise ValueError("missing or non-numeric timestamp")
    mac = _first(doc, _MAC_KEYS)
    if not isinstance(mac, str) or not mac:
        raise ValueError("missing source MAC")
    ssid = doc.get("ssid")
    if ssid is not None and not isinstance(ssid, str):
        raise ValueError("non-string ssid")
    kind = _first(doc, _KIND_KEYS)
    if isinstance(kind, str) and kind.lower() in _FEEDBACK_KINDS:
        if not ssid:
            raise ValueError("feedback record without ssid")
        return FeedbackEvent(mac.lower(), float(raw_time), ssid)
    return ProbeEvent(mac.lower(), float(raw_time), ssid or None)


def load_trace(
    path: Union[str, pathlib.Path],
) -> Tuple[List[Event], TraceStats]:
    """Parse one JSONL trace file, skipping torn/malformed lines."""
    stats = TraceStats()
    events: List[Event] = []
    with open(path) as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            stats.lines += 1
            try:
                doc = json.loads(line)
            except ValueError:
                stats.skip(line_no, "torn or invalid JSON")
                continue
            try:
                events.append(parse_trace_record(doc))
            except ValueError as exc:
                stats.skip(line_no, str(exc))
    stats.parsed = len(events)
    return events, stats


def write_decisions(
    decisions, path: Union[str, pathlib.Path]
) -> pathlib.Path:
    """Export a decision stream as canonical JSONL rows."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        for decision in decisions:
            fh.write(json.dumps(decision.as_row(), sort_keys=True) + "\n")
    return path


def write_trace(
    events, path: Union[str, pathlib.Path]
) -> pathlib.Path:
    """Export events as a UJI-shaped JSONL trace (fixture generation)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        for event in events:
            fh.write(json.dumps(trace_record(event), sort_keys=True) + "\n")
    return path


def trace_record(event: Event) -> dict:
    """The UJI-shaped JSON object for one event."""
    if isinstance(event, FeedbackEvent):
        return {
            "ts": event.time,
            "mac": event.mac,
            "ssid": event.ssid,
            "type": "assoc",
        }
    if isinstance(event, ProbeEvent):
        return {
            "ts": event.time,
            "mac": event.mac,
            "ssid": event.ssid or "",
            "type": "probe-req",
        }
    raise TypeError("unknown event type %r" % type(event).__name__)
