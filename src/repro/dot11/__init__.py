"""802.11 substrate: addresses, frames, timing, and the radio medium.

This package models exactly as much of IEEE 802.11 as the attacks in the
paper observe: management frames for active scanning and association, the
MinChannelTime listening window that caps how many probe responses a
client can receive per scan, and a disc-propagation radio medium whose
stations may move.
"""

from repro.dot11.capabilities import Security, NetworkProfile
from repro.dot11.channel import Channel, ALL_2G_CHANNELS
from repro.dot11.frames import (
    AssocRequest,
    AssocResponse,
    AuthRequest,
    AuthResponse,
    Beacon,
    Deauth,
    Frame,
    ProbeRequest,
    ProbeResponse,
)
from repro.dot11.mac import MacAddress, random_client_mac, random_ap_mac
from repro.dot11.medium import Medium, Station
from repro.dot11.propagation import DiscPropagation, LogDistanceShadowing, Propagation
from repro.dot11.ssid import Ssid, validate_ssid
from repro.dot11.timing import ScanTiming

__all__ = [
    "Security",
    "NetworkProfile",
    "Channel",
    "ALL_2G_CHANNELS",
    "Frame",
    "Beacon",
    "ProbeRequest",
    "ProbeResponse",
    "AuthRequest",
    "AuthResponse",
    "AssocRequest",
    "AssocResponse",
    "Deauth",
    "MacAddress",
    "random_client_mac",
    "random_ap_mac",
    "Medium",
    "Station",
    "DiscPropagation",
    "LogDistanceShadowing",
    "Propagation",
    "Ssid",
    "validate_ssid",
    "ScanTiming",
]
