"""Propagation models for the radio medium.

The default :class:`DiscPropagation` is the classic unit-disc model the
experiments are calibrated against.  :class:`LogDistanceShadowing` adds
the standard log-distance path-loss with lognormal shadowing, giving a
soft coverage edge: delivery probability decays with distance instead of
cutting off.  Both answer one question — *does this frame, sent with
this nominal range, reach a receiver at this distance?*
"""

from __future__ import annotations

import math
from typing import Protocol

import numpy as np


class Propagation(Protocol):
    """Decides frame delivery as a function of distance."""

    deterministic: bool
    """True when :meth:`delivered` never consumes the RNG.  The medium's
    spatial index may then skip far-away candidates without perturbing
    the draw sequence; stochastic models force the brute-force scan so
    every station consumes its draw in attach order."""

    def delivered(
        self, distance: float, tx_range: float, rng: np.random.Generator
    ) -> bool:
        """Whether a frame crosses ``distance`` given nominal ``tx_range``."""
        ...


class DiscPropagation:
    """Deterministic unit-disc coverage: in range = delivered."""

    deterministic = True

    def delivered(
        self, distance: float, tx_range: float, rng: np.random.Generator
    ) -> bool:
        return distance <= tx_range


class LogDistanceShadowing:
    """Log-distance path loss with lognormal shadowing.

    The nominal ``tx_range`` is interpreted as the distance at which the
    median received power sits exactly at the decoding threshold; the
    delivery probability at distance ``d`` is then

    ``P = Q((10 * n * log10(d / tx_range)) / sigma)``

    with path-loss exponent ``n`` and shadowing deviation ``sigma`` (dB).
    At ``d = tx_range`` delivery is a coin flip; well inside it is
    near-certain; the transition width scales with ``sigma / n``.
    """

    deterministic = False

    def __init__(self, exponent: float = 3.0, sigma_db: float = 4.0):
        if exponent <= 0:
            raise ValueError("path-loss exponent must be positive")
        if sigma_db <= 0:
            raise ValueError("shadowing sigma must be positive")
        self.exponent = exponent
        self.sigma_db = sigma_db

    def _delivery_probability(self, distance: float, tx_range: float) -> float:
        if distance <= 0:
            return 1.0
        margin_db = -10.0 * self.exponent * math.log10(distance / tx_range)
        # Q-function via erfc.
        return 0.5 * math.erfc(-margin_db / (self.sigma_db * math.sqrt(2.0)))

    def delivered(
        self, distance: float, tx_range: float, rng: np.random.Generator
    ) -> bool:
        return rng.random() < self._delivery_probability(distance, tx_range)
