"""Management frame types.

Only the fields the attacks actually read are modelled; frames are
``__slots__`` classes because the big Fig. 5 sweeps create millions of
them.  ``src``/``dst`` are MAC strings; ``dst`` may be the broadcast
address.
"""

from __future__ import annotations

from typing import Optional

from repro.dot11.capabilities import Security
from repro.dot11.mac import BROADCAST_MAC, MacAddress
from repro.dot11.ssid import Ssid


class Frame:
    """Base class for all management frames."""

    __slots__ = ("src", "dst")

    kind = "frame"

    def __init__(self, src: MacAddress, dst: MacAddress = BROADCAST_MAC):
        self.src = src
        self.dst = dst

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.src} -> {self.dst}>"


class Beacon(Frame):
    """Periodic AP announcement."""

    __slots__ = ("ssid", "security", "channel")

    kind = "beacon"

    def __init__(
        self,
        src: MacAddress,
        ssid: Ssid,
        security: Security = Security.OPEN,
        channel: int = 6,
    ):
        super().__init__(src, BROADCAST_MAC)
        self.ssid = ssid
        self.security = security
        self.channel = channel


class ProbeRequest(Frame):
    """Client scan probe.

    ``ssid is None`` means a *broadcast* probe (wildcard SSID element) —
    the modern, privacy-preserving kind.  A non-None ``ssid`` is a
    *direct* probe revealing one PNL entry, the kind KARMA feeds on.
    ``channel`` is the channel the probe was transmitted on; an AP only
    hears probes on its own channel.
    """

    __slots__ = ("ssid", "channel")

    kind = "probe_req"

    def __init__(
        self, src: MacAddress, ssid: Optional[Ssid] = None, channel: int = 6
    ):
        super().__init__(src, BROADCAST_MAC)
        self.ssid = ssid
        self.channel = channel

    @property
    def is_broadcast_probe(self) -> bool:
        """True for a wildcard (SSID-less) probe request."""
        return self.ssid is None


class ProbeResponse(Frame):
    """AP (or evil twin) reply advertising one SSID."""

    __slots__ = ("ssid", "security", "channel")

    kind = "probe_resp"

    def __init__(
        self,
        src: MacAddress,
        dst: MacAddress,
        ssid: Ssid,
        security: Security = Security.OPEN,
        channel: int = 6,
    ):
        super().__init__(src, dst)
        self.ssid = ssid
        self.security = security
        self.channel = channel


class AuthRequest(Frame):
    """Open-system authentication, first frame."""

    __slots__ = ()

    kind = "auth_req"


class AuthResponse(Frame):
    """Open-system authentication, second frame."""

    __slots__ = ("success",)

    kind = "auth_resp"

    def __init__(self, src: MacAddress, dst: MacAddress, success: bool = True):
        super().__init__(src, dst)
        self.success = success


class AssocRequest(Frame):
    """Association request to an SSID the client decided to join."""

    __slots__ = ("ssid",)

    kind = "assoc_req"

    def __init__(self, src: MacAddress, dst: MacAddress, ssid: Ssid):
        super().__init__(src, dst)
        self.ssid = ssid


class AssocResponse(Frame):
    """Association response completing the join."""

    __slots__ = ("ssid", "success")

    kind = "assoc_resp"

    def __init__(
        self, src: MacAddress, dst: MacAddress, ssid: Ssid, success: bool = True
    ):
        super().__init__(src, dst)
        self.ssid = ssid
        self.success = success


class Deauth(Frame):
    """De-authentication frame (spoofable; used by the Sec. V-B extension)."""

    __slots__ = ("reason",)

    kind = "deauth"

    def __init__(self, src: MacAddress, dst: MacAddress, reason: int = 7):
        super().__init__(src, dst)
        self.reason = reason
