"""Network security capabilities.

The attack only cares about one distinction: an *open* network lets the
evil twin complete association and authentication automatically ("allows
further association and authentication to be implemented automatically
without user interaction", Section III-B); a protected network would
require credentials the attacker does not have.  We still model the
common modes so the synthetic city can have a realistic mix.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.dot11.ssid import Ssid, validate_ssid


class Security(enum.Enum):
    """Link-security mode advertised by an AP."""

    OPEN = "open"
    WEP = "wep"
    WPA2_PSK = "wpa2-psk"
    WPA2_ENTERPRISE = "wpa2-enterprise"

    @property
    def is_open(self) -> bool:
        """Whether an evil twin can complete association unaided."""
        return self is Security.OPEN


@dataclass(frozen=True)
class NetworkProfile:
    """An (SSID, security) pair as remembered in a phone's PNL.

    A phone will auto-join a probe-response SSID only when the SSID
    matches *and* the remembered profile is open (a protected profile
    would start a key handshake the evil twin cannot finish).
    """

    ssid: Ssid
    security: Security = Security.OPEN

    def __post_init__(self) -> None:
        validate_ssid(self.ssid)

    @property
    def auto_joinable(self) -> bool:
        """Whether an open evil twin advertising this SSID captures us."""
        return self.security.is_open
