"""2.4 GHz channel plan.

The prototype attacker camps on a single channel; clients cycle through
all channels during a scan.  Only the dwell-time arithmetic matters to the
attack, so a channel is just an ``int`` with a validity check.
"""

from __future__ import annotations

from typing import Tuple

Channel = int

ALL_2G_CHANNELS: Tuple[Channel, ...] = tuple(range(1, 14))
"""Channels 1-13 (ETSI plan, as in Hong Kong)."""

DEFAULT_ATTACK_CHANNEL: Channel = 6
"""The channel the rogue AP camps on."""


def validate_channel(channel: int) -> Channel:
    """Return ``channel`` if it is a legal 2.4 GHz channel, else raise."""
    if channel not in ALL_2G_CHANNELS:
        raise ValueError("invalid 2.4 GHz channel: %r" % channel)
    return channel
