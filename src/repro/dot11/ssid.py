"""SSIDs.

An SSID is a string of at most 32 bytes.  We keep them as ``str`` (the
whole reproduction uses ASCII-ish names) with an explicit validator used
at the trust boundaries: frames entering the attacker and records entering
the WiGLE registry.
"""

from __future__ import annotations

Ssid = str

MAX_SSID_BYTES = 32


def validate_ssid(ssid: str) -> str:
    """Return ``ssid`` unchanged if it is a legal SSID, else raise.

    Legal means non-empty and at most 32 bytes of UTF-8 — the 802.11
    element-length limit.
    """
    if not isinstance(ssid, str):
        raise TypeError("SSID must be a str, got %r" % type(ssid).__name__)
    if not ssid:
        raise ValueError("SSID must be non-empty")
    if len(ssid.encode("utf-8")) > MAX_SSID_BYTES:
        raise ValueError("SSID exceeds 32 bytes: %r" % ssid)
    return ssid
