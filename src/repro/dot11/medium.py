"""The shared radio medium.

Stations register with the medium; a transmission is delivered, after its
airtime, to every registered station inside the sender's transmission
range (disc propagation) — or to the addressed station only, for unicast
frames.  Positions are evaluated lazily via ``position_at(now)`` so moving
stations need no position-update events.

Two fidelity modes share all delivery logic:

* ``frame``  — every probe response in a burst is its own scheduled
  delivery event (used by tests and small runs);
* ``burst``  — one event delivers the whole response burst and the
  receiver applies the same window arithmetic analytically (used by the
  12-hour Fig. 5 sweeps).  An integration test pins the two modes to
  identical hit counts.

Loss comes in two independent flavours.  The uniform ``loss_rate``
drops each frame as an independent coin flip (``1.0`` is a total
blackout).  ``burst_loss`` additionally runs a
:class:`~repro.faults.gilbert.GilbertElliottChannel` whose losses
cluster the way real channel contention clusters them; it draws from a
dedicated ``faults.channel`` RNG stream and counts every drop under the
``faults.frames_lost`` metric, so enabling it never perturbs the
uniform channel's draws and a run without it is byte-identical to one
built before bursty loss existed.

Spatial index
-------------

Broadcast recipient resolution historically scanned every attached
station per frame — O(N) per probe, O(N²)-ish per urban-scale run.  The
medium now keeps a :class:`~repro.geo.grid.MutableSpatialGrid` of
station positions and resolves broadcast recipients from the cells
around the sender instead.  The index is *provably a pure accelerator*:

* Stations carrying a finite speed bound (``max_speed_mps``; phones
  derive it from their :meth:`~repro.mobility.base.PathMobility.max_speed`)
  are binned at their last refresh position.  A query at time ``now``
  inflates the search radius by ``v_max * (now - refresh_time)``, so a
  station that walked since the refresh can never be missed; candidates
  are then re-checked with the exact same distance predicate as the
  brute-force scan.  The grid is refreshed lazily, at most once per
  ``index_refresh_s`` of simulated time, rebinning only stations whose
  cell changed.
* Stations without a speed bound live in an always-scanned side set —
  exactness never depends on cooperative station classes.
* Candidates are re-ordered by attach sequence before delivery, so loss
  draws and ``receive`` callbacks happen in the identical order as the
  brute-force path.
* Stochastic propagation models (``propagation.deterministic`` False)
  consume one RNG draw per *candidate*, so the index automatically
  falls back to the brute-force scan for them.

``REPRO_MEDIUM_INDEX=off`` (or the ``index=False`` argument) forces the
brute-force path; the differential test suite pins the two paths to
bit-identical recipient sets, loss draws and run metrics.
"""

from __future__ import annotations

import os
from contextlib import nullcontext
from typing import ContextManager, Dict, List, Optional, Protocol, Sequence

from repro.dot11.frames import Frame, ProbeResponse
from repro.dot11.mac import BROADCAST_MAC, MacAddress
from repro.dot11.propagation import DiscPropagation, Propagation
from repro.faults.gilbert import GilbertElliottChannel
from repro.faults.plan import GilbertElliottParams
from repro.geo.grid import MutableSpatialGrid
from repro.geo.point import Point
from repro.sim.simulation import Simulation
from repro.util.rng import BufferedUniform
from repro.util.units import MANAGEMENT_FRAME_AIRTIME_S, PROBE_RESPONSE_AIRTIME_S

MEDIUM_INDEX_ENV = "REPRO_MEDIUM_INDEX"
_INDEX_OFF = ("0", "off", "false", "no")

DEFAULT_INDEX_CELL_M = 60.0
"""Grid cell edge — about one attacker radio range, so a broadcast
query touches a 3×3 block of cells."""

DEFAULT_INDEX_REFRESH_S = 0.5
"""Maximum staleness of cached station positions.  At walking speeds
(≤ 3 m/s) this costs at most 1.5 m of query-radius inflation."""


def resolve_medium_index(index: Optional[bool] = None) -> bool:
    """Whether the spatial index is enabled: explicit argument, else
    ``REPRO_MEDIUM_INDEX`` (default on; ``0/off/false/no`` disable)."""
    if index is not None:
        return index
    return os.environ.get(MEDIUM_INDEX_ENV, "").strip().lower() not in _INDEX_OFF


def reach_with_motion(reach: float, v_max: float, dt: float) -> float:
    """Radio reach inflated by the worst-case motion over ``dt`` seconds.

    A station binned (or bounded) ``dt`` seconds ago can have moved at
    most ``v_max * dt`` metres, so any query within this inflated radius
    is a guaranteed superset of the stations truly within ``reach`` —
    the invariant behind both the medium's lazy index refresh and the
    shard engine's candidate-sensor stripes
    (:mod:`repro.sim.shards.shard`).
    """
    if dt <= 0:
        return reach
    return reach + v_max * dt


class Station(Protocol):
    """What the medium requires of anything attached to it.

    Stations *may* additionally expose ``max_speed_mps`` (metres per
    second, or None when unbounded); the spatial index only bins
    stations whose displacement it can bound, and scans the rest.
    """

    mac: MacAddress

    def position_at(self, time: float) -> Point:
        """Location of the station at simulation time ``time``."""
        ...

    def receive(self, frame: Frame, time: float) -> None:
        """Handle one delivered frame."""
        ...


class Medium:
    """Disc-propagation broadcast medium with per-station TX range."""

    def __init__(
        self,
        sim: Simulation,
        fidelity: str = "frame",
        loss_rate: float = 0.0,
        propagation: Optional[Propagation] = None,
        burst_loss: Optional[GilbertElliottParams] = None,
        index: Optional[bool] = None,
        index_cell_m: float = DEFAULT_INDEX_CELL_M,
        index_refresh_s: float = DEFAULT_INDEX_REFRESH_S,
    ):
        if fidelity not in ("frame", "burst"):
            raise ValueError("fidelity must be 'frame' or 'burst', got %r" % fidelity)
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError("loss_rate must be in [0, 1], got %r" % loss_rate)
        if index_refresh_s < 0:
            raise ValueError(
                "index_refresh_s must be non-negative, got %r" % index_refresh_s
            )
        self.sim = sim
        self.fidelity = fidelity
        self.loss_rate = loss_rate
        self.propagation = propagation if propagation is not None else DiscPropagation()
        self._stations: Dict[MacAddress, Station] = {}
        self._ranges: Dict[MacAddress, float] = {}
        self._monitors: Dict[MacAddress, Station] = {}
        self._rng = sim.rngs.stream("medium")
        self.frames_delivered = 0
        self.fault_frames_lost = 0
        # Cached once: the lineage branch must cost a single falsy check
        # on the hot path when tracing is off.
        self._lineage = sim.lineage if sim.lineage.enabled else None
        self._burst_loss: Optional[GilbertElliottChannel] = None
        if burst_loss is not None:
            self._burst_loss = GilbertElliottChannel(
                burst_loss, sim.rngs.stream("faults.channel")
            )
        deterministic = bool(getattr(self.propagation, "deterministic", False))
        # With deterministic propagation the "medium" stream's only
        # consumer is the uniform loss draw, so it can be served from a
        # bit-identical batched buffer; a stochastic model interleaves
        # its own draws on the same stream and forbids read-ahead.
        self._uniform: Optional[BufferedUniform] = (
            BufferedUniform(self._rng) if deterministic else None
        )
        self._index_on = resolve_medium_index(index) and deterministic
        self._seq: Dict[MacAddress, int] = {}
        self._seq_next = 0
        self._grid: Optional[MutableSpatialGrid[MacAddress]] = None
        self._speeds: Dict[MacAddress, float] = {}
        self._unindexed: Dict[MacAddress, Station] = {}
        self._vmax = 0.0
        self._grid_time = float("-inf")
        self._refresh_s = index_refresh_s
        if self._index_on:
            self._grid = MutableSpatialGrid(index_cell_m)
        self.index_queries = 0
        self.index_candidates = 0
        self.index_refreshes = 0

    @property
    def burst_loss(self) -> Optional[GilbertElliottChannel]:
        """The live Gilbert–Elliott chain (None without channel faults)."""
        return self._burst_loss

    @property
    def index_active(self) -> bool:
        """Whether broadcast recipients are resolved through the grid."""
        return self._index_on

    # -- membership -------------------------------------------------------

    def attach(
        self, station: Station, tx_range: float, promiscuous: bool = False
    ) -> None:
        """Register ``station`` with transmission range ``tx_range`` metres.

        ``promiscuous`` stations additionally overhear every frame in
        radio range regardless of its destination address — monitor mode,
        as used by the evil-twin detectors.
        """
        if tx_range <= 0:
            raise ValueError("tx_range must be positive, got %r" % tx_range)
        mac = station.mac
        if mac not in self._seq:
            # Dict insertion order is delivery order; a re-attach keeps
            # its original dict slot, so it keeps its sequence too.
            self._seq[mac] = self._seq_next
            self._seq_next += 1
        self._stations[mac] = station
        self._ranges[mac] = tx_range
        if promiscuous:
            self._monitors[mac] = station
        if self._index_on:
            self._index_discard(mac)
            self._index_add(station)

    def detach(self, mac: MacAddress) -> None:
        """Remove a station; unknown MACs are ignored (already gone)."""
        self._stations.pop(mac, None)
        self._ranges.pop(mac, None)
        self._monitors.pop(mac, None)
        self._seq.pop(mac, None)
        if self._index_on:
            self._index_discard(mac)

    def is_attached(self, mac: MacAddress) -> bool:
        """Whether a station with this MAC is currently registered."""
        return mac in self._stations

    @property
    def station_count(self) -> int:
        """Number of attached stations."""
        return len(self._stations)

    # -- spatial index ----------------------------------------------------

    @staticmethod
    def _speed_bound(station: Station) -> Optional[float]:
        bound = getattr(station, "max_speed_mps", None)
        if bound is None:
            return None
        bound = float(bound)
        if bound < 0 or bound != bound or bound == float("inf"):
            return None
        return bound

    def _index_add(self, station: Station) -> None:
        bound = self._speed_bound(station)
        if bound is None:
            self._unindexed[station.mac] = station
            return
        self._speeds[station.mac] = bound
        if bound > self._vmax:
            self._vmax = bound
        # Cached now (>= the last refresh time), so the refresh-based
        # radius inflation also covers stations binned between sweeps.
        self._grid.insert(station.mac, station.position_at(self.sim.now))

    def _index_discard(self, mac: MacAddress) -> None:
        self._unindexed.pop(mac, None)
        if self._speeds.pop(mac, None) is not None:
            self._grid.remove(mac)
        # _vmax stays conservative until the next refresh recomputes it.

    def _refresh_index(self, now: float) -> None:
        if now - self._grid_time < self._refresh_s:
            return
        grid = self._grid
        stations = self._stations
        vmax = 0.0
        for mac, bound in self._speeds.items():
            if bound > 0.0:
                grid.move(mac, stations[mac].position_at(now))
                if bound > vmax:
                    vmax = bound
        self._vmax = vmax
        self._grid_time = now
        self.index_refreshes += 1

    # -- propagation ------------------------------------------------------

    def _in_range(self, sender: Station, receiver: Station, time: float) -> bool:
        reach = self._ranges[sender.mac]
        distance = sender.position_at(time).distance_to(
            receiver.position_at(time)
        )
        return self.propagation.delivered(distance, reach, self._rng)

    def _fault_lost(self) -> bool:
        """One Gilbert–Elliott step; counts the drop when it happens."""
        if self._burst_loss is None or not self._burst_loss.lost():
            return False
        self.fault_frames_lost += 1
        self.sim.metrics.inc("faults.frames_lost", model="gilbert-elliott")
        return True

    def _lost(self) -> bool:
        if self._fault_lost():
            return True
        if self.loss_rate <= 0.0:
            return False
        if self._uniform is not None:
            return self._uniform.next() < self.loss_rate
        return self._rng.random() < self.loss_rate

    def _broadcast_recipients(self, sender: Station, time: float) -> List[Station]:
        """Every station (sender excluded) in range, in attach order."""
        sender_mac = sender.mac
        reach = self._ranges[sender_mac]
        pos = sender.position_at(time)
        delivered = self.propagation.delivered
        rng = self._rng
        stations = self._stations
        if not self._index_on:
            return [
                st
                for mac, st in stations.items()
                if mac != sender_mac
                and delivered(pos.distance_to(st.position_at(time)), reach, rng)
            ]
        self._refresh_index(time)
        radius = reach_with_motion(reach, self._vmax, time - self._grid_time)
        macs = self._grid.candidates(pos, radius)
        if self._unindexed:
            macs.extend(self._unindexed)
        # Re-establish attach order so loss draws and receive callbacks
        # fire in the exact sequence of the brute-force scan.
        macs.sort(key=self._seq.__getitem__)
        self.index_queries += 1
        self.index_candidates += len(macs)
        out: List[Station] = []
        for mac in macs:
            if mac == sender_mac:
                continue
            st = stations[mac]
            if delivered(pos.distance_to(st.position_at(time)), reach, rng):
                out.append(st)
        return out

    def _recipients(self, sender: Station, frame: Frame, time: float) -> List[Station]:
        if frame.dst != BROADCAST_MAC:
            # No station code runs while we resolve recipients, so the
            # live dict views are safe to iterate — the returned list is
            # the snapshot delivery works from.
            out = []
            target = self._stations.get(frame.dst)
            if target is not None and self._in_range(sender, target, time):
                out.append(target)
            for mac, monitor in self._monitors.items():
                if (
                    mac != sender.mac
                    and mac != frame.dst
                    and self._in_range(sender, monitor, time)
                ):
                    out.append(monitor)
            return out
        return self._broadcast_recipients(sender, time)

    def transmit(
        self,
        sender: Station,
        frame: Frame,
        airtime: float = MANAGEMENT_FRAME_AIRTIME_S,
    ) -> None:
        """Send one frame; delivery happens ``airtime`` seconds from now.

        Recipients are resolved at *delivery* time so a walker that left
        range mid-flight genuinely misses the frame.
        """
        if self._lineage is not None:
            self._lineage.frame_sent(self.sim.now, frame, sender.mac)
        self.sim.at(airtime, self._deliver, sender, frame)

    def _deliver(self, sender: Station, frame: Frame) -> None:
        now = self.sim.now
        if sender.mac not in self._stations:
            return  # sender departed while the frame was in flight
        lineage = self._lineage
        for station in self._recipients(sender, frame, now):
            # The loss draw must stay first so the RNG sequence is
            # byte-identical with lineage on or off.
            if self._lost():
                if lineage is not None:
                    lineage.event(
                        now,
                        "lost",
                        station.mac,
                        parent=lineage.frame_ctx(frame),
                    )
                continue
            self.frames_delivered += 1
            if lineage is None:
                station.receive(frame, now)
            else:
                ctx = lineage.delivered(now, frame, station.mac)
                with lineage.push(ctx):
                    station.receive(frame, now)

    # -- probe-response bursts -------------------------------------------

    def transmit_response_burst(
        self,
        sender: Station,
        responses: Sequence[ProbeResponse],
        spacing: float = PROBE_RESPONSE_AIRTIME_S,
    ) -> None:
        """Send back-to-back probe responses, one every ``spacing`` seconds.

        In ``frame`` fidelity each response is its own delivery event at
        ``(i + 1) * spacing``; in ``burst`` fidelity one event carries the
        whole sequence and receivers that implement ``receive_burst``
        apply the scan-window arithmetic analytically.
        """
        if not responses:
            return
        if self._lineage is not None:
            now = self.sim.now
            for resp in responses:
                self._lineage.frame_sent(now, resp, sender.mac)
        if self.fidelity == "frame":
            for i, resp in enumerate(responses):
                self.sim.at((i + 1) * spacing, self._deliver, sender, resp)
            return
        self.sim.at(spacing, self._deliver_burst, sender, list(responses), spacing)

    def _deliver_burst(
        self, sender: Station, responses: List[ProbeResponse], spacing: float
    ) -> None:
        now = self.sim.now
        if sender.mac not in self._stations:
            return
        first = responses[0]
        # Monitors receive *during* iteration and may detach themselves,
        # so this loop genuinely needs a snapshot of the dict.
        for mac, monitor in list(self._monitors.items()):
            if (
                mac != sender.mac
                and mac != first.dst
                and self._in_range(sender, monitor, now)
            ):
                for resp in responses:
                    monitor.receive(resp, now)
        target: Optional[Station] = self._stations.get(first.dst)
        if target is None or not self._in_range(sender, target, now):
            return
        if self._burst_loss is not None:
            # One chain step per response keeps frame and burst fidelity
            # statistically aligned under channel faults (monitors, like
            # the uniform channel in this path, observe pre-loss).
            responses = [r for r in responses if not self._fault_lost()]
            if not responses:
                return
        lineage = self._lineage
        if lineage is None:
            scope: ContextManager = nullcontext()
        else:
            # One record per burst, not per response, keeps overhead flat;
            # the chain still closes because it parents to the first
            # response's transmission.
            scope = lineage.push(
                lineage.event(
                    now,
                    "rx:burst",
                    target.mac,
                    parent=lineage.frame_ctx(first),
                    size=len(responses),
                )
            )
        receive_burst = getattr(target, "receive_burst", None)
        with scope:
            if receive_burst is not None:
                self.frames_delivered += len(responses)
                receive_burst(responses, now, spacing)
                return
            for resp in responses:  # fall back to per-frame delivery
                self.frames_delivered += 1
                target.receive(resp, now)
