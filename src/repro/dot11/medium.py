"""The shared radio medium.

Stations register with the medium; a transmission is delivered, after its
airtime, to every registered station inside the sender's transmission
range (disc propagation) — or to the addressed station only, for unicast
frames.  Positions are evaluated lazily via ``position_at(now)`` so moving
stations need no position-update events.

Two fidelity modes share all delivery logic:

* ``frame``  — every probe response in a burst is its own scheduled
  delivery event (used by tests and small runs);
* ``burst``  — one event delivers the whole response burst and the
  receiver applies the same window arithmetic analytically (used by the
  12-hour Fig. 5 sweeps).  An integration test pins the two modes to
  identical hit counts.

Loss comes in two independent flavours.  The uniform ``loss_rate``
drops each frame as an independent coin flip (``1.0`` is a total
blackout).  ``burst_loss`` additionally runs a
:class:`~repro.faults.gilbert.GilbertElliottChannel` whose losses
cluster the way real channel contention clusters them; it draws from a
dedicated ``faults.channel`` RNG stream and counts every drop under the
``faults.frames_lost`` metric, so enabling it never perturbs the
uniform channel's draws and a run without it is byte-identical to one
built before bursty loss existed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Sequence

from repro.dot11.frames import Frame, ProbeResponse
from repro.dot11.mac import BROADCAST_MAC, MacAddress
from repro.dot11.propagation import DiscPropagation, Propagation
from repro.faults.gilbert import GilbertElliottChannel
from repro.faults.plan import GilbertElliottParams
from repro.geo.point import Point
from repro.sim.simulation import Simulation
from repro.util.units import MANAGEMENT_FRAME_AIRTIME_S, PROBE_RESPONSE_AIRTIME_S


class Station(Protocol):
    """What the medium requires of anything attached to it."""

    mac: MacAddress

    def position_at(self, time: float) -> Point:
        """Location of the station at simulation time ``time``."""
        ...

    def receive(self, frame: Frame, time: float) -> None:
        """Handle one delivered frame."""
        ...


class Medium:
    """Disc-propagation broadcast medium with per-station TX range."""

    def __init__(
        self,
        sim: Simulation,
        fidelity: str = "frame",
        loss_rate: float = 0.0,
        propagation: Optional[Propagation] = None,
        burst_loss: Optional[GilbertElliottParams] = None,
    ):
        if fidelity not in ("frame", "burst"):
            raise ValueError("fidelity must be 'frame' or 'burst', got %r" % fidelity)
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError("loss_rate must be in [0, 1], got %r" % loss_rate)
        self.sim = sim
        self.fidelity = fidelity
        self.loss_rate = loss_rate
        self.propagation = propagation if propagation is not None else DiscPropagation()
        self._stations: Dict[MacAddress, Station] = {}
        self._ranges: Dict[MacAddress, float] = {}
        self._monitors: Dict[MacAddress, Station] = {}
        self._rng = sim.rngs.stream("medium")
        self.frames_delivered = 0
        self.fault_frames_lost = 0
        self._burst_loss: Optional[GilbertElliottChannel] = None
        if burst_loss is not None:
            self._burst_loss = GilbertElliottChannel(
                burst_loss, sim.rngs.stream("faults.channel")
            )

    @property
    def burst_loss(self) -> Optional[GilbertElliottChannel]:
        """The live Gilbert–Elliott chain (None without channel faults)."""
        return self._burst_loss

    # -- membership -------------------------------------------------------

    def attach(
        self, station: Station, tx_range: float, promiscuous: bool = False
    ) -> None:
        """Register ``station`` with transmission range ``tx_range`` metres.

        ``promiscuous`` stations additionally overhear every frame in
        radio range regardless of its destination address — monitor mode,
        as used by the evil-twin detectors.
        """
        if tx_range <= 0:
            raise ValueError("tx_range must be positive, got %r" % tx_range)
        self._stations[station.mac] = station
        self._ranges[station.mac] = tx_range
        if promiscuous:
            self._monitors[station.mac] = station

    def detach(self, mac: MacAddress) -> None:
        """Remove a station; unknown MACs are ignored (already gone)."""
        self._stations.pop(mac, None)
        self._ranges.pop(mac, None)
        self._monitors.pop(mac, None)

    def is_attached(self, mac: MacAddress) -> bool:
        """Whether a station with this MAC is currently registered."""
        return mac in self._stations

    @property
    def station_count(self) -> int:
        """Number of attached stations."""
        return len(self._stations)

    # -- propagation ------------------------------------------------------

    def _in_range(self, sender: Station, receiver: Station, time: float) -> bool:
        reach = self._ranges[sender.mac]
        distance = sender.position_at(time).distance_to(
            receiver.position_at(time)
        )
        return self.propagation.delivered(distance, reach, self._rng)

    def _fault_lost(self) -> bool:
        """One Gilbert–Elliott step; counts the drop when it happens."""
        if self._burst_loss is None or not self._burst_loss.lost():
            return False
        self.fault_frames_lost += 1
        self.sim.metrics.inc("faults.frames_lost", model="gilbert-elliott")
        return True

    def _lost(self) -> bool:
        if self._fault_lost():
            return True
        return self.loss_rate > 0.0 and self._rng.random() < self.loss_rate

    def _recipients(self, sender: Station, frame: Frame, time: float) -> List[Station]:
        if frame.dst != BROADCAST_MAC:
            out = []
            target = self._stations.get(frame.dst)
            if target is not None and self._in_range(sender, target, time):
                out.append(target)
            for mac, monitor in list(self._monitors.items()):
                if (
                    mac != sender.mac
                    and mac != frame.dst
                    and self._in_range(sender, monitor, time)
                ):
                    out.append(monitor)
            return out
        return [
            st
            for mac, st in list(self._stations.items())
            if mac != sender.mac and self._in_range(sender, st, time)
        ]

    def transmit(
        self,
        sender: Station,
        frame: Frame,
        airtime: float = MANAGEMENT_FRAME_AIRTIME_S,
    ) -> None:
        """Send one frame; delivery happens ``airtime`` seconds from now.

        Recipients are resolved at *delivery* time so a walker that left
        range mid-flight genuinely misses the frame.
        """
        self.sim.at(airtime, self._deliver, sender, frame)

    def _deliver(self, sender: Station, frame: Frame) -> None:
        now = self.sim.now
        if sender.mac not in self._stations:
            return  # sender departed while the frame was in flight
        for station in self._recipients(sender, frame, now):
            if self._lost():
                continue
            self.frames_delivered += 1
            station.receive(frame, now)

    # -- probe-response bursts -------------------------------------------

    def transmit_response_burst(
        self,
        sender: Station,
        responses: Sequence[ProbeResponse],
        spacing: float = PROBE_RESPONSE_AIRTIME_S,
    ) -> None:
        """Send back-to-back probe responses, one every ``spacing`` seconds.

        In ``frame`` fidelity each response is its own delivery event at
        ``(i + 1) * spacing``; in ``burst`` fidelity one event carries the
        whole sequence and receivers that implement ``receive_burst``
        apply the scan-window arithmetic analytically.
        """
        if not responses:
            return
        if self.fidelity == "frame":
            for i, resp in enumerate(responses):
                self.sim.at((i + 1) * spacing, self._deliver, sender, resp)
            return
        self.sim.at(spacing, self._deliver_burst, sender, list(responses), spacing)

    def _deliver_burst(
        self, sender: Station, responses: List[ProbeResponse], spacing: float
    ) -> None:
        now = self.sim.now
        if sender.mac not in self._stations:
            return
        first = responses[0]
        for mac, monitor in list(self._monitors.items()):
            if (
                mac != sender.mac
                and mac != first.dst
                and self._in_range(sender, monitor, now)
            ):
                for resp in responses:
                    monitor.receive(resp, now)
        target: Optional[Station] = self._stations.get(first.dst)
        if target is None or not self._in_range(sender, target, now):
            return
        if self._burst_loss is not None:
            # One chain step per response keeps frame and burst fidelity
            # statistically aligned under channel faults (monitors, like
            # the uniform channel in this path, observe pre-loss).
            responses = [r for r in responses if not self._fault_lost()]
            if not responses:
                return
        receive_burst = getattr(target, "receive_burst", None)
        if receive_burst is not None:
            self.frames_delivered += len(responses)
            receive_burst(responses, now, spacing)
            return
        for resp in responses:  # fall back to per-frame delivery
            self.frames_delivered += 1
            target.receive(resp, now)
