"""MAC addresses.

Addresses are plain strings in canonical ``aa:bb:cc:dd:ee:ff`` form —
cheap to hash and compare, which matters because the attacker keys its
per-client untried lists by MAC.  Client MACs set the locally-administered
bit the way modern OSes do for randomised probe MACs; AP MACs use a small
pool of vendor OUIs.
"""

from __future__ import annotations

import re
from typing import List

import numpy as np

MacAddress = str

_MAC_RE = re.compile(r"^([0-9a-f]{2}:){5}[0-9a-f]{2}$")

_AP_OUIS = ["00:1a:2b", "f4:ec:38", "84:d8:1b", "3c:84:6a", "b0:95:8e"]


def is_valid_mac(mac: str) -> bool:
    """Whether ``mac`` is a canonical lower-case colon-separated address."""
    return bool(_MAC_RE.match(mac))


def _octets_to_mac(octets: List[int]) -> MacAddress:
    return ":".join(f"{o:02x}" for o in octets)


def random_client_mac(rng: np.random.Generator) -> MacAddress:
    """A random client MAC with the locally-administered bit set.

    Modern phones randomise probe MACs; the attacker nevertheless sees a
    stable MAC per client *per visit*, which is all the untried-list
    bookkeeping needs (the paper keys its state the same way).
    """
    octets = [int(b) for b in rng.integers(0, 256, size=6)]
    octets[0] = (octets[0] & 0xFC) | 0x02  # locally administered, unicast
    return _octets_to_mac(octets)


def random_ap_mac(rng: np.random.Generator) -> MacAddress:
    """A random AP BSSID drawn from a small vendor-OUI pool."""
    oui = _AP_OUIS[int(rng.integers(len(_AP_OUIS)))]
    tail = ":".join(f"{int(b):02x}" for b in rng.integers(0, 256, size=3))
    return f"{oui}:{tail}"


BROADCAST_MAC: MacAddress = "ff:ff:ff:ff:ff:ff"
"""The broadcast destination address."""
