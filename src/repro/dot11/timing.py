"""Active-scan timing model.

Implements the arithmetic of Section III-A: a client that has sent a probe
request listens ``min_channel_time`` for a first response and, once one
arrives, at most one further ``min_channel_time``; each probe response
occupies ``response_airtime`` of air.  The number of responses one AP can
land in that window is therefore bounded — the paper's "only the first 40
SSIDs can be received" ceiling, *derived* here rather than hard-coded.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import (
    MIN_CHANNEL_TIME_S,
    PROBE_RESPONSE_AIRTIME_S,
)


@dataclass(frozen=True)
class ScanTiming:
    """Timing parameters of one active-scan channel visit."""

    min_channel_time: float = MIN_CHANNEL_TIME_S
    response_airtime: float = PROBE_RESPONSE_AIRTIME_S

    def __post_init__(self) -> None:
        if self.min_channel_time <= 0:
            raise ValueError("min_channel_time must be positive")
        if self.response_airtime <= 0:
            raise ValueError("response_airtime must be positive")

    @property
    def max_responses_per_scan(self) -> int:
        """How many back-to-back responses from one AP fit the window.

        With the 802.11 defaults this evaluates to 40, matching the
        paper's derivation (10 ms window / 0.25 ms per response).
        """
        return int(self.min_channel_time / self.response_airtime)

    @property
    def window_close(self) -> float:
        """Listening-window length after the first response arrived."""
        return self.min_channel_time

    def responses_received(self, sent: int) -> int:
        """How many of ``sent`` back-to-back responses the client receives."""
        if sent < 0:
            raise ValueError("sent must be non-negative, got %r" % sent)
        return min(sent, self.max_responses_per_scan)


DEFAULT_SCAN_TIMING = ScanTiming()
"""The 802.11 default timing used everywhere unless a test overrides it."""
