"""The metrics registry: counters, gauges, histograms, series, timers.

One :class:`MetricsRegistry` lives on every
:class:`~repro.sim.simulation.Simulation`; entities write into it from
hot paths (cheap dict updates, no locks — a registry is process-local)
and the parallel executor ships each worker's snapshot home as a plain
dict inside :class:`~repro.experiments.parallel.RunSummary`.

Design constraints, in order:

* **Determinism.**  Everything outside the ``timers`` section is a pure
  function of the simulated run, so a merged export must be bit-identical
  at any worker count.  Exports sort every key; merging is performed by
  the parent in spec order, so float accumulation order never depends on
  scheduling.  Wall-clock measurements are quarantined in ``timers``.
* **Merge semantics.**  Counters and timers sum, gauges take the max
  (the only order-independent choice), histograms with identical bounds
  add bucket-wise, series concatenate and sort by (time, value).
* **Plain-dict snapshots.**  ``to_dict`` / ``from_dict`` round-trip
  through JSON so snapshots survive the process boundary and land in the
  ``metrics.json`` artefact unchanged.

Labelled names are encoded as ``name{"key":"value",...}`` with the label
object serialised as canonical JSON — unambiguous to parse back no
matter what characters an SSID contains.
"""

from __future__ import annotations

import json
import time as _time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

METRICS_SCHEMA = "repro.metrics/v1"

DEFAULT_BUCKETS: Tuple[float, ...] = (1, 2, 5, 10, 20, 40, 80, 160, 320)
"""Default histogram bucket upper bounds (an overflow bucket is implicit)."""


def metric_key(name: str, labels: Optional[Dict[str, object]] = None) -> str:
    """Canonical flat key for a (name, labels) pair."""
    if not labels:
        return name
    body = json.dumps(
        {str(k): str(v) for k, v in labels.items()},
        sort_keys=True,
        separators=(",", ":"),
    )
    return f"{name}{body}"


def parse_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Invert :func:`metric_key`: ``name{...}`` back to (name, labels)."""
    brace = key.find("{")
    if brace < 0:
        return key, {}
    return key[:brace], json.loads(key[brace:])


class FixedHistogram:
    """Histogram over fixed, pre-declared bucket bounds.

    ``bounds`` are inclusive upper edges; one extra overflow bucket
    catches everything beyond the last bound.  Fixed bounds are what
    make worker-side histograms mergeable without re-binning.
    """

    __slots__ = ("bounds", "counts", "total", "count")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be non-empty and sorted")
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.total: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        idx = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                idx = i
                break
        self.counts[idx] += 1
        self.total += value
        self.count += 1

    def merge(self, other: "FixedHistogram") -> None:
        """Bucket-wise sum; bounds must match exactly."""
        if self.bounds != other.bounds:
            raise ValueError(
                "cannot merge histograms with different bounds: %r vs %r"
                % (self.bounds, other.bounds)
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.total += other.total
        self.count += other.count

    def to_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "FixedHistogram":
        hist = cls(doc["bounds"])
        counts = list(doc["counts"])
        if len(counts) != len(hist.counts):
            raise ValueError("histogram counts do not match bounds")
        hist.counts = counts
        hist.total = float(doc.get("sum", 0.0))
        hist.count = int(doc.get("count", sum(counts)))
        return hist


def estimate_percentile(hist, q: float) -> Optional[float]:
    """Estimate the ``q``-th percentile (0–100) of a fixed-bucket histogram.

    ``hist`` is a :class:`FixedHistogram` or its :meth:`~FixedHistogram.to_dict`
    snapshot.  Returns ``None`` for an empty histogram.  Within the bucket
    that owns the target rank the estimate interpolates linearly between the
    bucket's edges; the first bucket is anchored at 0.0 (observations are
    assumed non-negative, which holds for every ``serve.*_us`` stage
    histogram this estimator serves).  Mass in the implicit overflow bucket
    has no upper edge, so the estimate saturates at the last finite bound —
    a deliberate under-estimate that still trips any budget set below it.
    """
    if isinstance(hist, FixedHistogram):
        bounds, counts, total = hist.bounds, hist.counts, hist.count
    else:
        bounds = tuple(float(b) for b in hist["bounds"])
        counts = list(hist["counts"])
        total = int(hist.get("count", sum(counts)))
    if total <= 0:
        return None
    q = min(100.0, max(0.0, float(q)))
    target = q / 100.0 * total
    cum = 0
    for i, c in enumerate(counts):
        if c and cum + c >= target:
            if i >= len(bounds):
                return float(bounds[-1])
            lower = bounds[i - 1] if i > 0 else 0.0
            fraction = (target - cum) / c
            return float(lower + fraction * (bounds[i] - lower))
        cum += c
    return float(bounds[-1])


class _Timer:
    """Context manager accumulating wall time into the timers section."""

    __slots__ = ("_registry", "_key", "_start")

    def __init__(self, registry: "MetricsRegistry", key: str):
        self._registry = registry
        self._key = key

    def __enter__(self) -> "_Timer":
        self._start = _time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        elapsed = _time.perf_counter() - self._start
        entry = self._registry._timers.setdefault(
            self._key, {"count": 0, "total_s": 0.0}
        )
        entry["count"] += 1
        entry["total_s"] += elapsed


class MetricsRegistry:
    """Process-local metric store with deterministic export and merge."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, FixedHistogram] = {}
        self._series: Dict[str, List[Tuple[float, float]]] = {}
        self._timers: Dict[str, Dict[str, float]] = {}

    # -- writers ---------------------------------------------------------------

    def inc(self, name: str, value: float = 1, **labels: object) -> None:
        """Add ``value`` to a (monotonic) counter."""
        key = metric_key(name, labels)
        self._counters[key] = self._counters.get(key, 0) + value

    def inc_key(self, key: str, value: float = 1) -> None:
        """:meth:`inc` for a pre-computed :func:`metric_key`.

        Hot paths that hit the same labelled counter thousands of times
        per simulated second cache the flat key once instead of paying
        ``json.dumps`` on every increment.  Semantically identical to
        :meth:`inc` with the same (name, labels)."""
        self._counters[key] = self._counters.get(key, 0) + value

    def gauge_set(self, name: str, value: float, **labels: object) -> None:
        """Set a gauge to its latest value."""
        self._gauges[metric_key(name, labels)] = value

    def gauge_max(self, name: str, value: float, **labels: object) -> None:
        """Raise a gauge to ``value`` if it is a new high-water mark."""
        key = metric_key(name, labels)
        if key not in self._gauges or value > self._gauges[key]:
            self._gauges[key] = value

    def observe(
        self,
        name: str,
        value: float,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: object,
    ) -> None:
        """Record one histogram observation."""
        key = metric_key(name, labels)
        hist = self._histograms.get(key)
        if hist is None:
            hist = self._histograms[key] = FixedHistogram(buckets)
        hist.observe(value)

    def series_append(
        self, name: str, time: float, value: float, **labels: object
    ) -> None:
        """Append one (time, value) point to a time series."""
        self._series.setdefault(metric_key(name, labels), []).append(
            (float(time), float(value))
        )

    def timer(self, name: str, **labels: object) -> _Timer:
        """Wall-clock timer context manager (quarantined in ``timers``)."""
        return _Timer(self, metric_key(name, labels))

    def timer_add(self, name: str, seconds: float, **labels: object) -> None:
        """Fold one externally-measured wall-time sample into ``timers``."""
        entry = self._timers.setdefault(
            metric_key(name, labels), {"count": 0, "total_s": 0.0}
        )
        entry["count"] += 1
        entry["total_s"] += seconds

    # -- readers ---------------------------------------------------------------

    def counter_value(self, name: str, **labels: object) -> float:
        """Current value of one counter (0 when never incremented)."""
        return self._counters.get(metric_key(name, labels), 0)

    def gauge_value(self, name: str, default: float = 0, **labels: object) -> float:
        """Current value of one gauge (``default`` when never set)."""
        return self._gauges.get(metric_key(name, labels), default)

    def histogram(
        self, name: str, **labels: object
    ) -> Optional[FixedHistogram]:
        """The live histogram under one key (``None`` when never observed)."""
        return self._histograms.get(metric_key(name, labels))

    def counters_named(self, name: str) -> Dict[str, float]:
        """All counters of one base name, keyed by their flat label key."""
        return {
            k: v
            for k, v in self._counters.items()
            if parse_key(k)[0] == name
        }

    # -- snapshot / merge -------------------------------------------------------

    def to_dict(self) -> dict:
        """Deterministic plain-dict snapshot (JSON-serialisable)."""
        return {
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
            "histograms": {
                k: self._histograms[k].to_dict()
                for k in sorted(self._histograms)
            },
            "series": {
                k: [[t, v] for t, v in self._series[k]]
                for k in sorted(self._series)
            },
            "timers": {
                k: dict(self._timers[k]) for k in sorted(self._timers)
            },
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`to_dict` snapshot."""
        reg = cls()
        reg._counters = {k: v for k, v in doc.get("counters", {}).items()}
        reg._gauges = {k: v for k, v in doc.get("gauges", {}).items()}
        reg._histograms = {
            k: FixedHistogram.from_dict(v)
            for k, v in doc.get("histograms", {}).items()
        }
        reg._series = {
            k: [(float(t), float(v)) for t, v in points]
            for k, points in doc.get("series", {}).items()
        }
        reg._timers = {
            k: {"count": v.get("count", 0), "total_s": v.get("total_s", 0.0)}
            for k, v in doc.get("timers", {}).items()
        }
        return reg

    def load_snapshot(self, doc: dict) -> "MetricsRegistry":
        """Replace this registry's state with a :meth:`to_dict` snapshot.

        In-place so every holder of a reference to *this* registry (the
        sim, the instrumented subsystems) sees the restored state —
        that's what checkpoint recovery needs, where ``from_dict`` would
        strand the live references on the pre-crash object.
        """
        restored = MetricsRegistry.from_dict(doc)
        self._counters = restored._counters
        self._gauges = restored._gauges
        self._histograms = restored._histograms
        self._series = restored._series
        self._timers = restored._timers
        return self

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry (see module doc for rules)."""
        for k, v in other._counters.items():
            self._counters[k] = self._counters.get(k, 0) + v
        for k, v in other._gauges.items():
            if k not in self._gauges or v > self._gauges[k]:
                self._gauges[k] = v
        for k, hist in other._histograms.items():
            mine = self._histograms.get(k)
            if mine is None:
                self._histograms[k] = FixedHistogram.from_dict(hist.to_dict())
            else:
                mine.merge(hist)
        for k, points in other._series.items():
            merged = self._series.setdefault(k, [])
            merged.extend(points)
            merged.sort()
        for k, t in other._timers.items():
            mine = self._timers.setdefault(k, {"count": 0, "total_s": 0.0})
            mine["count"] += t["count"]
            mine["total_s"] += t["total_s"]
        return self


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Merge worker snapshot dicts (in the given order) into one export.

    The parallel executor calls this with snapshots in *spec order*, so
    the merged result is independent of which worker produced which
    snapshot when.
    """
    merged = MetricsRegistry()
    for snap in snapshots:
        merged.merge(MetricsRegistry.from_dict(snap))
    return merged.to_dict()


def validate_metrics_doc(doc: dict) -> None:
    """Raise ``ValueError`` unless ``doc`` is a valid metrics artefact.

    This is the schema contract CI's bench-smoke job enforces on
    ``benchmarks/out/metrics.json``.
    """
    if doc.get("schema") != METRICS_SCHEMA:
        raise ValueError(
            "bad schema marker: %r (want %r)" % (doc.get("schema"), METRICS_SCHEMA)
        )
    for field in ("workers", "run_count", "merged", "runs"):
        if field not in doc:
            raise ValueError("metrics artefact missing %r" % field)
    if len(doc["runs"]) != doc["run_count"]:
        raise ValueError(
            "run_count %r does not match %d run entries"
            % (doc["run_count"], len(doc["runs"]))
        )
    _validate_snapshot(doc["merged"], where="merged")
    for i, run in enumerate(doc["runs"]):
        for field in ("tag", "attacker", "seed", "metrics"):
            if field not in run:
                raise ValueError("run %d missing %r" % (i, field))
        _validate_snapshot(run["metrics"], where=f"runs[{i}].metrics")


def _validate_snapshot(snap: dict, where: str) -> None:
    for section in ("counters", "gauges", "histograms", "series", "timers"):
        if section not in snap:
            raise ValueError("%s missing section %r" % (where, section))
    for key, value in snap["counters"].items():
        if not isinstance(key, str) or not isinstance(value, (int, float)):
            raise ValueError("%s has a malformed counter %r" % (where, key))
    for key, hist in snap["histograms"].items():
        FixedHistogram.from_dict(hist)  # raises on malformed shapes
