"""Live executor telemetry: worker heartbeats and the stall watcher.

PR 3 gave the executor a kill switch (``REPRO_SPEC_TIMEOUT_S``); this
module gives it *visibility before the kill*.  When ``REPRO_HEARTBEAT``
is set, every worker process in :mod:`repro.experiments.parallel`
appends heartbeat records to its own JSONL file under
``<artifact_dir>/telemetry/worker-<pid>.jsonl`` while a spec runs:
spec id, wall-clock timestamp, simulated-time fraction, and hits so far.
One writer per process and append-only files mean no cross-process
locking — the watcher only ever reads.

``repro obs watch`` tails those files and renders a live table; a
worker whose newest heartbeat is older than ``--stall-after`` seconds
(and whose file does not end in a ``done`` record) is flagged as
stalled.  Sharded runs heartbeat per *shard* (``shard-<k>.jsonl``) and
carry epoch progress (``epoch``/``epochs`` fields), so a shard that
keeps heartbeating while completing zero epochs past the stall
threshold is flagged too.  ``--once`` prints a single snapshot and
exits non-zero when anything is stalled, which is what the tests drive.

On top of the watcher sits the fleet aggregator
(:func:`fleet_snapshot`, the ``repro obs top`` CLI): it folds worker
heartbeats, shard heartbeats and the per-epoch barrier records of
:mod:`repro.obs.epochs` into one health document with derived signals —
straggler ratio (slowest/median shard phase time), handoff load
imbalance across the stripes, and epochs/sec throughput — and a
``healthy`` verdict scripts and CI can key off.

Heartbeats are sampled on a wall-clock cadence by a daemon thread — the
simulation itself is never touched, so golden digests are identical
with heartbeats on or off.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time as _time
from contextlib import nullcontext
from typing import Callable, ContextManager, List, Optional, Union

from repro.obs.artifacts import artifact_dir

HEARTBEAT_ENV = "REPRO_HEARTBEAT"
SERVE_HEARTBEAT_ENV = "REPRO_SERVE_HEARTBEAT"
_TRUTHY = ("1", "true", "on", "yes")

DEFAULT_INTERVAL_S = 5.0
DEFAULT_STALL_AFTER_S = 60.0
DEFAULT_SHED_THRESHOLD = 0.05
TELEMETRY_SUBDIR = "telemetry"

#: Anomaly events of the sharded engine (crash / respawn / kill / ...).
#: Written only when something goes wrong — clean runs never create it.
OPS_EVENTS_FILE = "shardops-events.jsonl"

#: Event kinds that mean a shard recovery is (or just was) in flight.
RECOVERY_EVENT_KINDS = ("shard.crash", "shard.respawn")


def resolve_heartbeat_interval(value: Optional[str] = None) -> Optional[float]:
    """Heartbeat interval in seconds, or None when heartbeats are off.

    ``REPRO_HEARTBEAT`` accepts a truthy flag (default 5 s cadence) or a
    number of seconds (``REPRO_HEARTBEAT=2.5``).
    """
    if value is None:
        value = os.environ.get(HEARTBEAT_ENV, "")
    value = value.strip().lower()
    if not value:
        return None
    if value in _TRUTHY:
        return DEFAULT_INTERVAL_S
    try:
        interval = float(value)
    except ValueError:
        return None
    return interval if interval > 0 else None


def resolve_serve_heartbeat_interval(
    value: Optional[str] = None,
) -> Optional[float]:
    """Serving-heartbeat interval in seconds, or None when off.

    ``REPRO_SERVE_HEARTBEAT`` takes the same grammar as
    ``REPRO_HEARTBEAT`` (truthy flag for the 5 s default, or a number
    of seconds) but gates the :class:`~repro.serve.service.RankingService`
    heartbeats separately — a batch run with executor heartbeats on
    should not suddenly grow serve files, and vice versa.
    """
    if value is None:
        value = os.environ.get(SERVE_HEARTBEAT_ENV, "")
    if not value.strip():
        return None
    return resolve_heartbeat_interval(value)


def heartbeat_dir(base: Optional[Union[str, pathlib.Path]] = None) -> pathlib.Path:
    """Directory heartbeat files live in (under the artefact dir)."""
    root = pathlib.Path(base) if base is not None else artifact_dir()
    return root / TELEMETRY_SUBDIR


class HeartbeatWriter:
    """Daemon thread appending progress records for one running spec.

    Used as a context manager around ``sim.run``::

        with HeartbeatWriter(spec_id, duration, progress) as hb:
            sim.run(duration)

    ``progress`` is a zero-argument callable returning
    ``(sim_time, hits)``; it is invoked from the heartbeat thread, so it
    must only *read* (both values are plain floats/ints written by the
    sim thread — a torn read at worst smears one heartbeat, never the
    simulation).
    """

    def __init__(
        self,
        spec_id: str,
        duration_s: float,
        progress: Callable[[], tuple],
        interval_s: float = DEFAULT_INTERVAL_S,
        base_dir: Optional[Union[str, pathlib.Path]] = None,
        clock: Callable[[], float] = _time.time,
        file_stem: Optional[str] = None,
        extra: Optional[Callable[[], dict]] = None,
    ):
        self.spec_id = spec_id
        self.duration_s = max(float(duration_s), 1e-9)
        self._progress = progress
        self._extra = extra
        self.interval_s = float(interval_s)
        self._clock = clock
        # Default stem is per-process (executor workers); shard runtimes
        # pass ``shard-<k>`` so inline shards get distinct files too.
        if file_stem is None:
            file_stem = "worker-%d" % os.getpid()
        self.path = heartbeat_dir(base_dir) / (file_stem + ".jsonl")
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._seq = 0
        self._last = (0.0, 0)

    # -- record emission --------------------------------------------------

    def _write(self, done: bool = False) -> None:
        try:
            sim_time, hits = self._progress()
        except RuntimeError:
            # The sim thread mutated a dict mid-iteration; skip one
            # sample rather than perturb anything.
            sim_time, hits = self._last
        self._last = (sim_time, hits)
        record = {
            "wall": self._clock(),
            "pid": os.getpid(),
            "spec": self.spec_id,
            "seq": self._seq,
            "sim_time": float(sim_time),
            "fraction": min(1.0, float(sim_time) / self.duration_s),
            "hits": int(hits),
            "done": done,
        }
        if self._extra is not None:
            try:
                record.update(self._extra())
            except RuntimeError:
                pass  # same torn-read tolerance as the progress callable
        self._seq += 1
        with open(self.path, "a") as fh:
            fh.write(json.dumps(record) + "\n")

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self._write()

    # -- context manager --------------------------------------------------

    def __enter__(self) -> "HeartbeatWriter":
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Rotation on re-entry: a worker process (or inline shard stem)
        # starting a new spec moves its previous file aside so the
        # watcher's row — fractions, beat counts, done flags — only ever
        # describes the *current* run.  ``.old`` does not match the
        # watcher's ``*.jsonl`` globs.
        if self.path.exists():
            try:
                self.path.replace(self.path.with_name(self.path.name + ".old"))
            except OSError:
                pass
        self._write()
        self._thread = threading.Thread(
            target=self._loop, name="repro-heartbeat", daemon=True
        )
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.interval_s + 1.0)
        self._write(done=True)


_current_spec_label: Optional[str] = None


def set_current_spec(label: Optional[str]) -> None:
    """Process-local label for the spec this worker is executing.

    Set by the executor before dispatching into the runner, so the
    heartbeat emitted deep inside ``run_experiment`` can name the spec
    without the runner growing a telemetry parameter.
    """
    global _current_spec_label
    _current_spec_label = label


def current_spec_label() -> Optional[str]:
    return _current_spec_label


def maybe_heartbeat(
    label: Optional[str],
    duration_s: float,
    progress: Callable[[], tuple],
    file_stem: Optional[str] = None,
    extra: Optional[Callable[[], dict]] = None,
) -> ContextManager:
    """A :class:`HeartbeatWriter` when ``REPRO_HEARTBEAT`` is set, else a
    no-op context — the single gate both executor routes use."""
    interval = resolve_heartbeat_interval()
    if interval is None:
        return nullcontext()
    if label is None:
        label = current_spec_label() or "?"
    return HeartbeatWriter(
        label,
        duration_s,
        progress,
        interval_s=interval,
        file_stem=file_stem,
        extra=extra,
    )


# -- shard ops events -------------------------------------------------------


def ops_events_path(
    base: Optional[Union[str, pathlib.Path]] = None,
) -> pathlib.Path:
    """Path of the shard-ops anomaly event file."""
    return heartbeat_dir(base) / OPS_EVENTS_FILE


def append_ops_event(
    kind: str,
    base: Optional[Union[str, pathlib.Path]] = None,
    clock: Callable[[], float] = _time.time,
    **fields: object,
) -> None:
    """Append one anomaly event (crash, respawn, shutdown escalation...).

    Called only when something went wrong, so a clean run creates no
    telemetry directory at all — heartbeats-off runs stay file-free.
    """
    path = ops_events_path(base)
    path.parent.mkdir(parents=True, exist_ok=True)
    record = {"wall": clock(), "kind": kind}
    record.update(fields)
    with open(path, "a") as fh:
        fh.write(json.dumps(record) + "\n")


def read_ops_events(path: Union[str, pathlib.Path]) -> List[dict]:
    """All ops events in one file ([] when absent; torn lines skipped)."""
    path = pathlib.Path(path)
    if not path.exists():
        return []
    return [rec for rec in read_heartbeats(path) if "kind" in rec]


# -- the watcher ------------------------------------------------------------


def read_heartbeats(path: Union[str, pathlib.Path]) -> List[dict]:
    """All heartbeat records in one worker file (bad lines skipped)."""
    out: List[dict] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError:
                continue  # torn final line of a crashed worker
            if isinstance(rec, dict):
                out.append(rec)
    return out


def watch_snapshot(
    directory: Union[str, pathlib.Path],
    stall_after_s: float = DEFAULT_STALL_AFTER_S,
    now: Optional[float] = None,
) -> List[dict]:
    """One row per worker file: latest progress plus stall status.

    A worker is ``stalled`` when its newest record is not ``done`` and
    is older than ``stall_after_s`` seconds of wall clock.  Shard rows
    additionally carry epoch progress (``epoch``/``epochs``, written by
    the shard runtimes) and are stalled when they have completed *zero*
    epochs although their first heartbeat is older than the threshold —
    a shard can heartbeat forever while wedged before its first
    barrier.  Pure function of the files and ``now`` — tests pass a
    frozen ``now``.
    """
    directory = pathlib.Path(directory)
    if now is None:
        now = _time.time()
    rows: List[dict] = []
    paths = sorted(
        list(directory.glob("worker-*.jsonl"))
        + list(directory.glob("shard-*.jsonl"))
        + list(directory.glob("serve-*.jsonl"))
    )
    for path in paths:
        records = read_heartbeats(path)
        if not records:
            continue
        last = records[-1]
        age = max(0.0, now - float(last.get("wall", now)))
        done = bool(last.get("done"))
        stalled = (not done) and age > stall_after_s
        epoch = last.get("epoch")
        epochs = last.get("epochs")
        if not done and epoch is not None and int(epoch) == 0:
            first_age = max(0.0, now - float(records[0].get("wall", now)))
            stalled = stalled or first_age > stall_after_s
        row = {
            "file": path.name,
            "pid": last.get("pid"),
            "spec": last.get("spec"),
            "sim_time": last.get("sim_time"),
            "fraction": last.get("fraction"),
            "hits": last.get("hits"),
            "epoch": epoch,
            "epochs": epochs,
            "beats": len(records),
            "age_s": age,
            "done": done,
            "stalled": stalled,
        }
        if path.name.startswith("serve-"):
            row["kind"] = "serve"
            for key in SERVE_EXTRA_KEYS:
                row[key] = last.get(key)
            shed_fraction = last.get("shed_fraction") or 0.0
            depth, cap = last.get("queue_depth"), last.get("queue_max")
            row["overloaded"] = (not done) and (
                shed_fraction > DEFAULT_SHED_THRESHOLD
                or (depth is not None and cap and int(depth) >= int(cap))
            )
            # A service can heartbeat forever while its sequencer is
            # wedged: commits frozen with a backlog behind them is a
            # stall even when the file keeps growing.
            committed = last.get("committed")
            events = last.get("events")
            if (
                not done
                and committed is not None
                and events is not None
                and int(events) > int(committed)
            ):
                frozen_since = float(last.get("wall", now))
                for rec in reversed(records):
                    if rec.get("committed") != committed:
                        break
                    frozen_since = float(rec.get("wall", frozen_since))
                row["stalled"] = (
                    row["stalled"] or (now - frozen_since) > stall_after_s
                )
        rows.append(row)
    return rows


#: Fields a serve heartbeat carries beyond the base record shape.
SERVE_EXTRA_KEYS = (
    "workers",
    "events",
    "committed",
    "probes_per_s",
    "queue_depth",
    "queue_max",
    "shed",
    "shed_fraction",
    "p50_us",
    "p99_us",
    "worker_restarts",
)


def _epoch_cell(row: dict) -> str:
    epoch = row.get("epoch")
    if epoch is None:
        return "-"
    epochs = row.get("epochs")
    return "%d/%d" % (epoch, epochs) if epochs else str(epoch)


def render_watch(rows: List[dict], stall_after_s: float) -> str:
    """The ``repro obs watch`` table (workers and shards, uniformly)."""
    if not rows:
        return "no heartbeat files yet"
    lines = [
        f"{'worker':<22} {'spec':<34} {'progress':>8} {'epoch':>9} "
        f"{'hits':>6} {'beats':>6} {'age s':>7}  status"
    ]
    for row in rows:
        fraction = row.get("fraction")
        progress = "%5.1f%%" % (fraction * 100) if fraction is not None else "?"
        spec = str(row.get("spec") or "?")
        if len(spec) > 34:
            spec = spec[:31] + "..."
        if row["done"]:
            status = "done"
        elif row["stalled"]:
            status = "STALLED (silent > %.0fs)" % stall_after_s
        elif row.get("overloaded"):
            status = "OVERLOADED (shed %.1f%%)" % (
                100.0 * (row.get("shed_fraction") or 0.0)
            )
        elif row.get("recovering"):
            status = "recovering"
        elif row.get("kind") == "serve":
            status = "serving"
        else:
            status = "running"
        lines.append(
            f"{row['file']:<22} {spec:<34} {progress:>8} "
            f"{_epoch_cell(row):>9} "
            f"{row.get('hits', 0):>6} {row['beats']:>6} {row['age_s']:>7.1f}  "
            f"{status}"
        )
    stalled = sum(1 for r in rows if r["stalled"])
    if stalled:
        lines.append("%d worker(s) stalled" % stalled)
    return "\n".join(lines)


def clear_heartbeats(
    base: Optional[Union[str, pathlib.Path]] = None,
) -> None:
    """Remove stale worker files before a new batch starts."""
    directory = heartbeat_dir(base)
    if not directory.is_dir():
        return
    patterns = (
        "worker-*.jsonl",
        "shard-*.jsonl",
        "serve-*.jsonl",
        "reqtrace-*.jsonl",
        "epochs-*.jsonl",
        OPS_EVENTS_FILE,
        "*.jsonl.old",
    )
    for pattern in patterns:
        for path in directory.glob(pattern):
            try:
                path.unlink()
            except OSError:
                pass


# -- the fleet aggregator ---------------------------------------------------


def _shard_epoch_stats(records: List[dict], window: int) -> dict:
    """Derived per-shard stats from one epochs-<k>.jsonl record list.

    Checkpoint records (``phase == "c"``) share the file but are not
    barrier phases — they are excluded from the wall-time means and the
    epochs/sec rate, and summarised separately.
    """
    done_epochs = {
        int(r["epoch"]) for r in records if r.get("phase") == "b"
    }
    phase_records = [r for r in records if r.get("phase") in ("a", "b")]
    ckpt_records = [r for r in records if r.get("phase") == "c"]
    latest = phase_records[-1] if phase_records else records[-1]
    recent = phase_records[-window:]
    phase_walls = [float(r.get("wall_s", 0.0)) for r in recent]
    barrier_walls = [float(r.get("barrier_s", 0.0)) for r in recent]
    handoff_out = sum(
        int(n) for r in phase_records for n in r.get("out", {}).values()
    )
    out_bytes = sum(int(r.get("out_bytes", 0)) for r in phase_records)
    walls = [float(r.get("wall", 0.0)) for r in recent]
    span = (max(walls) - min(walls)) if len(walls) > 1 else 0.0
    return {
        "epochs_done": (max(done_epochs) + 1) if done_epochs else 0,
        "epochs_total": int(records[-1].get("epochs", 0)),
        "last_epoch": int(latest["epoch"]),
        "last_phase": latest.get("phase"),
        "phase_wall_mean_s": (
            sum(phase_walls) / len(phase_walls) if phase_walls else 0.0
        ),
        "barrier_wall_mean_s": (
            sum(barrier_walls) / len(barrier_walls) if barrier_walls else 0.0
        ),
        "handoff_out_records": handoff_out,
        "handoff_out_bytes": out_bytes,
        # Two phase records per epoch -> epochs/sec over the window.
        "epochs_per_s": (len(recent) / 2.0) / span if span > 0 else None,
        "last_wall": float(records[-1].get("wall", 0.0)),
        "checkpoints": len(ckpt_records),
        "checkpoint_bytes": sum(int(r.get("bytes", 0)) for r in ckpt_records),
    }


def fleet_snapshot(
    directory: Union[str, pathlib.Path],
    stall_after_s: float = DEFAULT_STALL_AFTER_S,
    now: Optional[float] = None,
    window: int = 40,
    straggler_threshold: float = 4.0,
    imbalance_threshold: float = 4.0,
    shed_threshold: float = DEFAULT_SHED_THRESHOLD,
) -> dict:
    """One health document over everything the telemetry directory holds.

    Folds the heartbeat rows (workers + shards) and the per-epoch
    barrier records into derived signals:

    * ``straggler_ratio`` — slowest / median mean phase wall time across
      shards over the last ``window`` phase records;
    * ``handoff_imbalance`` — max / mean handed-off record volume across
      shards (stripe load skew);
    * ``epochs_per_s`` — barrier throughput of the slowest shard over
      its recent window.

    ``healthy`` is false when anything is stalled or a ratio exceeds its
    threshold; each violation is spelled out in ``problems``.  Pure
    function of the files, ``now`` and the thresholds — the ``repro obs
    top --once`` exit code is ``healthy``.
    """
    from repro.obs.epochs import load_epoch_dir

    directory = pathlib.Path(directory)
    if now is None:
        now = _time.time()
    rows = watch_snapshot(directory, stall_after_s=stall_after_s, now=now)
    workers = [r for r in rows if r["file"].startswith("worker-")]
    shards = [r for r in rows if r["file"].startswith("shard-")]
    services = [r for r in rows if r["file"].startswith("serve-")]
    for row in services:
        shed_fraction = row.get("shed_fraction") or 0.0
        depth, cap = row.get("queue_depth"), row.get("queue_max")
        overloaded = (not row["done"]) and (
            shed_fraction > shed_threshold
            or (depth is not None and cap and int(depth) >= int(cap))
        )
        row["overloaded"] = overloaded
    epoch_stats = {
        shard_id: _shard_epoch_stats(records, window)
        for shard_id, records in load_epoch_dir(directory).items()
    }

    events = read_ops_events(directory / OPS_EVENTS_FILE)
    crash_events = [e for e in events if e.get("kind") == "shard.crash"]
    respawn_events = [e for e in events if e.get("kind") == "shard.respawn"]
    recovery_walls = [
        float(e.get("wall", 0.0))
        for e in events
        if e.get("kind") in RECOVERY_EVENT_KINDS
    ]
    recovery_active = bool(recovery_walls) and (
        now - max(recovery_walls) <= stall_after_s
    )
    crashes_by_shard: dict = {}
    for e in crash_events:
        if e.get("shard") is not None:
            key = str(e["shard"])
            crashes_by_shard[key] = crashes_by_shard.get(key, 0) + 1
    if recovery_active:
        # A respawned shard restarts its heartbeat file and epoch
        # counter, which the zero-epochs stall check would misread as a
        # wedge — while a recovery is in flight, shard stalls are the
        # recovery, not a new problem.
        for row in shards:
            if row["stalled"]:
                row["stalled"] = False
                row["recovering"] = True

    problems: List[str] = []
    for row in rows:
        if row["stalled"]:
            problems.append("%s stalled" % row["file"])
    for row in services:
        if row.get("overloaded"):
            problems.append(
                "%s overloaded (shed %.1f%%, queue %s/%s)"
                % (
                    row["file"],
                    100.0 * (row.get("shed_fraction") or 0.0),
                    row.get("queue_depth"),
                    row.get("queue_max"),
                )
            )

    straggler_ratio = None
    phase_means = sorted(
        s["phase_wall_mean_s"]
        for s in epoch_stats.values()
        if s["phase_wall_mean_s"] > 0
    )
    if len(phase_means) >= 2:
        mid = len(phase_means) // 2
        if len(phase_means) % 2:
            median = phase_means[mid]
        else:
            # True median: the upper-middle element would make the ratio
            # identically 1.0 at two shards and mute the signal.
            median = 0.5 * (phase_means[mid - 1] + phase_means[mid])
        if median > 0:
            straggler_ratio = phase_means[-1] / median
            if straggler_ratio > straggler_threshold:
                problems.append(
                    "straggler ratio %.2f exceeds %.2f"
                    % (straggler_ratio, straggler_threshold)
                )

    handoff_imbalance = None
    volumes = [s["handoff_out_records"] for s in epoch_stats.values()]
    if len(volumes) >= 2 and sum(volumes) > 0:
        mean = sum(volumes) / len(volumes)
        if mean > 0:
            handoff_imbalance = max(volumes) / mean
            if handoff_imbalance > imbalance_threshold:
                problems.append(
                    "handoff imbalance %.2f exceeds %.2f"
                    % (handoff_imbalance, imbalance_threshold)
                )

    rates = [
        s["epochs_per_s"]
        for s in epoch_stats.values()
        if s["epochs_per_s"] is not None
    ]
    return {
        "now": now,
        "stall_after_s": stall_after_s,
        "workers": workers,
        "shards": shards,
        "services": services,
        "epochs": {str(k): v for k, v in sorted(epoch_stats.items())},
        "recovery": {
            "crashes": len(crash_events),
            "respawns": len(respawn_events),
            "crashes_by_shard": crashes_by_shard,
            "active": recovery_active,
        },
        "health": {
            "straggler_ratio": straggler_ratio,
            "straggler_threshold": straggler_threshold,
            "handoff_imbalance": handoff_imbalance,
            "imbalance_threshold": imbalance_threshold,
            "epochs_per_s": min(rates) if rates else None,
            "stalled": sum(1 for r in rows if r["stalled"]),
            "overloaded": sum(1 for r in services if r.get("overloaded")),
            "shed_threshold": shed_threshold,
            "crashes": len(crash_events),
            "recoveries": len(respawn_events),
            "recovery_active": recovery_active,
            "problems": problems,
            "healthy": not problems,
        },
    }


def _ratio_cell(value: Optional[float]) -> str:
    return "%.2f" % value if value is not None else "-"


def render_top(doc: dict) -> str:
    """The ``repro obs top`` dashboard: fleet table, per-shard epoch
    stats, and the derived health line."""
    health = doc["health"]
    recovery = doc.get("recovery", {})
    services = doc.get("services", [])
    rows = doc["workers"] + doc["shards"] + services
    recovery_cell = ""
    if recovery.get("crashes") or recovery.get("respawns"):
        recovery_cell = "   recoveries %d (%d crash(es)%s)" % (
            recovery.get("respawns", 0),
            recovery.get("crashes", 0),
            ", in flight" if recovery.get("active") else "",
        )
    lines = [
        "fleet: %d worker(s), %d shard(s), %d service(s)   epochs/s %s   "
        "straggler %s   imbalance %s%s"
        % (
            len(doc["workers"]),
            len(doc["shards"]),
            len(services),
            _ratio_cell(health["epochs_per_s"]),
            _ratio_cell(health["straggler_ratio"]),
            _ratio_cell(health["handoff_imbalance"]),
            recovery_cell,
        ),
        "",
        render_watch(rows, doc["stall_after_s"]),
    ]
    if services:
        lines.append("")
        lines.append(
            f"{'service':<22} {'probes/s':>9} {'queue':>11} {'shed %':>7} "
            f"{'p50 us':>8} {'p99 us':>8} {'restarts':>9}  verdict"
        )
        for row in services:
            rate = row.get("probes_per_s")
            rate_cell = "%.0f" % rate if rate is not None else "-"
            queue_cell = "%s/%s" % (
                row.get("queue_depth", "-"),
                row.get("queue_max", "-"),
            )
            shed_cell = "%.1f" % (100.0 * (row.get("shed_fraction") or 0.0))
            p50, p99 = row.get("p50_us"), row.get("p99_us")
            p50 = "%.1f" % p50 if p50 is not None else "-"
            p99 = "%.1f" % p99 if p99 is not None else "-"
            if row["done"]:
                verdict = "done"
            elif row["stalled"]:
                verdict = "STALLED"
            elif row.get("overloaded"):
                verdict = "OVERLOADED"
            else:
                verdict = "serving"
            lines.append(
                f"{row['file']:<22} {rate_cell:>9} {queue_cell:>11} "
                f"{shed_cell:>7} "
                f"{p50:>8} {p99:>8} "
                f"{row.get('worker_restarts') or 0:>9}  {verdict}"
            )
    if doc["epochs"]:
        crashes_by_shard = recovery.get("crashes_by_shard", {})
        lines.append("")
        lines.append(
            f"{'shard':>6} {'epoch':>9} {'phase ms':>9} {'barrier ms':>11} "
            f"{'handoff recs':>13} {'bytes':>10} {'ep/s':>6} {'ckpt':>5} "
            f"{'recov':>6}"
        )
        for shard_id, stats in doc["epochs"].items():
            epoch_cell = "%d/%d" % (stats["epochs_done"], stats["epochs_total"])
            rate = stats["epochs_per_s"]
            rate_cell = "%.2f" % rate if rate is not None else "-"
            lines.append(
                f"{shard_id:>6} {epoch_cell:>9} "
                f"{1e3 * stats['phase_wall_mean_s']:>9.2f} "
                f"{1e3 * stats['barrier_wall_mean_s']:>11.2f} "
                f"{stats['handoff_out_records']:>13} "
                f"{stats['handoff_out_bytes']:>10} "
                f"{rate_cell:>6} "
                f"{stats.get('checkpoints', 0):>5} "
                f"{crashes_by_shard.get(str(shard_id), 0):>6}"
            )
    lines.append("")
    if health["healthy"]:
        lines.append("health: OK")
    else:
        lines.append("health: DEGRADED")
        for problem in health["problems"]:
            lines.append("  - " + problem)
    return "\n".join(lines)
