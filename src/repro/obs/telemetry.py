"""Live executor telemetry: worker heartbeats and the stall watcher.

PR 3 gave the executor a kill switch (``REPRO_SPEC_TIMEOUT_S``); this
module gives it *visibility before the kill*.  When ``REPRO_HEARTBEAT``
is set, every worker process in :mod:`repro.experiments.parallel`
appends heartbeat records to its own JSONL file under
``<artifact_dir>/telemetry/worker-<pid>.jsonl`` while a spec runs:
spec id, wall-clock timestamp, simulated-time fraction, and hits so far.
One writer per process and append-only files mean no cross-process
locking — the watcher only ever reads.

``repro obs watch`` tails those files and renders a live table; a
worker whose newest heartbeat is older than ``--stall-after`` seconds
(and whose file does not end in a ``done`` record) is flagged as
stalled.  ``--once`` prints a single snapshot and exits non-zero when
anything is stalled, which is what the tests drive.

Heartbeats are sampled on a wall-clock cadence by a daemon thread — the
simulation itself is never touched, so golden digests are identical
with heartbeats on or off.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time as _time
from contextlib import nullcontext
from typing import Callable, ContextManager, List, Optional, Union

from repro.obs.artifacts import artifact_dir

HEARTBEAT_ENV = "REPRO_HEARTBEAT"
_TRUTHY = ("1", "true", "on", "yes")

DEFAULT_INTERVAL_S = 5.0
DEFAULT_STALL_AFTER_S = 60.0
TELEMETRY_SUBDIR = "telemetry"


def resolve_heartbeat_interval(value: Optional[str] = None) -> Optional[float]:
    """Heartbeat interval in seconds, or None when heartbeats are off.

    ``REPRO_HEARTBEAT`` accepts a truthy flag (default 5 s cadence) or a
    number of seconds (``REPRO_HEARTBEAT=2.5``).
    """
    if value is None:
        value = os.environ.get(HEARTBEAT_ENV, "")
    value = value.strip().lower()
    if not value:
        return None
    if value in _TRUTHY:
        return DEFAULT_INTERVAL_S
    try:
        interval = float(value)
    except ValueError:
        return None
    return interval if interval > 0 else None


def heartbeat_dir(base: Optional[Union[str, pathlib.Path]] = None) -> pathlib.Path:
    """Directory heartbeat files live in (under the artefact dir)."""
    root = pathlib.Path(base) if base is not None else artifact_dir()
    return root / TELEMETRY_SUBDIR


class HeartbeatWriter:
    """Daemon thread appending progress records for one running spec.

    Used as a context manager around ``sim.run``::

        with HeartbeatWriter(spec_id, duration, progress) as hb:
            sim.run(duration)

    ``progress`` is a zero-argument callable returning
    ``(sim_time, hits)``; it is invoked from the heartbeat thread, so it
    must only *read* (both values are plain floats/ints written by the
    sim thread — a torn read at worst smears one heartbeat, never the
    simulation).
    """

    def __init__(
        self,
        spec_id: str,
        duration_s: float,
        progress: Callable[[], tuple],
        interval_s: float = DEFAULT_INTERVAL_S,
        base_dir: Optional[Union[str, pathlib.Path]] = None,
        clock: Callable[[], float] = _time.time,
        file_stem: Optional[str] = None,
    ):
        self.spec_id = spec_id
        self.duration_s = max(float(duration_s), 1e-9)
        self._progress = progress
        self.interval_s = float(interval_s)
        self._clock = clock
        # Default stem is per-process (executor workers); shard runtimes
        # pass ``shard-<k>`` so inline shards get distinct files too.
        if file_stem is None:
            file_stem = "worker-%d" % os.getpid()
        self.path = heartbeat_dir(base_dir) / (file_stem + ".jsonl")
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._seq = 0
        self._last = (0.0, 0)

    # -- record emission --------------------------------------------------

    def _write(self, done: bool = False) -> None:
        try:
            sim_time, hits = self._progress()
        except RuntimeError:
            # The sim thread mutated a dict mid-iteration; skip one
            # sample rather than perturb anything.
            sim_time, hits = self._last
        self._last = (sim_time, hits)
        record = {
            "wall": self._clock(),
            "pid": os.getpid(),
            "spec": self.spec_id,
            "seq": self._seq,
            "sim_time": float(sim_time),
            "fraction": min(1.0, float(sim_time) / self.duration_s),
            "hits": int(hits),
            "done": done,
        }
        self._seq += 1
        with open(self.path, "a") as fh:
            fh.write(json.dumps(record) + "\n")

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self._write()

    # -- context manager --------------------------------------------------

    def __enter__(self) -> "HeartbeatWriter":
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._write()
        self._thread = threading.Thread(
            target=self._loop, name="repro-heartbeat", daemon=True
        )
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.interval_s + 1.0)
        self._write(done=True)


_current_spec_label: Optional[str] = None


def set_current_spec(label: Optional[str]) -> None:
    """Process-local label for the spec this worker is executing.

    Set by the executor before dispatching into the runner, so the
    heartbeat emitted deep inside ``run_experiment`` can name the spec
    without the runner growing a telemetry parameter.
    """
    global _current_spec_label
    _current_spec_label = label


def current_spec_label() -> Optional[str]:
    return _current_spec_label


def maybe_heartbeat(
    label: Optional[str],
    duration_s: float,
    progress: Callable[[], tuple],
    file_stem: Optional[str] = None,
) -> ContextManager:
    """A :class:`HeartbeatWriter` when ``REPRO_HEARTBEAT`` is set, else a
    no-op context — the single gate both executor routes use."""
    interval = resolve_heartbeat_interval()
    if interval is None:
        return nullcontext()
    if label is None:
        label = current_spec_label() or "?"
    return HeartbeatWriter(
        label, duration_s, progress, interval_s=interval, file_stem=file_stem
    )


# -- the watcher ------------------------------------------------------------


def read_heartbeats(path: Union[str, pathlib.Path]) -> List[dict]:
    """All heartbeat records in one worker file (bad lines skipped)."""
    out: List[dict] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError:
                continue  # torn final line of a crashed worker
            if isinstance(rec, dict):
                out.append(rec)
    return out


def watch_snapshot(
    directory: Union[str, pathlib.Path],
    stall_after_s: float = DEFAULT_STALL_AFTER_S,
    now: Optional[float] = None,
) -> List[dict]:
    """One row per worker file: latest progress plus stall status.

    A worker is ``stalled`` when its newest record is not ``done`` and
    is older than ``stall_after_s`` seconds of wall clock.  Pure
    function of the files and ``now`` — tests pass a frozen ``now``.
    """
    directory = pathlib.Path(directory)
    if now is None:
        now = _time.time()
    rows: List[dict] = []
    paths = sorted(
        list(directory.glob("worker-*.jsonl")) + list(directory.glob("shard-*.jsonl"))
    )
    for path in paths:
        records = read_heartbeats(path)
        if not records:
            continue
        last = records[-1]
        age = max(0.0, now - float(last.get("wall", now)))
        done = bool(last.get("done"))
        rows.append(
            {
                "file": path.name,
                "pid": last.get("pid"),
                "spec": last.get("spec"),
                "sim_time": last.get("sim_time"),
                "fraction": last.get("fraction"),
                "hits": last.get("hits"),
                "beats": len(records),
                "age_s": age,
                "done": done,
                "stalled": (not done) and age > stall_after_s,
            }
        )
    return rows


def render_watch(rows: List[dict], stall_after_s: float) -> str:
    """The ``repro obs watch`` table."""
    if not rows:
        return "no heartbeat files yet"
    lines = [
        f"{'worker':<22} {'spec':<34} {'progress':>8} {'hits':>6} "
        f"{'beats':>6} {'age s':>7}  status"
    ]
    for row in rows:
        fraction = row.get("fraction")
        progress = "%5.1f%%" % (fraction * 100) if fraction is not None else "?"
        spec = str(row.get("spec") or "?")
        if len(spec) > 34:
            spec = spec[:31] + "..."
        if row["done"]:
            status = "done"
        elif row["stalled"]:
            status = "STALLED (silent > %.0fs)" % stall_after_s
        else:
            status = "running"
        lines.append(
            f"{row['file']:<22} {spec:<34} {progress:>8} "
            f"{row.get('hits', 0):>6} {row['beats']:>6} {row['age_s']:>7.1f}  "
            f"{status}"
        )
    stalled = sum(1 for r in rows if r["stalled"])
    if stalled:
        lines.append("%d worker(s) stalled" % stalled)
    return "\n".join(lines)


def clear_heartbeats(
    base: Optional[Union[str, pathlib.Path]] = None,
) -> None:
    """Remove stale worker files before a new batch starts."""
    directory = heartbeat_dir(base)
    if not directory.is_dir():
        return
    for pattern in ("worker-*.jsonl", "shard-*.jsonl"):
        for path in directory.glob(pattern):
            try:
                path.unlink()
            except OSError:
                pass
