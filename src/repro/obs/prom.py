"""Prometheus text-format exposition of the metrics artefact.

``metrics.json`` is the batch's canonical record, but external scrapers
and dashboards speak the Prometheus exposition format.  This module
maps the registry's sections onto it:

* counters  -> ``repro_<name>_total`` (``# TYPE ... counter``);
* gauges    -> ``repro_<name>`` (``# TYPE ... gauge``);
* histograms -> classic Prometheus histograms: cumulative
  ``_bucket{le="..."}`` samples ending in ``le="+Inf"``, plus ``_sum``
  and ``_count``;
* timers    -> ``repro_<name>_seconds_total`` and
  ``repro_<name>_calls_total`` counter pairs.

Labelled registry keys (``name{"shard":"2"}``) become Prometheus
labels with escaped values.  Series are deliberately not exported —
exposition is a point-in-time snapshot, not a time-series transport.

The executor writes ``<artifact_dir>/metrics.prom`` next to every
``metrics.json`` (:func:`repro.experiments.parallel.write_metrics`);
``repro obs prom`` regenerates it from an existing artefact.  Both are
pure functions of the document, so the snapshot can be re-derived at
any time — and the round-trip contract (every counter and gauge in
``metrics.json`` appears in ``metrics.prom`` with the same value) is
asserted by ``tests/test_prom.py`` via :func:`parse_prom_text`.
"""

from __future__ import annotations

import math
import pathlib
import re
from typing import Dict, List, Optional, Tuple, Union

from repro.obs.registry import parse_key

PROM_PREFIX = "repro"
PROM_ARTIFACT = "metrics.prom"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>[-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|Inf|NaN))$"
)
_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def sanitize_name(name: str, prefix: str = PROM_PREFIX) -> str:
    """Map a registry metric name onto a legal Prometheus name."""
    body = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    out = f"{prefix}_{body}" if prefix else body
    if not _NAME_OK.match(out):
        out = "_" + out
    return out


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def format_labels(labels: Dict[str, str]) -> str:
    """``{k="v",...}`` with canonical key order, empty string if none."""
    if not labels:
        return ""
    body = ",".join(
        '%s="%s"' % (re.sub(r"[^a-zA-Z0-9_]", "_", k), _escape_label(str(v)))
        for k, v in sorted(labels.items())
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def prom_sample_key(
    key: str, kind: str = "counter", prefix: str = PROM_PREFIX
) -> str:
    """The exposition sample name+labels one registry key maps to.

    ``kind`` is ``counter``/``gauge``; this is what the round-trip test
    uses to find a ``metrics.json`` entry inside ``metrics.prom``.
    """
    name, labels = parse_key(key)
    base = sanitize_name(name, prefix)
    if kind == "counter":
        base += "_total"
    return base + format_labels(labels)


def prom_lines(snapshot: dict, prefix: str = PROM_PREFIX) -> List[str]:
    """Exposition lines for one registry snapshot (no trailing newline)."""
    lines: List[str] = []
    typed: Dict[str, str] = {}

    def declare(name: str, prom_type: str) -> None:
        if name in typed:
            return
        typed[name] = prom_type
        lines.append("# TYPE %s %s" % (name, prom_type))

    # Group by exposition name so one TYPE header covers every label set.
    counters = snapshot.get("counters", {})
    grouped: Dict[str, List[Tuple[str, float]]] = {}
    for key in sorted(counters):
        name, labels = parse_key(key)
        base = sanitize_name(name, prefix) + "_total"
        grouped.setdefault(base, []).append(
            (format_labels(labels), counters[key])
        )
    for base in sorted(grouped):
        declare(base, "counter")
        for label_str, value in grouped[base]:
            lines.append("%s%s %s" % (base, label_str, _format_value(value)))

    gauges = snapshot.get("gauges", {})
    grouped = {}
    for key in sorted(gauges):
        name, labels = parse_key(key)
        base = sanitize_name(name, prefix)
        grouped.setdefault(base, []).append(
            (format_labels(labels), gauges[key])
        )
    for base in sorted(grouped):
        declare(base, "gauge")
        for label_str, value in grouped[base]:
            lines.append("%s%s %s" % (base, label_str, _format_value(value)))

    for key in sorted(snapshot.get("histograms", {})):
        hist = snapshot["histograms"][key]
        name, labels = parse_key(key)
        base = sanitize_name(name, prefix)
        declare(base, "histogram")
        cumulative = 0
        for bound, count in zip(hist["bounds"], hist["counts"]):
            cumulative += count
            bucket_labels = dict(labels, le=_format_value(bound))
            lines.append(
                "%s_bucket%s %d"
                % (base, format_labels(bucket_labels), cumulative)
            )
        cumulative += hist["counts"][len(hist["bounds"])]
        lines.append(
            "%s_bucket%s %d"
            % (base, format_labels(dict(labels, le="+Inf")), cumulative)
        )
        lines.append(
            "%s_sum%s %s"
            % (base, format_labels(labels), _format_value(hist["sum"]))
        )
        lines.append(
            "%s_count%s %d" % (base, format_labels(labels), hist["count"])
        )

    for key in sorted(snapshot.get("timers", {})):
        entry = snapshot["timers"][key]
        name, labels = parse_key(key)
        base = sanitize_name(name, prefix)
        label_str = format_labels(labels)
        declare(base + "_seconds_total", "counter")
        lines.append(
            "%s_seconds_total%s %s"
            % (base, label_str, _format_value(entry.get("total_s", 0.0)))
        )
        declare(base + "_calls_total", "counter")
        lines.append(
            "%s_calls_total%s %s"
            % (base, label_str, _format_value(entry.get("count", 0)))
        )
    return lines


def render_prom(doc_or_snapshot: dict, prefix: str = PROM_PREFIX) -> str:
    """Full exposition text for a metrics artefact document (its merged
    snapshot) or a bare registry snapshot."""
    snapshot = doc_or_snapshot.get("merged", doc_or_snapshot)
    return "\n".join(prom_lines(snapshot, prefix)) + "\n"


def write_prom(
    doc_or_snapshot: dict,
    path: Optional[Union[str, pathlib.Path]] = None,
) -> pathlib.Path:
    """Write the exposition snapshot; default path is
    ``<artifact_dir>/metrics.prom``."""
    if path is None:
        from repro.obs.artifacts import artifact_dir

        path = artifact_dir() / PROM_ARTIFACT
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_prom(doc_or_snapshot))
    return path


# -- validation / parse-back ------------------------------------------------


def validate_prom_text(text: str) -> int:
    """Raise ``ValueError`` unless every line is legal exposition format;
    returns the number of sample lines (the CI line-format check)."""
    samples = 0
    declared: Dict[str, str] = {}
    for i, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in _TYPES:
                raise ValueError("line %d: malformed TYPE comment" % i)
            if parts[2] in declared:
                raise ValueError(
                    "line %d: duplicate TYPE for %s" % (i, parts[2])
                )
            declared[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        if not match:
            raise ValueError("line %d: not a valid sample line: %r" % (i, line))
        samples += 1
    if not samples:
        raise ValueError("no samples in exposition text")
    return samples


def parse_prom_text(text: str) -> Dict[str, float]:
    """``name{labels}`` -> value for every sample line (last one wins)."""
    out: Dict[str, float] = {}
    for line in text.splitlines():
        if not line.strip() or line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        if not match:
            continue
        raw = match.group("value")
        value = float(raw.replace("Inf", "inf").replace("NaN", "nan"))
        out[match.group("name") + (match.group("labels") or "")] = value
    return out
