"""Causal frame-lineage tracing.

The paper's headline number — broadcast hit rate h_b — is the end of a
causal chain: a phone's broadcast probe is delivered to the attacker,
the attacker selects a burst (each candidate with a PB/FB/ghost bucket
and a provenance), the probe responses fly back, one of them matches the
client's PNL, and the association handshake lands the hit.  The metrics
layer only sees the *totals* of that chain; this module records the
chain itself.

A :class:`LineageTrace` hangs off every
:class:`~repro.sim.simulation.Simulation` (``sim.lineage``), disabled by
default and switched on with ``REPRO_LINEAGE=1`` (or the ``lineage=``
constructor argument).  Instrumented components — the medium, the rogue
APs, the phones — append *records*: small dicts carrying a node id, a
parent id, the root ("trace") id, the simulated time, the acting
station and free-form attributes.  Causality is threaded two ways:

* **frames** — a transmitted frame is registered under its lineage
  context by object identity, so its later delivery (and anything sent
  while handling it) chains to the transmission;
* **the current context** — while the medium hands a frame to a
  receiver it sets :attr:`LineageTrace.current`, so everything the
  receiver emits synchronously (a response burst, a hit record) becomes
  a child of that delivery without the receiver knowing about frames.

Determinism contract: the tracer only *observes*.  It never draws from
any RNG stream, never schedules events, never touches the metrics
registry or the event sink — so the golden-master digests are
bit-identical with lineage off and on (asserted by the golden tests).

Exports: :func:`write_chrome_trace` renders records as Chrome
trace-event JSON (loadable in Perfetto / ``chrome://tracing``), with
flow arrows along parent links; :func:`hunt_story` reconstructs one
client's full hunt story — the ``repro obs lineage <mac>`` CLI.
"""

from __future__ import annotations

import json
import os
import pathlib
from collections import OrderedDict, deque
from typing import Dict, Iterable, List, Optional, Tuple, Union

LINEAGE_ENV = "REPRO_LINEAGE"
LINEAGE_MAX_ENV = "REPRO_LINEAGE_MAX"
_TRUTHY = ("1", "true", "on", "yes")

DEFAULT_MAX_RECORDS = 500_000
"""Ring-buffer cap on retained lineage records (oldest evicted)."""

FRAME_MAP_CAP = 65_536
"""Bound on the frame-identity map.  A frame's context is only looked
up between its transmission and its delivery (plus the scan window a
phone holds candidate responses), so the map only needs to cover the
frames currently in flight — 64k is orders of magnitude above any
simulated air."""

TRACE_EVENT_REQUIRED_KEYS = ("ph", "ts", "pid", "tid", "name")
"""Keys every exported trace event must carry (the schema contract the
tests pin)."""


def _env_lineage_default() -> bool:
    return os.environ.get(LINEAGE_ENV, "").strip().lower() in _TRUTHY


def _default_max_records() -> int:
    value = os.environ.get(LINEAGE_MAX_ENV, "").strip()
    if value:
        try:
            cap = int(value)
        except ValueError:
            raise ValueError(
                "%s must be an integer, got %r" % (LINEAGE_MAX_ENV, value)
            ) from None
        if cap < 1:
            raise ValueError("%s must be >= 1, got %r" % (LINEAGE_MAX_ENV, cap))
        return cap
    return DEFAULT_MAX_RECORDS


Ctx = Tuple[int, int]
"""A lineage context: (node id, root trace id)."""


class _Pushed:
    """Context manager swapping :attr:`LineageTrace.current` in and out."""

    __slots__ = ("_ln", "_ctx", "_prev")

    def __init__(self, ln: "LineageTrace", ctx: Optional[Ctx]):
        self._ln = ln
        self._ctx = ctx

    def __enter__(self) -> Optional[Ctx]:
        self._prev = self._ln.current
        self._ln.current = self._ctx
        return self._ctx

    def __exit__(self, *exc) -> None:
        self._ln.current = self._prev


class LineageTrace:
    """Bounded, append-only store of causal lineage records."""

    def __init__(
        self,
        enabled: Optional[bool] = None,
        max_records: Optional[int] = None,
    ):
        if enabled is None:
            enabled = _env_lineage_default()
        if max_records is None:
            max_records = _default_max_records()
        if max_records < 1:
            raise ValueError("max_records must be >= 1, got %r" % max_records)
        self.enabled = bool(enabled)
        self.max_records = max_records
        self._records: "deque[Dict[str, object]]" = deque(maxlen=max_records)
        self.dropped = 0
        self._next_id = 1
        self.current: Optional[Ctx] = None
        self._frame_ctx: "OrderedDict[int, Ctx]" = OrderedDict()

    # -- recording --------------------------------------------------------

    def _emit(
        self,
        time: float,
        kind: str,
        actor: str,
        parent: Optional[Ctx],
        attrs: Dict[str, object],
    ) -> Ctx:
        node = self._next_id
        self._next_id += 1
        trace = parent[1] if parent is not None else node
        record: Dict[str, object] = {
            "id": node,
            "parent": parent[0] if parent is not None else None,
            "trace": trace,
            "time": time,
            "kind": kind,
            "actor": actor,
        }
        if attrs:
            record.update(attrs)
        if len(self._records) == self.max_records:
            self.dropped += 1
        self._records.append(record)
        return (node, trace)

    def event(
        self,
        time: float,
        kind: str,
        actor: str,
        parent: Optional[Ctx] = None,
        **attrs: object,
    ) -> Ctx:
        """Record one causal event; parent defaults to ``current``."""
        if parent is None:
            parent = self.current
        return self._emit(time, kind, actor, parent, attrs)

    def frame_sent(
        self,
        time: float,
        frame: object,
        sender: str,
        parent: Optional[Ctx] = None,
        **attrs: object,
    ) -> Ctx:
        """Record a frame transmission and remember the frame's context.

        The parent defaults to ``current`` — so a response transmitted
        while the sender handles a delivered probe chains under that
        delivery automatically.
        """
        if parent is None:
            parent = self.current
        kind = getattr(frame, "kind", type(frame).__name__)
        ssid = getattr(frame, "ssid", None)
        if ssid is not None:
            attrs.setdefault("ssid", ssid)
        dst = getattr(frame, "dst", None)
        if dst is not None:
            attrs.setdefault("dst", dst)
        ctx = self._emit(time, f"tx:{kind}", sender, parent, attrs)
        frames = self._frame_ctx
        frames[id(frame)] = ctx
        if len(frames) > FRAME_MAP_CAP:
            frames.popitem(last=False)
        return ctx

    def frame_ctx(self, frame: object) -> Optional[Ctx]:
        """The lineage context a frame was transmitted under, if known."""
        return self._frame_ctx.get(id(frame))

    def delivered(
        self, time: float, frame: object, receiver: str, **attrs: object
    ) -> Ctx:
        """Record one frame delivery, chained to the frame's transmission."""
        kind = getattr(frame, "kind", type(frame).__name__)
        return self._emit(
            time,
            f"rx:{kind}",
            receiver,
            self._frame_ctx.get(id(frame)),
            attrs,
        )

    def push(self, ctx: Optional[Ctx]) -> _Pushed:
        """``with ln.push(ctx): ...`` — scope the current context."""
        return _Pushed(self, ctx)

    # -- reading ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> List[Dict[str, object]]:
        """All retained records, oldest first (plain dicts, JSON-safe)."""
        return [dict(r) for r in self._records]


# -- Chrome trace-event export ---------------------------------------------

TRACE_SCHEMA = "repro.lineage/v1"


def chrome_trace_doc(
    records: Iterable[Dict[str, object]],
    pid: int = 1,
    process_name: str = "repro",
) -> dict:
    """Render lineage records as a Chrome trace-event document.

    Every record becomes one complete ("X") event — ``ts`` in
    microseconds of simulated time, one ``tid`` per acting station —
    and every parent link becomes a flow arrow ("s" → "f"), so Perfetto
    draws the probe → burst → response → hit chain as connected arrows
    across the per-station tracks.  The full lineage record rides along
    in ``args`` so the document is also the machine-readable artefact
    the ``repro obs lineage`` CLI reconstructs stories from.
    """
    events: List[dict] = []
    tids: Dict[str, int] = {}
    events.append(
        {
            "ph": "M",
            "ts": 0,
            "pid": pid,
            "tid": 0,
            "name": "process_name",
            "args": {"name": process_name},
        }
    )
    by_id: Dict[int, Dict[str, object]] = {}
    records = list(records)
    for rec in records:
        by_id[int(rec["id"])] = rec
    for rec in records:
        actor = str(rec.get("actor", "?"))
        tid = tids.get(actor)
        if tid is None:
            tid = tids[actor] = len(tids) + 1
            events.append(
                {
                    "ph": "M",
                    "ts": 0,
                    "pid": pid,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": actor},
                }
            )
        ts = round(float(rec["time"]) * 1e6)
        name = str(rec["kind"])
        if "ssid" in rec:
            name = f"{name} {rec['ssid']}"
        events.append(
            {
                "ph": "X",
                "ts": ts,
                "dur": 1,
                "pid": pid,
                "tid": tid,
                "name": name,
                "cat": str(rec["kind"]),
                "args": {"lineage": rec},
            }
        )
        parent = rec.get("parent")
        if parent is not None and int(parent) in by_id:
            parent_rec = by_id[int(parent)]
            parent_actor = str(parent_rec.get("actor", "?"))
            parent_tid = tids.get(parent_actor)
            if parent_tid is None:
                parent_tid = tids[parent_actor] = len(tids) + 1
                events.append(
                    {
                        "ph": "M",
                        "ts": 0,
                        "pid": pid,
                        "tid": parent_tid,
                        "name": "thread_name",
                        "args": {"name": parent_actor},
                    }
                )
            flow = {
                "ph": "s",
                "ts": round(float(parent_rec["time"]) * 1e6),
                "pid": pid,
                "tid": parent_tid,
                "name": "lineage",
                "cat": "lineage",
                "id": int(rec["id"]),
            }
            events.append(flow)
            events.append(
                {
                    "ph": "f",
                    "bp": "e",
                    "ts": ts,
                    "pid": pid,
                    "tid": tid,
                    "name": "lineage",
                    "cat": "lineage",
                    "id": int(rec["id"]),
                }
            )
    return {
        "schema": TRACE_SCHEMA,
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }


def write_chrome_trace(
    records: Iterable[Dict[str, object]],
    path: Union[str, pathlib.Path],
    pid: int = 1,
    process_name: str = "repro",
) -> pathlib.Path:
    """Write :func:`chrome_trace_doc` to ``path``; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = chrome_trace_doc(records, pid=pid, process_name=process_name)
    path.write_text(json.dumps(doc, sort_keys=True) + "\n")
    return path


def validate_chrome_trace(doc: dict) -> None:
    """Raise ``ValueError`` unless ``doc`` is a valid trace-event file."""
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("trace document has no traceEvents list")
    for i, event in enumerate(events):
        for key in TRACE_EVENT_REQUIRED_KEYS:
            if key not in event:
                raise ValueError(
                    "traceEvents[%d] missing required key %r" % (i, key)
                )
        if event["ph"] == "X" and "dur" not in event:
            raise ValueError("traceEvents[%d] complete event lacks dur" % i)


def load_chrome_trace(path: Union[str, pathlib.Path]) -> List[Dict[str, object]]:
    """Recover the lineage records embedded in an exported trace file."""
    doc = json.loads(pathlib.Path(path).read_text())
    validate_chrome_trace(doc)
    out: List[Dict[str, object]] = []
    for event in doc["traceEvents"]:
        args = event.get("args")
        if isinstance(args, dict) and isinstance(args.get("lineage"), dict):
            out.append(args["lineage"])
    return out


# -- story reconstruction ---------------------------------------------------


def _children_index(
    records: List[Dict[str, object]],
) -> Dict[Optional[int], List[Dict[str, object]]]:
    children: Dict[Optional[int], List[Dict[str, object]]] = {}
    for rec in records:
        parent = rec.get("parent")
        children.setdefault(
            int(parent) if parent is not None else None, []
        ).append(rec)
    for kids in children.values():
        kids.sort(key=lambda r: (float(r["time"]), int(r["id"])))
    return children


def _format_record(rec: Dict[str, object]) -> str:
    skip = {"id", "parent", "trace", "time", "kind", "actor"}
    extras = " ".join(
        f"{k}={rec[k]!r}" for k in sorted(rec) if k not in skip
    )
    line = f"t={float(rec['time']):10.4f}  {rec['kind']:<16} {rec['actor']}"
    return f"{line}  {extras}" if extras else line


def client_traces(
    records: List[Dict[str, object]], mac: str
) -> List[Dict[str, object]]:
    """Root records of every trace that involves client ``mac``.

    A trace involves the client when the client is the actor of any of
    its records or is named by a ``client``/``dst`` attribute — so both
    the phone's own probes and the attacker-side records they caused
    are found.
    """
    involved = set()
    for rec in records:
        if (
            rec.get("actor") == mac
            or rec.get("client") == mac
            or rec.get("dst") == mac
        ):
            involved.add(int(rec["trace"]))
    return [
        rec
        for rec in records
        if int(rec["id"]) == int(rec["trace"]) and int(rec["trace"]) in involved
    ]


def hunt_story(records: List[Dict[str, object]], mac: str) -> str:
    """One client's full hunt story, reconstructed from lineage records.

    Each causal tree rooted at one of the client's probes (or at a frame
    addressed to it) is rendered depth-first with indentation, ending in
    the ``hit``/``connected`` records when the hunt succeeded.
    """
    roots = client_traces(records, mac)
    if not roots:
        return f"no lineage records involve {mac}"
    children = _children_index(records)
    lines: List[str] = [f"hunt story for {mac}: {len(roots)} causal trace(s)"]
    hits = [
        r
        for r in records
        if r.get("kind") == "hit" and r.get("client") == mac
    ]
    for root in sorted(roots, key=lambda r: (float(r["time"]), int(r["id"]))):
        lines.append("")
        stack: List[Tuple[Dict[str, object], int]] = [(root, 0)]
        while stack:
            rec, depth = stack.pop()
            lines.append("  " * depth + _format_record(rec))
            kids = children.get(int(rec["id"]), [])
            for kid in reversed(kids):
                stack.append((kid, depth + 1))
    lines.append("")
    if hits:
        for h in hits:
            lines.append(
                f"HIT at t={float(h['time']):.4f}: {mac} associated to "
                f"{h.get('ssid')!r} (trace {h['trace']})"
            )
    else:
        lines.append(f"no hit recorded for {mac}")
    return "\n".join(lines)
