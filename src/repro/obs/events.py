"""Buffered structured-event sink with a bounded ring buffer.

The sink is the exportable counterpart of :class:`~repro.sim.tracing.Trace`:
low-frequency, *structured* events (phase spans, PB/FB swaps, deauth
cycles) written as dicts, capped so it can stay enabled during the full
Fig. 5 sweeps, and serialisable to JSON Lines for offline analysis.

When the buffer is full the *oldest* events are evicted and counted in
``dropped`` — recent history is what post-mortems want, and the drop
counter keeps the loss honest in the artefact.
"""

from __future__ import annotations

import json
import pathlib
from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Union

DEFAULT_MAX_EVENTS = 65_536


class EventSink:
    """Capped, append-only store of timestamped event dicts."""

    def __init__(
        self,
        max_events: int = DEFAULT_MAX_EVENTS,
        enabled: bool = True,
    ):
        if max_events < 1:
            raise ValueError("max_events must be >= 1, got %r" % max_events)
        self.enabled = enabled
        self.max_events = max_events
        self._buf: "deque[Dict[str, object]]" = deque(maxlen=max_events)
        self.dropped = 0

    def emit(self, time: float, kind: str, **fields: object) -> None:
        """Record one event (no-op when disabled)."""
        if not self.enabled:
            return
        if len(self._buf) == self.max_events:
            self.dropped += 1
        event: Dict[str, object] = {"time": time, "kind": kind}
        event.update(fields)
        self._buf.append(event)

    def __len__(self) -> int:
        return len(self._buf)

    def __iter__(self) -> Iterator[Dict[str, object]]:
        return iter(self._buf)

    def records(self) -> List[Dict[str, object]]:
        """All retained events, oldest first."""
        return list(self._buf)

    def of_kind(self, kind: str) -> List[Dict[str, object]]:
        """Retained events of one kind, oldest first."""
        return [e for e in self._buf if e.get("kind") == kind]

    def write_jsonl(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        """Write the retained events as JSON Lines; returns the path."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as f:
            for event in self._buf:
                f.write(json.dumps(event, sort_keys=True) + "\n")
        return path


def write_events_jsonl(
    events: Iterable[Dict[str, object]],
    path: Union[str, pathlib.Path],
    run: Optional[str] = None,
) -> int:
    """Append event dicts to a JSONL file; returns the line count written.

    ``run`` tags every line with its originating run so the per-run
    streams of one batch can share a file and still be separable.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("a") as f:
        for event in events:
            if run is not None:
                event = {"run": run, **event}
            f.write(json.dumps(event, sort_keys=True) + "\n")
            count += 1
    return count


def read_jsonl(path: Union[str, pathlib.Path]) -> List[Dict[str, object]]:
    """Load a JSONL event file back into a list of dicts."""
    out: List[Dict[str, object]] = []
    with pathlib.Path(path).open() as f:
        for line in f:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out
