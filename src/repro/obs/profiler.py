"""Per-handler simulation profiler.

The scheduler is the single choke point every simulated event passes
through, which makes it the natural place to answer "where does the
wall-clock go?".  When a :class:`SimProfiler` is attached
(``Simulation(profile=True)`` or ``REPRO_PROFILE=1``), the scheduler
times each callback with ``perf_counter`` and also credits it with the
simulated time the clock advanced to reach it — so a handler can be hot
two different ways: burning CPU per call, or owning most of the
simulated timeline.

Handlers are keyed by the callback's qualified name
(``Phone._probe_channel``, ``Medium._deliver``, ...), which is exactly
the granularity the hot-path work in PR 4 was tuned at.

Output shapes:

* :meth:`SimProfiler.to_dict` — JSON artefact (``repro.profile/v1``)
  the executor writes next to ``metrics.json``;
* :meth:`SimProfiler.collapsed` — collapsed-stack lines
  (``sim;<handler> <microseconds>``) ready for ``flamegraph.pl`` or
  speedscope;
* :func:`render_hot_table` — the ``repro obs profile`` terminal table.

Like the lineage tracer, the profiler only observes: no RNG draws, no
scheduling, no metrics writes — golden digests are unchanged whether it
is on or off.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Dict, Iterable, List, Optional, Union

PROFILE_ENV = "REPRO_PROFILE"
_TRUTHY = ("1", "true", "on", "yes")

PROFILE_SCHEMA = "repro.profile/v1"


def env_profile_default() -> bool:
    return os.environ.get(PROFILE_ENV, "").strip().lower() in _TRUTHY


class SimProfiler:
    """Accumulates per-handler call counts, wall time and sim time."""

    __slots__ = ("_handlers",)

    def __init__(self):
        # name -> [calls, wall_s, sim_advance_s]
        self._handlers: Dict[str, List[float]] = {}

    def record(self, name: str, wall_s: float, sim_advance_s: float) -> None:
        """Credit one callback invocation (hot path: one dict probe)."""
        cell = self._handlers.get(name)
        if cell is None:
            self._handlers[name] = [1, wall_s, sim_advance_s]
        else:
            cell[0] += 1
            cell[1] += wall_s
            cell[2] += sim_advance_s

    def __len__(self) -> int:
        return len(self._handlers)

    @property
    def total_wall_s(self) -> float:
        return sum(cell[1] for cell in self._handlers.values())

    @property
    def total_calls(self) -> int:
        return int(sum(cell[0] for cell in self._handlers.values()))

    def handlers(self) -> List[dict]:
        """Per-handler rows, hottest (by wall time) first."""
        rows = [
            {
                "name": name,
                "calls": int(cell[0]),
                "wall_s": cell[1],
                "sim_advance_s": cell[2],
            }
            for name, cell in self._handlers.items()
        ]
        rows.sort(key=lambda r: (-r["wall_s"], r["name"]))
        return rows

    def to_dict(self) -> dict:
        return {
            "schema": PROFILE_SCHEMA,
            "total_calls": self.total_calls,
            "total_wall_s": round(self.total_wall_s, 6),
            "handlers": [
                {
                    "name": r["name"],
                    "calls": r["calls"],
                    "wall_s": round(r["wall_s"], 6),
                    "sim_advance_s": round(r["sim_advance_s"], 6),
                }
                for r in self.handlers()
            ],
        }

    def collapsed(self, root: str = "sim") -> List[str]:
        """Collapsed-stack lines; the value is wall time in microseconds."""
        return [
            "%s;%s %d" % (root, r["name"], round(r["wall_s"] * 1e6))
            for r in self.handlers()
        ]


def merge_profiles(docs: Iterable[dict]) -> dict:
    """Merge ``repro.profile/v1`` documents from several runs into one."""
    merged: Dict[str, List[float]] = {}
    for doc in docs:
        if doc.get("schema") != PROFILE_SCHEMA:
            raise ValueError("not a %s document: %r" % (PROFILE_SCHEMA, doc.get("schema")))
        for row in doc.get("handlers", []):
            cell = merged.setdefault(row["name"], [0, 0.0, 0.0])
            cell[0] += row["calls"]
            cell[1] += row["wall_s"]
            cell[2] += row["sim_advance_s"]
    out = SimProfiler()
    for name, cell in merged.items():
        out._handlers[name] = cell
    return out.to_dict()


def profile_collapsed(doc: dict, root: str = "sim") -> List[str]:
    """Collapsed-stack lines from a ``repro.profile/v1`` document."""
    if doc.get("schema") != PROFILE_SCHEMA:
        raise ValueError("not a %s document: %r" % (PROFILE_SCHEMA, doc.get("schema")))
    return [
        "%s;%s %d" % (root, row["name"], round(row["wall_s"] * 1e6))
        for row in doc.get("handlers", [])
    ]


def render_hot_table(doc: dict, top: int = 15) -> str:
    """The ``repro obs profile`` terminal table: hottest handlers first."""
    if doc.get("schema") != PROFILE_SCHEMA:
        raise ValueError("not a %s document: %r" % (PROFILE_SCHEMA, doc.get("schema")))
    handlers = doc.get("handlers", [])
    total_wall = doc.get("total_wall_s") or sum(r["wall_s"] for r in handlers) or 1.0
    lines = [
        "hot handlers (%d total, %.3f s wall, %d calls)"
        % (len(handlers), doc.get("total_wall_s", 0.0), doc.get("total_calls", 0)),
        f"{'handler':<44} {'calls':>9} {'wall s':>9} {'wall %':>7} "
        f"{'us/call':>8} {'sim s':>9}",
    ]
    for row in handlers[:top]:
        per_call_us = row["wall_s"] / row["calls"] * 1e6 if row["calls"] else 0.0
        lines.append(
            f"{row['name']:<44} {row['calls']:>9} {row['wall_s']:>9.4f} "
            f"{row['wall_s'] / total_wall * 100:>6.1f}% "
            f"{per_call_us:>8.1f} {row['sim_advance_s']:>9.1f}"
        )
    if len(handlers) > top:
        rest_wall = sum(r["wall_s"] for r in handlers[top:])
        lines.append(
            f"{'... %d more' % (len(handlers) - top):<44} {'':>9} "
            f"{rest_wall:>9.4f} {rest_wall / total_wall * 100:>6.1f}%"
        )
    return "\n".join(lines)


def write_profile(
    doc: dict, path: Union[str, pathlib.Path]
) -> pathlib.Path:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def load_profile(path: Union[str, pathlib.Path]) -> dict:
    doc = json.loads(pathlib.Path(path).read_text())
    if doc.get("schema") != PROFILE_SCHEMA:
        raise ValueError("not a %s document: %r" % (PROFILE_SCHEMA, doc.get("schema")))
    return doc


def write_collapsed(
    doc: dict, path: Union[str, pathlib.Path], root: str = "sim"
) -> pathlib.Path:
    """Write flamegraph-ready collapsed stacks for a profile document."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("\n".join(profile_collapsed(doc, root=root)) + "\n")
    return path


def load_profile_optional(path: Union[str, pathlib.Path]) -> Optional[dict]:
    path = pathlib.Path(path)
    if not path.exists():
        return None
    return load_profile(path)
