"""Declared serving SLOs: p99 stage budgets and a shed-fraction budget.

The serving plane now measures where each probe's microseconds go
(:mod:`repro.obs.reqtrace` spans, ``serve.*_us`` stage histograms);
this module *declares* how many microseconds are acceptable and turns a
metrics or bench artefact into a pass/fail verdict — the tail-latency
gate between "we have histograms" and "CI fails when the tail
regresses".

A :class:`ServeSlo` carries one p99 budget per pipeline stage
(microseconds) plus a shed-fraction budget.  :func:`evaluate_slo`
accepts either artefact the toolchain produces:

* a ``repro.metrics/v1`` document (``repro serve run``'s
  ``metrics.json``): stage p99s are estimated from the merged
  ``serve.<stage>_us`` histograms via
  :func:`~repro.obs.registry.estimate_percentile`, the shed fraction
  from the ``serve.shed_total`` / ``serve.events_total`` counters;
* a ``repro.bench_serve/v1`` document (``BENCH_serve.json``): each grid
  point's measured ``p99_us`` is checked against the select-stage
  budget and its ``shed_fraction`` against the shed budget.

The default budgets are deliberately generous (50 ms select/apply p99,
5 s queue/commit wait, 5 % shed) — loose enough that the committed
``BENCH_serve`` baseline and an unloaded CI runner pass, tight enough
to catch a wedged sequencer or a pathological ranking walk.  ``repro
obs slo --once`` exits non-zero on breach, and the ``repro obs bench``
gate evaluates the default SLO on every ``repro.bench_serve/v1``
candidate it compares.

Stage histograms are wall-clock (quarantined from the deterministic
metric surface, like ``timers``), so the SLO verdict is about the
*machine*, never about simulation correctness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.obs.bench import SERVE_SCHEMA
from repro.obs.registry import METRICS_SCHEMA, estimate_percentile

SLO_SCHEMA = "repro.slo_report/v1"

#: Pipeline stages with a p99 budget, in path order.  Keys match the
#: ``serve.<stage>_us`` histogram names.
DEFAULT_P99_BUDGETS_US: Dict[str, float] = {
    "queue_wait": 5_000_000.0,
    "commit_wait": 5_000_000.0,
    "select_latency": 50_000.0,
    "apply": 50_000.0,
}

DEFAULT_SHED_BUDGET = 0.05


@dataclass(frozen=True)
class ServeSlo:
    """One declared serving SLO: per-stage p99 budgets + shed budget."""

    p99_budgets_us: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_P99_BUDGETS_US)
    )
    shed_fraction_budget: float = DEFAULT_SHED_BUDGET


def default_slo(
    overrides: Mapping[str, float] = (),
    shed_budget: Optional[float] = None,
) -> ServeSlo:
    """The default SLO with optional per-stage budget overrides."""
    budgets = dict(DEFAULT_P99_BUDGETS_US)
    for stage, value in dict(overrides).items():
        if stage not in budgets:
            raise ValueError(
                "unknown SLO stage %r (stages: %s)"
                % (stage, ", ".join(sorted(budgets)))
            )
        budgets[stage] = float(value)
    return ServeSlo(
        p99_budgets_us=budgets,
        shed_fraction_budget=(
            DEFAULT_SHED_BUDGET if shed_budget is None else float(shed_budget)
        ),
    )


def _check(name: str, value: float, budget: float) -> dict:
    breached = not (value <= budget) or math.isnan(value)
    return {
        "name": name,
        "value": float(value),
        "budget": float(budget),
        "breached": bool(breached),
    }


def _counter_sum(counters: Mapping[str, float], name: str) -> float:
    from repro.obs.registry import parse_key

    return sum(v for k, v in counters.items() if parse_key(k)[0] == name)


def _checks_from_metrics(slo: ServeSlo, doc: dict) -> List[dict]:
    merged = doc.get("merged", {})
    hists = merged.get("histograms", {})
    counters = merged.get("counters", {})
    events = _counter_sum(counters, "serve.events_total")
    stage_hists = {
        stage: hists.get("serve.%s_us" % stage)
        for stage in slo.p99_budgets_us
    }
    if not events and not any(stage_hists.values()):
        raise ValueError(
            "document has no serve.* metrics - not a serving run"
        )
    checks: List[dict] = []
    for stage in sorted(slo.p99_budgets_us):
        hist = stage_hists[stage]
        if hist is None:
            continue  # older artefact without this stage histogram
        p99 = estimate_percentile(hist, 99)
        if p99 is None:
            continue  # declared but empty (e.g. probe-free stream)
        checks.append(
            _check("p99:%s" % stage, p99, slo.p99_budgets_us[stage])
        )
    if events:
        shed = _counter_sum(counters, "serve.shed_total")
        checks.append(
            _check("shed_fraction", shed / events, slo.shed_fraction_budget)
        )
    return checks


def _checks_from_bench(slo: ServeSlo, doc: dict) -> List[dict]:
    grid = doc.get("grid", [])
    if not grid:
        raise ValueError("bench_serve document has an empty grid")
    select_budget = slo.p99_budgets_us.get(
        "select_latency", DEFAULT_P99_BUDGETS_US["select_latency"]
    )
    checks: List[dict] = []
    for point in grid:
        label = "%scl/%swk" % (point.get("clients"), point.get("workers"))
        p99 = point.get("p99_us")
        if p99 is not None:
            checks.append(
                _check("p99:select_latency@%s" % label, p99, select_budget)
            )
        shed = point.get("shed_fraction")
        if shed is not None:
            checks.append(
                _check(
                    "shed_fraction@%s" % label,
                    shed,
                    slo.shed_fraction_budget,
                )
            )
    return checks


def evaluate_slo(slo: ServeSlo, doc: dict) -> dict:
    """Evaluate one SLO against a metrics or bench-serve artefact.

    Raises ``ValueError`` for documents of any other schema or with no
    serving data at all — an SLO verdict over nothing would be
    vacuously green, which is worse than an error.
    """
    schema = doc.get("schema")
    if schema == METRICS_SCHEMA:
        checks = _checks_from_metrics(slo, doc)
    elif schema == SERVE_SCHEMA:
        checks = _checks_from_bench(slo, doc)
    else:
        raise ValueError(
            "cannot evaluate an SLO against schema %r (want %r or %r)"
            % (schema, METRICS_SCHEMA, SERVE_SCHEMA)
        )
    if not checks:
        raise ValueError("document yielded no SLO checks")
    breaches = [c["name"] for c in checks if c["breached"]]
    return {
        "schema": SLO_SCHEMA,
        "source_schema": schema,
        "checks": checks,
        "breaches": breaches,
        "ok": not breaches,
    }


def render_slo_report(report: dict) -> str:
    """Human-readable verdict table for one :func:`evaluate_slo` report."""
    lines = [f"{'check':<34} {'value':>14} {'budget':>14}  verdict"]
    for check in report["checks"]:
        verdict = "BREACH" if check["breached"] else "ok"
        # %g keeps small fractions honest: a 0.05 shed budget must not
        # render as "0.1".
        lines.append(
            f"{check['name']:<34} {check['value']:>14.5g} "
            f"{check['budget']:>14.5g}  {verdict}"
        )
    if report["ok"]:
        lines.append("slo: OK (%d check(s))" % len(report["checks"]))
    else:
        lines.append(
            "slo: BREACH (%s)" % ", ".join(report["breaches"])
        )
    return "\n".join(lines)
