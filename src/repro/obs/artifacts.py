"""One resolution rule for where run artefacts go.

Every writer (timings, metrics, event exports) historically had its own
idea of the output directory; this module is the single authority.
``REPRO_ARTIFACT_DIR`` wins, the pre-existing ``REPRO_TIMINGS_DIR`` is
still honoured for compatibility, and the default is ``benchmarks/out``
under the current directory.
"""

from __future__ import annotations

import os
import pathlib

ARTIFACT_DIR_ENV = "REPRO_ARTIFACT_DIR"
LEGACY_TIMINGS_DIR_ENV = "REPRO_TIMINGS_DIR"
DEFAULT_ARTIFACT_DIR = pathlib.Path("benchmarks") / "out"


def artifact_dir() -> pathlib.Path:
    """The directory run artefacts are written to (not created here)."""
    for env in (ARTIFACT_DIR_ENV, LEGACY_TIMINGS_DIR_ENV):
        value = os.environ.get(env, "").strip()
        if value:
            return pathlib.Path(value)
    return DEFAULT_ARTIFACT_DIR


def artifact_path(name: str, suffix: str = ".json") -> pathlib.Path:
    """Full path of one artefact file under :func:`artifact_dir`."""
    return artifact_dir() / f"{name}{suffix}"


def ensure_artifact_dir() -> pathlib.Path:
    """Create (if needed) and return the artefact directory."""
    root = artifact_dir()
    root.mkdir(parents=True, exist_ok=True)
    return root
