"""Per-epoch barrier spans for the district-sharded engine.

The sharded engine's unit of progress is the *epoch*: every shard runs
phase A (walkers), hits the X1 barrier, runs phase B (sensors), hits
X2, repeat.  End-of-run ``shardops.*`` gauges say how much total work
each shard did; nothing says *which shard was the straggler at which
epoch* or how handoff volume skewed across the stripes.  This module
records exactly that.

With ``REPRO_EPOCH_TRACE`` set (truthy), every
:class:`~repro.sim.shards.shard.ShardRuntime` owns an
:class:`EpochTracer` that appends one JSON record per phase to
``<artifact_dir>/telemetry/epochs-<k>.jsonl``:

* wall-clock start/duration of the phase (``wall``/``wall_s``);
* time spent waiting at the barrier before the phase (``barrier_s`` —
  in process mode that is genuine pipe-wait, in inline mode it is the
  time the driver spent stepping the *other* shards, which is the same
  straggler signal);
* handed-in record counts by kind (``in``) and handed-out record
  counts and bytes by destination shard (``out``/``out_bytes``).

Files are append-only with one writer each, exactly like the heartbeat
files — the live aggregator (``repro obs top``) only reads.

Determinism contract: the tracer only observes.  It never draws from an
RNG stream, never touches the workload metrics, never schedules an
event — golden digests are bit-identical with tracing on or off
(asserted in ``tests/test_shard_golden.py``).

Exports: :func:`epoch_trace_doc` renders the records as Chrome
trace-event JSON with one track per shard, a span per phase, a span per
barrier wait, and flow arrows for every cross-shard handoff batch — an
epoch-barrier stall reads as one visibly long span in Perfetto.  That
is the ``repro obs shard-trace`` CLI.
"""

from __future__ import annotations

import json
import os
import pathlib
import time as _time
from typing import Callable, Dict, List, Optional, Union

from repro.obs.artifacts import artifact_dir

EPOCH_TRACE_ENV = "REPRO_EPOCH_TRACE"
_TRUTHY = ("1", "true", "on", "yes")

EPOCH_FILE_PREFIX = "epochs-"
TELEMETRY_SUBDIR = "telemetry"

#: Phases in barrier order within one epoch.
PHASES = ("a", "b")

#: Auxiliary record kinds sharing the epoch files (not barrier phases):
#: ``"c"`` marks a checkpoint write at an epoch barrier.
AUX_PHASES = ("c",)


def resolve_epoch_trace(value: Optional[str] = None) -> bool:
    """Whether per-epoch barrier tracing is on (``REPRO_EPOCH_TRACE``)."""
    if value is None:
        value = os.environ.get(EPOCH_TRACE_ENV, "")
    return value.strip().lower() in _TRUTHY


def epoch_trace_dir(
    base: Optional[Union[str, pathlib.Path]] = None,
) -> pathlib.Path:
    """Directory the epoch files live in (shared with heartbeats)."""
    root = pathlib.Path(base) if base is not None else artifact_dir()
    return root / TELEMETRY_SUBDIR


def epoch_file(
    shard_id: int, base: Optional[Union[str, pathlib.Path]] = None
) -> pathlib.Path:
    """Path of one shard's epoch-span file."""
    return epoch_trace_dir(base) / ("%s%d.jsonl" % (EPOCH_FILE_PREFIX, shard_id))


def _record_bytes(records) -> int:
    """Rough payload size of a handoff batch (repr bytes — cheap, stable
    enough for skew detection; only computed when tracing is on)."""
    return sum(len(repr(rec)) for rec in records)


class EpochTracer:
    """Append-only per-shard epoch recorder (one instance per shard).

    The shard calls :meth:`record` once per phase, after the phase ran
    and its outboxes are assembled.  The first record rotates any
    leftover file from a previous run to ``<name>.old`` so epoch counts
    are never inflated by stale runs.
    """

    def __init__(
        self,
        shard_id: int,
        shards: int,
        epochs_total: int,
        base_dir: Optional[Union[str, pathlib.Path]] = None,
        clock: Callable[[], float] = _time.time,
    ):
        self.shard_id = int(shard_id)
        self.shards = int(shards)
        self.epochs_total = int(epochs_total)
        self.path = epoch_file(shard_id, base_dir)
        self._clock = clock
        self._opened = False

    def _open(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self.path.exists():
            self.path.replace(self.path.with_name(self.path.name + ".old"))
        self._opened = True

    def record(
        self,
        epoch: int,
        phase: str,
        wall_s: float,
        barrier_s: float,
        records_in: Dict[str, int],
        outboxes: Dict[int, list],
        extra: Optional[Dict[str, object]] = None,
    ) -> None:
        """Append one phase record; ``outboxes`` is the dest->records map
        the phase produced (summarised here, never retained).  ``extra``
        carries phase-specific fields (e.g. checkpoint ``bytes`` on
        ``"c"`` records) and never overrides the core keys."""
        if not self._opened:
            self._open()
        rec = {
            "wall": self._clock(),
            "shard": self.shard_id,
            "shards": self.shards,
            "epoch": int(epoch),
            "epochs": self.epochs_total,
            "phase": phase,
            "wall_s": float(wall_s),
            "barrier_s": float(barrier_s),
            "in": {k: int(v) for k, v in records_in.items() if v},
            "out": {int(d): len(recs) for d, recs in outboxes.items()},
            "out_bytes": sum(_record_bytes(r) for r in outboxes.values()),
        }
        if extra:
            for key, value in extra.items():
                rec.setdefault(key, value)
        with open(self.path, "a") as fh:
            fh.write(json.dumps(rec) + "\n")


def maybe_epoch_tracer(
    shard_id: int,
    shards: int,
    epochs_total: int,
    enabled: Optional[bool] = None,
) -> Optional[EpochTracer]:
    """An :class:`EpochTracer` when tracing is on, else ``None`` — the
    single gate both engine modes use."""
    if enabled is None:
        enabled = resolve_epoch_trace()
    if not enabled:
        return None
    return EpochTracer(shard_id, shards, epochs_total)


# -- readers ----------------------------------------------------------------


def read_epoch_records(path: Union[str, pathlib.Path]) -> List[dict]:
    """All epoch records in one shard file.

    Torn or partial lines (a shard killed mid-write) are skipped, the
    same tolerance the heartbeat reader applies.
    """
    out: List[dict] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError:
                continue
            if isinstance(rec, dict) and "epoch" in rec and "phase" in rec:
                out.append(rec)
    return out


def load_epoch_dir(
    directory: Union[str, pathlib.Path],
) -> Dict[int, List[dict]]:
    """shard id -> epoch records for every ``epochs-<k>.jsonl`` present."""
    directory = pathlib.Path(directory)
    out: Dict[int, List[dict]] = {}
    for path in sorted(directory.glob(EPOCH_FILE_PREFIX + "*.jsonl")):
        stem = path.name[len(EPOCH_FILE_PREFIX) : -len(".jsonl")]
        try:
            shard_id = int(stem)
        except ValueError:
            continue
        records = read_epoch_records(path)
        if records:
            out[shard_id] = records
    return out


# -- Chrome trace-event export ----------------------------------------------


def _span_name(rec: dict) -> str:
    return "epoch %d %s" % (rec["epoch"], rec["phase"].upper())


def epoch_trace_doc(records_by_shard: Dict[int, List[dict]]) -> dict:
    """Chrome trace-event JSON for the epoch spans of one run.

    One track (``tid``) per shard.  Every phase becomes a complete
    (``X``) event whose duration is the phase wall time; the barrier
    wait before it becomes its own dimmer ``barrier`` span, so a stall
    at a barrier is a visibly long box.  Every non-empty handoff batch
    becomes a flow arrow (``s``/``f``) from the emitting phase span to
    the receiving shard's matching span — X1 lands in the same epoch's
    phase B, X2 and migrations land in the next epoch's phase A.
    """
    events: List[dict] = [
        {
            "ph": "M",
            "ts": 0,
            "pid": 1,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "repro-shards"},
        }
    ]
    starts: Dict[tuple, float] = {}
    t0 = None
    for shard_id, records in records_by_shard.items():
        events.append(
            {
                "ph": "M",
                "ts": 0,
                "pid": 1,
                "tid": shard_id,
                "name": "thread_name",
                "args": {"name": "shard %d" % shard_id},
            }
        )
        for rec in records:
            start = float(rec["wall"]) - float(rec["wall_s"])
            starts[(shard_id, int(rec["epoch"]), rec["phase"])] = start
            span_t0 = start - float(rec["barrier_s"])
            t0 = span_t0 if t0 is None else min(t0, span_t0)
    if t0 is None:
        t0 = 0.0

    def ts(wall: float) -> float:
        return round((wall - t0) * 1e6, 1)

    flow_id = 0
    for shard_id, records in records_by_shard.items():
        for rec in records:
            epoch = int(rec["epoch"])
            phase = rec["phase"]
            start = starts[(shard_id, epoch, phase)]
            if rec.get("barrier_s", 0.0) > 0.0:
                events.append(
                    {
                        "ph": "X",
                        "ts": ts(start - float(rec["barrier_s"])),
                        "dur": round(float(rec["barrier_s"]) * 1e6, 1),
                        "pid": 1,
                        "tid": shard_id,
                        "name": "barrier",
                        "cat": "barrier",
                        "args": {"epoch": epoch, "before_phase": phase},
                    }
                )
            events.append(
                {
                    "ph": "X",
                    "ts": ts(start),
                    "dur": round(float(rec["wall_s"]) * 1e6, 1),
                    "pid": 1,
                    "tid": shard_id,
                    "name": _span_name(rec),
                    "cat": "phase",
                    "args": {
                        "epoch": epoch,
                        "phase": phase,
                        "in": rec.get("in", {}),
                        "out": rec.get("out", {}),
                        "out_bytes": rec.get("out_bytes", 0),
                    },
                }
            )
            # Flow arrows: phase A feeds the same epoch's phase B on the
            # destination shard (X1); phase B feeds the next epoch's
            # phase A (X2, buffered one epoch like the protocol).
            if phase == "a":
                target = lambda dest: (dest, epoch, "b")  # noqa: E731
            else:
                target = lambda dest: (dest, epoch + 1, "a")  # noqa: E731
            for dest_str, count in rec.get("out", {}).items():
                dest = int(dest_str)
                key = target(dest)
                if not count or key not in starts:
                    continue
                flow_id += 1
                end = start + float(rec["wall_s"])
                events.append(
                    {
                        "ph": "s",
                        "ts": ts(end),
                        "pid": 1,
                        "tid": shard_id,
                        "id": flow_id,
                        "name": "handoff",
                        "cat": "handoff",
                        "args": {"records": count, "to": dest},
                    }
                )
                events.append(
                    {
                        "ph": "f",
                        "bp": "e",
                        "ts": ts(starts[key]),
                        "pid": 1,
                        "tid": dest,
                        "id": flow_id,
                        "name": "handoff",
                        "cat": "handoff",
                        "args": {"records": count, "from": shard_id},
                    }
                )
    events.sort(key=lambda e: (e["ts"], e["tid"], e["ph"]))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_epoch_trace(
    records_by_shard: Dict[int, List[dict]],
    path: Union[str, pathlib.Path],
) -> pathlib.Path:
    """Write :func:`epoch_trace_doc` to ``path``; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = epoch_trace_doc(records_by_shard)
    path.write_text(json.dumps(doc, sort_keys=True) + "\n")
    return path
