"""Observability: metrics registry, span tracing, event export.

The package gives every run three cheap, always-on artefact streams —
a :class:`MetricsRegistry` of counters/gauges/histograms, a capped
:class:`EventSink` of structured events, and span/timer context
managers — plus the single artefact-directory resolution rule shared by
the timings and metrics writers.

On top of those sit the opt-in deep-observability layers (see
OBSERVABILITY.md): causal :mod:`~repro.obs.lineage` tracing with Chrome
trace-event export, the per-handler :mod:`~repro.obs.profiler`, live
executor heartbeats and the fleet aggregator in
:mod:`~repro.obs.telemetry`, per-epoch barrier spans for the sharded
engine in :mod:`~repro.obs.epochs`, per-probe request tracing through
the serving path in :mod:`~repro.obs.reqtrace` with the declared-SLO
gate in :mod:`~repro.obs.slo`, the Prometheus text exposition in
:mod:`~repro.obs.prom`, and the :mod:`~repro.obs.bench` regression gate
CI runs against committed baselines.
"""

from repro.obs.artifacts import (
    ARTIFACT_DIR_ENV,
    DEFAULT_ARTIFACT_DIR,
    LEGACY_TIMINGS_DIR_ENV,
    artifact_dir,
    artifact_path,
    ensure_artifact_dir,
)
from repro.obs.events import (
    DEFAULT_MAX_EVENTS,
    EventSink,
    read_jsonl,
    write_events_jsonl,
)
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    METRICS_SCHEMA,
    FixedHistogram,
    MetricsRegistry,
    estimate_percentile,
    merge_snapshots,
    metric_key,
    parse_key,
    validate_metrics_doc,
)
from repro.obs.reqtrace import (
    REQ_TRACE_ENV,
    REQ_TRACE_MAX_ENV,
    RequestTrace,
    load_reqtrace_dir,
    maybe_request_trace,
    read_reqtrace_records,
    req_trace_doc,
    resolve_req_trace,
    write_req_trace,
)
from repro.obs.slo import (
    SLO_SCHEMA,
    ServeSlo,
    default_slo,
    evaluate_slo,
    render_slo_report,
)
from repro.obs.bench import (
    BENCH_TOLERANCE_DEFAULT,
    append_trajectory,
    compare_bench,
    extract_bench_metrics,
    render_bench_report,
)
from repro.obs.epochs import (
    EPOCH_TRACE_ENV,
    EpochTracer,
    epoch_trace_doc,
    load_epoch_dir,
    maybe_epoch_tracer,
    read_epoch_records,
    resolve_epoch_trace,
    write_epoch_trace,
)
from repro.obs.lineage import (
    LINEAGE_ENV,
    LineageTrace,
    chrome_trace_doc,
    hunt_story,
    load_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.profiler import (
    PROFILE_ENV,
    PROFILE_SCHEMA,
    SimProfiler,
    load_profile,
    merge_profiles,
    profile_collapsed,
    render_hot_table,
    write_collapsed,
    write_profile,
)
from repro.obs.prom import (
    PROM_ARTIFACT,
    parse_prom_text,
    prom_lines,
    render_prom,
    validate_prom_text,
    write_prom,
)
from repro.obs.spans import NullSpan, Span, maybe_span, span, timer
from repro.obs.telemetry import (
    HEARTBEAT_ENV,
    SERVE_HEARTBEAT_ENV,
    HeartbeatWriter,
    clear_heartbeats,
    fleet_snapshot,
    heartbeat_dir,
    maybe_heartbeat,
    read_heartbeats,
    render_top,
    render_watch,
    resolve_serve_heartbeat_interval,
    watch_snapshot,
)

__all__ = [
    "ARTIFACT_DIR_ENV",
    "DEFAULT_ARTIFACT_DIR",
    "LEGACY_TIMINGS_DIR_ENV",
    "artifact_dir",
    "artifact_path",
    "ensure_artifact_dir",
    "DEFAULT_MAX_EVENTS",
    "EventSink",
    "read_jsonl",
    "write_events_jsonl",
    "DEFAULT_BUCKETS",
    "METRICS_SCHEMA",
    "FixedHistogram",
    "MetricsRegistry",
    "estimate_percentile",
    "merge_snapshots",
    "metric_key",
    "parse_key",
    "validate_metrics_doc",
    "REQ_TRACE_ENV",
    "REQ_TRACE_MAX_ENV",
    "RequestTrace",
    "load_reqtrace_dir",
    "maybe_request_trace",
    "read_reqtrace_records",
    "req_trace_doc",
    "resolve_req_trace",
    "write_req_trace",
    "SLO_SCHEMA",
    "ServeSlo",
    "default_slo",
    "evaluate_slo",
    "render_slo_report",
    "NullSpan",
    "Span",
    "maybe_span",
    "span",
    "timer",
    "LINEAGE_ENV",
    "LineageTrace",
    "chrome_trace_doc",
    "hunt_story",
    "load_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "PROFILE_ENV",
    "PROFILE_SCHEMA",
    "SimProfiler",
    "load_profile",
    "merge_profiles",
    "profile_collapsed",
    "render_hot_table",
    "write_collapsed",
    "write_profile",
    "EPOCH_TRACE_ENV",
    "EpochTracer",
    "epoch_trace_doc",
    "load_epoch_dir",
    "maybe_epoch_tracer",
    "read_epoch_records",
    "resolve_epoch_trace",
    "write_epoch_trace",
    "PROM_ARTIFACT",
    "parse_prom_text",
    "prom_lines",
    "render_prom",
    "validate_prom_text",
    "write_prom",
    "HEARTBEAT_ENV",
    "SERVE_HEARTBEAT_ENV",
    "resolve_serve_heartbeat_interval",
    "HeartbeatWriter",
    "clear_heartbeats",
    "fleet_snapshot",
    "heartbeat_dir",
    "maybe_heartbeat",
    "read_heartbeats",
    "render_top",
    "render_watch",
    "watch_snapshot",
    "BENCH_TOLERANCE_DEFAULT",
    "append_trajectory",
    "compare_bench",
    "extract_bench_metrics",
    "render_bench_report",
]
