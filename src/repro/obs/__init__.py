"""Observability: metrics registry, span tracing, event export.

The package gives every run three cheap, always-on artefact streams —
a :class:`MetricsRegistry` of counters/gauges/histograms, a capped
:class:`EventSink` of structured events, and span/timer context
managers — plus the single artefact-directory resolution rule shared by
the timings and metrics writers.
"""

from repro.obs.artifacts import (
    ARTIFACT_DIR_ENV,
    DEFAULT_ARTIFACT_DIR,
    LEGACY_TIMINGS_DIR_ENV,
    artifact_dir,
    artifact_path,
    ensure_artifact_dir,
)
from repro.obs.events import (
    DEFAULT_MAX_EVENTS,
    EventSink,
    read_jsonl,
    write_events_jsonl,
)
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    METRICS_SCHEMA,
    FixedHistogram,
    MetricsRegistry,
    merge_snapshots,
    metric_key,
    parse_key,
    validate_metrics_doc,
)
from repro.obs.spans import NullSpan, Span, maybe_span, span, timer

__all__ = [
    "ARTIFACT_DIR_ENV",
    "DEFAULT_ARTIFACT_DIR",
    "LEGACY_TIMINGS_DIR_ENV",
    "artifact_dir",
    "artifact_path",
    "ensure_artifact_dir",
    "DEFAULT_MAX_EVENTS",
    "EventSink",
    "read_jsonl",
    "write_events_jsonl",
    "DEFAULT_BUCKETS",
    "METRICS_SCHEMA",
    "FixedHistogram",
    "MetricsRegistry",
    "merge_snapshots",
    "metric_key",
    "parse_key",
    "validate_metrics_doc",
    "NullSpan",
    "Span",
    "maybe_span",
    "span",
    "timer",
]
