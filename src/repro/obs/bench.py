"""Bench-regression gate: current ``BENCH_*.json`` vs committed baseline.

PR 4 started a performance trajectory (``BENCH_hotpath.json``), but
nothing consumed it — a change could halve the spatial-index speedup and
CI would stay green as long as the absolute 2x floor held.  This module
closes the loop: a baseline benchmark document is committed under
``benchmarks/baselines/``, CI re-runs the benchmark, and
``repro obs bench`` compares the two with a configurable tolerance,
failing on regressions and appending every comparison to a trajectory
JSONL artefact so the history stays inspectable.

Schema awareness lives in :func:`extract_bench_metrics`: for
``repro.bench_hotpath/v1`` the *gated* metrics are the per-grid-point
speedups (relative measures, stable across runner hardware); absolute
wall times and frame rates are extracted too but stay informational —
CI runners are too noisy to gate on absolute seconds.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional, Union

BENCH_TOLERANCE_DEFAULT = 0.05
"""Allowed fractional regression before the gate fails (5 %)."""

HOTPATH_SCHEMA = "repro.bench_hotpath/v1"
SHARDS_SCHEMA = "repro.bench_shards/v1"
SERVE_SCHEMA = "repro.bench_serve/v1"


def load_bench_doc(path: Union[str, pathlib.Path]) -> dict:
    path = pathlib.Path(path)
    doc = json.loads(path.read_text())
    if not isinstance(doc, dict) or "schema" not in doc:
        raise ValueError("%s is not a benchmark document (no schema)" % path)
    return doc


def extract_bench_metrics(doc: dict) -> Dict[str, dict]:
    """Flatten a benchmark document to ``name -> metric`` rows.

    Each metric row is ``{"value": float, "higher_better": bool,
    "gated": bool}``.  Only ``gated`` metrics can fail the gate; the
    rest ride along for the trajectory artefact.
    """
    schema = doc.get("schema")
    metrics: Dict[str, dict] = {}
    if schema == HOTPATH_SCHEMA:
        for point in doc.get("grid", []):
            at = "%dst" % point["stations"]
            metrics["speedup@%s" % at] = {
                "value": float(point["speedup"]),
                "higher_better": True,
                "gated": True,
            }
            metrics["index_wall_s@%s" % at] = {
                "value": float(point["index"]["wall_s"]),
                "higher_better": False,
                "gated": False,
            }
            fps = point["index"].get("frames_per_s")
            if fps is not None:
                metrics["index_frames_per_s@%s" % at] = {
                    "value": float(fps),
                    "higher_better": True,
                    "gated": False,
                }
        if "max_speedup" in doc:
            metrics["max_speedup"] = {
                "value": float(doc["max_speedup"]),
                "higher_better": True,
                "gated": True,
            }
        return metrics
    if schema == SHARDS_SCHEMA:
        # Gated: per-point speedup vs the 1-shard run of the same
        # station count (relative, hardware-stable).  Informational:
        # stations-stepped/sec and the handoff overhead fraction.
        for point in doc.get("grid", []):
            at = "%dst/%dsh" % (point["stations"], point["shards"])
            if point["shards"] > 1:
                metrics["speedup@%s" % at] = {
                    "value": float(point["speedup"]),
                    "higher_better": True,
                    "gated": True,
                }
            metrics["stations_per_s@%s" % at] = {
                "value": float(point["stations_per_s"]),
                "higher_better": True,
                "gated": False,
            }
            metrics["handoff_fraction@%s" % at] = {
                "value": float(point["handoff_fraction"]),
                "higher_better": False,
                "gated": False,
            }
        if "max_speedup" in doc:
            metrics["max_speedup"] = {
                "value": float(doc["max_speedup"]),
                "higher_better": True,
                "gated": True,
            }
        return metrics
    if schema == SERVE_SCHEMA:
        # Gated: sustained probes/s per grid point and the shed
        # fraction (the committed baseline throughput is deliberately
        # conservative — a fraction of local numbers — so the gate
        # catches order-of-magnitude regressions, not runner noise).
        # Informational: latency percentiles and the rank-cache hit
        # rate, both too hardware/GC-sensitive to gate.
        for point in doc.get("grid", []):
            at = "%dcl/%dwk" % (point["clients"], point["workers"])
            metrics["probes_per_s@%s" % at] = {
                "value": float(point["probes_per_s"]),
                "higher_better": True,
                "gated": True,
            }
            metrics["shed_fraction@%s" % at] = {
                "value": float(point["shed_fraction"]),
                "higher_better": False,
                "gated": True,
            }
            for name, higher in (("p50_us", False), ("p99_us", False),
                                 ("rank_cache_hit_rate", True)):
                value = point.get(name)
                if value is not None:
                    metrics["%s@%s" % (name, at)] = {
                        "value": float(value),
                        "higher_better": higher,
                        "gated": False,
                    }
        if "max_probes_per_s" in doc:
            metrics["max_probes_per_s"] = {
                "value": float(doc["max_probes_per_s"]),
                "higher_better": True,
                "gated": True,
            }
        return metrics
    raise ValueError("no metric extractor for benchmark schema %r" % schema)


def compare_bench(
    current: dict,
    baseline: dict,
    tolerance: float = BENCH_TOLERANCE_DEFAULT,
) -> dict:
    """Compare two benchmark documents; returns the full delta report.

    A *gated* metric regresses when it falls short of the baseline by
    more than ``tolerance`` (fractionally), in its bad direction.
    Metrics present on only one side are reported but never regress —
    grid changes should not brick the gate.
    """
    if current.get("schema") != baseline.get("schema"):
        raise ValueError(
            "schema mismatch: current %r vs baseline %r"
            % (current.get("schema"), baseline.get("schema"))
        )
    cur = extract_bench_metrics(current)
    base = extract_bench_metrics(baseline)
    deltas: List[dict] = []
    for name in sorted(set(cur) | set(base)):
        c = cur.get(name)
        b = base.get(name)
        row: dict = {"metric": name}
        if c is None or b is None:
            row.update(
                {
                    "current": c["value"] if c else None,
                    "baseline": b["value"] if b else None,
                    "ratio": None,
                    "gated": bool((c or b)["gated"]),
                    "regressed": False,
                    "note": "only in current" if c else "only in baseline",
                }
            )
            deltas.append(row)
            continue
        ratio = c["value"] / b["value"] if b["value"] else None
        if c["higher_better"]:
            regressed = c["value"] < b["value"] * (1.0 - tolerance)
        else:
            regressed = c["value"] > b["value"] * (1.0 + tolerance)
        row.update(
            {
                "current": c["value"],
                "baseline": b["value"],
                "ratio": round(ratio, 4) if ratio is not None else None,
                "gated": c["gated"],
                "regressed": bool(c["gated"] and regressed),
            }
        )
        deltas.append(row)
    return {
        "schema": "repro.bench_compare/v1",
        "bench_schema": current.get("schema"),
        "tolerance": tolerance,
        "deltas": deltas,
        "regressions": [d["metric"] for d in deltas if d["regressed"]],
        "ok": not any(d["regressed"] for d in deltas),
    }


def render_bench_report(report: dict) -> str:
    """Terminal rendering of a :func:`compare_bench` report."""
    lines = [
        "bench gate (%s, tolerance %.0f%%)"
        % (report.get("bench_schema"), report["tolerance"] * 100),
        f"{'metric':<28} {'baseline':>12} {'current':>12} {'ratio':>8}  verdict",
    ]
    for d in report["deltas"]:
        baseline = "%.4g" % d["baseline"] if d["baseline"] is not None else "-"
        current = "%.4g" % d["current"] if d["current"] is not None else "-"
        ratio = "%.3f" % d["ratio"] if d["ratio"] is not None else "-"
        if d["regressed"]:
            verdict = "REGRESSED"
        elif not d["gated"]:
            verdict = d.get("note", "info")
        else:
            verdict = d.get("note", "ok")
        lines.append(
            f"{d['metric']:<28} {baseline:>12} {current:>12} {ratio:>8}  {verdict}"
        )
    lines.append(
        "gate: %s"
        % (
            "OK"
            if report["ok"]
            else "FAIL (%s)" % ", ".join(report["regressions"])
        )
    )
    return "\n".join(lines)


def append_trajectory(
    path: Union[str, pathlib.Path],
    report: dict,
    meta: Optional[dict] = None,
) -> pathlib.Path:
    """Append one comparison to the trajectory JSONL artefact.

    Only the gated metric values ride along — the point of the
    trajectory is a compact, greppable history of the numbers the gate
    watches.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    entry = {
        "bench_schema": report.get("bench_schema"),
        "tolerance": report["tolerance"],
        "ok": report["ok"],
        "regressions": report["regressions"],
        "gated": {
            d["metric"]: d["current"]
            for d in report["deltas"]
            if d["gated"] and d["current"] is not None
        },
    }
    if meta:
        entry.update(meta)
    with open(path, "a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return path
