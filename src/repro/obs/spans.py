"""Span instrumentation layered on the simulation clock.

A *span* brackets one phase of a run — entity start-up, an event-loop
drive, a sweep slot — and records, into the owning simulation's metrics
registry:

* ``span.<name>.count`` — invocations (counter);
* ``span.<name>.sim_s`` — simulated seconds covered (counter; this is a
  pure function of the run, so it merges bit-identically across worker
  counts);
* ``span.<name>.events`` — scheduler events fired inside the span
  (counter, equally deterministic);
* ``span.<name>`` — wall seconds (in the non-deterministic ``timers``
  section).

Each completed span also lands in the simulation's event sink, stamped
with its simulated start/end, so the JSONL export shows the phase
timeline of a run.
"""

from __future__ import annotations

import time as _time
from typing import Optional

from repro.obs.registry import MetricsRegistry


class Span:
    """Context manager measuring one named phase of a simulation."""

    __slots__ = ("sim", "name", "_t0", "_fired0", "_wall0")

    def __init__(self, sim, name: str):
        self.sim = sim
        self.name = name

    def __enter__(self) -> "Span":
        self._t0 = self.sim.now
        self._fired0 = self.sim.scheduler.fired
        self._wall0 = _time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        sim = self.sim
        sim_elapsed = sim.now - self._t0
        events_fired = sim.scheduler.fired - self._fired0
        wall = _time.perf_counter() - self._wall0
        metrics: MetricsRegistry = sim.metrics
        metrics.inc(f"span.{self.name}.count")
        metrics.inc(f"span.{self.name}.sim_s", sim_elapsed)
        metrics.inc(f"span.{self.name}.events", events_fired)
        metrics.timer_add(f"span.{self.name}", wall)
        sim.events.emit(
            sim.now,
            "span",
            name=self.name,
            sim_start=self._t0,
            sim_s=sim_elapsed,
            events=events_fired,
        )


def span(sim, name: str) -> Span:
    """Open a span over ``sim`` — ``with span(sim, "run"): ...``."""
    return Span(sim, name)


def timer(registry: MetricsRegistry, name: str, **labels: object):
    """Wall-clock-only timer for code with no simulation attached."""
    return registry.timer(name, **labels)


class NullSpan:
    """Inert drop-in for spans when no simulation is available."""

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


def maybe_span(sim: Optional[object], name: str):
    """A :func:`span` when ``sim`` is set, else an inert context."""
    return Span(sim, name) if sim is not None else NullSpan()
