"""Per-probe request tracing through the serving path.

PR 5's lineage tracer answered *where did this hit come from* in the
simulation; this module answers *where did this probe's microseconds
go* in the serving plane.  When ``REPRO_REQ_TRACE`` is truthy, the
:class:`~repro.serve.service.RankingService` records one span per
pipeline stage for every accepted event:

* ``enqueue``     — ingress: the ``submit`` call offering the event to
  the bounded queue (includes any backpressure wait for queue space);
* ``queue_wait``  — from the ingress offer to a worker picking the
  event off the queue;
* ``commit_wait`` — the worker parked at the sequencer gate waiting for
  its turn in ingress order;
* ``rank``        — the ranking walk (``core.handle``), the paper's hot
  path;
* ``apply``       — decision emission: appending the burst decision and
  running the decision callback.

**Observe-only, bounded.**  Spans land in an in-memory ring
(:class:`RequestTrace`, capacity ``REPRO_REQ_TRACE_MAX``, default
200 000 records) as plain dicts stamped with ``perf_counter`` readings.
Nothing here draws from an RNG stream or schedules work, so decision
streams and differential-parity digests are bit-identical with tracing
on or off — the same contract the lineage and epoch tracers honour.
When the ring is full the *oldest* spans are dropped and counted
(``reqtrace.dropped`` gauge): under overload you keep the most recent
window, which is the one you are debugging.

**Files and export.**  ``RankingService.finish`` flushes the ring to
``<artifact_dir>/telemetry/reqtrace-<pid>.jsonl`` (previous file
rotated to ``.old``, like heartbeats).  :func:`req_trace_doc` folds one
or more such files into Chrome trace-event JSON — one track per worker
plus an ingress track, with flow arrows following each sequence number
from its ingress enqueue to its sequenced commit — satisfying the same
:func:`~repro.obs.lineage.validate_chrome_trace` contract as the
lineage and epoch exporters.  ``repro obs serve-trace`` and ``repro
serve bench --req-trace`` drive the export.
"""

from __future__ import annotations

import json
import os
import pathlib
from collections import deque
from typing import Dict, List, Optional, Union

from repro.obs.artifacts import artifact_dir

REQ_TRACE_ENV = "REPRO_REQ_TRACE"
REQ_TRACE_MAX_ENV = "REPRO_REQ_TRACE_MAX"
_TRUTHY = ("1", "true", "on", "yes")

DEFAULT_MAX_RECORDS = 200_000
"""Ring capacity: at 5 spans per probe this holds the last ~40k probes."""

REQTRACE_FILE_PREFIX = "reqtrace-"
TELEMETRY_SUBDIR = "telemetry"

#: Stage names in pipeline order (`worker` is None only for ``enqueue``).
STAGES = ("enqueue", "queue_wait", "commit_wait", "rank", "apply")


def resolve_req_trace(value: Optional[bool] = None) -> bool:
    """Is request tracing enabled?  Explicit arg wins over the env."""
    if value is not None:
        return bool(value)
    return os.environ.get(REQ_TRACE_ENV, "").strip().lower() in _TRUTHY


def resolve_req_trace_max(value: Optional[int] = None) -> int:
    """Ring capacity: explicit arg, else ``REPRO_REQ_TRACE_MAX``."""
    if value is None:
        raw = os.environ.get(REQ_TRACE_MAX_ENV, "").strip()
        if raw:
            try:
                value = int(raw)
            except ValueError:
                value = None
    if value is None:
        return DEFAULT_MAX_RECORDS
    return max(1, int(value))


def reqtrace_dir(
    base: Optional[Union[str, pathlib.Path]] = None,
) -> pathlib.Path:
    """Directory request-trace files live in (same as heartbeats)."""
    root = pathlib.Path(base) if base is not None else artifact_dir()
    return root / TELEMETRY_SUBDIR


class RequestTrace:
    """Bounded in-memory ring of per-stage spans for one service.

    ``record`` is called from the serving hot path, so it does the
    minimum: build one plain dict, append to a ``deque`` with
    ``maxlen``.  Eviction of the oldest record is counted in
    ``dropped`` so the export can say how much history was lost.
    """

    def __init__(self, max_records: Optional[int] = None):
        self.max_records = resolve_req_trace_max(max_records)
        self._records: deque = deque(maxlen=self.max_records)
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._records)

    def record(
        self,
        stage: str,
        seq: int,
        worker: Optional[int],
        start: float,
        dur: float,
        **attrs: object,
    ) -> None:
        """Append one stage span (``start``/``dur`` in perf-counter s)."""
        if len(self._records) == self.max_records:
            self.dropped += 1
        rec: Dict[str, object] = {
            "stage": stage,
            "seq": int(seq),
            "worker": worker if worker is None else int(worker),
            "start": float(start),
            "dur": float(dur),
        }
        for key, value in attrs.items():
            if value is not None:
                rec[key] = value
        self._records.append(rec)

    def records(self) -> List[dict]:
        """The retained spans, oldest first."""
        return list(self._records)

    def flush(
        self, base: Optional[Union[str, pathlib.Path]] = None
    ) -> pathlib.Path:
        """Write the retained spans to ``reqtrace-<pid>.jsonl``.

        The previous file (an earlier run by the same pid) is rotated to
        ``.old`` first, mirroring heartbeat rotation, so readers only
        ever see the current run.
        """
        directory = reqtrace_dir(base)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / ("%s%d.jsonl" % (REQTRACE_FILE_PREFIX, os.getpid()))
        if path.exists():
            try:
                path.replace(path.with_name(path.name + ".old"))
            except OSError:
                pass
        with open(path, "w") as fh:
            for rec in self._records:
                fh.write(json.dumps(rec) + "\n")
        return path


def maybe_request_trace(
    enabled: Optional[bool] = None,
    max_records: Optional[int] = None,
) -> Optional[RequestTrace]:
    """A :class:`RequestTrace` when tracing is on, else ``None`` — the
    single gate the service constructor uses."""
    if not resolve_req_trace(enabled):
        return None
    return RequestTrace(max_records)


# -- readers ----------------------------------------------------------------


def read_reqtrace_records(path: Union[str, pathlib.Path]) -> List[dict]:
    """All spans in one reqtrace file (torn/malformed lines skipped)."""
    out: List[dict] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError:
                continue  # torn final line of a killed service
            if (
                isinstance(rec, dict)
                and "stage" in rec
                and "seq" in rec
                and "start" in rec
            ):
                out.append(rec)
    return out


def load_reqtrace_dir(
    directory: Union[str, pathlib.Path],
) -> List[dict]:
    """Every span in every ``reqtrace-*.jsonl`` under ``directory``.

    Files are read in sorted-name order; spans keep file order (the
    exporter sorts by timestamp anyway).
    """
    directory = pathlib.Path(directory)
    out: List[dict] = []
    for path in sorted(directory.glob(REQTRACE_FILE_PREFIX + "*.jsonl")):
        out.extend(read_reqtrace_records(path))
    return out


# -- Chrome trace-event export ----------------------------------------------


INGRESS_TID = 0
"""Ingress spans render on their own track above the worker tracks."""


def _span_tid(rec: dict) -> int:
    worker = rec.get("worker")
    return INGRESS_TID if worker is None else int(worker) + 1


def req_trace_doc(records: List[dict]) -> dict:
    """Chrome trace-event JSON for a list of request spans.

    One ``X`` (complete) event per span on the ingress track (tid 0) or
    its worker's track (tid = worker + 1); an ``s``/``f`` flow-arrow
    pair per sequence number connecting the ingress ``enqueue`` span to
    the sequenced ``rank`` commit span.  Passes
    :func:`~repro.obs.lineage.validate_chrome_trace`; open in Perfetto /
    ``chrome://tracing``.
    """
    if not records:
        raise ValueError("no request spans to export")
    events: List[Dict[str, object]] = [
        {
            "ph": "M",
            "ts": 0,
            "pid": 0,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "repro-serve"},
        },
        {
            "ph": "M",
            "ts": 0,
            "pid": 0,
            "tid": INGRESS_TID,
            "name": "thread_name",
            "args": {"name": "ingress"},
        },
    ]
    workers = sorted(
        {int(r["worker"]) for r in records if r.get("worker") is not None}
    )
    for wid in workers:
        events.append(
            {
                "ph": "M",
                "ts": 0,
                "pid": 0,
                "tid": wid + 1,
                "name": "thread_name",
                "args": {"name": "worker %d" % wid},
            }
        )
    t0 = min(float(r["start"]) for r in records)

    def ts(start: float) -> float:
        return round((start - t0) * 1e6, 1)

    enqueue_by_seq: Dict[int, dict] = {}
    commit_by_seq: Dict[int, dict] = {}
    for rec in records:
        seq = int(rec["seq"])
        stage = rec["stage"]
        if stage == "enqueue":
            enqueue_by_seq[seq] = rec
        elif stage == "rank":
            commit_by_seq[seq] = rec
        args: Dict[str, object] = {"seq": seq}
        for key in ("mac", "etype", "kind"):
            if rec.get(key) is not None:
                args[key] = rec[key]
        events.append(
            {
                "ph": "X",
                "ts": ts(float(rec["start"])),
                "dur": round(float(rec.get("dur", 0.0)) * 1e6, 1),
                "pid": 0,
                "tid": _span_tid(rec),
                "name": stage,
                "cat": "serve",
                "args": args,
            }
        )
    # Flow arrows: ingress enqueue -> that sequence's commit on whichever
    # worker track it landed on.
    flow_id = 0
    for seq in sorted(set(enqueue_by_seq) & set(commit_by_seq)):
        enq, commit = enqueue_by_seq[seq], commit_by_seq[seq]
        flow_id += 1
        events.append(
            {
                "ph": "s",
                "ts": ts(float(enq["start"]) + float(enq.get("dur", 0.0))),
                "pid": 0,
                "tid": _span_tid(enq),
                "name": "probe",
                "cat": "serve.flow",
                "id": flow_id,
            }
        )
        events.append(
            {
                "ph": "f",
                "bp": "e",
                "ts": ts(float(commit["start"])),
                "pid": 0,
                "tid": _span_tid(commit),
                "name": "probe",
                "cat": "serve.flow",
                "id": flow_id,
            }
        )
    events.sort(key=lambda e: (e["ts"], e["tid"], e["ph"]))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_req_trace(
    records: List[dict], path: Union[str, pathlib.Path]
) -> pathlib.Path:
    """Export spans as a Chrome trace file; returns the path."""
    doc = req_trace_doc(records)
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc))
    return path
