"""Golden-master canonicalisation for metrics artefacts.

A batch's ``metrics.json`` is a pure function of its specs *except* for
three fields: the wall-clock ``timers`` sections, the top-level
``workers`` count, and the embedded ``timings`` section (all wall
clock).  :func:`canonical_metrics_doc` strips exactly those,
so the digest of the canonical form is the contract the golden tests
pin down: bit-identical across ``REPRO_WORKERS`` values and across the
spatial-index on/off delivery paths.

When a digest check fails, :func:`diff_metrics_docs` renders a per-
section, per-key diff — "counter attacker.hits: 41 != 43 (runs[2])" —
instead of two opaque hashes, so a legitimate behaviour change is
reviewable and :mod:`tests.regen_golden` can be re-run with intent.
"""

from __future__ import annotations

import copy
import hashlib
import json
from typing import List

_NONDETERMINISTIC_TOP_LEVEL = ("workers", "timings")

#: Metric namespace for sharded-run *operational* data (migration
#: counts, per-shard gauges, routing volumes).  Those values
#: legitimately change with the shard count, so canonicalisation drops
#: them the same way it drops wall-clock timers; the ``shardsim.*``
#: workload namespace stays and must be bit-identical at any count.
OPS_METRIC_PREFIX = "shardops."


def _strip_snapshot(snap: dict) -> None:
    snap.pop("timers", None)
    for section in ("counters", "gauges", "histograms", "series"):
        values = snap.get(section)
        if isinstance(values, dict):
            for key in [k for k in values if k.startswith(OPS_METRIC_PREFIX)]:
                del values[key]


def canonical_metrics_doc(doc: dict) -> dict:
    """A deep copy of a metrics artefact with every non-deterministic
    field removed: wall-clock ``timers``, the ``workers`` count, the
    embedded wall-clock ``timings`` section, and the shard-count-
    dependent ``shardops.*`` metric namespace."""
    out = copy.deepcopy(doc)
    for field in _NONDETERMINISTIC_TOP_LEVEL:
        out.pop(field, None)
    merged = out.get("merged")
    if isinstance(merged, dict):
        _strip_snapshot(merged)
    for run in out.get("runs", ()):
        metrics = run.get("metrics")
        if isinstance(metrics, dict):
            _strip_snapshot(metrics)
    return out


def canonical_json(doc: dict) -> str:
    """Canonical (sorted, compact) JSON of the canonical form."""
    return json.dumps(
        canonical_metrics_doc(doc), sort_keys=True, separators=(",", ":")
    )


def metrics_digest(doc: dict) -> str:
    """SHA-256 over :func:`canonical_json` — the golden fixture value."""
    return hashlib.sha256(canonical_json(doc).encode("utf-8")).hexdigest()


def _diff_section(path: str, a: dict, b: dict, lines: List[str], limit: int) -> None:
    keys = sorted(set(a) | set(b))
    for key in keys:
        if len(lines) >= limit:
            return
        if key not in a:
            lines.append(f"{path}[{key!r}]: only in new ({b[key]!r})")
        elif key not in b:
            lines.append(f"{path}[{key!r}]: only in old ({a[key]!r})")
        elif a[key] != b[key]:
            lines.append(f"{path}[{key!r}]: {a[key]!r} != {b[key]!r}")


def _diff_snapshot(path: str, a: dict, b: dict, lines: List[str], limit: int) -> None:
    for section in ("counters", "gauges", "histograms", "series"):
        _diff_section(
            f"{path}.{section}",
            a.get(section, {}),
            b.get(section, {}),
            lines,
            limit,
        )


def diff_metrics_docs(old: dict, new: dict, limit: int = 40) -> str:
    """Readable per-section difference between two metrics artefacts.

    Returns the empty string when their canonical forms are identical.
    ``old``/``new`` label the two sides in the output; at most ``limit``
    lines are emitted (with a truncation marker beyond that).
    """
    a = canonical_metrics_doc(old)
    b = canonical_metrics_doc(new)
    if a == b:
        return ""
    lines: List[str] = []
    for field in ("schema", "run_count"):
        if a.get(field) != b.get(field):
            lines.append(f"{field}: {a.get(field)!r} != {b.get(field)!r}")
    _diff_snapshot("merged", a.get("merged", {}), b.get("merged", {}), lines, limit)
    runs_a, runs_b = a.get("runs", []), b.get("runs", [])
    if len(runs_a) != len(runs_b):
        lines.append(f"runs: {len(runs_a)} entries != {len(runs_b)} entries")
    for i, (ra, rb) in enumerate(zip(runs_a, runs_b)):
        if len(lines) >= limit:
            break
        for field in ("tag", "attacker", "venue", "seed", "failed", "error"):
            if ra.get(field) != rb.get(field):
                lines.append(
                    f"runs[{i}].{field}: {ra.get(field)!r} != {rb.get(field)!r}"
                )
        _diff_snapshot(
            f"runs[{i}].metrics",
            ra.get("metrics", {}),
            rb.get("metrics", {}),
            lines,
            limit,
        )
        if ra.get("events") != rb.get("events"):
            lines.append(f"runs[{i}].events differ")
    if len(lines) >= limit:
        lines.append(f"... diff truncated at {limit} lines")
    if not lines:
        # Canonical forms differ but no section rule matched — dump the
        # top-level keys so the failure is still actionable.
        lines.append(
            "docs differ outside known sections: keys %r vs %r"
            % (sorted(a), sorted(b))
        )
    return "\n".join(lines)
