#!/usr/bin/env python
"""The Section V-B extensions: de-authentication and carrier SSIDs.

Scenario 1 — a canteen where everyone who knows the venue Wi-Fi is
already camped on the real AP (and therefore silent).  Plain
City-Hunter cannot reach them; adding a spoofed-deauth emitter forces
re-scans that the evil twin can win.

Scenario 2 — an iOS-heavy crowd.  Carrier hotspot SSIDs (PCCW1x etc.)
are preloaded into iOS PNLs but appear in neither WiGLE nor direct
probes; preloading them into the attacker's database catches those
subscribers.

Run:  python examples/deauth_and_carrier.py
"""

from repro.attacks.deauth import DeauthEmitter
from repro.core.config import CityHunterConfig
from repro.experiments.attackers import make_cityhunter
from repro.experiments.calibration import default_city, venue_profile
from repro.experiments.runner import run_experiment, shared_wigle
from repro.experiments.scenarios import ScenarioConfig, build_scenario
from repro.population.pnl import CARRIER_SSIDS, PnlModel
from repro.util.tables import render_table

DURATION = 900.0
SEED = 11


def deauth_demo(city, wigle) -> None:
    def run(with_deauth: bool):
        config = ScenarioConfig(
            venue_name="University Canteen",
            mobility="static",
            people_per_min=35.0,
            duration=DURATION,
            camped_share=1.0,
            include_camped=True,
            seed=SEED,
        )
        build = build_scenario(
            city, wigle, config, make_cityhunter(wigle, city.heatmap)
        )
        if with_deauth:
            build.sim.add_entity(
                DeauthEmitter(
                    build.venue.region.center,
                    build.medium,
                    [build.venue_ap.mac],
                    period=15.0,
                    session=build.attacker.session,
                )
            )
        build.sim.run(DURATION + 30.0)
        # The interesting population: clients that started camped on the
        # legitimate AP (they hold the venue's open SSID).
        camped = [
            p
            for p in build.phones
            if any(
                s in p.person.pnl and p.person.pnl[s].auto_joinable
                for s in build.venue.wifi_ssids
            )
        ]
        captured = sum(1 for p in camped if p.connected_bssid == build.attacker.mac)
        on_real_ap = sum(
            1 for p in camped if p.connected_bssid == build.venue_ap.mac
        )
        return len(camped), captured, on_real_ap, build.attacker.session.deauths_sent

    plain = run(False)
    stormy = run(True)
    print(
        render_table(
            ["variant", "camped clients", "captured by twin", "back on real AP",
             "deauths sent"],
            [
                ["City-Hunter alone", plain[0], plain[1], plain[2], plain[3]],
                ["+ deauth emitter", stormy[0], stormy[1], stormy[2], stormy[3]],
            ],
            title="\nScenario 1: clients camped on the venue AP",
        )
    )


def carrier_demo(city, wigle) -> None:
    ios_heavy = PnlModel(ios_share=0.75)
    rows = []
    for label, config in [
        ("no carrier SSIDs", None),
        ("carrier SSIDs preloaded", CityHunterConfig(
            carrier_ssids=tuple(CARRIER_SSIDS))),
    ]:
        result = run_experiment(
            city,
            wigle,
            make_cityhunter(wigle, city.heatmap, config=config),
            venue_profile("canteen"),
            DURATION,
            seed=SEED,
            pnl_model=ios_heavy,
        )
        s = result.summary
        rows.append([label, s.connected_broadcast,
                     f"{100 * s.broadcast_hit_rate:.1f}%"])
    print(
        render_table(
            ["variant", "broadcast clients lured", "h_b"],
            rows,
            title="\nScenario 2: iOS-heavy crowd and carrier SSIDs",
        )
    )


def main() -> None:
    city = default_city()
    wigle = shared_wigle()
    deauth_demo(city, wigle)
    carrier_demo(city, wigle)


if __name__ == "__main__":
    main()
