#!/usr/bin/env python
"""Rush hour at the subway passage: volume, hit rates, and provenance.

Reproduces the Fig. 5(a)/6(a) story on three contrasting time slots:
the 8-9am commuter crush, the 11am lull, and the 6-7pm evening peak.
Watch the client volume swing, h_b tick up with the crowds, and the
direct-probe contribution grow when probes are plentiful.

Run:  python examples/rush_hour.py
"""

from repro.experiments.figures import fig5_venue
from repro.util.tables import render_ratio, render_table


def main() -> None:
    print("Running three hourly deployments at the subway passage...")
    result = fig5_venue("passage", slots=[0, 3, 10], slot_duration=3600.0)

    rows = []
    for slot in result.slots:
        s = slot.summary
        rows.append(
            [
                slot.label + (" (rush)" if slot.rush else ""),
                s.total_clients,
                f"{100 * slot.h:.1f}%",
                f"{100 * slot.h_b:.1f}%",
                render_ratio(slot.source.from_wigle, slot.source.from_direct),
                render_ratio(
                    slot.buffers.from_popularity, slot.buffers.from_freshness
                ),
            ]
        )
    print(
        render_table(
            ["slot", "clients", "h", "h_b", "WiGLE:direct", "PB:FB"],
            rows,
            title="\nCity-Hunter at the Central Subway Passage",
        )
    )

    rush = [s for s in result.slots if s.rush]
    calm = [s for s in result.slots if not s.rush]
    print(
        f"\nrush-hour clients: {sum(s.summary.total_clients for s in rush)}"
        f" across {len(rush)} slot(s);"
        f" off-peak: {sum(s.summary.total_clients for s in calm)}"
        f" across {len(calm)} slot(s)"
    )


if __name__ == "__main__":
    main()
