#!/usr/bin/env python
"""Countermeasures: can classic evil-twin detectors spot City-Hunter?

The paper's conclusion claims existing detection "can still work as
effective countermeasures".  This example deploys two classic detectors
next to each attacker and measures time-to-detection:

* a passive multi-SSID monitor (one BSSID advertising dozens of SSIDs
  is a chameleon), and
* an active canary prober (direct-probing SSIDs that cannot exist —
  any responder is lying).

Run:  python examples/defense_detection.py
"""

from repro.defenses.detector import CanaryProbeDetector, MultiSsidDetector
from repro.experiments.attackers import (
    make_cityhunter,
    make_cityhunter_basic,
    make_karma,
    make_mana,
)
from repro.experiments.calibration import default_city
from repro.experiments.runner import shared_wigle
from repro.experiments.scenarios import ScenarioConfig, build_scenario
from repro.util.tables import render_table

DURATION = 900.0


def main() -> None:
    city = default_city()
    wigle = shared_wigle()
    rows = []
    for label, factory in [
        ("KARMA", make_karma()),
        ("MANA", make_mana()),
        ("City-Hunter (basic)", make_cityhunter_basic(wigle)),
        ("City-Hunter (advanced)", make_cityhunter(wigle, city.heatmap)),
    ]:
        config = ScenarioConfig(
            venue_name="University Canteen",
            mobility="static",
            people_per_min=25.0,
            duration=DURATION,
            seed=4,
        )
        build = build_scenario(city, wigle, config, factory)
        center = build.venue.region.center
        passive = MultiSsidDetector("02:de:te:ct:00:01", center, build.medium)
        active = CanaryProbeDetector("02:de:te:ct:00:02", center, build.medium)
        build.sim.add_entity(passive)
        build.sim.add_entity(active)
        build.sim.run(DURATION + 30.0)

        def when(detector):
            for event in detector.detections:
                if event.bssid == build.attacker.mac:
                    return f"{event.time:.0f}s"
            return "never"

        rows.append([label, f"{100 * _hb(build):.1f}%", when(passive), when(active)])
    print(
        render_table(
            ["attacker", "h_b achieved", "multi-SSID flags at", "canary flags at"],
            rows,
            title="Detection of each attacker (canteen, 15 min)",
        )
    )
    print(
        "\nBoth detectors catch every attacker within seconds of its first"
        "\nresponse burst — consistent with the paper's closing claim that"
        "\nexisting evil-twin detection remains an effective countermeasure."
    )


def _hb(build) -> float:
    from repro.analysis.metrics import summarize

    return summarize(build.attacker.session).broadcast_hit_rate


if __name__ == "__main__":
    main()
