#!/usr/bin/env python
"""Compare all four attackers at two venues (the paper's core story).

KARMA cannot touch broadcast-only clients; MANA barely can; preliminary
City-Hunter works where people sit still but collapses among walkers;
the advanced attacker holds up in both.

Run:  python examples/compare_attackers.py [--duration SECONDS]
"""

import argparse

from repro.experiments.attackers import (
    make_cityhunter,
    make_cityhunter_basic,
    make_karma,
    make_mana,
)
from repro.experiments.calibration import default_city, venue_profile
from repro.experiments.runner import run_experiment, shared_wigle
from repro.util.tables import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=900.0,
                        help="seconds per deployment (default 900)")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    city = default_city()
    wigle = shared_wigle()
    attackers = [
        ("KARMA", make_karma),
        ("MANA", make_mana),
        ("City-Hunter (basic)", lambda: make_cityhunter_basic(wigle)),
        ("City-Hunter (advanced)", lambda: make_cityhunter(wigle, city.heatmap)),
    ]
    # make_karma/make_mana take no args; normalise to thunks.
    attackers[0] = ("KARMA", make_karma)
    attackers[1] = ("MANA", make_mana)

    for venue_key in ("canteen", "passage"):
        profile = venue_profile(venue_key)
        rows = []
        for label, thunk in attackers:
            factory = thunk()
            result = run_experiment(
                city, wigle, factory, profile, args.duration, seed=args.seed
            )
            s = result.summary
            rows.append(
                [
                    label,
                    s.total_clients,
                    s.connected_total,
                    f"{100 * s.hit_rate:.1f}%",
                    f"{100 * s.broadcast_hit_rate:.1f}%",
                ]
            )
        print(
            render_table(
                ["attacker", "clients", "lured", "h", "h_b"],
                rows,
                title=f"\n{profile.venue_name} ({args.duration:.0f}s, "
                f"seed {args.seed})",
            )
        )


if __name__ == "__main__":
    main()
