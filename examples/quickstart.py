#!/usr/bin/env python
"""Quickstart: deploy City-Hunter in the synthetic canteen for 10 minutes.

Builds the synthetic city, derives the attacker's two information
sources (the WiGLE-like AP registry and the photo heat map), deploys the
advanced attacker at the canteen, and prints what it caught.

Run:  python examples/quickstart.py
"""

from repro.experiments.attackers import make_cityhunter
from repro.experiments.calibration import default_city, venue_profile
from repro.experiments.runner import run_experiment, shared_wigle
from repro.util.tables import render_table


def main() -> None:
    print("Building the synthetic city (venues, APs, photos, heat map)...")
    city = default_city()
    wigle = shared_wigle()
    print(f"  {len(city.aps)} APs deployed, {len(city.photos)} geotagged photos")

    profile = venue_profile("canteen")
    print(f"\nDeploying City-Hunter at the {profile.venue_name} for 10 minutes...")
    result = run_experiment(
        city,
        wigle,
        make_cityhunter(wigle, city.heatmap),
        profile,
        duration=600.0,
        seed=42,
    )

    s = result.summary
    print(
        render_table(
            ["metric", "value"],
            [
                ["clients whose probes were received", s.total_clients],
                ["  ... sending direct probes", s.direct_clients],
                ["  ... sending broadcast probes only", s.broadcast_clients],
                ["clients lured (direct probers)", s.connected_direct],
                ["clients lured (broadcast-only)", s.connected_broadcast],
                ["hit rate h", f"{100 * s.hit_rate:.1f}%"],
                ["broadcast hit rate h_b", f"{100 * s.broadcast_hit_rate:.1f}%"],
            ],
            title="\nCity-Hunter, canteen, 10 minutes",
        )
    )

    hunter = result.attacker
    print(f"\nSSID database grew to {hunter.db_size} entries")
    print(f"PB/FB split adapted to {hunter.split.pb_size}/{hunter.split.fb_size}")
    top = [e.ssid for e in hunter.db.ranked()[:5]]
    print("top-weighted SSIDs:", ", ".join(top))


if __name__ == "__main__":
    main()
