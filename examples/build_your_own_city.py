#!/usr/bin/env python
"""Using the library's layers directly: build a custom city and attack it.

Shows the public API below the experiment harness: define venues and
chains, generate a city, derive the WiGLE registry and heat map, seed a
City-Hunter database, and inspect what the selection step would send —
without running a full simulation.

Run:  python examples/build_your_own_city.py
"""

import numpy as np

from repro.city.chains import ChainSpec, PlacementMix
from repro.city.model import CityConfig, build_city
from repro.city.venues import Venue, VenueKind
from repro.core.adaptive import AdaptiveSplit
from repro.core.config import CityHunterConfig
from repro.core.seeding import seed_database
from repro.core.selection import select_for_client
from repro.geo.region import Rect
from repro.wigle.database import WigleDatabase
from repro.wigle.queries import top_ssids_by_count, top_ssids_by_heat


def main() -> None:
    # A toy town: one mall, one plaza, two chains.
    venues = [
        Venue(
            name="Tiny Mall",
            kind=VenueKind.MALL,
            region=Rect(4_000, 4_000, 4_150, 4_120),
            crowd_level=60.0,
            wifi_ssids=("Tiny Mall Free WiFi",),
            ap_count=4,
        ),
        Venue(
            name="Old Town Plaza",
            kind=VenueKind.SHOPPING_CENTER,
            region=Rect(6_000, 5_500, 6_200, 5_650),
            crowd_level=30.0,
            local_affinity=0.04,
            wifi_ssids=("Plaza WiFi",),
            ap_count=2,
        ),
        Venue(
            name="Suburbs",
            kind=VenueKind.RESIDENTIAL,
            region=Rect(1_000, 1_000, 9_000, 3_000),
            crowd_level=5.0,
        ),
    ]
    chains = [
        ChainSpec("Corner Cafe WiFi", 80,
                  PlacementMix(hot=0.2, street=0.8), adoption=0.02),
        ChainSpec("BigTelecom Hotspot", 300,
                  PlacementMix(street=0.5, residential=0.5), adoption=0.03),
    ]
    config = CityConfig(
        bounds=Rect(0, 0, 10_000, 10_000),
        n_shops=800,
        n_residential=2_000,
        background_photos=5_000,
    )
    city = build_city(config, np.random.default_rng(1), venues=venues,
                      chains=chains)
    print(f"built a toy city with {len(city.aps)} APs "
          f"and {len(city.photos)} photos")

    wigle = WigleDatabase.from_access_points(city.aps)
    print("\ntop-3 by AP count:", top_ssids_by_count(wigle, 3))
    print("top-3 by heat   :", [
        (s, int(h)) for s, h in top_ssids_by_heat(wigle, city.heatmap, 3)
    ])

    # Seed a City-Hunter database at the plaza and preview a burst.
    plaza = city.venue("Old Town Plaza")
    hunter_config = CityHunterConfig(n_popular=50, n_nearby=20)
    db = seed_database(wigle, city.heatmap, plaza.region.center, hunter_config)
    print(f"\nseeded database: {len(db)} SSIDs")

    split = AdaptiveSplit(total=40, initial_pb=hunter_config.initial_pb)
    burst = select_for_client(
        db, frozenset(), split, hunter_config, np.random.default_rng(0)
    )
    print("first response burst a broadcast prober would receive:")
    for meta in burst[:10]:
        print(f"  [{meta.bucket:>8s}] {meta.ssid}")
    print(f"  ... {len(burst)} SSIDs total")


if __name__ == "__main__":
    main()
