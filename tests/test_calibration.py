"""Tests for the calibrated venue profiles (repro.experiments.calibration)."""

import pytest

from repro.experiments.calibration import (
    GROUP_PROBS_BASE,
    GROUP_PROBS_RUSH,
    all_profiles,
    default_city,
    mean_group_size,
    venue_profile,
)

VENUE_KEYS = ("canteen", "passage", "shopping_center", "railway_station")


class TestVenueProfiles:
    @pytest.mark.parametrize("key", VENUE_KEYS)
    def test_known_keys_resolve(self, key):
        profile = venue_profile(key)
        assert profile.venue_name
        assert profile.mobility in ("static", "corridor", "hybrid")
        assert profile.people_per_min_30min_test > 0

    def test_unknown_key_raises_with_choices(self):
        with pytest.raises(KeyError) as err:
            venue_profile("rooftop_bar")
        message = str(err.value)
        assert "rooftop_bar" in message
        for key in VENUE_KEYS:
            assert key in message

    def test_all_profiles_complete(self):
        profiles = all_profiles()
        assert sorted(profiles) == sorted(VENUE_KEYS)
        for key, profile in profiles.items():
            assert profile is venue_profile(key)

    def test_all_profiles_returns_a_copy(self):
        profiles = all_profiles()
        profiles["fake"] = None
        assert "fake" not in all_profiles()

    @pytest.mark.parametrize("key", VENUE_KEYS)
    def test_hourly_series_covers_8am_to_8pm(self, key):
        profile = venue_profile(key)
        rates = profile.hourly_people_per_min.rates
        assert len(rates) == 12
        assert all(r > 0 for r in rates)
        assert all(0 <= slot < 12 for slot in profile.rush_slots)

    def test_paper_volume_ordering(self):
        """The passage is the paper's busiest 30-minute test by far."""
        volumes = {
            key: venue_profile(key).people_per_min_30min_test
            for key in VENUE_KEYS
        }
        assert volumes["passage"] == max(volumes.values())
        assert volumes["canteen"] == min(volumes.values())


class TestGroupSizes:
    def test_probability_vectors_normalised(self):
        assert sum(GROUP_PROBS_BASE) == pytest.approx(1.0)
        assert sum(GROUP_PROBS_RUSH) == pytest.approx(1.0)

    def test_mean_group_size_simple(self):
        assert mean_group_size((1.0,)) == pytest.approx(1.0)
        assert mean_group_size((0.0, 1.0)) == pytest.approx(2.0)
        assert mean_group_size((0.25, 0.25, 0.25, 0.25)) == pytest.approx(2.5)

    def test_mean_group_size_normalises(self):
        # Unnormalised vectors are scaled by their total.
        assert mean_group_size((2.0, 2.0)) == pytest.approx(1.5)

    def test_rush_groups_larger_than_base(self):
        assert mean_group_size(GROUP_PROBS_RUSH) > mean_group_size(
            GROUP_PROBS_BASE
        )


class TestDefaultCity:
    def test_cached_per_seed(self):
        assert default_city(42) is default_city(42)

    def test_city_has_venues_and_aps(self):
        city = default_city(42)
        assert len(city.aps) > 0
        for key in VENUE_KEYS:
            venue = city.venue(venue_profile(key).venue_name)
            assert venue.wifi_ssids
