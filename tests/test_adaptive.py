"""Tests for ARC-style buffer adaptation (repro.core.adaptive)."""

import pytest

from repro.core.adaptive import AdaptiveSplit


class TestAdaptiveSplit:
    def test_initial_sizes(self):
        split = AdaptiveSplit(total=40, initial_pb=28)
        assert split.pb_size == 28
        assert split.fb_size == 12

    def test_total_invariant_under_adaptation(self):
        split = AdaptiveSplit(total=40, initial_pb=28)
        for bucket in ["pb_ghost", "fb_ghost", "pb_ghost", "pb_ghost"]:
            split.on_hit(bucket)
            assert split.pb_size + split.fb_size == 40

    def test_pb_ghost_hit_grows_pb(self):
        split = AdaptiveSplit(total=40, initial_pb=28)
        split.on_hit("pb_ghost")
        assert split.pb_size == 29

    def test_fb_ghost_hit_grows_fb(self):
        split = AdaptiveSplit(total=40, initial_pb=28)
        split.on_hit("fb_ghost")
        assert split.fb_size == 13

    def test_non_ghost_buckets_ignored(self):
        split = AdaptiveSplit(total=40, initial_pb=28)
        for bucket in ["pb", "fb", "mimic", "db", "unknown"]:
            split.on_hit(bucket)
        assert split.pb_size == 28
        assert split.adjustments == 0

    def test_clamped_at_min_size(self):
        split = AdaptiveSplit(total=40, initial_pb=6, min_size=4)
        for _ in range(10):
            split.on_hit("fb_ghost")
        assert split.pb_size == 4
        for _ in range(100):
            split.on_hit("pb_ghost")
        assert split.pb_size == 36
        assert split.fb_size == 4

    def test_disabled_adaptation_is_frozen(self):
        split = AdaptiveSplit(total=40, initial_pb=28, enabled=False)
        split.on_hit("pb_ghost")
        split.on_hit("fb_ghost")
        assert split.pb_size == 28
        assert split.adjustments == 0

    def test_adjustment_counter(self):
        split = AdaptiveSplit(total=40, initial_pb=28)
        split.on_hit("pb_ghost")
        split.on_hit("fb_ghost")
        assert split.adjustments == 2

    def test_invalid_initial_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveSplit(total=40, initial_pb=38, min_size=4)
        with pytest.raises(ValueError):
            AdaptiveSplit(total=40, initial_pb=2, min_size=4)
