"""Tests for histogram helpers (repro.util.histogram)."""

import pytest
from hypothesis import given, strategies as st

from repro.util.histogram import Histogram, bucket_counts, percentile, split_ratio


class TestBucketCounts:
    def test_upper_edge_buckets_match_paper_labelling(self):
        # A client that saw exactly 40 SSIDs falls in the 40 bucket,
        # 41-80 in the 80 bucket (Fig. 2b labelling).
        counts = bucket_counts([40, 41, 80, 81], width=40)
        assert counts == {40: 1, 80: 2, 120: 1}

    def test_zero_goes_to_zero_bucket(self):
        assert bucket_counts([0, 0, 1], width=40) == {0: 2, 40: 1}

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bucket_counts([-1], width=40)

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            bucket_counts([1], width=0)

    @given(st.lists(st.integers(min_value=0, max_value=10_000)),
           st.integers(min_value=1, max_value=200))
    def test_counts_conserve_samples(self, samples, width):
        counts = bucket_counts(samples, width)
        assert sum(counts.values()) == len(samples)

    @given(st.lists(st.integers(min_value=1, max_value=10_000), min_size=1),
           st.integers(min_value=1, max_value=200))
    def test_every_sample_within_its_bucket(self, samples, width):
        counts = bucket_counts(samples, width)
        for edge in counts:
            assert edge % width == 0


class TestHistogram:
    def test_fraction(self):
        h = Histogram(width=40)
        h.extend([40, 40, 80])
        assert h.fraction(40) == pytest.approx(2 / 3)
        assert h.fraction(80) == pytest.approx(1 / 3)
        assert h.fraction(120) == 0.0

    def test_stats(self):
        h = Histogram(width=40)
        h.extend([10, 20, 30])
        assert h.mean() == pytest.approx(20.0)
        assert h.min() == 10
        assert h.max() == 30
        assert h.total == 3

    def test_empty_histogram(self):
        h = Histogram(width=40)
        assert h.mean() == 0.0
        assert h.fraction(40) == 0.0
        assert h.render() == "(empty histogram)"

    def test_render_contains_counts_and_shares(self):
        h = Histogram(width=40)
        h.extend([40] * 3 + [80])
        out = h.render()
        assert "40" in out and "(75%)" in out


class TestPercentile:
    def test_median_odd(self):
        assert percentile([1, 2, 3], 50) == 2

    def test_extremes(self):
        data = [5, 1, 9]
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 9

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 150)


class TestSplitRatio:
    def test_aggregates_before_dividing(self):
        assert split_ratio([(1, 2), (3, 2)]) == pytest.approx(1.0)

    def test_zero_denominator(self):
        assert split_ratio([(3, 0)]) == float("inf")
        assert split_ratio([(0, 0)]) == 0.0
