"""Tests for the Prometheus text exposition (repro.obs.prom).

The load-bearing contract is the round-trip: every counter and gauge in
a ``metrics.json`` document must appear in the rendered ``.prom`` text
with the same value, found via the same key mapping
(:func:`prom_sample_key`) a scraper would use.  The committed golden
fixtures serve as the corpus so the contract is checked against real
label shapes, not hand-picked ones.
"""

import json
import pathlib

import pytest

from repro.cli import main
from repro.obs.prom import (
    format_labels,
    parse_prom_text,
    prom_lines,
    prom_sample_key,
    render_prom,
    sanitize_name,
    validate_prom_text,
    write_prom,
)

DATA_DIR = pathlib.Path(__file__).resolve().parent / "data"


def golden_doc() -> dict:
    return json.loads((DATA_DIR / "golden_metrics.json").read_text())


class TestNames:
    def test_sanitize_prefixes_and_replaces(self):
        assert sanitize_name("attacker.hits") == "repro_attacker_hits"
        assert sanitize_name("a-b c") == "repro_a_b_c"

    def test_labels_sorted_and_escaped(self):
        labels = {"ssid": 'Joe"s\nCafe\\1', "shard": "2"}
        text = format_labels(labels)
        assert text.startswith('{shard="2",ssid="')
        assert '\\"' in text and "\\n" in text and "\\\\" in text

    def test_no_labels_is_empty(self):
        assert format_labels({}) == ""

    def test_sample_key_kinds(self):
        key = 'attacker.hits{"provenance":"carrier"}'
        assert prom_sample_key(key, "counter") == (
            'repro_attacker_hits_total{provenance="carrier"}'
        )
        assert prom_sample_key("trace.cap", "gauge") == "repro_trace_cap"


class TestLines:
    def test_counter_and_gauge_sections(self):
        snap = {
            "counters": {"hits": 3, 'hits{"shard":"1"}': 2},
            "gauges": {"cap": 10.5},
        }
        lines = prom_lines(snap)
        assert "# TYPE repro_hits_total counter" in lines
        assert lines.count("# TYPE repro_hits_total counter") == 1
        assert "repro_hits_total 3" in lines
        assert 'repro_hits_total{shard="1"} 2' in lines
        assert "repro_cap 10.5" in lines

    def test_histogram_buckets_cumulative(self):
        snap = {
            "histograms": {
                "lat": {
                    "bounds": [1.0, 5.0],
                    "counts": [2, 3, 1],
                    "sum": 9.5,
                    "count": 6,
                }
            }
        }
        lines = prom_lines(snap)
        assert 'repro_lat_bucket{le="1"} 2' in lines
        assert 'repro_lat_bucket{le="5"} 5' in lines
        assert 'repro_lat_bucket{le="+Inf"} 6' in lines
        assert "repro_lat_sum 9.5" in lines
        assert "repro_lat_count 6" in lines

    def test_timers_become_counter_pairs(self):
        snap = {"timers": {"run": {"total_s": 1.25, "count": 4}}}
        lines = prom_lines(snap)
        assert "# TYPE repro_run_seconds_total counter" in lines
        assert "repro_run_seconds_total 1.25" in lines
        assert "repro_run_calls_total 4" in lines

    def test_series_not_exported(self):
        snap = {
            "counters": {"hits": 1},
            "series": {"pb": [[0.0, 1.0]]},
        }
        assert not any("pb" in line for line in prom_lines(snap))


class TestValidate:
    def test_accepts_rendered_golden(self):
        text = render_prom(golden_doc())
        assert validate_prom_text(text) > 60

    def test_rejects_garbage_sample(self):
        with pytest.raises(ValueError, match="not a valid sample"):
            validate_prom_text("# TYPE a counter\na = 3\n")

    def test_rejects_bad_type_comment(self):
        with pytest.raises(ValueError, match="malformed TYPE"):
            validate_prom_text("# TYPE a sideways\na 3\n")

    def test_rejects_duplicate_type(self):
        with pytest.raises(ValueError, match="duplicate TYPE"):
            validate_prom_text("# TYPE a counter\n# TYPE a counter\na 1\n")

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="no samples"):
            validate_prom_text("# TYPE a counter\n")


class TestRoundTrip:
    def test_every_counter_and_gauge_round_trips(self):
        """Acceptance: metrics.prom carries every counter/gauge of
        metrics.json with the same value."""
        doc = golden_doc()
        samples = parse_prom_text(render_prom(doc))
        merged = doc["merged"]
        assert merged["counters"] and merged["gauges"]
        for key, value in merged["counters"].items():
            sample = prom_sample_key(key, "counter")
            assert sample in samples, sample
            assert samples[sample] == pytest.approx(float(value))
        for key, value in merged["gauges"].items():
            sample = prom_sample_key(key, "gauge")
            assert sample in samples, sample
            assert samples[sample] == pytest.approx(float(value))

    def test_shards_fixture_round_trips(self):
        doc = json.loads((DATA_DIR / "golden_shards.json").read_text())
        samples = parse_prom_text(render_prom(doc))
        for key, value in doc["merged"]["counters"].items():
            assert samples[prom_sample_key(key, "counter")] == pytest.approx(
                float(value)
            )

    def test_write_prom_default_path(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path))
        path = write_prom(golden_doc())
        assert path == tmp_path / "metrics.prom"
        validate_prom_text(path.read_text())


class TestWriteMetricsTwin:
    def test_batch_writes_prom_next_to_json(self, tmp_path, monkeypatch):
        """write_metrics produces the scrape-able twin automatically."""
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path))
        from repro.experiments.golden import golden_specs
        from repro.experiments.parallel import run_specs

        run_specs(golden_specs()[:1], workers=1, metrics_name="twin_metrics")
        json_path = tmp_path / "twin_metrics.json"
        prom_path = tmp_path / "twin_metrics.prom"
        assert json_path.is_file() and prom_path.is_file()
        doc = json.loads(json_path.read_text())
        samples = parse_prom_text(prom_path.read_text())
        for key, value in doc["merged"]["counters"].items():
            assert samples[prom_sample_key(key, "counter")] == pytest.approx(
                float(value)
            )


class TestPromCli:
    def test_regenerates_from_artifact(self, tmp_path, capsys):
        src = tmp_path / "metrics.json"
        # the committed fixture is canonicalised (no 'workers', timers
        # stripped); restore what the artefact validator requires
        doc = dict(golden_doc(), workers=1)
        doc["merged"] = dict(doc["merged"], timers={})
        doc["runs"] = [
            dict(r, metrics=dict(r["metrics"], timers={}))
            for r in doc["runs"]
        ]
        src.write_text(json.dumps(doc))
        out = tmp_path / "metrics.prom"
        rc = main(["obs", "prom", "--path", str(src), "--out", str(out)])
        assert rc == 0
        assert "samples written" in capsys.readouterr().out
        assert validate_prom_text(out.read_text()) > 60

    def test_missing_artifact_is_an_error(self, tmp_path, capsys):
        rc = main([
            "obs", "prom", "--path", str(tmp_path / "nope.json"),
            "--out", str(tmp_path / "out.prom"),
        ])
        assert rc == 1
        assert "no metrics artefact" in capsys.readouterr().err
