"""Tests for the parallel experiment executor (repro.experiments.parallel).

The load-bearing property is exactness: the same spec batch must produce
bit-identical results at any worker count, which in turn rests on
platform-stable derived seeds and on the shared city/WiGLE caches being
immutable.
"""

import json

import pytest

from repro.experiments.parallel import (
    RunSpec,
    derive_run_seeds,
    execute_spec,
    merged_metrics,
    replicates,
    resolve_workers,
    run_specs,
)
from repro.experiments.runner import shared_wigle
from repro.experiments.scenarios import ScenarioConfig
from repro.obs.registry import validate_metrics_doc

# A deliberately tiny deployment so the pooled tests stay fast.
_QUICK = dict(duration=150.0, fidelity="burst")


def _scenario(seed=0):
    return ScenarioConfig(
        venue_name="University Canteen",
        mobility="static",
        people_per_min=25.0,
        duration=150.0,
        seed=seed,
    )


def _quick_specs(n=4, seed=7):
    return [
        RunSpec(
            attacker="cityhunter",
            venue="canteen",
            seed=s,
            tag=f"quick:{i}",
            **_QUICK,
        )
        for i, s in enumerate(derive_run_seeds(seed, n))
    ]


class TestDerivedSeeds:
    def test_stable_across_platforms(self):
        # SHA-256 derivation: these exact values must hold on every
        # platform and Python version, or parallel runs stop being
        # reproducible across machines.
        assert derive_run_seeds(7, 4) == [
            12198374251171650740,
            6662240684437893218,
            17493429955678932808,
            9053598780155620301,
        ]

    def test_distinct(self):
        seeds = derive_run_seeds(7, 64)
        assert len(set(seeds)) == 64

    def test_master_seed_matters(self):
        assert derive_run_seeds(1, 8) != derive_run_seeds(2, 8)


class TestRunSpec:
    def test_unknown_attacker_rejected(self):
        with pytest.raises(ValueError, match="unknown attacker"):
            RunSpec(attacker="evil-twin", venue="canteen")

    def test_exactly_one_route_required(self):
        with pytest.raises(ValueError, match="exactly one"):
            RunSpec(attacker="karma")
        with pytest.raises(ValueError, match="exactly one"):
            RunSpec(
                attacker="karma",
                venue="canteen",
                scenario=_scenario(),
            )

    def test_replicates_have_distinct_seeds_and_tags(self):
        base = RunSpec(attacker="karma", venue="canteen", seed=5, tag="base")
        reps = replicates(base, 4)
        assert len(reps) == 4
        assert len({r.seed for r in reps}) == 4
        assert [r.tag for r in reps] == [f"base:rep{i}" for i in range(4)]

    def test_replicates_reseed_scenario_route(self):
        base = RunSpec(
            attacker="cityhunter",
            scenario=_scenario(seed=3),
        )
        reps = replicates(base, 3, master_seed=9)
        for rep in reps:
            assert rep.scenario.seed == rep.seed
        assert [r.seed for r in reps] == derive_run_seeds(9, 3)


class TestResolveWorkers:
    def test_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "8")
        assert resolve_workers(3) == 3

    def test_env_honoured(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers() == 5

    def test_default_is_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers() >= 1

    def test_garbage_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_workers()

    def test_zero_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            resolve_workers(0)


class TestDeterminism:
    def test_parallel_matches_serial_exactly(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TIMINGS_DIR", str(tmp_path))
        specs = _quick_specs()
        serial = run_specs(specs, workers=1)
        pooled = run_specs(specs, workers=2)
        assert [r.spec.tag for r in pooled] == [s.tag for s in specs]
        for a, b in zip(serial, pooled):
            assert a.summary == b.summary
            assert a.source == b.source
            assert a.buffers == b.buffers
            assert a.people_spawned == b.people_spawned

    def test_env_worker_count_is_equivalent(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TIMINGS_DIR", str(tmp_path))
        specs = _quick_specs(n=2)
        monkeypatch.setenv("REPRO_WORKERS", "1")
        serial = run_specs(specs)
        monkeypatch.setenv("REPRO_WORKERS", "2")
        pooled = run_specs(specs)
        assert [r.summary for r in serial] == [r.summary for r in pooled]


class TestTimingsArtefact:
    def test_contents(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TIMINGS_DIR", str(tmp_path))
        specs = _quick_specs(n=2)
        results = run_specs(specs, workers=1, timings_name="timings_test")
        doc = json.loads((tmp_path / "timings_test.json").read_text())
        assert doc["workers"] == 1
        assert doc["run_count"] == 2
        assert doc["total_wall_time_s"] > 0
        assert doc["serial_estimate_s"] == pytest.approx(
            sum(round(r.wall_time, 4) for r in results), abs=1e-3
        )
        assert doc["speedup_vs_serial_estimate"] is not None
        assert [run["tag"] for run in doc["runs"]] == ["quick:0", "quick:1"]
        assert all(run["venue"] == "canteen" for run in doc["runs"])

    def test_disabled_by_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TIMINGS_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_TIMINGS", "0")
        run_specs(_quick_specs(n=1), workers=1, timings_name="timings_off")
        assert not (tmp_path / "timings_off.json").exists()


def _strip_timers(snapshot):
    """The deterministic sections of a snapshot (timers hold wall clock)."""
    return {k: v for k, v in snapshot.items() if k != "timers"}


class TestMetricsArtefact:
    def test_merged_metrics_worker_count_invariant(self, tmp_path, monkeypatch):
        # The acceptance bar for the observability layer: everything
        # except wall-clock timers must be bit-identical between a
        # serial and a pooled execution of the same batch.
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path))
        specs = _quick_specs()
        serial = merged_metrics(run_specs(specs, workers=1))
        pooled = merged_metrics(run_specs(specs, workers=2))
        assert _strip_timers(serial) == _strip_timers(pooled)
        # Spot-check the signals the paper cares about survived the
        # merge: per-provenance counters and the PB/FB series.
        assert any(k.startswith("attacker.ssids_sent") for k in serial["counters"])
        assert "hunter.pb_size" in serial["series"]
        assert serial["counters"]["run.count"] == len(specs)

    def test_artefact_written_and_schema_valid(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path))
        results = run_specs(_quick_specs(n=2), workers=1,
                            metrics_name="metrics_test")
        doc = json.loads((tmp_path / "metrics_test.json").read_text())
        validate_metrics_doc(doc)
        assert doc["workers"] == 1
        assert [run["tag"] for run in doc["runs"]] == ["quick:0", "quick:1"]
        assert doc["merged"] == merged_metrics(results)

    def test_disabled_by_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_METRICS", "0")
        run_specs(_quick_specs(n=1), workers=1, metrics_name="metrics_off")
        assert not (tmp_path / "metrics_off.json").exists()

    def test_timings_embedded_in_metrics(self, tmp_path, monkeypatch):
        # One artefact carries the full run record: the timings doc
        # rides inside metrics.json while timings.json stays for
        # backward compatibility.
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path))
        run_specs(_quick_specs(n=2), workers=1,
                  metrics_name="metrics_timed", timings_name="timings_kept")
        doc = json.loads((tmp_path / "metrics_timed.json").read_text())
        validate_metrics_doc(doc)
        standalone = json.loads((tmp_path / "timings_kept.json").read_text())
        assert doc["timings"] == standalone
        assert doc["timings"]["run_count"] == 2
        assert doc["timings"]["total_wall_time_s"] > 0

    def test_profile_artefact_written_when_enabled(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_PROFILE", "1")
        run_specs(_quick_specs(n=2), workers=1)
        from repro.obs.profiler import load_profile

        doc = load_profile(tmp_path / "profile.json")
        assert doc["total_calls"] > 0
        assert any(
            "Medium" in row["name"] for row in doc["handlers"]
        )

    def test_no_profile_artefact_by_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        run_specs(_quick_specs(n=1), workers=1)
        assert not (tmp_path / "profile.json").exists()

    def test_heartbeats_written_when_enabled(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_HEARTBEAT", "0.2")
        run_specs(_quick_specs(n=1), workers=1)
        from repro.obs.telemetry import read_heartbeats

        files = list((tmp_path / "telemetry").glob("worker-*.jsonl"))
        assert files
        records = read_heartbeats(files[0])
        assert records[-1]["done"] is True
        assert records[-1]["fraction"] == 1.0
        assert records[0]["spec"].startswith("quick:0")

    def test_run_summary_carries_snapshot(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIMINGS", "0")
        monkeypatch.setenv("REPRO_METRICS", "0")
        result = execute_spec(
            RunSpec(attacker="cityhunter", venue="canteen", seed=3, **_QUICK)
        )
        assert result.metrics is not None
        assert result.metrics["counters"]["run.count"] == 1
        assert any(e["kind"] == "span" for e in result.events)


class TestSharedWigleImmutability:
    def test_records_cannot_be_mutated(self):
        wigle = shared_wigle()
        assert isinstance(wigle.records, tuple)
        with pytest.raises((AttributeError, TypeError)):
            wigle.records.append(None)

    def test_sequential_runs_from_cache_are_independent(
        self, tmp_path, monkeypatch
    ):
        # Regression: the City-Hunter attacker seeds its own database
        # from the cached WiGLE registry; a first run must not leak
        # learned weights into a second run built from the same cache.
        monkeypatch.setenv("REPRO_TIMINGS", "0")
        spec = RunSpec(attacker="cityhunter", venue="canteen", seed=11, **_QUICK)
        first = execute_spec(spec)
        second = execute_spec(spec)
        assert first.summary == second.summary
        assert first.source == second.source
        assert first.buffers == second.buffers
