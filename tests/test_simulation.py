"""Tests for the Simulation facade and tracing (repro.sim)."""

from repro.sim.simulation import Simulation
from repro.sim.tracing import Trace


class _Entity:
    def __init__(self):
        self.started_at = None

    def start(self, sim):
        self.started_at = sim.now


class TestSimulation:
    def test_entities_started_on_run(self):
        sim = Simulation(seed=1)
        e = _Entity()
        sim.add_entity(e)
        assert e.started_at is None
        sim.run(1.0)
        assert e.started_at == 0.0

    def test_entity_added_mid_run_starts_immediately(self):
        sim = Simulation(seed=1)
        late = _Entity()
        sim.at(0.5, lambda: sim.add_entity(late))
        sim.run(1.0)
        assert late.started_at == 0.5

    def test_at_and_at_time(self):
        sim = Simulation(seed=1)
        fired = []
        sim.at(0.5, fired.append, "rel")
        sim.at_time(0.7, fired.append, "abs")
        sim.run(1.0)
        assert fired == ["rel", "abs"]

    def test_run_is_resumable(self):
        sim = Simulation(seed=1)
        fired = []
        sim.at(5.0, fired.append, "late")
        sim.run(1.0)
        assert fired == []
        sim.run(10.0)
        assert fired == ["late"]

    def test_entities_listed(self):
        sim = Simulation(seed=1)
        e = _Entity()
        sim.add_entity(e)
        assert sim.entities == [e]

    def test_same_seed_same_stream_draws(self):
        a = Simulation(seed=9).rngs.stream("x").random(4)
        b = Simulation(seed=9).rngs.stream("x").random(4)
        assert list(a) == list(b)

    def test_emit_respects_trace_flag(self):
        silent = Simulation(seed=1, trace=False)
        silent.emit("kind", "subj")
        assert len(silent.trace) == 0
        loud = Simulation(seed=1, trace=True)
        loud.emit("kind", "subj")
        assert len(loud.trace) == 1


class TestTrace:
    def test_filter_by_kind(self):
        t = Trace()
        t.emit(0.0, "probe", "a")
        t.emit(1.0, "hit", "b")
        t.emit(2.0, "probe", "c")
        assert [r.subject for r in t.of_kind("probe")] == ["a", "c"]

    def test_counts_by_kind(self):
        t = Trace()
        t.emit(0.0, "probe", "a")
        t.emit(1.0, "probe", "b")
        t.emit(2.0, "hit", "c")
        assert t.counts_by_kind() == {"probe": 2, "hit": 1}

    def test_last(self):
        t = Trace()
        assert t.last() is None
        t.emit(0.0, "probe", "a")
        t.emit(1.0, "hit", "b")
        assert t.last().subject == "b"
        assert t.last("probe").subject == "a"
        assert t.last("nope") is None

    def test_disabled_trace_drops_records(self):
        t = Trace(enabled=False)
        t.emit(0.0, "probe", "a")
        assert len(t) == 0
