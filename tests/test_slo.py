"""Percentile estimation and the declared serving-SLO gate.

:func:`~repro.obs.registry.estimate_percentile` turns the fixed-bucket
``serve.*_us`` histograms into tail estimates; :mod:`repro.obs.slo`
declares how much tail is acceptable and verdicts metrics or bench
artefacts.  These tests pin the estimator's edge cases (empty, single
bucket, overflow saturation, q clamping), the budget plumbing, both
evaluator paths, the CLI exit codes, and the ``repro obs bench``
integration — including that the *committed* ``BENCH_serve`` baseline
passes the default SLO, which is what CI's serve-smoke job relies on.
"""

import json
import pathlib

import pytest

from repro.cli import main
from repro.obs.bench import SERVE_SCHEMA
from repro.obs.registry import METRICS_SCHEMA, FixedHistogram, estimate_percentile
from repro.obs.slo import (
    DEFAULT_P99_BUDGETS_US,
    DEFAULT_SHED_BUDGET,
    SLO_SCHEMA,
    default_slo,
    evaluate_slo,
    render_slo_report,
)

BASELINE = (
    pathlib.Path(__file__).parent.parent
    / "benchmarks"
    / "baselines"
    / "BENCH_serve.json"
)


def hist_doc(bounds, counts):
    return {"bounds": list(bounds), "counts": list(counts),
            "sum": 0.0, "count": sum(counts)}


class TestEstimatePercentile:
    def test_empty_returns_none(self):
        assert estimate_percentile(FixedHistogram((1.0, 2.0)), 99) is None
        assert estimate_percentile(hist_doc((1.0, 2.0), (0, 0, 0)), 50) is None

    def test_live_and_dict_forms_agree(self):
        hist = FixedHistogram((10.0, 20.0, 40.0))
        for v in (5, 15, 15, 35):
            hist.observe(v)
        assert estimate_percentile(hist, 50) == estimate_percentile(
            hist.to_dict(), 50
        )

    def test_first_bucket_anchored_at_zero(self):
        # All mass in the first bucket: interpolate between 0 and 10.
        doc = hist_doc((10.0, 20.0), (4, 0, 0))
        assert estimate_percentile(doc, 50) == pytest.approx(5.0)
        assert estimate_percentile(doc, 100) == pytest.approx(10.0)

    def test_interpolates_within_owning_bucket(self):
        # 2 below 10, 2 in (10, 20]: p75 is the middle of the second bucket.
        doc = hist_doc((10.0, 20.0), (2, 2, 0))
        assert estimate_percentile(doc, 75) == pytest.approx(15.0)

    def test_overflow_saturates_at_last_bound(self):
        doc = hist_doc((10.0, 20.0), (1, 0, 9))
        assert estimate_percentile(doc, 99) == pytest.approx(20.0)

    def test_q_is_clamped(self):
        doc = hist_doc((10.0,), (4, 0))
        assert estimate_percentile(doc, -5) == pytest.approx(0.0)
        assert estimate_percentile(doc, 250) == pytest.approx(10.0)


class TestSloDeclaration:
    def test_default_budgets(self):
        slo = default_slo()
        assert slo.p99_budgets_us == DEFAULT_P99_BUDGETS_US
        assert slo.shed_fraction_budget == DEFAULT_SHED_BUDGET

    def test_overrides_apply(self):
        slo = default_slo({"select_latency": 123.0}, shed_budget=0.2)
        assert slo.p99_budgets_us["select_latency"] == 123.0
        assert slo.p99_budgets_us["apply"] == DEFAULT_P99_BUDGETS_US["apply"]
        assert slo.shed_fraction_budget == 0.2

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError, match="unknown SLO stage"):
            default_slo({"warp_drive": 1.0})


def metrics_doc(p99_scale=1.0, shed=0, events=100):
    """A minimal ``repro.metrics/v1`` doc with serve stage histograms.

    All stage mass sits in one bucket at ``100 * p99_scale`` µs, so the
    estimated p99 tracks the scale linearly.
    """
    bound = 100.0 * p99_scale
    hists = {
        "serve.%s_us" % stage: hist_doc((bound, bound * 2), (0, 10, 0))
        for stage in ("queue_wait", "commit_wait", "select_latency", "apply")
    }
    return {
        "schema": METRICS_SCHEMA,
        "merged": {
            "counters": {
                'serve.events_total{"type":"broadcast"}': float(events),
                'serve.shed_total{"type":"broadcast"}': float(shed),
            },
            "histograms": hists,
        },
    }


class TestEvaluate:
    def test_metrics_doc_within_budget(self):
        report = evaluate_slo(default_slo(), metrics_doc())
        assert report["schema"] == SLO_SCHEMA
        assert report["ok"] and not report["breaches"]
        names = {c["name"] for c in report["checks"]}
        assert names == {
            "p99:queue_wait", "p99:commit_wait", "p99:select_latency",
            "p99:apply", "shed_fraction",
        }

    def test_metrics_doc_tail_breach(self):
        # 100 ms stage tails blow the 50 ms select/apply budgets but not
        # the 5 s queue/commit-wait budgets.
        report = evaluate_slo(default_slo(), metrics_doc(p99_scale=1000.0))
        assert not report["ok"]
        assert set(report["breaches"]) == {
            "p99:select_latency", "p99:apply",
        }
        assert "BREACH" in render_slo_report(report)

    def test_metrics_doc_shed_breach(self):
        report = evaluate_slo(default_slo(), metrics_doc(shed=10))
        assert report["breaches"] == ["shed_fraction"]

    def test_non_serving_metrics_doc_rejected(self):
        doc = {"schema": METRICS_SCHEMA, "merged": {"counters": {}}}
        with pytest.raises(ValueError, match="no serve"):
            evaluate_slo(default_slo(), doc)

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="cannot evaluate"):
            evaluate_slo(default_slo(), {"schema": "repro.bench_hotpath/v1"})

    def test_bench_doc_checks_every_grid_point(self):
        doc = {
            "schema": SERVE_SCHEMA,
            "grid": [
                {"clients": 20, "workers": 1, "p99_us": 200.0,
                 "shed_fraction": 0.0},
                {"clients": 20, "workers": 4, "p99_us": 90_000.0,
                 "shed_fraction": 0.2},
            ],
        }
        report = evaluate_slo(default_slo(), doc)
        assert set(report["breaches"]) == {
            "p99:select_latency@20cl/4wk", "shed_fraction@20cl/4wk",
        }

    def test_empty_bench_grid_rejected(self):
        with pytest.raises(ValueError, match="empty grid"):
            evaluate_slo(default_slo(), {"schema": SERVE_SCHEMA, "grid": []})

    def test_committed_baseline_passes_default_slo(self):
        # CI's serve-smoke job runs `repro obs slo --once` against this
        # exact file; a red default SLO on the committed baseline would
        # brick every build.
        report = evaluate_slo(
            default_slo(), json.loads(BASELINE.read_text())
        )
        assert report["ok"], report["breaches"]


class TestSloCli:
    def test_once_green_on_committed_baseline(self, capsys):
        rc = main(["obs", "slo", "--once", "--path", str(BASELINE)])
        assert rc == 0
        assert "slo: OK" in capsys.readouterr().out

    def test_once_breach_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(metrics_doc(p99_scale=1000.0)))
        rc = main(["obs", "slo", "--once", "--path", str(path)])
        assert rc == 1
        assert "slo: BREACH" in capsys.readouterr().out

    def test_budget_override_tightens_gate(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(metrics_doc()))
        rc = main(["obs", "slo", "--once", "--path", str(path),
                   "--budget", "select_latency=1"])
        assert rc == 1
        assert "p99:select_latency" in capsys.readouterr().out

    def test_bad_budget_and_unknown_stage_exit_2(self, tmp_path, capsys):
        assert main(["obs", "slo", "--once", "--budget", "nonsense"]) == 2
        assert main(["obs", "slo", "--once",
                     "--budget", "warp_drive=1"]) == 2
        capsys.readouterr()

    def test_missing_artifact_exits_2(self, tmp_path, capsys):
        rc = main(["obs", "slo", "--once",
                   "--path", str(tmp_path / "absent.json")])
        assert rc == 2
        assert "no artefact" in capsys.readouterr().err


class TestObsBenchSloWiring:
    def write(self, tmp_path, doc):
        path = tmp_path / "BENCH_serve.json"
        path.write_text(json.dumps(doc))
        return path

    def bench_doc(self, p99=200.0):
        return {
            "schema": SERVE_SCHEMA,
            "grid": [{"clients": 20, "workers": 1, "probes_per_s": 9000.0,
                      "p99_us": p99, "shed_fraction": 0.0}],
            "max_probes_per_s": 9000.0,
        }

    def test_serve_candidate_gets_slo_verdict(self, tmp_path, capsys):
        path = self.write(tmp_path, self.bench_doc())
        rc = main(["obs", "bench", "--current", str(path),
                   "--baseline", str(path), "--tolerance", "0.35"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "slo: OK" in out

    def test_slo_breach_fails_gate_even_when_no_regression(
        self, tmp_path, capsys
    ):
        # p99 is informational for the *regression* gate (self-compare
        # passes) but the absolute budget still fails the command.
        path = self.write(tmp_path, self.bench_doc(p99=90_000.0))
        rc = main(["obs", "bench", "--current", str(path),
                   "--baseline", str(path), "--tolerance", "0.35"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "gate: OK" in out and "slo: BREACH" in out

    def test_no_slo_skips_the_layer(self, tmp_path, capsys):
        path = self.write(tmp_path, self.bench_doc(p99=90_000.0))
        rc = main(["obs", "bench", "--current", str(path),
                   "--baseline", str(path), "--tolerance", "0.35",
                   "--no-slo"])
        assert rc == 0
        assert "slo:" not in capsys.readouterr().out
