"""Tests for the stealth City-Hunter variant (repro.attacks.stealth)."""

import pytest

from repro.attacks.stealth import StealthCityHunter
from repro.defenses.detector import CanaryProbeDetector, MultiSsidDetector
from repro.dot11.frames import (
    AssocRequest,
    AuthRequest,
    ProbeRequest,
    ProbeResponse,
)
from repro.dot11.medium import Medium
from repro.experiments.scenarios import ScenarioConfig, build_scenario
from repro.geo.point import Point
from repro.sim.simulation import Simulation


class Sniffer:
    def __init__(self, mac="02:00:00:00:00:99", where=Point(1, 0)):
        self.mac = mac
        self.where = where
        self.received = []

    def position_at(self, time):
        return self.where

    def receive(self, frame, time):
        self.received.append(frame)

    def receive_burst(self, responses, time, spacing):
        self.received.extend(responses)


@pytest.fixture
def deployed(city, wigle):
    sim = Simulation(seed=3)
    medium = Medium(sim)
    venue = city.venue("University Canteen")
    hunter = StealthCityHunter(
        "02:aa:00:00:00:01",
        venue.region.center,
        medium,
        wigle=wigle,
        heatmap=city.heatmap,
    )
    sniffer = Sniffer(where=venue.region.center)
    medium.attach(sniffer, 100.0)
    sim.add_entity(hunter)
    sim.run(0.001)
    return sim, hunter, sniffer


def _drain(sim, sniffer):
    sim.run(sim.now + 1.0)
    out = [f for f in sniffer.received if isinstance(f, ProbeResponse)]
    sniffer.received.clear()
    return out


class TestBssidRotation:
    def test_each_ssid_gets_its_own_bssid(self, deployed):
        sim, hunter, sniffer = deployed
        hunter.receive(ProbeRequest(sniffer.mac), sim.now)
        responses = _drain(sim, sniffer)
        assert len(responses) == 40
        assert len({r.src for r in responses}) == 40
        assert all(r.src != hunter.mac for r in responses)

    def test_alias_stable_per_ssid(self, deployed):
        sim, hunter, sniffer = deployed
        a = hunter.alias_for("Some Net").mac
        b = hunter.alias_for("Some Net").mac
        assert a == b
        assert hunter.alias_for("Other Net").mac != a

    def test_handshake_through_alias_records_hit(self, deployed):
        sim, hunter, sniffer = deployed
        hunter.receive(ProbeRequest(sniffer.mac), sim.now)
        responses = _drain(sim, sniffer)
        target = responses[3]
        # The phone-side flow: auth then assoc, addressed to the alias.
        alias_mac = target.src
        hunter.receive_as(alias_mac, AuthRequest(sniffer.mac, alias_mac), sim.now)
        hunter.receive_as(
            alias_mac, AssocRequest(sniffer.mac, alias_mac, target.ssid), sim.now
        )
        rec = hunter.session.clients[sniffer.mac]
        assert rec.connected
        assert rec.hit_ssid == target.ssid

    def test_alias_ignores_broadcast_probes(self, deployed):
        """Only the main station answers probes — otherwise every alias
        would fire a burst per probe."""
        sim, hunter, sniffer = deployed
        hunter.receive(ProbeRequest(sniffer.mac), sim.now)
        first = _drain(sim, sniffer)
        sniffer.received.clear()
        # Deliver the same broadcast probe through the medium (all
        # aliases overhear it as attached stations).
        sim.at(0.0, hunter.medium.transmit, sniffer, ProbeRequest(sniffer.mac))
        second = _drain(sim, sniffer)
        # Exactly one more burst (from the hunter), not one per alias.
        assert len(second) == 40
        assert len(first) == 40


class TestMimicDiscipline:
    def test_unknown_ssid_not_mimicked_but_learned(self, deployed):
        sim, hunter, sniffer = deployed
        hunter.receive(ProbeRequest(sniffer.mac, "NeverSeenNet"), sim.now)
        assert _drain(sim, sniffer) == []  # silence
        assert "NeverSeenNet" in hunter.db  # but harvested

    def test_known_ssid_still_mimicked(self, deployed):
        sim, hunter, sniffer = deployed
        known = hunter.db.ranked()[0].ssid
        hunter.receive(ProbeRequest(sniffer.mac, known), sim.now)
        responses = _drain(sim, sniffer)
        assert [r.ssid for r in responses] == [known]

    def test_mimic_unknown_optin(self, city, wigle):
        sim = Simulation(seed=3)
        medium = Medium(sim)
        hunter = StealthCityHunter(
            "02:aa:00:00:00:01",
            Point(0, 0),
            medium,
            wigle=wigle,
            heatmap=city.heatmap,
            mimic_unknown=True,
        )
        sniffer = Sniffer(where=Point(0, 0))
        medium.attach(sniffer, 100.0)
        sim.add_entity(hunter)
        sim.run(0.001)
        hunter.receive(ProbeRequest(sniffer.mac, "NeverSeenNet"), sim.now)
        responses = _drain(sim, sniffer)
        assert [r.ssid for r in responses] == ["NeverSeenNet"]


class TestDetectorEvasion:
    def _deploy_with_detectors(self, city, wigle, factory):
        config = ScenarioConfig(
            venue_name="University Canteen",
            mobility="static",
            people_per_min=25.0,
            duration=600.0,
            seed=4,
        )
        build = build_scenario(city, wigle, config, factory)
        center = build.venue.region.center
        passive = MultiSsidDetector("02:de:te:ct:00:01", center, build.medium)
        active = CanaryProbeDetector("02:de:te:ct:00:02", center, build.medium)
        build.sim.add_entity(passive)
        build.sim.add_entity(active)
        build.sim.run(630.0)
        return build, passive, active

    def test_stealth_evades_both_detectors(self, city, wigle):
        def factory(sim, medium, venue):
            return StealthCityHunter(
                "02:aa:00:00:00:01",
                venue.region.center,
                medium,
                wigle=wigle,
                heatmap=city.heatmap,
            )

        build, passive, active = self._deploy_with_detectors(city, wigle, factory)
        hunter = build.attacker
        # Not one of the hundreds of BSSIDs gets flagged.
        flagged = [a.mac for a in hunter._alias_by_ssid.values()
                   if passive.is_flagged(a.mac) or active.is_flagged(a.mac)]
        assert flagged == []
        assert not passive.is_flagged(hunter.mac)
        assert not active.is_flagged(hunter.mac)

    def test_stealth_still_hunts(self, city, wigle):
        """Evasion must not destroy the hit rate."""
        from repro.analysis.metrics import summarize
        from repro.experiments.attackers import make_cityhunter

        def stealth_factory(sim, medium, venue):
            return StealthCityHunter(
                "02:aa:00:00:00:01",
                venue.region.center,
                medium,
                wigle=wigle,
                heatmap=city.heatmap,
            )

        build_s, _, _ = self._deploy_with_detectors(city, wigle, stealth_factory)
        build_p, _, _ = self._deploy_with_detectors(
            city, wigle, make_cityhunter(wigle, city.heatmap)
        )
        stealth_hb = summarize(build_s.attacker.session).broadcast_hit_rate
        plain_hb = summarize(build_p.attacker.session).broadcast_hit_rate
        assert stealth_hb > 0.5 * plain_hb
