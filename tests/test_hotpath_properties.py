"""Property-based invariants for the selection / ranking hot paths.

Runs under `hypothesis <https://hypothesis.readthedocs.io>`_ when it is
installed (it is in the ``dev`` extra); in a bare environment every
property falls back to a seeded-random sweep so the invariants are never
silently unexercised.

The invariants, straight from the paper and the incremental-ranking
rewrite:

* ``pb_size + fb_size == burst_total`` survives any hit sequence;
* ghost pools never exceed ``ghost_size`` (20) and ghost picks never
  exceed ``ghost_picks``;
* an SSID is never offered twice to the same client (untried invariant);
* :meth:`WeightedSsidDatabase.ranked` stays equal to the
  ``sorted(..., key=(-weight, ssid))`` oracle after arbitrary add /
  bump / hit interleavings;
* the single-pass selection equals a from-scratch oracle implementation
  of the original double-scan algorithm, RNG draw for RNG draw;
* :class:`BufferedUniform` replays the exact scalar draw sequence.
"""

import numpy as np
import pytest

from repro.analysis.session import SentSsid
from repro.core.adaptive import AdaptiveSplit
from repro.core.config import CityHunterConfig
from repro.core.selection import select_for_client, send_origin
from repro.core.ssid_database import WeightedSsidDatabase
from repro.util.rng import BufferedUniform

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without dev extras
    HAVE_HYPOTHESIS = False

needs_hypothesis = pytest.mark.skipif(
    not HAVE_HYPOTHESIS, reason="hypothesis not installed"
)

SEED_SWEEP = list(range(12))


# -- reusable property drivers (shared by both harnesses) -----------------


def check_split_invariant(buckets):
    split = AdaptiveSplit()
    for bucket in buckets:
        split.on_hit(bucket)
        assert split.pb_size + split.fb_size == split.total == 40
        assert split.min_size <= split.pb_size <= split.total - split.min_size
        assert split.min_size <= split.fb_size <= split.total - split.min_size


def build_db(ops):
    """Apply (op, ssid, value) mutations; return db + mirrored dict."""
    db = WeightedSsidDatabase()
    mirror = {}
    for op, ssid, value in ops:
        if op == "add":
            db.add(ssid, value, origin="wigle")
            if ssid not in mirror or value > mirror[ssid]:
                mirror[ssid] = value
        elif op == "bump":
            db.bump_weight(ssid, value)
            if ssid in mirror:
                mirror[ssid] += value
        else:  # hit
            db.record_hit(ssid, time=abs(value), weight_bonus=value)
            if ssid in mirror and value:
                mirror[ssid] += value
    return db, mirror


def check_ranked_matches_oracle(ops):
    db, mirror = build_db(ops)
    got = [(e.ssid, e.weight) for e in db.ranked()]
    want = sorted(mirror.items(), key=lambda kv: (-kv[1], kv[0]))
    assert got == want
    assert len(db) == len(mirror)


def oracle_select(db, tried, split, config, rng, now=0.0):
    """The original (pre-single-pass) selection algorithm, verbatim:
    head scan, freshness scan, ghost picks, then a *full re-scan* of the
    ranking for the top-up.  The production path must match this output
    exactly, including its RNG consumption."""
    pb_list, fb_list, chosen = [], [], []
    chosen_ssids = set()

    def meta(entry, bucket):
        chosen_ssids.add(entry.ssid)
        return SentSsid(entry.ssid, origin=send_origin(entry, now), bucket=bucket)

    ranked = db.ranked()
    pb_quota = max(0, split.pb_size - config.ghost_picks)
    pb_ghost_pool = []
    for entry in ranked:
        if entry.ssid in tried:
            continue
        if len(pb_list) < pb_quota:
            pb_list.append(meta(entry, "pb"))
        elif len(pb_ghost_pool) < config.ghost_size:
            pb_ghost_pool.append(entry)
        else:
            break
    fb_quota = max(0, split.fb_size - config.ghost_picks)
    fb_ghost_pool = []
    for ssid in db.recent_hits():
        if ssid in tried or ssid in chosen_ssids:
            continue
        entry = db.get(ssid)
        if entry is None:
            continue
        if len(fb_list) < fb_quota:
            fb_list.append(meta(entry, "fb"))
        elif len(fb_ghost_pool) < config.ghost_size:
            fb_ghost_pool.append(entry)
        else:
            break
    chosen.extend(fb_list)
    chosen.extend(pb_list)
    if pb_ghost_pool and config.ghost_picks:
        pool = [e for e in pb_ghost_pool if e.ssid not in chosen_ssids]
        count = min(config.ghost_picks, len(pool))
        if count:
            for i in rng.choice(len(pool), size=count, replace=False):
                chosen.append(meta(pool[int(i)], "pb_ghost"))
    if fb_ghost_pool and config.ghost_picks:
        pool = [e for e in fb_ghost_pool if e.ssid not in chosen_ssids]
        count = min(config.ghost_picks, len(pool))
        if count:
            for i in rng.choice(len(pool), size=count, replace=False):
                chosen.append(meta(pool[int(i)], "fb_ghost"))
    if len(chosen) < config.burst_total:
        for entry in ranked:
            if len(chosen) >= config.burst_total:
                break
            if entry.ssid in tried or entry.ssid in chosen_ssids:
                continue
            chosen.append(meta(entry, "pb"))
    assert len(pb_ghost_pool) <= config.ghost_size
    assert len(fb_ghost_pool) <= config.ghost_size
    return chosen[: config.burst_total]


def make_selection_world(rng, n_ssids, n_hits, n_tried, pb_size):
    db = WeightedSsidDatabase()
    ssids = [f"net-{i:03d}" for i in range(n_ssids)]
    for s in ssids:
        db.add(s, float(rng.integers(0, 50)), origin="wigle")
    for _ in range(n_hits):
        s = ssids[int(rng.integers(0, n_ssids))]
        db.record_hit(s, time=float(rng.random() * 100), weight_bonus=1.0)
    n_tried = min(n_tried, n_ssids)
    tried = {ssids[int(i)] for i in rng.choice(n_ssids, size=n_tried, replace=False)}
    config = CityHunterConfig()
    split = AdaptiveSplit(initial_pb=pb_size)
    return db, tried, split, config


def check_selection_properties(seed, n_ssids, n_hits, n_tried, pb_size):
    rng = np.random.default_rng(seed)
    db, tried, split, config = make_selection_world(
        rng, n_ssids, n_hits, n_tried, pb_size
    )
    # Production and oracle must consume identically-seeded streams.
    draw_seed = int(rng.integers(0, 2**32))
    got = select_for_client(
        db, tried, split, config, np.random.default_rng(draw_seed)
    )
    want = oracle_select(
        db, tried, split, config, np.random.default_rng(draw_seed)
    )
    assert [(m.ssid, m.origin, m.bucket) for m in got] == [
        (m.ssid, m.origin, m.bucket) for m in want
    ]
    # Core burst invariants.
    assert len(got) <= config.burst_total
    names = [m.ssid for m in got]
    assert len(names) == len(set(names)), "duplicate SSID within a burst"
    assert not (set(names) & tried), "re-sent an already-tried SSID"
    for bucket in ("pb_ghost", "fb_ghost"):
        assert sum(m.bucket == bucket for m in got) <= config.ghost_picks
    untried_total = sum(s not in tried for s in (e.ssid for e in db.ranked()))
    assert len(got) == min(config.burst_total, untried_total)


def check_untried_across_bursts(seed):
    """Repeated select→mark-tried rounds never repeat an SSID."""
    rng = np.random.default_rng(seed)
    db, _, split, config = make_selection_world(rng, 150, 30, 0, 30)
    tried = set()
    seen = []
    for _ in range(6):
        burst = select_for_client(db, tried, split, config, rng)
        if not burst:
            break
        seen.extend(m.ssid for m in burst)
        tried.update(m.ssid for m in burst)
    assert len(seen) == len(set(seen))


def check_buffered_uniform(seed, n):
    a = np.random.default_rng(seed)
    b = np.random.default_rng(seed)
    buffered = BufferedUniform(a, block=7)
    assert [buffered.next() for _ in range(n)] == [b.random() for _ in range(n)]


# -- seeded-random harness (always runs) ----------------------------------


class TestSeededSweep:
    @pytest.mark.parametrize("seed", SEED_SWEEP)
    def test_split_invariant(self, seed):
        rng = np.random.default_rng(seed)
        buckets = [
            ["pb", "fb", "pb_ghost", "fb_ghost", "mimic"][int(i)]
            for i in rng.integers(0, 5, size=200)
        ]
        check_split_invariant(buckets)

    @pytest.mark.parametrize("seed", SEED_SWEEP)
    def test_ranked_matches_oracle(self, seed):
        rng = np.random.default_rng(seed)
        names = [f"s{i}" for i in range(30)]
        ops = []
        for _ in range(120):
            op = ["add", "bump", "hit"][int(rng.integers(0, 3))]
            ssid = names[int(rng.integers(0, len(names)))]
            value = float(rng.integers(-5, 20))
            ops.append((op, ssid, value))
        check_ranked_matches_oracle(ops)

    @pytest.mark.parametrize("seed", SEED_SWEEP)
    def test_selection_matches_oracle(self, seed):
        rng = np.random.default_rng(seed + 1000)
        check_selection_properties(
            seed,
            n_ssids=int(rng.integers(1, 200)),
            n_hits=int(rng.integers(0, 60)),
            n_tried=int(rng.integers(0, 40)),
            pb_size=int(rng.integers(4, 37)),
        )

    @pytest.mark.parametrize("seed", SEED_SWEEP)
    def test_untried_across_bursts(self, seed):
        check_untried_across_bursts(seed)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_buffered_uniform_bit_identical(self, seed):
        check_buffered_uniform(seed, n=40)

    def test_buffered_uniform_rejects_bad_block(self):
        with pytest.raises(ValueError):
            BufferedUniform(np.random.default_rng(0), block=0)


# -- hypothesis harness (richer search when available) --------------------


if HAVE_HYPOTHESIS:
    _ops = st.lists(
        st.tuples(
            st.sampled_from(["add", "bump", "hit"]),
            st.sampled_from([f"s{i}" for i in range(20)]),
            st.floats(
                min_value=-10, max_value=50, allow_nan=False, allow_infinity=False
            ),
        ),
        max_size=150,
    )

    class TestHypothesis:
        @needs_hypothesis
        @settings(max_examples=60, deadline=None)
        @given(
            st.lists(
                st.sampled_from(["pb", "fb", "pb_ghost", "fb_ghost", "x"]),
                max_size=300,
            )
        )
        def test_split_invariant(self, buckets):
            check_split_invariant(buckets)

        @needs_hypothesis
        @settings(max_examples=60, deadline=None)
        @given(_ops)
        def test_ranked_matches_oracle(self, ops):
            check_ranked_matches_oracle(ops)

        @needs_hypothesis
        @settings(max_examples=40, deadline=None)
        @given(
            seed=st.integers(min_value=0, max_value=2**31),
            n_ssids=st.integers(min_value=1, max_value=150),
            n_hits=st.integers(min_value=0, max_value=50),
            pb_size=st.integers(min_value=4, max_value=36),
        )
        def test_selection_matches_oracle(self, seed, n_ssids, n_hits, pb_size):
            n_tried = min(n_ssids, 20)
            check_selection_properties(seed, n_ssids, n_hits, n_tried, pb_size)

        @needs_hypothesis
        @settings(max_examples=25, deadline=None)
        @given(seed=st.integers(min_value=0, max_value=2**31))
        def test_untried_across_bursts(self, seed):
            check_untried_across_bursts(seed)

        @needs_hypothesis
        @settings(max_examples=25, deadline=None)
        @given(
            seed=st.integers(min_value=0, max_value=2**31),
            n=st.integers(min_value=1, max_value=64),
        )
        def test_buffered_uniform(self, seed, n):
            check_buffered_uniform(seed, n)
