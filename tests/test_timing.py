"""Tests for the active-scan timing model (repro.dot11.timing)."""

import pytest
from hypothesis import given, strategies as st

from repro.dot11.timing import DEFAULT_SCAN_TIMING, ScanTiming


class TestScanTiming:
    def test_default_ceiling_is_forty(self):
        assert DEFAULT_SCAN_TIMING.max_responses_per_scan == 40

    def test_ceiling_scales_with_window(self):
        timing = ScanTiming(min_channel_time=0.020, response_airtime=0.25e-3)
        assert timing.max_responses_per_scan == 80

    def test_ceiling_scales_with_airtime(self):
        timing = ScanTiming(min_channel_time=0.010, response_airtime=0.5e-3)
        assert timing.max_responses_per_scan == 20

    def test_responses_received_caps(self):
        t = DEFAULT_SCAN_TIMING
        assert t.responses_received(10) == 10
        assert t.responses_received(40) == 40
        assert t.responses_received(500) == 40

    def test_negative_sent_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_SCAN_TIMING.responses_received(-1)

    @pytest.mark.parametrize("field", ["min_channel_time", "response_airtime"])
    def test_nonpositive_parameters_rejected(self, field):
        kwargs = {field: 0.0}
        with pytest.raises(ValueError):
            ScanTiming(**kwargs)

    @given(st.integers(min_value=0, max_value=10_000))
    def test_property_received_never_exceeds_sent_or_ceiling(self, sent):
        t = DEFAULT_SCAN_TIMING
        got = t.responses_received(sent)
        assert got <= sent
        assert got <= t.max_responses_per_scan
        if sent <= t.max_responses_per_scan:
            assert got == sent
