"""The serve CLI surface and its observability artefacts.

``repro serve run`` must emit a standard ``repro.metrics/v1`` document
(so the whole ``obs`` toolchain works on serving runs) plus a valid
Prometheus exposition; ``repro serve bench`` must emit a
``repro.bench_serve/v1`` document the regression gate can compare
against the committed baseline — including the gated/informational
metric split this file pins.
"""

import json
import pathlib

import pytest

from repro.analysis.observability import load_metrics
from repro.cli import main
from repro.obs.bench import SERVE_SCHEMA, compare_bench, extract_bench_metrics

BASELINE = (
    pathlib.Path(__file__).parent.parent
    / "benchmarks"
    / "baselines"
    / "BENCH_serve.json"
)


def serve_doc(probes=(9000.0, 8000.0), shed=(0.0, 0.0)):
    grid = [
        {
            "clients": 20,
            "workers": w,
            "probes_per_s": p,
            "p50_us": 25.0,
            "p99_us": 200.0,
            "shed_fraction": s,
            "rank_cache_hit_rate": 0.9,
        }
        for w, p, s in zip((1, 4), probes, shed)
    ]
    return {
        "schema": SERVE_SCHEMA,
        "grid": grid,
        "max_probes_per_s": max(probes),
    }


class TestServeSchema:
    def test_gated_and_informational_split(self):
        metrics = extract_bench_metrics(serve_doc())
        assert metrics["probes_per_s@20cl/1wk"]["gated"] is True
        assert metrics["shed_fraction@20cl/4wk"]["gated"] is True
        assert metrics["shed_fraction@20cl/4wk"]["higher_better"] is False
        assert metrics["max_probes_per_s"]["gated"] is True
        assert metrics["p50_us@20cl/1wk"]["gated"] is False
        assert metrics["p99_us@20cl/4wk"]["gated"] is False
        assert metrics["rank_cache_hit_rate@20cl/1wk"]["gated"] is False

    def test_throughput_regression_fails_gate(self):
        report = compare_bench(
            serve_doc(probes=(4000.0, 3500.0)),
            serve_doc(probes=(9000.0, 8000.0)),
            tolerance=0.35,
        )
        assert not report["ok"]
        assert "probes_per_s@20cl/1wk" in report["regressions"]

    def test_new_shedding_fails_gate(self):
        report = compare_bench(
            serve_doc(shed=(0.05, 0.0)), serve_doc(), tolerance=0.35
        )
        assert not report["ok"]
        assert report["regressions"] == ["shed_fraction@20cl/1wk"]

    def test_committed_baseline_loads_and_self_compares(self):
        doc = json.loads(BASELINE.read_text())
        assert doc["schema"] == SERVE_SCHEMA
        report = compare_bench(doc, doc, tolerance=0.35)
        assert report["ok"]
        gated = [d for d in report["deltas"] if d["gated"]]
        assert len(gated) == 2 * len(doc["grid"]) + 1


class TestServeRunCli:
    @pytest.fixture(scope="class")
    def run_artifacts(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("serve_run") / "metrics.json"
        rc = main(
            [
                "serve",
                "run",
                "--clients",
                "10",
                "--events",
                "300",
                "--workers",
                "2",
                "--metrics-out",
                str(out),
            ]
        )
        assert rc == 0
        return out

    def test_metrics_doc_is_standard_schema(self, run_artifacts):
        doc = load_metrics(run_artifacts)  # raises on schema violations
        assert doc["run_count"] == 1
        run = doc["runs"][0]
        assert run["attacker"] == "serve"
        counters = doc["merged"]["counters"]
        assert counters['serve.events_total{"type":"broadcast"}'] > 0
        assert 'serve.decisions_total{"kind":"burst"}' in counters
        assert any(
            k.startswith("serve.select_latency_us")
            for k in doc["merged"]["histograms"]
        )
        gauges = doc["merged"]["gauges"]
        assert gauges["serve.db_size"] > 0
        assert gauges["serve.clients"] == 10

    def test_prom_exposition_written(self, run_artifacts):
        from repro.obs.prom import validate_prom_text

        prom = run_artifacts.with_suffix(".prom")
        assert prom.exists()
        assert validate_prom_text(prom.read_text()) > 0


class TestServeBenchCli:
    def test_bench_doc_gates_against_committed_baseline(
        self, tmp_path, capsys
    ):
        out = tmp_path / "BENCH_serve.json"
        rc = main(
            [
                "serve",
                "bench",
                "--clients",
                "8",
                "--workers",
                "1",
                "--events",
                "200",
                "--json",
                str(out),
            ]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == SERVE_SCHEMA
        capsys.readouterr()
        # Different grids compare without regressing (grid changes must
        # not brick the gate) — points only in one doc stay informational.
        # Tolerance is deliberately loose here: this unit test checks
        # plumbing on a tiny stream; the real 35 % gate runs in CI's
        # serve-smoke job against the full benchmark grid.
        rc = main(
            [
                "obs",
                "bench",
                "--current",
                str(out),
                "--baseline",
                str(BASELINE),
                "--tolerance",
                "0.9",
            ]
        )
        printed = capsys.readouterr().out
        assert "only in baseline" in printed
        assert rc == 0
