"""Tests for propagation models (repro.dot11.propagation)."""

import numpy as np
import pytest

from repro.dot11.frames import ProbeRequest
from repro.dot11.medium import Medium
from repro.dot11.propagation import DiscPropagation, LogDistanceShadowing
from repro.geo.point import Point
from repro.sim.simulation import Simulation


class TestDiscPropagation:
    def test_inside_always_delivered(self):
        rng = np.random.default_rng(0)
        prop = DiscPropagation()
        assert prop.delivered(10.0, 50.0, rng)
        assert prop.delivered(50.0, 50.0, rng)

    def test_outside_never_delivered(self):
        rng = np.random.default_rng(0)
        assert not DiscPropagation().delivered(50.001, 50.0, rng)


class TestLogDistanceShadowing:
    def test_validation(self):
        with pytest.raises(ValueError):
            LogDistanceShadowing(exponent=0.0)
        with pytest.raises(ValueError):
            LogDistanceShadowing(sigma_db=0.0)

    def test_probability_monotone_in_distance(self):
        prop = LogDistanceShadowing()
        probs = [prop._delivery_probability(d, 50.0) for d in (5, 25, 50, 75, 150)]
        assert probs == sorted(probs, reverse=True)

    def test_half_probability_at_nominal_range(self):
        prop = LogDistanceShadowing()
        assert prop._delivery_probability(50.0, 50.0) == pytest.approx(0.5)

    def test_certain_at_zero_distance(self):
        prop = LogDistanceShadowing()
        assert prop._delivery_probability(0.0, 50.0) == 1.0

    def test_sharper_with_higher_exponent(self):
        soft = LogDistanceShadowing(exponent=2.0, sigma_db=4.0)
        sharp = LogDistanceShadowing(exponent=6.0, sigma_db=4.0)
        # At 1.5x the range, the sharp model is far less likely to deliver.
        assert sharp._delivery_probability(75.0, 50.0) < soft._delivery_probability(
            75.0, 50.0
        )

    def test_empirical_rates_match_probabilities(self):
        rng = np.random.default_rng(1)
        prop = LogDistanceShadowing()
        for d in (25.0, 50.0, 90.0):
            want = prop._delivery_probability(d, 50.0)
            got = np.mean([prop.delivered(d, 50.0, rng) for _ in range(4000)])
            assert got == pytest.approx(want, abs=0.03)


class TestMediumWithShadowing:
    def test_soft_edge_partial_delivery(self):
        sim = Simulation(seed=5)
        medium = Medium(sim, propagation=LogDistanceShadowing())

        class St:
            def __init__(self, mac, pos):
                self.mac = mac
                self.pos = pos
                self.received = []

            def position_at(self, t):
                return self.pos

            def receive(self, frame, t):
                self.received.append(frame)

        a = St("02:00:00:00:00:01", Point(0, 0))
        edge = St("02:00:00:00:00:02", Point(50, 0))  # exactly at range
        medium.attach(a, 50.0)
        medium.attach(edge, 50.0)
        for _ in range(400):
            medium.transmit(a, ProbeRequest(a.mac))
        sim.run(10.0)
        # Roughly half get through at the nominal edge.
        assert 120 < len(edge.received) < 280
