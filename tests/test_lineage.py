"""Tests for causal frame-lineage tracing (repro.obs.lineage).

Covers the unit mechanics (context threading, the ring cap, the frame
map), the Chrome trace-event export contract (required keys, round
trip), and the end-to-end acceptance path: a real hunt run with lineage
on reconstructs the probe -> burst -> response -> hit chain, and the
``repro obs lineage`` CLI prints it.
"""

import json

import pytest

from repro.cli import main
from repro.experiments.attackers import make_cityhunter
from repro.experiments.calibration import venue_profile
from repro.experiments.runner import run_experiment
from repro.obs.lineage import (
    FRAME_MAP_CAP,
    TRACE_EVENT_REQUIRED_KEYS,
    LineageTrace,
    chrome_trace_doc,
    client_traces,
    hunt_story,
    load_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)


class _Frame:
    def __init__(self, kind, ssid=None, dst=None):
        self.kind = kind
        self.ssid = ssid
        self.dst = dst


class TestLineageTrace:
    def test_disabled_by_default(self):
        assert LineageTrace().enabled is False

    def test_root_event_is_its_own_trace(self):
        ln = LineageTrace(enabled=True)
        ctx = ln.event(1.0, "probe", "aa")
        node, trace = ctx
        assert node == trace
        rec = ln.records()[0]
        assert rec["parent"] is None
        assert rec["trace"] == trace

    def test_parent_defaults_to_current(self):
        ln = LineageTrace(enabled=True)
        root = ln.event(1.0, "rx:probe_req", "attacker")
        with ln.push(root):
            child = ln.event(1.0, "burst_select", "attacker")
        after = ln.event(2.0, "other", "attacker")
        recs = {r["id"]: r for r in ln.records()}
        assert recs[child[0]]["parent"] == root[0]
        assert recs[child[0]]["trace"] == root[1]
        # push scope ended: the later event is a new root again.
        assert recs[after[0]]["parent"] is None

    def test_push_nests_and_restores(self):
        ln = LineageTrace(enabled=True)
        a = ln.event(0.0, "a", "x")
        with ln.push(a):
            b = ln.event(0.0, "b", "x")
            with ln.push(b):
                assert ln.current == b
            assert ln.current == a
        assert ln.current is None

    def test_frame_sent_then_delivered_chains(self):
        ln = LineageTrace(enabled=True)
        frame = _Frame("probe_req", ssid=None, dst="ff:ff:ff:ff:ff:ff")
        tx = ln.frame_sent(1.0, frame, "phone")
        rx = ln.delivered(1.001, frame, "attacker")
        recs = {r["id"]: r for r in ln.records()}
        assert recs[rx[0]]["parent"] == tx[0]
        assert recs[rx[0]]["trace"] == tx[1]
        assert recs[tx[0]]["kind"] == "tx:probe_req"
        assert recs[rx[0]]["kind"] == "rx:probe_req"
        assert recs[tx[0]]["dst"] == "ff:ff:ff:ff:ff:ff"

    def test_frame_attrs_auto_extracted(self):
        ln = LineageTrace(enabled=True)
        frame = _Frame("probe_resp", ssid="CoffeeShop")
        tx = ln.frame_sent(2.0, frame, "ap")
        rec = ln.records()[-1]
        assert rec["ssid"] == "CoffeeShop"
        assert tx == ln.frame_ctx(frame)

    def test_unknown_frame_delivery_is_root(self):
        ln = LineageTrace(enabled=True)
        rx = ln.delivered(1.0, _Frame("beacon"), "phone")
        rec = ln.records()[0]
        assert rec["parent"] is None
        assert rec["trace"] == rx[0]

    def test_ring_cap_and_dropped(self):
        ln = LineageTrace(enabled=True, max_records=4)
        for i in range(7):
            ln.event(float(i), "e", "x")
        assert len(ln) == 4
        assert ln.dropped == 3
        # Oldest evicted: the retained records are the last four.
        assert [r["time"] for r in ln.records()] == [3.0, 4.0, 5.0, 6.0]

    def test_bad_cap_rejected(self):
        with pytest.raises(ValueError):
            LineageTrace(enabled=True, max_records=0)

    def test_frame_map_is_bounded(self):
        ln = LineageTrace(enabled=True)
        frames = [_Frame("probe_req") for _ in range(FRAME_MAP_CAP + 10)]
        for f in frames:
            ln.frame_sent(0.0, f, "x")
        assert len(ln._frame_ctx) == FRAME_MAP_CAP
        # The newest frame is still resolvable; the oldest fell out.
        assert ln.frame_ctx(frames[-1]) is not None
        assert ln.frame_ctx(frames[0]) is None


class TestChromeTraceExport:
    def _records(self):
        ln = LineageTrace(enabled=True)
        frame = _Frame("probe_req", dst="ff:ff:ff:ff:ff:ff")
        ln.frame_sent(1.0, frame, "phone")
        rx = ln.delivered(1.001, frame, "attacker")
        with ln.push(rx):
            resp = _Frame("probe_resp", ssid="Net", dst="phone")
            ln.frame_sent(1.002, resp, "attacker")
        return ln.records()

    def test_required_keys_present(self):
        doc = chrome_trace_doc(self._records())
        assert doc["traceEvents"]
        for event in doc["traceEvents"]:
            for key in TRACE_EVENT_REQUIRED_KEYS:
                assert key in event, f"{event} missing {key}"
        validate_chrome_trace(doc)

    def test_complete_events_have_dur(self):
        doc = chrome_trace_doc(self._records())
        for event in doc["traceEvents"]:
            if event["ph"] == "X":
                assert "dur" in event

    def test_flow_arrows_along_parent_links(self):
        doc = chrome_trace_doc(self._records())
        phases = [e["ph"] for e in doc["traceEvents"]]
        # Two parent links (rx<-tx, resp<-rx) -> two s/f pairs.
        assert phases.count("s") == 2
        assert phases.count("f") == 2

    def test_one_tid_per_actor(self):
        doc = chrome_trace_doc(self._records())
        names = {}
        for e in doc["traceEvents"]:
            if e["ph"] == "M" and e["name"] == "thread_name":
                names[e["args"]["name"]] = e["tid"]
        assert set(names) == {"phone", "attacker"}
        assert names["phone"] != names["attacker"]

    def test_timestamps_are_sim_microseconds(self):
        doc = chrome_trace_doc(self._records())
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert xs[0]["ts"] == 1_000_000
        assert xs[1]["ts"] == 1_001_000

    def test_write_load_roundtrip(self, tmp_path):
        records = self._records()
        path = write_chrome_trace(records, tmp_path / "t" / "lineage.json")
        assert path.is_file()
        assert load_chrome_trace(path) == records

    def test_validate_rejects_missing_keys(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": []})
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "X", "ts": 0, "pid": 1, "tid": 1}]}
            )
        with pytest.raises(ValueError):
            # Complete event without dur.
            validate_chrome_trace(
                {
                    "traceEvents": [
                        {"ph": "X", "ts": 0, "pid": 1, "tid": 1, "name": "x"}
                    ]
                }
            )


class TestStoryReconstruction:
    def _hunt_records(self):
        """A hand-built probe -> burst -> response -> hit chain."""
        ln = LineageTrace(enabled=True)
        probe = _Frame("probe_req", dst="ff:ff:ff:ff:ff:ff")
        ln.frame_sent(1.0, probe, "mac-client")
        rx = ln.delivered(1.01, probe, "mac-ap")
        with ln.push(rx):
            sel = ln.event(
                1.01, "burst_select", "mac-ap", client="mac-client", size=1
            )
            with ln.push(sel):
                resp = _Frame("probe_resp", ssid="Home", dst="mac-client")
                ln.frame_sent(1.02, resp, "mac-ap")
        rx2 = ln.delivered(1.03, resp, "mac-client")
        with ln.push(rx2):
            ln.event(1.04, "hit", "mac-ap", client="mac-client", ssid="Home")
        # Unrelated noise from another client.
        other = _Frame("probe_req")
        ln.frame_sent(5.0, other, "mac-other")
        return ln.records()

    def test_client_traces_finds_involvement(self):
        roots = client_traces(self._hunt_records(), "mac-client")
        assert len(roots) == 1
        assert roots[0]["actor"] == "mac-client"

    def test_story_contains_full_chain(self):
        story = hunt_story(self._hunt_records(), "mac-client")
        for token in (
            "tx:probe_req",
            "rx:probe_req",
            "burst_select",
            "tx:probe_resp",
            "rx:probe_resp",
            "hit",
        ):
            assert token in story
        assert "HIT at t=1.0400" in story
        assert "mac-other" not in story

    def test_story_for_unknown_mac(self):
        story = hunt_story(self._hunt_records(), "mac-nobody")
        assert "no lineage records involve" in story

    def test_story_without_hit(self):
        ln = LineageTrace(enabled=True)
        ln.frame_sent(1.0, _Frame("probe_req"), "mac-x")
        story = hunt_story(ln.records(), "mac-x")
        assert "no hit recorded" in story


@pytest.fixture(scope="module")
def lineage_records(city, wigle, tmp_path_factory):
    """One real cityhunter run with lineage on, exported to disk.

    run_experiment builds its own Simulation, so the env var is the
    switch — scoped to the fixture body and popped afterwards.
    """
    import os

    os.environ["REPRO_LINEAGE"] = "1"
    try:
        result = run_experiment(
            city,
            wigle,
            make_cityhunter(wigle, city.heatmap),
            venue_profile("canteen"),
            duration=200.0,
            seed=5,
        )
    finally:
        os.environ.pop("REPRO_LINEAGE", None)
    lineage = result.attacker.sim.lineage
    assert lineage.enabled
    path = tmp_path_factory.mktemp("lineage") / "lineage.json"
    write_chrome_trace(lineage.records(), path)
    return result, path


class TestEndToEnd:
    def test_exported_trace_validates(self, lineage_records):
        _, path = lineage_records
        doc = json.loads(path.read_text())
        validate_chrome_trace(doc)

    def test_hit_chain_reconstructed(self, lineage_records):
        """A hit client's story must contain the full causal chain the
        paper describes: broadcast probe -> delivery -> burst selection
        -> probe response -> association -> hit."""
        result, path = lineage_records
        records = load_chrome_trace(path)
        hit_macs = [
            mac
            for mac, client in result.session.clients.items()
            if client.connected
        ]
        assert hit_macs, "scenario produced no hits — cannot test lineage"
        mac = sorted(hit_macs)[0]
        story = hunt_story(records, mac)
        for token in (
            "tx:probe_req",
            "rx:probe_req",
            "burst_select",
            "tx:probe_resp",
            "rx:probe_resp",
            "tx:assoc_req",
            "hit",
            "HIT at t=",
        ):
            assert token in story, f"story for {mac} lacks {token}"

    def test_burst_select_records_candidates(self, lineage_records):
        _, path = lineage_records
        records = load_chrome_trace(path)
        selects = [r for r in records if r["kind"] == "burst_select"]
        assert selects
        sample = selects[0]
        assert sample["size"] == len(sample["candidates"])
        for cand in sample["candidates"]:
            assert {"ssid", "bucket", "origin"} <= set(cand)

    def test_cli_prints_story(self, lineage_records, capsys):
        result, path = lineage_records
        mac = sorted(
            m for m, c in result.session.clients.items() if c.connected
        )[0]
        rc = main(["obs", "lineage", mac, "--trace", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert f"hunt story for {mac}" in out
        assert "HIT at t=" in out

    def test_run_cli_exports_trace(self, tmp_path, capsys):
        out = tmp_path / "lineage.json"
        rc = main(
            ["run", "--attacker", "karma", "--venue", "canteen",
             "--duration", "60", "--seed", "3", "--lineage-out", str(out)]
        )
        stdout = capsys.readouterr().out
        assert rc == 0
        assert "lineage records" in stdout
        doc = json.loads(out.read_text())
        validate_chrome_trace(doc)
        assert load_chrome_trace(out)

    def test_cli_missing_trace(self, tmp_path, capsys):
        rc = main(
            ["obs", "lineage", "aa:bb:cc:dd:ee:ff", "--trace",
             str(tmp_path / "nope.json")]
        )
        assert rc == 1
        assert "no lineage trace" in capsys.readouterr().err
