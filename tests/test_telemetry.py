"""Tests for live executor telemetry (repro.obs.telemetry).

The acceptance case from the issue rides at the bottom: a synthetic
silent worker (heartbeat file whose newest record is old and not done)
must be flagged by ``repro obs watch --once`` with a non-zero exit.
"""

import json
import time

import pytest

from repro.cli import main
from repro.obs.telemetry import (
    DEFAULT_INTERVAL_S,
    HeartbeatWriter,
    clear_heartbeats,
    heartbeat_dir,
    maybe_heartbeat,
    read_heartbeats,
    render_watch,
    resolve_heartbeat_interval,
    set_current_spec,
    watch_snapshot,
)


class TestInterval:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_HEARTBEAT", raising=False)
        assert resolve_heartbeat_interval() is None

    def test_truthy_uses_default(self):
        assert resolve_heartbeat_interval("1") == DEFAULT_INTERVAL_S
        assert resolve_heartbeat_interval("on") == DEFAULT_INTERVAL_S

    def test_numeric_is_seconds(self):
        assert resolve_heartbeat_interval("2.5") == 2.5

    def test_garbage_and_nonpositive_off(self):
        assert resolve_heartbeat_interval("soon") is None
        assert resolve_heartbeat_interval("0") is None
        assert resolve_heartbeat_interval("-3") is None

    def test_nan_and_whitespace_off(self):
        # float("nan") parses but is not > 0 — must not arm a writer
        # with a NaN sleep interval.
        assert resolve_heartbeat_interval("nan") is None
        assert resolve_heartbeat_interval("   ") is None
        assert resolve_heartbeat_interval("-0.0") is None


class TestHeartbeatWriter:
    def test_writes_enter_and_done(self, tmp_path):
        progress = lambda: (150.0, 7)
        with HeartbeatWriter(
            "spec-a", 300.0, progress, interval_s=60.0, base_dir=tmp_path
        ) as hb:
            pass
        records = read_heartbeats(hb.path)
        assert len(records) == 2
        first, last = records
        assert first["spec"] == "spec-a"
        assert first["fraction"] == 0.5
        assert first["hits"] == 7
        assert first["done"] is False
        assert last["done"] is True
        assert last["seq"] == 1

    def test_periodic_beats(self, tmp_path):
        with HeartbeatWriter(
            "spec-b", 10.0, lambda: (1.0, 0), interval_s=0.05,
            base_dir=tmp_path,
        ) as hb:
            time.sleep(0.3)
        records = read_heartbeats(hb.path)
        assert len(records) >= 4  # enter + several beats + done

    def test_fraction_capped_at_one(self, tmp_path):
        with HeartbeatWriter(
            "spec-c", 100.0, lambda: (130.0, 1), interval_s=60.0,
            base_dir=tmp_path,
        ) as hb:
            pass
        assert all(r["fraction"] == 1.0 for r in read_heartbeats(hb.path))

    def test_torn_progress_reuses_last(self, tmp_path):
        calls = {"n": 0}

        def progress():
            calls["n"] += 1
            if calls["n"] > 1:
                raise RuntimeError("dictionary changed size during iteration")
            return (42.0, 3)

        with HeartbeatWriter(
            "spec-d", 100.0, progress, interval_s=60.0, base_dir=tmp_path
        ) as hb:
            pass
        records = read_heartbeats(hb.path)
        assert records[-1]["sim_time"] == 42.0
        assert records[-1]["hits"] == 3

    def test_maybe_heartbeat_gates_on_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_HEARTBEAT", raising=False)
        ctx = maybe_heartbeat("x", 10.0, lambda: (0.0, 0))
        assert not isinstance(ctx, HeartbeatWriter)
        monkeypatch.setenv("REPRO_HEARTBEAT", "0.5")
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path))
        ctx = maybe_heartbeat("x", 10.0, lambda: (0.0, 0))
        assert isinstance(ctx, HeartbeatWriter)
        assert ctx.interval_s == 0.5

    def test_maybe_heartbeat_uses_current_spec_label(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_HEARTBEAT", "1")
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path))
        set_current_spec("cityhunter/canteen:5")
        try:
            ctx = maybe_heartbeat(None, 10.0, lambda: (0.0, 0))
        finally:
            set_current_spec(None)
        assert ctx.spec_id == "cityhunter/canteen:5"

    def test_rotation_on_reentry(self, tmp_path):
        """A worker starting its next spec moves the previous file to
        ``.old`` so the watcher row only describes the current run."""
        kwargs = dict(interval_s=60.0, base_dir=tmp_path, file_stem="worker-1")
        with HeartbeatWriter("spec-1", 10.0, lambda: (5.0, 1), **kwargs) as hb:
            pass
        with HeartbeatWriter("spec-2", 10.0, lambda: (0.0, 0), **kwargs) as hb:
            pass
        records = read_heartbeats(hb.path)
        assert {r["spec"] for r in records} == {"spec-2"}
        old = hb.path.with_name(hb.path.name + ".old")
        assert {r["spec"] for r in read_heartbeats(old)} == {"spec-1"}
        # rows come only from the live file
        rows = watch_snapshot(tmp_path / "telemetry", now=time.time())
        assert len(rows) == 1 and rows[0]["spec"] == "spec-2"
        clear_heartbeats(tmp_path)
        assert not old.exists()

    def test_extra_fields_merged_into_records(self, tmp_path):
        with HeartbeatWriter(
            "spec-e", 10.0, lambda: (1.0, 0), interval_s=60.0,
            base_dir=tmp_path, extra=lambda: {"epoch": 3, "epochs": 12},
        ) as hb:
            pass
        records = read_heartbeats(hb.path)
        assert all(r["epoch"] == 3 and r["epochs"] == 12 for r in records)

    def test_extra_torn_read_skipped(self, tmp_path):
        def extra():
            raise RuntimeError("dictionary changed size during iteration")

        with HeartbeatWriter(
            "spec-f", 10.0, lambda: (1.0, 0), interval_s=60.0,
            base_dir=tmp_path, extra=extra,
        ) as hb:
            pass
        records = read_heartbeats(hb.path)
        assert records and all("epoch" not in r for r in records)


def _write_worker(directory, pid, wall, done=False, spec="spec-x",
                  fraction=0.5):
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"worker-{pid}.jsonl"
    record = {
        "wall": wall,
        "pid": pid,
        "spec": spec,
        "seq": 0,
        "sim_time": fraction * 300.0,
        "fraction": fraction,
        "hits": 4,
        "done": done,
    }
    with open(path, "a") as fh:
        fh.write(json.dumps(record) + "\n")
    return path


class TestWatcher:
    def test_snapshot_rows(self, tmp_path):
        now = 1000.0
        _write_worker(tmp_path, 11, now - 5.0)
        _write_worker(tmp_path, 12, now - 120.0)
        _write_worker(tmp_path, 13, now - 120.0, done=True)
        rows = watch_snapshot(tmp_path, stall_after_s=60.0, now=now)
        by_pid = {r["pid"]: r for r in rows}
        assert by_pid[11]["stalled"] is False
        assert by_pid[12]["stalled"] is True
        assert by_pid[13]["stalled"] is False  # done workers never stall
        assert by_pid[13]["done"] is True

    def test_torn_final_line_skipped(self, tmp_path):
        path = _write_worker(tmp_path, 21, 10.0)
        with open(path, "a") as fh:
            fh.write('{"wall": 99, "truncat')  # crashed mid-write
        records = read_heartbeats(path)
        assert len(records) == 1
        assert records[0]["wall"] == 10.0

    def test_empty_dir(self, tmp_path):
        assert watch_snapshot(tmp_path, now=0.0) == []
        assert "no heartbeat files" in render_watch([], 60.0)

    def test_render_flags_stall(self, tmp_path):
        now = 1000.0
        _write_worker(tmp_path, 31, now - 500.0)
        rows = watch_snapshot(tmp_path, stall_after_s=60.0, now=now)
        out = render_watch(rows, 60.0)
        assert "STALLED" in out
        assert "1 worker(s) stalled" in out

    def test_clear_heartbeats(self, tmp_path):
        _write_worker(tmp_path / "telemetry", 41, 0.0)
        clear_heartbeats(tmp_path)
        assert list((tmp_path / "telemetry").glob("worker-*.jsonl")) == []

    def test_heartbeat_dir_under_artifacts(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path))
        assert heartbeat_dir() == tmp_path / "telemetry"


class TestWatchCli:
    def test_once_flags_silent_worker(self, tmp_path, capsys):
        """Acceptance: a worker that went silent mid-run is flagged and
        ``obs watch --once`` exits non-zero."""
        _write_worker(tmp_path, 51, time.time() - 3600.0)
        rc = main(
            ["obs", "watch", "--once", "--dir", str(tmp_path),
             "--stall-after", "60"]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "STALLED" in out

    def test_once_healthy_exits_zero(self, tmp_path, capsys):
        _write_worker(tmp_path, 52, time.time() - 1.0)
        _write_worker(tmp_path, 53, time.time() - 3600.0, done=True)
        rc = main(
            ["obs", "watch", "--once", "--dir", str(tmp_path),
             "--stall-after", "60"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "running" in out
        assert "done" in out


def _write_shard(directory, shard, walls, epoch=0, epochs=12, done=False):
    """A shard heartbeat file with one record per wall timestamp."""
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"shard-{shard}.jsonl"
    with open(path, "w") as fh:
        for seq, wall in enumerate(walls):
            fh.write(json.dumps({
                "wall": wall, "pid": 99, "spec": f"shards:{shard}",
                "seq": seq, "sim_time": 10.0 * seq, "fraction": 0.1 * seq,
                "hits": 0, "done": done and seq == len(walls) - 1,
                "epoch": epoch, "epochs": epochs,
            }) + "\n")
    return path


def _write_epochs(directory, shard, epochs, phase_s, t0=1000.0,
                  out_records=4):
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"epochs-{shard}.jsonl"
    t = t0
    with open(path, "w") as fh:
        for epoch in range(epochs):
            for phase in ("a", "b"):
                t += phase_s
                fh.write(json.dumps({
                    "wall": t, "shard": shard, "shards": 2, "epoch": epoch,
                    "epochs": epochs, "phase": phase, "wall_s": phase_s,
                    "barrier_s": 0.01,
                    "in": {}, "out": {str(1 - shard): out_records},
                    "out_bytes": out_records * 16,
                }) + "\n")
    return path


class TestZeroEpochStall:
    def test_heartbeating_but_wedged_shard_flagged(self, tmp_path):
        """A shard whose heartbeats keep coming but that never finished
        epoch 0 past the stall threshold counts as stalled."""
        now = 1000.0
        _write_shard(tmp_path, 0, [now - 300.0, now - 150.0, now - 1.0],
                     epoch=0)
        rows = watch_snapshot(tmp_path, stall_after_s=60.0, now=now)
        assert rows[0]["stalled"] is True

    def test_young_zero_epoch_shard_not_flagged(self, tmp_path):
        now = 1000.0
        _write_shard(tmp_path, 0, [now - 10.0, now - 1.0], epoch=0)
        rows = watch_snapshot(tmp_path, stall_after_s=60.0, now=now)
        assert rows[0]["stalled"] is False

    def test_progressing_shard_not_flagged(self, tmp_path):
        now = 1000.0
        _write_shard(tmp_path, 0, [now - 300.0, now - 1.0], epoch=5)
        rows = watch_snapshot(tmp_path, stall_after_s=60.0, now=now)
        assert rows[0]["stalled"] is False
        assert "5/12" in render_watch(rows, 60.0)


class TestFleetSnapshot:
    def test_healthy_fleet(self, tmp_path):
        from repro.obs.telemetry import fleet_snapshot, render_top

        now = 1012.5
        _write_worker(tmp_path, 71, now - 2.0)
        _write_shard(tmp_path, 0, [now - 2.0], epoch=6)
        _write_shard(tmp_path, 1, [now - 2.0], epoch=6)
        _write_epochs(tmp_path, 0, epochs=6, phase_s=0.5)
        _write_epochs(tmp_path, 1, epochs=6, phase_s=0.6)
        doc = fleet_snapshot(tmp_path, stall_after_s=60.0, now=now)
        health = doc["health"]
        assert health["healthy"] is True
        assert health["problems"] == []
        assert health["straggler_ratio"] == pytest.approx(0.6 / 0.55)
        assert health["handoff_imbalance"] == pytest.approx(1.0)
        assert health["epochs_per_s"] > 0
        assert doc["epochs"]["0"]["epochs_done"] == 6
        # 6 epochs x 2 phases x 4 records per batch
        assert doc["epochs"]["0"]["handoff_out_records"] == 48
        out = render_top(doc)
        assert "health: OK" in out
        assert "1 worker(s), 2 shard(s)" in out

    def test_straggler_flagged(self, tmp_path):
        from repro.obs.telemetry import fleet_snapshot, render_top

        now = 2000.0
        _write_shard(tmp_path, 0, [now - 1.0], epoch=4)
        _write_shard(tmp_path, 1, [now - 1.0], epoch=4)
        _write_epochs(tmp_path, 0, epochs=4, phase_s=0.1)
        _write_epochs(tmp_path, 1, epochs=4, phase_s=1.0)  # 10x slower
        # at two shards max/median tops out just under 2 (median is the
        # midpoint), so gate tighter than the 4x default
        doc = fleet_snapshot(
            tmp_path, stall_after_s=3600.0, now=now, straggler_threshold=1.5
        )
        assert doc["health"]["healthy"] is False
        assert any("straggler" in p for p in doc["health"]["problems"])
        assert "health: DEGRADED" in render_top(doc)

    def test_handoff_imbalance_flagged(self, tmp_path):
        from repro.obs.telemetry import fleet_snapshot

        now = 2000.0
        _write_epochs(tmp_path, 0, epochs=4, phase_s=0.5, out_records=0)
        _write_epochs(tmp_path, 1, epochs=4, phase_s=0.5, out_records=100)
        doc = fleet_snapshot(
            tmp_path, stall_after_s=3600.0, now=now, imbalance_threshold=1.5
        )
        assert any("imbalance" in p for p in doc["health"]["problems"])

    def test_truncated_epoch_lines_tolerated(self, tmp_path):
        from repro.obs.telemetry import fleet_snapshot

        path = _write_epochs(tmp_path, 0, epochs=3, phase_s=0.5)
        with open(path, "a") as fh:
            fh.write('{"wall": 1, "shard": 0, "epoch": 3, "pha')
        (tmp_path / "epochs-1.jsonl").write_text("not json at all\n")
        doc = fleet_snapshot(tmp_path, stall_after_s=3600.0, now=2000.0)
        # the torn line and the garbage file both vanish, stats survive
        assert list(doc["epochs"]) == ["0"]
        assert doc["epochs"]["0"]["epochs_done"] == 3

    def test_empty_dir_is_healthy(self, tmp_path):
        from repro.obs.telemetry import fleet_snapshot, render_top

        doc = fleet_snapshot(tmp_path, now=0.0)
        assert doc["health"]["healthy"] is True
        assert "no heartbeat files yet" in render_top(doc)


def _write_serve(directory, pid, walls, committed=None, events=800,
                 shed_fraction=0.0, queue_depth=3, queue_max=256,
                 done=False):
    """A serve heartbeat file with one record per wall timestamp."""
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"serve-{pid}.jsonl"
    committed = committed or [events] * len(walls)
    with open(path, "w") as fh:
        for seq, (wall, c) in enumerate(zip(walls, committed)):
            last = seq == len(walls) - 1
            fh.write(json.dumps({
                "wall": wall, "pid": pid, "spec": "serve", "seq": seq,
                "sim_time": float(c), "fraction": c / max(1, events),
                "hits": 0, "done": done and last, "kind": "serve",
                "workers": 4, "events": events, "committed": c,
                "probes_per_s": 12000.0, "queue_depth": queue_depth,
                "queue_max": queue_max, "shed": 0,
                "shed_fraction": shed_fraction, "p50_us": 40.0,
                "p99_us": 210.0, "worker_restarts": 0,
            }) + "\n")
    return path


class TestServeInterval:
    def test_off_by_default(self, monkeypatch):
        from repro.obs.telemetry import resolve_serve_heartbeat_interval

        monkeypatch.delenv("REPRO_SERVE_HEARTBEAT", raising=False)
        assert resolve_serve_heartbeat_interval() is None

    def test_separate_from_executor_heartbeats(self, monkeypatch):
        from repro.obs.telemetry import resolve_serve_heartbeat_interval

        # Executor heartbeats on must not arm serve heartbeats.
        monkeypatch.setenv("REPRO_HEARTBEAT", "1")
        monkeypatch.delenv("REPRO_SERVE_HEARTBEAT", raising=False)
        assert resolve_serve_heartbeat_interval() is None
        monkeypatch.setenv("REPRO_SERVE_HEARTBEAT", "0.5")
        assert resolve_serve_heartbeat_interval() == 0.5
        monkeypatch.setenv("REPRO_SERVE_HEARTBEAT", "on")
        assert resolve_serve_heartbeat_interval() == DEFAULT_INTERVAL_S


class TestServeWatchRows:
    def test_row_carries_serve_fields(self, tmp_path):
        now = 1000.0
        _write_serve(tmp_path, 61, [now - 1.0], committed=[500])
        rows = watch_snapshot(tmp_path, stall_after_s=60.0, now=now)
        row = rows[0]
        assert row["kind"] == "serve"
        assert row["workers"] == 4
        assert row["probes_per_s"] == 12000.0
        assert row["overloaded"] is False
        assert row["stalled"] is False
        assert "serving" in render_watch(rows, 60.0)

    def test_shedding_service_flagged_overloaded(self, tmp_path):
        now = 1000.0
        _write_serve(tmp_path, 62, [now - 1.0], committed=[500],
                     shed_fraction=0.2)
        rows = watch_snapshot(tmp_path, stall_after_s=60.0, now=now)
        assert rows[0]["overloaded"] is True
        assert "OVERLOADED (shed 20.0%)" in render_watch(rows, 60.0)

    def test_full_queue_flagged_overloaded(self, tmp_path):
        now = 1000.0
        _write_serve(tmp_path, 63, [now - 1.0], committed=[500],
                     queue_depth=256, queue_max=256)
        rows = watch_snapshot(tmp_path, stall_after_s=60.0, now=now)
        assert rows[0]["overloaded"] is True

    def test_frozen_commits_with_backlog_is_a_stall(self, tmp_path):
        """A wedged sequencer keeps heartbeating; commits frozen with a
        backlog past the threshold must still read as stalled."""
        now = 1000.0
        _write_serve(
            tmp_path, 64,
            [now - 300.0, now - 150.0, now - 1.0],
            committed=[400, 400, 400],  # frozen for 300 s, 800 expected
        )
        rows = watch_snapshot(tmp_path, stall_after_s=60.0, now=now)
        assert rows[0]["stalled"] is True
        assert "STALLED" in render_watch(rows, 60.0)

    def test_progressing_commits_not_stalled(self, tmp_path):
        now = 1000.0
        _write_serve(
            tmp_path, 65,
            [now - 300.0, now - 150.0, now - 1.0],
            committed=[200, 400, 600],
        )
        rows = watch_snapshot(tmp_path, stall_after_s=60.0, now=now)
        assert rows[0]["stalled"] is False

    def test_done_service_never_flagged(self, tmp_path):
        now = 1000.0
        _write_serve(tmp_path, 66, [now - 3600.0], shed_fraction=0.5,
                     done=True)
        rows = watch_snapshot(tmp_path, stall_after_s=60.0, now=now)
        assert rows[0]["stalled"] is False
        assert rows[0]["overloaded"] is False


class TestServeFleet:
    def test_services_fold_into_health(self, tmp_path):
        from repro.obs.telemetry import fleet_snapshot, render_top

        now = 1000.0
        _write_worker(tmp_path, 71, now - 1.0)
        _write_serve(tmp_path, 72, [now - 1.0], committed=[500])
        doc = fleet_snapshot(tmp_path, stall_after_s=60.0, now=now)
        assert len(doc["services"]) == 1
        assert doc["health"]["overloaded"] == 0
        assert doc["health"]["healthy"] is True
        out = render_top(doc)
        assert "1 worker(s), 0 shard(s), 1 service(s)" in out
        assert "serving" in out

    def test_overloaded_service_degrades_health(self, tmp_path):
        from repro.obs.telemetry import fleet_snapshot, render_top

        now = 1000.0
        _write_serve(tmp_path, 73, [now - 1.0], committed=[500],
                     shed_fraction=0.3, queue_depth=256, queue_max=256)
        doc = fleet_snapshot(tmp_path, stall_after_s=60.0, now=now)
        assert doc["health"]["healthy"] is False
        assert doc["health"]["overloaded"] == 1
        assert any("overloaded" in p for p in doc["health"]["problems"])
        out = render_top(doc)
        assert "OVERLOADED" in out
        assert "health: DEGRADED" in out

    def test_shed_threshold_configurable(self, tmp_path):
        from repro.obs.telemetry import fleet_snapshot

        now = 1000.0
        _write_serve(tmp_path, 74, [now - 1.0], committed=[500],
                     shed_fraction=0.03)
        default = fleet_snapshot(tmp_path, stall_after_s=60.0, now=now)
        assert default["health"]["overloaded"] == 0
        strict = fleet_snapshot(
            tmp_path, stall_after_s=60.0, now=now, shed_threshold=0.01
        )
        assert strict["health"]["overloaded"] == 1

    def test_top_cli_shows_service_table(self, tmp_path, capsys):
        now = time.time()
        _write_serve(tmp_path, 75, [now - 1.0], committed=[800], done=True)
        rc = main(["obs", "top", "--once", "--dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "serve-75.jsonl" in out
        assert "done" in out


class TestServiceHeartbeatIntegration:
    def test_service_emits_and_watch_folds(
        self, city, wigle, tmp_path, monkeypatch, capsys
    ):
        from repro.serve.core import RankingCore
        from repro.serve.service import run_stream
        from repro.serve.workload import synthetic_stream

        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_SERVE_HEARTBEAT", "0.05")
        monkeypatch.delenv("REPRO_HEARTBEAT", raising=False)
        core = RankingCore.seeded(
            wigle, city.heatmap, city.venues[0].region.center, seed=0
        )
        run_stream(core, synthetic_stream(8, 200, seed=0), workers=2)
        files = list((tmp_path / "telemetry").glob("serve-*.jsonl"))
        assert len(files) == 1
        records = read_heartbeats(files[0])
        assert records[-1]["done"] is True
        assert records[-1]["kind"] == "serve"
        assert records[-1]["committed"] == 200
        assert records[-1]["events"] == 200
        assert records[-1]["fraction"] == 1.0
        rc = main(["obs", "watch", "--once",
                   "--dir", str(tmp_path / "telemetry")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "done" in out


class TestTopCli:
    def test_once_healthy_exits_zero(self, tmp_path, capsys):
        now = time.time()
        _write_shard(tmp_path, 0, [now - 1.0], epoch=3)
        _write_shard(tmp_path, 1, [now - 1.0], epoch=3)
        _write_epochs(tmp_path, 0, epochs=3, phase_s=0.5, t0=now - 10.0)
        _write_epochs(tmp_path, 1, epochs=3, phase_s=0.5, t0=now - 10.0)
        rc = main(["obs", "top", "--once", "--dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "health: OK" in out

    def test_once_degraded_exits_nonzero(self, tmp_path, capsys):
        """Acceptance: the synthetic straggler/stall fixture makes
        ``obs top --once`` exit non-zero."""
        now = time.time()
        _write_shard(tmp_path, 0, [now - 3600.0, now - 1.0], epoch=0)
        _write_shard(tmp_path, 1, [now - 1.0], epoch=5)
        _write_epochs(tmp_path, 0, epochs=1, phase_s=5.0, t0=now - 3600.0)
        _write_epochs(tmp_path, 1, epochs=5, phase_s=0.1, t0=now - 10.0)
        rc = main([
            "obs", "top", "--once", "--dir", str(tmp_path),
            "--stall-after", "60",
        ])
        out = capsys.readouterr().out
        assert rc == 1
        assert "health: DEGRADED" in out
        assert "stalled" in out

    def test_once_json_parses(self, tmp_path, capsys):
        now = time.time()
        _write_shard(tmp_path, 0, [now - 1.0], epoch=2)
        _write_epochs(tmp_path, 0, epochs=2, phase_s=0.5, t0=now - 5.0)
        rc = main(["obs", "top", "--once", "--json", "--dir", str(tmp_path)])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert doc["health"]["healthy"] is True
        assert doc["epochs"]["0"]["epochs_done"] == 2
