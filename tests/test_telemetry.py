"""Tests for live executor telemetry (repro.obs.telemetry).

The acceptance case from the issue rides at the bottom: a synthetic
silent worker (heartbeat file whose newest record is old and not done)
must be flagged by ``repro obs watch --once`` with a non-zero exit.
"""

import json
import time

from repro.cli import main
from repro.obs.telemetry import (
    DEFAULT_INTERVAL_S,
    HeartbeatWriter,
    clear_heartbeats,
    heartbeat_dir,
    maybe_heartbeat,
    read_heartbeats,
    render_watch,
    resolve_heartbeat_interval,
    set_current_spec,
    watch_snapshot,
)


class TestInterval:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_HEARTBEAT", raising=False)
        assert resolve_heartbeat_interval() is None

    def test_truthy_uses_default(self):
        assert resolve_heartbeat_interval("1") == DEFAULT_INTERVAL_S
        assert resolve_heartbeat_interval("on") == DEFAULT_INTERVAL_S

    def test_numeric_is_seconds(self):
        assert resolve_heartbeat_interval("2.5") == 2.5

    def test_garbage_and_nonpositive_off(self):
        assert resolve_heartbeat_interval("soon") is None
        assert resolve_heartbeat_interval("0") is None
        assert resolve_heartbeat_interval("-3") is None


class TestHeartbeatWriter:
    def test_writes_enter_and_done(self, tmp_path):
        progress = lambda: (150.0, 7)
        with HeartbeatWriter(
            "spec-a", 300.0, progress, interval_s=60.0, base_dir=tmp_path
        ) as hb:
            pass
        records = read_heartbeats(hb.path)
        assert len(records) == 2
        first, last = records
        assert first["spec"] == "spec-a"
        assert first["fraction"] == 0.5
        assert first["hits"] == 7
        assert first["done"] is False
        assert last["done"] is True
        assert last["seq"] == 1

    def test_periodic_beats(self, tmp_path):
        with HeartbeatWriter(
            "spec-b", 10.0, lambda: (1.0, 0), interval_s=0.05,
            base_dir=tmp_path,
        ) as hb:
            time.sleep(0.3)
        records = read_heartbeats(hb.path)
        assert len(records) >= 4  # enter + several beats + done

    def test_fraction_capped_at_one(self, tmp_path):
        with HeartbeatWriter(
            "spec-c", 100.0, lambda: (130.0, 1), interval_s=60.0,
            base_dir=tmp_path,
        ) as hb:
            pass
        assert all(r["fraction"] == 1.0 for r in read_heartbeats(hb.path))

    def test_torn_progress_reuses_last(self, tmp_path):
        calls = {"n": 0}

        def progress():
            calls["n"] += 1
            if calls["n"] > 1:
                raise RuntimeError("dictionary changed size during iteration")
            return (42.0, 3)

        with HeartbeatWriter(
            "spec-d", 100.0, progress, interval_s=60.0, base_dir=tmp_path
        ) as hb:
            pass
        records = read_heartbeats(hb.path)
        assert records[-1]["sim_time"] == 42.0
        assert records[-1]["hits"] == 3

    def test_maybe_heartbeat_gates_on_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_HEARTBEAT", raising=False)
        ctx = maybe_heartbeat("x", 10.0, lambda: (0.0, 0))
        assert not isinstance(ctx, HeartbeatWriter)
        monkeypatch.setenv("REPRO_HEARTBEAT", "0.5")
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path))
        ctx = maybe_heartbeat("x", 10.0, lambda: (0.0, 0))
        assert isinstance(ctx, HeartbeatWriter)
        assert ctx.interval_s == 0.5

    def test_maybe_heartbeat_uses_current_spec_label(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_HEARTBEAT", "1")
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path))
        set_current_spec("cityhunter/canteen:5")
        try:
            ctx = maybe_heartbeat(None, 10.0, lambda: (0.0, 0))
        finally:
            set_current_spec(None)
        assert ctx.spec_id == "cityhunter/canteen:5"


def _write_worker(directory, pid, wall, done=False, spec="spec-x",
                  fraction=0.5):
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"worker-{pid}.jsonl"
    record = {
        "wall": wall,
        "pid": pid,
        "spec": spec,
        "seq": 0,
        "sim_time": fraction * 300.0,
        "fraction": fraction,
        "hits": 4,
        "done": done,
    }
    with open(path, "a") as fh:
        fh.write(json.dumps(record) + "\n")
    return path


class TestWatcher:
    def test_snapshot_rows(self, tmp_path):
        now = 1000.0
        _write_worker(tmp_path, 11, now - 5.0)
        _write_worker(tmp_path, 12, now - 120.0)
        _write_worker(tmp_path, 13, now - 120.0, done=True)
        rows = watch_snapshot(tmp_path, stall_after_s=60.0, now=now)
        by_pid = {r["pid"]: r for r in rows}
        assert by_pid[11]["stalled"] is False
        assert by_pid[12]["stalled"] is True
        assert by_pid[13]["stalled"] is False  # done workers never stall
        assert by_pid[13]["done"] is True

    def test_torn_final_line_skipped(self, tmp_path):
        path = _write_worker(tmp_path, 21, 10.0)
        with open(path, "a") as fh:
            fh.write('{"wall": 99, "truncat')  # crashed mid-write
        records = read_heartbeats(path)
        assert len(records) == 1
        assert records[0]["wall"] == 10.0

    def test_empty_dir(self, tmp_path):
        assert watch_snapshot(tmp_path, now=0.0) == []
        assert "no heartbeat files" in render_watch([], 60.0)

    def test_render_flags_stall(self, tmp_path):
        now = 1000.0
        _write_worker(tmp_path, 31, now - 500.0)
        rows = watch_snapshot(tmp_path, stall_after_s=60.0, now=now)
        out = render_watch(rows, 60.0)
        assert "STALLED" in out
        assert "1 worker(s) stalled" in out

    def test_clear_heartbeats(self, tmp_path):
        _write_worker(tmp_path / "telemetry", 41, 0.0)
        clear_heartbeats(tmp_path)
        assert list((tmp_path / "telemetry").glob("worker-*.jsonl")) == []

    def test_heartbeat_dir_under_artifacts(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path))
        assert heartbeat_dir() == tmp_path / "telemetry"


class TestWatchCli:
    def test_once_flags_silent_worker(self, tmp_path, capsys):
        """Acceptance: a worker that went silent mid-run is flagged and
        ``obs watch --once`` exits non-zero."""
        _write_worker(tmp_path, 51, time.time() - 3600.0)
        rc = main(
            ["obs", "watch", "--once", "--dir", str(tmp_path),
             "--stall-after", "60"]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "STALLED" in out

    def test_once_healthy_exits_zero(self, tmp_path, capsys):
        _write_worker(tmp_path, 52, time.time() - 1.0)
        _write_worker(tmp_path, 53, time.time() - 3600.0, done=True)
        rc = main(
            ["obs", "watch", "--once", "--dir", str(tmp_path),
             "--stall-after", "60"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "running" in out
        assert "done" in out
