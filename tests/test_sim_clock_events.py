"""Tests for the clock and event primitives (repro.sim)."""

import pytest

from repro.sim.clock import Clock
from repro.sim.events import EventHandle


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0.0

    def test_custom_start(self):
        assert Clock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            Clock(-1.0)

    def test_advance(self):
        c = Clock()
        c.advance_to(3.5)
        assert c.now == 3.5

    def test_advance_to_same_time_allowed(self):
        c = Clock(2.0)
        c.advance_to(2.0)
        assert c.now == 2.0

    def test_backwards_rejected(self):
        c = Clock(2.0)
        with pytest.raises(ValueError):
            c.advance_to(1.0)


class TestEventHandle:
    def test_alive_until_cancelled(self):
        e = EventHandle(1.0, 0, lambda: None, ())
        assert e.alive
        e.cancel()
        assert not e.alive

    def test_cancel_idempotent(self):
        e = EventHandle(1.0, 0, lambda: None, ())
        e.cancel()
        e.cancel()
        assert not e.alive

    def test_ordering_by_time_then_seq(self):
        early = EventHandle(1.0, 5, lambda: None, ())
        late = EventHandle(2.0, 0, lambda: None, ())
        assert early < late
        first = EventHandle(1.0, 0, lambda: None, ())
        second = EventHandle(1.0, 1, lambda: None, ())
        assert first < second
