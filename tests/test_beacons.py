"""Tests for beaconing APs and passive phone discovery."""

from repro.devices.access_point import LegitAp
from repro.devices.phone import Phone
from repro.devices.profiles import ScanProfile
from repro.dot11.capabilities import NetworkProfile, Security
from repro.dot11.frames import Beacon
from repro.dot11.medium import Medium
from repro.geo.point import Point
from repro.mobility.base import PathMobility
from repro.population.person import OsFamily, PersonSpec
from repro.sim.simulation import Simulation


def _person(ssids, open_=True):
    sec = Security.OPEN if open_ else Security.WPA2_PSK
    return PersonSpec(0, OsFamily.ANDROID, {s: NetworkProfile(s, sec) for s in ssids})


def _phone(person, medium, duration=300.0, first_scan_delay=200.0):
    mobility = PathMobility([(0.0, Point(5, 0)), (duration, Point(5, 0))])
    # Long first-scan delay so passive discovery acts before any scan.
    profile = ScanProfile(first_scan_max_delay=first_scan_delay)
    return Phone("02:00:00:00:00:aa", person, mobility, medium,
                 scan_profile=profile)


class TestBeaconing:
    def test_ap_beacons_periodically(self):
        sim = Simulation(seed=1)
        medium = Medium(sim)
        ap = LegitAp("02:aa:00:00:00:01", Point(0, 0), medium, "Net",
                     beacon_interval=0.1)
        sim.add_entity(ap)
        sim.run(1.05)
        assert ap.beacons_sent == 10

    def test_beaconing_off_by_default(self):
        sim = Simulation(seed=1)
        medium = Medium(sim)
        ap = LegitAp("02:aa:00:00:00:01", Point(0, 0), medium, "Net")
        sim.add_entity(ap)
        sim.run(5.0)
        assert ap.beacons_sent == 0


class TestPassiveDiscovery:
    def test_idle_phone_joins_beaconing_pnl_network(self):
        sim = Simulation(seed=1)
        medium = Medium(sim)
        ap = LegitAp("02:aa:00:00:00:01", Point(0, 0), medium, "HomeNet",
                     beacon_interval=0.5)
        phone = _phone(_person(["HomeNet"]), medium)
        sim.add_entity(ap)
        sim.add_entity(phone)
        sim.run(10.0)
        assert phone.state == Phone.CONNECTED
        assert phone.connected_bssid == ap.mac
        assert phone.scans_performed == 0  # never needed to probe

    def test_unknown_beacon_ignored(self):
        sim = Simulation(seed=1)
        medium = Medium(sim)
        ap = LegitAp("02:aa:00:00:00:01", Point(0, 0), medium, "StrangerNet",
                     beacon_interval=0.5)
        phone = _phone(_person(["HomeNet"]), medium)
        sim.add_entity(ap)
        sim.add_entity(phone)
        sim.run(10.0)
        assert phone.state != Phone.CONNECTED

    def test_secured_pnl_entry_not_joined_from_beacon(self):
        sim = Simulation(seed=1)
        medium = Medium(sim)
        ap = LegitAp("02:aa:00:00:00:01", Point(0, 0), medium, "CorpNet",
                     beacon_interval=0.5)
        phone = _phone(_person(["CorpNet"], open_=False), medium)
        sim.add_entity(ap)
        sim.add_entity(phone)
        sim.run(10.0)
        assert phone.state != Phone.CONNECTED

    def test_connected_phone_ignores_beacons(self):
        sim = Simulation(seed=1)
        medium = Medium(sim)
        phone = _phone(_person(["OtherNet"]), medium)
        phone.state = Phone.CONNECTED
        phone.connected_bssid = "02:bb:00:00:00:01"
        sim.add_entity(phone)
        sim.run(0.1)
        phone.receive(Beacon("02:cc:00:00:00:01", "OtherNet"), sim.now)
        assert phone.connected_bssid == "02:bb:00:00:00:01"
