"""Tests for the per-handler sim profiler (repro.obs.profiler)."""

import json

import pytest

from repro.cli import main
from repro.obs.profiler import (
    PROFILE_SCHEMA,
    SimProfiler,
    load_profile,
    load_profile_optional,
    merge_profiles,
    profile_collapsed,
    render_hot_table,
    write_collapsed,
    write_profile,
)
from repro.sim.simulation import Simulation


class TestSimProfiler:
    def test_record_accumulates(self):
        p = SimProfiler()
        p.record("A.f", 0.010, 1.0)
        p.record("A.f", 0.030, 2.0)
        p.record("B.g", 0.005, 0.5)
        assert len(p) == 2
        assert p.total_calls == 3
        assert p.total_wall_s == pytest.approx(0.045)
        rows = p.handlers()
        assert rows[0]["name"] == "A.f"  # hottest first
        assert rows[0]["calls"] == 2
        assert rows[0]["sim_advance_s"] == pytest.approx(3.0)

    def test_to_dict_schema(self):
        p = SimProfiler()
        p.record("A.f", 0.01, 1.0)
        doc = p.to_dict()
        assert doc["schema"] == PROFILE_SCHEMA
        assert doc["handlers"][0]["name"] == "A.f"

    def test_collapsed_format(self):
        p = SimProfiler()
        p.record("Medium._deliver", 0.002, 0.0)
        lines = p.collapsed()
        assert lines == ["sim;Medium._deliver 2000"]

    def test_ties_sorted_by_name(self):
        p = SimProfiler()
        p.record("z", 0.01, 0.0)
        p.record("a", 0.01, 0.0)
        assert [r["name"] for r in p.handlers()] == ["a", "z"]


class TestSchedulerIntegration:
    def test_off_by_default(self):
        sim = Simulation(seed=1)
        assert sim.profiler is None

    def test_profile_kwarg_attaches(self):
        sim = Simulation(seed=1, profile=True)
        assert sim.profiler is not None

    def test_env_flag_attaches(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        assert Simulation(seed=1).profiler is not None
        monkeypatch.setenv("REPRO_PROFILE", "")
        assert Simulation(seed=1).profiler is None

    def test_handlers_credited_by_qualname(self):
        sim = Simulation(seed=1, profile=True)

        class Ticker:
            def tick(self):
                pass

        t = Ticker()
        for i in range(5):
            sim.at(float(i + 1), t.tick)
        sim.run(10.0)
        doc = sim.profiler.to_dict()
        names = {r["name"]: r for r in doc["handlers"]}
        row = names[
            "TestSchedulerIntegration.test_handlers_credited_by_qualname."
            "<locals>.Ticker.tick"
        ]
        assert row["calls"] == 5
        # tick events are 1 s apart: the handler owns 5 s of timeline.
        assert row["sim_advance_s"] == pytest.approx(5.0)

    def test_profiled_run_same_results(self):
        """Profiling observes only: event order and clock identical."""

        def build(profile):
            sim = Simulation(seed=7, profile=profile)
            rng = sim.rngs.stream("x")
            seen = []
            def emit(tag):
                seen.append((sim.now, tag, float(rng.random())))
                if len(seen) < 20:
                    sim.at(0.5, emit, tag + 1)
            sim.at(0.0, emit, 0)
            sim.run(30.0)
            return seen

        assert build(False) == build(True)


class TestMergeAndRender:
    def _doc(self, name="A.f", calls=2, wall=0.04, sim_s=3.0):
        p = SimProfiler()
        for _ in range(calls):
            p.record(name, wall / calls, sim_s / calls)
        return p.to_dict()

    def test_merge_sums(self):
        merged = merge_profiles([self._doc(), self._doc()])
        assert merged["schema"] == PROFILE_SCHEMA
        row = merged["handlers"][0]
        assert row["calls"] == 4
        assert row["wall_s"] == pytest.approx(0.08)

    def test_merge_rejects_foreign_schema(self):
        with pytest.raises(ValueError):
            merge_profiles([{"schema": "nope"}])

    def test_profile_collapsed_matches_live(self):
        doc = self._doc("Medium._deliver", calls=1, wall=0.002)
        assert profile_collapsed(doc) == ["sim;Medium._deliver 2000"]

    def test_render_hot_table(self):
        doc = merge_profiles(
            [self._doc("A.f"), self._doc("B.g", wall=0.01)]
        )
        table = render_hot_table(doc, top=1)
        assert "A.f" in table
        assert "... 1 more" in table
        assert "B.g" not in table

    def test_write_load_roundtrip(self, tmp_path):
        doc = self._doc()
        path = write_profile(doc, tmp_path / "profile.json")
        assert load_profile(path) == doc
        assert load_profile_optional(tmp_path / "absent.json") is None

    def test_write_collapsed(self, tmp_path):
        doc = self._doc("X.h", calls=1, wall=0.001)
        path = write_collapsed(doc, tmp_path / "stacks.txt")
        assert path.read_text() == "sim;X.h 1000\n"


class TestCli:
    def _artefact(self, tmp_path):
        p = SimProfiler()
        p.record("Medium._deliver", 0.1, 50.0)
        p.record("Phone._probe_channel", 0.05, 10.0)
        path = tmp_path / "profile.json"
        write_profile(p.to_dict(), path)
        return path

    def test_profile_table(self, tmp_path, capsys):
        path = self._artefact(tmp_path)
        rc = main(["obs", "profile", "--path", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "hot handlers" in out
        assert "Medium._deliver" in out

    def test_profile_collapsed_output(self, tmp_path, capsys):
        path = self._artefact(tmp_path)
        stacks = tmp_path / "stacks.txt"
        rc = main(
            ["obs", "profile", "--path", str(path), "--collapsed", str(stacks)]
        )
        assert rc == 0
        assert "collapsed stacks written" in capsys.readouterr().out
        lines = stacks.read_text().splitlines()
        assert lines[0].startswith("sim;Medium._deliver ")

    def test_profile_missing_artefact(self, tmp_path, capsys):
        rc = main(["obs", "profile", "--path", str(tmp_path / "nope.json")])
        assert rc == 1
        assert "no profile artefact" in capsys.readouterr().err

    def test_profile_invalid_artefact(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "other"}))
        rc = main(["obs", "profile", "--path", str(bad)])
        assert rc == 1
        assert "invalid profile artefact" in capsys.readouterr().err
