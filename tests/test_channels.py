"""Tests for the channel-scan model."""

import pytest

from repro.attacks.karma import KarmaAttacker
from repro.devices.phone import Phone
from repro.devices.profiles import ScanProfile
from repro.dot11.capabilities import NetworkProfile, Security
from repro.dot11.frames import ProbeRequest
from repro.dot11.medium import Medium
from repro.geo.point import Point
from repro.mobility.base import PathMobility
from repro.population.person import OsFamily, PersonSpec
from repro.sim.simulation import Simulation


class TestAttackerChannelFilter:
    def _karma(self):
        sim = Simulation(seed=1)
        medium = Medium(sim)
        karma = KarmaAttacker(
            "02:aa:00:00:00:01", Point(0, 0), medium, channel=6
        )
        sim.add_entity(karma)
        sim.run(0.001)
        return sim, karma

    def test_hears_own_channel(self):
        sim, karma = self._karma()
        karma.receive(ProbeRequest("02:00:00:00:00:01", channel=6), sim.now)
        assert len(karma.session.clients) == 1

    def test_deaf_to_other_channels(self):
        sim, karma = self._karma()
        karma.receive(ProbeRequest("02:00:00:00:00:01", channel=1), sim.now)
        assert len(karma.session.clients) == 0

    def test_invalid_channel_rejected(self):
        sim = Simulation(seed=1)
        medium = Medium(sim)
        with pytest.raises(ValueError):
            KarmaAttacker("02:aa:00:00:00:01", Point(0, 0), medium, channel=99)


class TestPhoneChannelCycle:
    def _deploy(self, channels, attacker_channel=6):
        sim = Simulation(seed=8)
        medium = Medium(sim)
        venue_pnl = {"Known Net": NetworkProfile("Known Net", Security.OPEN)}
        person = PersonSpec(0, OsFamily.ANDROID, venue_pnl)

        class OneSsidAp(KarmaAttacker):
            # KARMA base answers direct probes only; give it a broadcast
            # reply so the phone can be hit through any channel cycle.
            def on_broadcast_probe(self, client, time):
                from repro.analysis.session import SentSsid

                self.send_ssid_burst(
                    client, [SentSsid("Known Net", "wigle", "db")], time
                )

        ap = OneSsidAp(
            "02:aa:00:00:00:01", Point(0, 0), medium, channel=attacker_channel
        )
        mobility = PathMobility([(0.0, Point(5, 0)), (600.0, Point(5, 0))])
        phone = Phone(
            "02:00:00:00:00:aa",
            person,
            mobility,
            medium,
            scan_profile=ScanProfile(
                first_scan_max_delay=1.0, scan_channels=tuple(channels)
            ),
        )
        sim.add_entity(ap)
        sim.add_entity(phone)
        return sim, ap, phone

    def test_single_channel_default_hits(self):
        sim, ap, phone = self._deploy([6])
        sim.run(10.0)
        assert phone.state == Phone.CONNECTED

    def test_hop_sequence_still_hits_attacker_channel(self):
        sim, ap, phone = self._deploy([1, 6, 11])
        sim.run(10.0)
        assert phone.state == Phone.CONNECTED

    def test_wrong_channels_never_reach_attacker(self):
        sim, ap, phone = self._deploy([1, 11])
        sim.run(60.0)
        assert phone.state != Phone.CONNECTED
        assert len(ap.session.clients) == 0

    def test_scan_duration_scales_with_channels(self):
        sim, ap, phone = self._deploy([1, 6, 11])
        sim.run(10.0)
        # The scan window spans 3 channel dwells of 20 ms each.
        assert phone._window_hard_close - 0.06 < 10.0

    def test_probes_carry_their_channel(self):
        captured = []

        class Monitor:
            mac = "02:mo:ni:to:00:01"

            def position_at(self, t):
                return Point(1, 1)

            def receive(self, frame, t):
                if isinstance(frame, ProbeRequest):
                    captured.append(frame.channel)

        sim, ap, phone = self._deploy([1, 6, 11])
        phone.medium.attach(Monitor(), 100.0, promiscuous=True)
        sim.run(5.0)
        assert set(captured) >= {1, 6, 11}
