"""Tests for session export (repro.analysis.export) and the CLI."""

import csv
import io
import json

import pytest

from repro.analysis.export import (
    CLIENT_FIELDS,
    clients_to_csv,
    load_summary,
    session_to_json,
)
from repro.analysis.session import AttackSession, SentSsid
from repro.cli import build_parser, main


def _session():
    s = AttackSession()
    s.observe_probe("mac-a", 1.0, direct=False)
    s.record_sent("mac-a", 1.0, [SentSsid("pop", "wigle", "pb")])
    s.record_hit("mac-a", 2.0, "pop")
    s.observe_probe("mac-b", 3.0, direct=True)
    s.record_db_size(0.0, 280)
    return s


class TestCsvExport:
    def test_roundtrip_structure(self):
        text = clients_to_csv(_session())
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 2
        assert list(rows[0]) == CLIENT_FIELDS

    def test_values(self):
        rows = list(csv.DictReader(io.StringIO(clients_to_csv(_session()))))
        a = rows[0]
        assert a["mac"] == "mac-a"
        assert a["connected"] == "1"
        assert a["hit_ssid"] == "pop"
        assert a["hit_position"] == "1"
        b = rows[1]
        assert b["direct_prober"] == "1"
        assert b["hit_ssid"] == ""

    def test_empty_session(self):
        rows = list(csv.DictReader(io.StringIO(clients_to_csv(AttackSession()))))
        assert rows == []


class TestJsonExport:
    def test_document_contents(self):
        doc = json.loads(session_to_json(_session(), label="demo"))
        assert doc["label"] == "demo"
        assert doc["clients"]["total"] == 2
        assert doc["connected"]["broadcast"] == 1
        assert doc["rates"]["h"] == pytest.approx(0.5)
        assert doc["breakdown"]["source"]["wigle"] == 1
        assert doc["db_size_series"] == [{"time": 0.0, "size": 280}]

    def test_load_summary_roundtrip(self):
        doc = load_summary(session_to_json(_session()))
        assert doc["clients"]["total"] == 2

    def test_load_summary_rejects_garbage(self):
        with pytest.raises(ValueError):
            load_summary('{"nope": 1}')


class TestCli:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["run", "--attacker", "karma"])
        assert args.attacker == "karma"
        args = parser.parse_args(["table", "4"])
        assert args.number == "4"
        args = parser.parse_args(["fig", "5", "--venue", "passage", "--slots", "0"])
        assert args.slots == [0]

    def test_run_command(self, capsys, tmp_path):
        csv_path = tmp_path / "clients.csv"
        json_path = tmp_path / "summary.json"
        rc = main(
            [
                "run",
                "--attacker",
                "mana",
                "--duration",
                "200",
                "--csv",
                str(csv_path),
                "--json",
                str(json_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "mana at the University Canteen" in out
        assert csv_path.exists() and json_path.exists()
        doc = load_summary(json_path.read_text())
        assert doc["label"] == "mana"

    def test_table4_command(self, capsys):
        assert main(["table", "4"]) == 0
        out = capsys.readouterr().out
        assert "#HKAirport Free WiFi" in out

    def test_fig4_command(self, capsys):
        assert main(["fig", "4"]) == 0
        assert "heat map" in capsys.readouterr().out

    def test_city_command(self, capsys):
        assert main(["city"]) == 0
        out = capsys.readouterr().out
        assert "top-5 SSIDs by AP count" in out

    def test_fig5_subset_command(self, capsys):
        rc = main(["fig", "5", "--venue", "canteen", "--slots", "2"])
        assert rc == 0
        assert "10am-11am" in capsys.readouterr().out

    def test_unknown_attacker_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--attacker", "wifi-pineapple"])


class TestReport:
    def test_report_structure_and_verdicts(self):
        """A tiny-duration report still produces every section."""
        from repro.experiments.report import generate_report

        text = generate_report(
            duration=180.0, fig5_slots=(4,), fig5_slot_duration=240.0
        )
        assert "# City-Hunter reproduction report" in text
        assert "## Tables" in text
        assert "## Figures" in text
        assert "## Paper-target verdicts" in text
        assert "Table IV" in text
        # All 12 registered targets get a verdict line.
        assert text.count("[OK") + text.count("[OUT") == 12

    def test_report_cli_writes_file(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        rc = main(
            [
                "report",
                "--duration",
                "120",
                "--slot-duration",
                "120",
                "--out",
                str(out),
            ]
        )
        assert rc == 0
        assert out.exists()
        assert "Paper-target verdicts" in out.read_text()
