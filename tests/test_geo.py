"""Tests for planar geometry (repro.geo)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geo.grid import SpatialGrid
from repro.geo.point import Point, distance
from repro.geo.region import Rect

coords = st.floats(min_value=-1e5, max_value=1e5, allow_nan=False)


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_function_matches_method(self):
        a, b = Point(1, 2), Point(4, 6)
        assert distance(a, b) == a.distance_to(b)

    def test_translated(self):
        assert Point(1, 1).translated(2, -1) == Point(3, 0)

    def test_towards_endpoints(self):
        a, b = Point(0, 0), Point(10, 0)
        assert a.towards(b, 0.0) == a
        assert a.towards(b, 1.0) == b
        assert a.towards(b, 0.5) == Point(5, 0)

    @given(coords, coords, coords, coords)
    def test_property_distance_symmetry(self, x1, y1, x2, y2):
        a, b = Point(x1, y1), Point(x2, y2)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(coords, coords, coords, coords, st.floats(0, 1))
    def test_property_interpolation_on_segment(self, x1, y1, x2, y2, frac):
        a, b = Point(x1, y1), Point(x2, y2)
        mid = a.towards(b, frac)
        total = a.distance_to(b)
        # Interpolated point splits the segment length.
        assert a.distance_to(mid) + mid.distance_to(b) == pytest.approx(
            total, abs=1e-6 * max(1.0, total)
        )


class TestRect:
    def test_dimensions(self):
        r = Rect(0, 0, 4, 3)
        assert r.width == 4 and r.height == 3
        assert r.area == 12
        assert r.center == Point(2, 1.5)

    def test_contains_edges(self):
        r = Rect(0, 0, 2, 2)
        assert r.contains(Point(0, 0))
        assert r.contains(Point(2, 2))
        assert not r.contains(Point(2.01, 1))

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Rect(1, 0, 0, 1)

    def test_sample_inside(self):
        r = Rect(10, 20, 30, 40)
        rng = np.random.default_rng(0)
        for _ in range(200):
            assert r.contains(r.sample(rng))

    def test_expanded(self):
        r = Rect(1, 1, 2, 2).expanded(1)
        assert (r.x0, r.y0, r.x1, r.y1) == (0, 0, 3, 3)


class TestSpatialGrid:
    def _populated(self, n=300, seed=0, cell=10.0):
        rng = np.random.default_rng(seed)
        grid = SpatialGrid(cell)
        points = [Point(float(x), float(y)) for x, y in rng.uniform(0, 500, (n, 2))]
        for i, p in enumerate(points):
            grid.insert(p, i)
        return grid, points

    def test_len(self):
        grid, points = self._populated(50)
        assert len(grid) == 50

    def test_within_matches_brute_force(self):
        grid, points = self._populated()
        center = Point(250, 250)
        radius = 60.0
        got = sorted(i for _, i in grid.within(center, radius))
        want = sorted(
            i for i, p in enumerate(points) if p.distance_to(center) <= radius
        )
        assert got == want

    def test_nearest_matches_brute_force(self):
        grid, points = self._populated()
        center = Point(100, 400)
        got = [i for _, i in grid.nearest(center, 12)]
        want = sorted(range(len(points)), key=lambda i: points[i].distance_to(center))
        assert got == want[:12]

    def test_nearest_more_than_population(self):
        grid, points = self._populated(5)
        assert len(grid.nearest(Point(0, 0), 50)) == 5

    def test_nearest_empty_grid(self):
        grid = SpatialGrid(10.0)
        assert grid.nearest(Point(0, 0), 3) == []

    def test_nearest_zero_count(self):
        grid, _ = self._populated(5)
        assert grid.nearest(Point(0, 0), 0) == []

    def test_negative_radius_rejected(self):
        grid, _ = self._populated(5)
        with pytest.raises(ValueError):
            grid.within(Point(0, 0), -1.0)

    def test_bad_cell_size_rejected(self):
        with pytest.raises(ValueError):
            SpatialGrid(0.0)

    def test_items_iterates_everything(self):
        grid, points = self._populated(40)
        assert sorted(i for _, i in grid.items()) == list(range(40))

    @given(st.integers(0, 2**31), st.integers(1, 80),
           st.floats(min_value=1.0, max_value=200.0))
    def test_property_within_equals_bruteforce(self, seed, n, radius):
        rng = np.random.default_rng(seed)
        grid = SpatialGrid(25.0)
        pts = [Point(float(x), float(y)) for x, y in rng.uniform(0, 300, (n, 2))]
        for i, p in enumerate(pts):
            grid.insert(p, i)
        center = Point(150, 150)
        got = sorted(i for _, i in grid.within(center, radius))
        want = sorted(i for i, p in enumerate(pts) if p.distance_to(center) <= radius)
        assert got == want
