"""Tests for 802.11 basic types: MACs, SSIDs, security, channels, frames."""

import numpy as np
import pytest

from repro.dot11.capabilities import NetworkProfile, Security
from repro.dot11.channel import ALL_2G_CHANNELS, validate_channel
from repro.dot11.frames import (
    AssocRequest,
    AssocResponse,
    Beacon,
    Deauth,
    ProbeRequest,
    ProbeResponse,
)
from repro.dot11.mac import (
    BROADCAST_MAC,
    is_valid_mac,
    random_ap_mac,
    random_client_mac,
)
from repro.dot11.ssid import validate_ssid


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestMac:
    def test_client_mac_valid_and_locally_administered(self, rng):
        for _ in range(100):
            mac = random_client_mac(rng)
            assert is_valid_mac(mac)
            first_octet = int(mac.split(":")[0], 16)
            assert first_octet & 0x02  # locally administered
            assert not first_octet & 0x01  # unicast

    def test_ap_mac_valid(self, rng):
        for _ in range(50):
            assert is_valid_mac(random_ap_mac(rng))

    def test_broadcast_constant(self):
        assert BROADCAST_MAC == "ff:ff:ff:ff:ff:ff"
        assert is_valid_mac(BROADCAST_MAC)

    @pytest.mark.parametrize(
        "bad", ["", "aa:bb:cc:dd:ee", "AA:BB:CC:DD:EE:FF", "aa-bb-cc-dd-ee-ff"]
    )
    def test_invalid_macs(self, bad):
        assert not is_valid_mac(bad)

    def test_macs_unlikely_to_collide(self, rng):
        macs = {random_client_mac(rng) for _ in range(5000)}
        assert len(macs) == 5000


class TestSsid:
    def test_valid(self):
        assert validate_ssid("Free WiFi") == "Free WiFi"

    def test_32_bytes_ok(self):
        validate_ssid("x" * 32)

    def test_33_bytes_rejected(self):
        with pytest.raises(ValueError):
            validate_ssid("x" * 33)

    def test_multibyte_counted_in_bytes(self):
        with pytest.raises(ValueError):
            validate_ssid("生" * 11)  # 33 UTF-8 bytes

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            validate_ssid("")

    def test_non_str_rejected(self):
        with pytest.raises(TypeError):
            validate_ssid(42)  # type: ignore[arg-type]


class TestSecurity:
    def test_only_open_is_open(self):
        assert Security.OPEN.is_open
        for mode in (Security.WEP, Security.WPA2_PSK, Security.WPA2_ENTERPRISE):
            assert not mode.is_open

    def test_profile_auto_joinable(self):
        assert NetworkProfile("x", Security.OPEN).auto_joinable
        assert not NetworkProfile("x", Security.WPA2_PSK).auto_joinable

    def test_profile_validates_ssid(self):
        with pytest.raises(ValueError):
            NetworkProfile("", Security.OPEN)


class TestChannel:
    def test_etsi_plan(self):
        assert ALL_2G_CHANNELS == tuple(range(1, 14))

    def test_validate(self):
        assert validate_channel(6) == 6
        with pytest.raises(ValueError):
            validate_channel(14)


class TestFrames:
    def test_broadcast_probe(self):
        probe = ProbeRequest("02:00:00:00:00:01")
        assert probe.is_broadcast_probe
        assert probe.dst == BROADCAST_MAC

    def test_direct_probe(self):
        probe = ProbeRequest("02:00:00:00:00:01", "HomeNet")
        assert not probe.is_broadcast_probe
        assert probe.ssid == "HomeNet"

    def test_frames_use_slots(self):
        resp = ProbeResponse("a", "b", "x")
        with pytest.raises(AttributeError):
            resp.surprise = 1  # type: ignore[attr-defined]

    def test_kinds(self):
        assert ProbeRequest("a").kind == "probe_req"
        assert ProbeResponse("a", "b", "x").kind == "probe_resp"
        assert AssocRequest("a", "b", "x").kind == "assoc_req"
        assert AssocResponse("a", "b", "x").kind == "assoc_resp"
        assert Deauth("a", "b").kind == "deauth"
        assert Beacon("a", "x").kind == "beacon"

    def test_defaults(self):
        resp = ProbeResponse("a", "b", "x")
        assert resp.security is Security.OPEN
        assert Deauth("a", "b").reason == 7
        assert AssocResponse("a", "b", "x").success
